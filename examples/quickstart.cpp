// Quickstart: score 256 objects with 256 players, 32 of them dishonest.
//
// Demonstrates the three-line happy path of the library — configure an
// experiment, run it, read the metrics — plus the lower-level API (world /
// population / oracle / protocol) for users who need control.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/sim/experiment.hpp"

using namespace colscore;

int main() {
  // ---- High-level API ------------------------------------------------------
  ExperimentConfig config;
  config.n = 256;             // players == objects
  config.budget = 8;          // B: reference probe budget
  config.diameter = 16;       // planted cluster diameter
  config.dishonest = config.n / (3 * config.budget);  // paper's tolerance cap
  config.adversary = AdversaryKind::kRandomLiar;
  config.algorithm = AlgorithmKind::kCalculatePreferences;
  config.seed = 42;

  std::printf("colscore quickstart: n=%zu budget=%zu planted diameter=%zu "
              "dishonest=%zu (%s)\n",
              config.n, config.budget, config.diameter, config.dishonest,
              ExperimentConfig::adversary_name(config.adversary).c_str());

  const ExperimentOutcome outcome = run_experiment(config);

  std::printf("\nResults over %zu honest players:\n", outcome.honest_players);
  std::printf("  max prediction error   : %zu bits (planted diameter %zu)\n",
              outcome.error.max_error, outcome.planted_diameter);
  std::printf("  mean prediction error  : %.2f bits\n", outcome.error.mean_error);
  std::printf("  worst error/OPT ratio  : %.2f (Definition 1 bracket)\n",
              outcome.approx_ratio);
  std::printf("  max probes per player  : %llu (vs n=%zu to read everything)\n",
              static_cast<unsigned long long>(outcome.max_probes), config.n);
  std::printf("  wall time              : %.2fs\n", outcome.wall_seconds);

  std::printf("\nDiameter-guess iterations (Fig. 2 step 1):\n");
  for (const IterationInfo& it : outcome.iterations) {
    std::printf("  D=%-5zu |S|=%-5zu clusters=%-3zu min|V|=%-4zu orphans=%zu\n",
                it.diameter_guess, it.sample_size, it.clusters, it.min_cluster,
                it.orphans);
  }
  return 0;
}
