// Quickstart: score 256 objects with 256 players, 10 of them dishonest.
//
// Demonstrates the three-line happy path of the library — describe a
// scenario, resolve it against the registries, run it — plus how to register
// a brand-new workload (no enum or core header is touched: registration is
// the whole integration).
//
// Build & run:  cmake -B build -S . && cmake --build build -j
//               ./build/quickstart
#include <cstdio>

#include "src/sim/registry.hpp"

using namespace colscore;

int main() {
  // ---- High-level API ------------------------------------------------------
  // A scenario is a declarative string; every name resolves in a registry
  // (try ./build/colscore_cli --list-adversaries for the full set).
  const ScenarioSpec spec = ScenarioSpec::parse(
      "workload=planted adversary=random_liar algorithm=calculate_preferences "
      "n=256 budget=8 diameter=16 dishonest=10 seed=42");
  const Scenario scenario = Scenario::resolve(spec);

  std::printf("colscore quickstart: %s\n", spec.to_string().c_str());

  const ExperimentOutcome outcome = run_scenario(scenario);

  std::printf("\nResults over %zu honest players:\n", outcome.honest_players);
  std::printf("  max prediction error   : %zu bits (planted diameter %zu)\n",
              outcome.error.max_error, outcome.planted_diameter);
  std::printf("  mean prediction error  : %.2f bits\n", outcome.error.mean_error);
  std::printf("  worst error/OPT ratio  : %.2f (Definition 1 bracket)\n",
              outcome.approx_ratio);
  std::printf("  max probes per player  : %llu (vs n=%zu to read everything)\n",
              static_cast<unsigned long long>(outcome.max_probes), scenario.n);
  std::printf("  wall time              : %.2fs\n", outcome.wall_seconds);

  std::printf("\nDiameter-guess iterations (Fig. 2 step 1):\n");
  for (const IterationInfo& it : outcome.iterations) {
    std::printf("  D=%-5zu |S|=%-5zu clusters=%-3zu min|V|=%-4zu orphans=%zu\n",
                it.diameter_guess, it.sample_size, it.clusters, it.min_cluster,
                it.orphans);
  }

  // ---- Extending the scenario surface -------------------------------------
  // A new workload is one registration: a name, a description, and a factory.
  // It is immediately runnable by name everywhere (specs, grids, the CLI).
  WorkloadRegistry::instance().add(
      "three_camps", {"three equal taste camps (quickstart demo)",
                      [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                        return identical_clusters(sc.n, sc.n, 3, rng);
                      }});

  const ExperimentOutcome demo = run_scenario(Scenario::resolve(
      ScenarioSpec::parse("workload=three_camps n=128 seed=7 opt=0")));
  std::printf("\nRegistered 'three_camps' and ran it: max_err=%zu over %zu "
              "honest players\n",
              demo.error.max_error, demo.honest_players);
  return 0;
}
