// Non-binary scoring (§8 extension): a streaming-service panel rates movies
// on a 0-4 star scale. Taste groups are correlated in L1 distance; the
// threshold decomposition runs the binary protocol per star level and sums
// the layers back into star predictions.
//
// Run: ./build/examples/movie_night
#include <cstdio>

#include "src/ext/scored.hpp"

using namespace colscore;

int main() {
  constexpr std::size_t kViewers = 128;
  constexpr std::size_t kMovies = 128;
  constexpr std::uint8_t kStars = 5;     // scores 0..4
  constexpr std::size_t kTasteGroups = 4;
  constexpr std::size_t kL1Spread = 10;  // total star mass a member deviates
  constexpr std::size_t kBudget = 4;
  constexpr std::size_t kTrolls = 8;     // sleepers: honest until the vote

  std::printf("Movie night: %zu viewers x %zu movies, %u-star scale\n",
              kViewers, kMovies, kStars);

  const ScoredWorld world = planted_scored_clusters(
      kViewers, kMovies, kTasteGroups, kStars, kL1Spread, Rng(99));

  Population panel(kViewers);
  Rng rng(5);
  panel.corrupt_random(kTrolls, rng, [] { return std::make_unique<Sleeper>(); });

  const Params params = Params::practical(kBudget);
  const ScoredResult result =
      scored_calculate_preferences(world, panel, params, /*seed=*/1234);

  const std::size_t worst = scored_max_error(world, panel, result);
  std::printf("  trolls: %zu (lie only while voting)\n", kTrolls);
  std::printf("  worst L1 star error per viewer: %zu (planted taste spread %zu)\n",
              worst, kL1Spread);
  std::printf("  max probes per viewer: %llu across %u threshold layers\n",
              static_cast<unsigned long long>(result.max_probes), kStars - 1);

  // Show one viewer's predicted vs true stars for the first few movies.
  const PlayerId sample_viewer = 0;
  std::printf("\n  viewer %u, first 12 movies (predicted/true stars):\n   ",
              sample_viewer);
  for (ObjectId o = 0; o < 12; ++o)
    std::printf(" %u/%u", result.outputs[sample_viewer][o],
                world.scores.score(sample_viewer, o));
  std::printf("\n");
  return 0;
}
