// Adversary showdown: every attack strategy in the library, ramped from zero
// to past the paper's n/(3B) tolerance, against both the robust protocol and
// the non-robust Alon-et-al-style baseline. Prints one table row per
// (strategy, fraction) pair.
//
// Run: ./build/examples/sybil_showdown
#include <cstdio>

#include "src/sim/experiment.hpp"

using namespace colscore;

int main() {
  constexpr std::size_t kN = 192;
  constexpr std::size_t kBudget = 8;
  constexpr std::size_t kDiameter = 12;
  const std::size_t tolerance = kN / (3 * kBudget);  // the paper's bound

  std::printf("Sybil showdown: n=%zu B=%zu D=%zu, tolerance n/(3B)=%zu\n\n",
              kN, kBudget, kDiameter, tolerance);
  std::printf("%-14s %10s %18s %18s\n", "strategy", "dishonest",
              "ours max-err", "baseline max-err");

  const AdversaryKind strategies[] = {
      AdversaryKind::kRandomLiar,     AdversaryKind::kInverter,
      AdversaryKind::kConstantOne,    AdversaryKind::kHijacker,
      AdversaryKind::kSleeper,        AdversaryKind::kStrangeColluder};

  for (AdversaryKind strategy : strategies) {
    for (const double mult : {0.0, 1.0, 3.0}) {
      const auto dishonest = static_cast<std::size_t>(
          mult * static_cast<double>(tolerance));

      ExperimentConfig config;
      config.n = kN;
      config.budget = kBudget;
      config.diameter = kDiameter;
      config.adversary = strategy;
      config.dishonest = dishonest;
      config.seed = 11;
      config.compute_opt = false;

      config.algorithm = AlgorithmKind::kCalculatePreferences;
      const ExperimentOutcome ours = run_experiment(config);

      config.algorithm = AlgorithmKind::kSampleAndShare;
      const ExperimentOutcome baseline = run_experiment(config);

      std::printf("%-14s %6zu%s %18zu %18zu%s\n",
                  ExperimentConfig::adversary_name(strategy).c_str(), dishonest,
                  dishonest > tolerance ? " (!)" : "    ",
                  ours.error.max_error, baseline.error.max_error,
                  dishonest > tolerance ? "   <- beyond tolerance" : "");
    }
    std::printf("\n");
  }
  std::printf("(!) rows exceed the paper's n/(3B) bound: no guarantee applies.\n");
  return 0;
}
