// Adversary showdown: every *registered* attack strategy, ramped from zero
// to past the paper's n/(3B) tolerance, against both the robust protocol and
// the non-robust Alon-et-al-style baseline. Prints one table row per
// (strategy, fraction) pair.
//
// The strategy list comes from the AdversaryRegistry, so an adversary
// registered anywhere in the process (see quickstart's three_camps workload
// registration, or ROADMAP.md "Scenario API") shows up here automatically.
//
// Build & run:  cmake -B build -S . && cmake --build build -j
//               ./build/sybil_showdown
#include <cstdio>

#include "src/sim/registry.hpp"

using namespace colscore;

int main() {
  constexpr std::size_t kN = 192;
  constexpr std::size_t kBudget = 8;
  constexpr std::size_t kDiameter = 12;
  const std::size_t tolerance = kN / (3 * kBudget);  // the paper's bound

  std::printf("Sybil showdown: n=%zu B=%zu D=%zu, tolerance n/(3B)=%zu\n\n",
              kN, kBudget, kDiameter, tolerance);
  std::printf("%-16s %10s %18s %18s\n", "strategy", "dishonest",
              "ours max-err", "baseline max-err");

  for (const std::string& strategy : AdversaryRegistry::instance().names()) {
    if (strategy == "none" || strategy == "targeted_bias") continue;
    for (const double mult : {0.0, 1.0, 3.0}) {
      const auto dishonest = static_cast<std::size_t>(
          mult * static_cast<double>(tolerance));

      Scenario scenario;
      scenario.n = kN;
      scenario.budget = kBudget;
      scenario.diameter = kDiameter;
      scenario.adversary = strategy;
      scenario.dishonest = dishonest;
      scenario.seed = 11;
      scenario.compute_opt = false;

      scenario.algorithm = "calculate_preferences";
      const ExperimentOutcome ours = run_scenario(scenario);

      scenario.algorithm = "sample_and_share";
      const ExperimentOutcome baseline = run_scenario(scenario);

      std::printf("%-16s %6zu%s %18zu %18zu%s\n", strategy.c_str(), dishonest,
                  dishonest > tolerance ? " (!)" : "    ",
                  ours.error.max_error, baseline.error.max_error,
                  dishonest > tolerance ? "   <- beyond tolerance" : "");
    }
    std::printf("\n");
  }
  std::printf("(!) rows exceed the paper's n/(3B) bound: no guarantee applies.\n");
  return 0;
}
