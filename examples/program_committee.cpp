// The paper's motivating scenario (§1): a program committee evaluates a pile
// of submissions. Nobody can read everything, some members are too busy and
// return random scores, and a small clique colludes to promote its friends'
// papers. The committee runs the full Byzantine-tolerant protocol (§7):
// leader election for shared randomness, cluster discovery, redundant
// probing, and a final per-member RSelect.
//
// Run: ./build/examples/program_committee
#include <cstdio>

#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "src/metrics/optimal.hpp"
#include "src/model/generators.hpp"

using namespace colscore;

int main() {
  constexpr std::size_t kMembers = 192;    // committee size (= #papers)
  constexpr std::size_t kBudget = 8;       // papers a member agrees to read: O(B polylog)
  constexpr std::size_t kTasteCamps = 8;   // research sub-communities
  constexpr std::size_t kCampSpread = 12;  // intra-camp disagreement (Hamming)
  constexpr std::size_t kLazy = 5;         // members who score at random
  constexpr std::size_t kColluders = 3;    // members promoting friends' papers

  std::printf("Program committee: %zu members, %zu submissions\n", kMembers, kMembers);
  std::printf("  taste camps: %zu (spread %zu), lazy: %zu, colluders: %zu\n\n",
              kTasteCamps, kCampSpread, kLazy, kColluders);

  // Hidden ground truth: who would like which paper if they read it.
  World world = planted_clusters(kMembers, kMembers, kTasteCamps, kCampSpread,
                                 Rng(2026));

  Population committee(kMembers);
  Rng corrupt_rng(7);
  // Lazy members: random scores instead of reading.
  committee.corrupt_random(kLazy, corrupt_rng,
                           [] { return std::make_unique<RandomLiar>(); });
  // Colluders: truthful except on their friends' papers (first 10 ids).
  std::unordered_set<ObjectId> friends_papers;
  for (ObjectId o = 0; o < 10; ++o) friends_papers.insert(o);
  std::size_t planted_colluders = 0;
  for (PlayerId p = kMembers; p-- > 0 && planted_colluders < kColluders;) {
    if (committee.is_honest(p)) {
      committee.set_behavior(
          p, std::make_unique<TargetedBias>(friends_papers, true));
      ++planted_colluders;
    }
  }

  ProbeOracle oracle(world.matrix);
  BulletinBoard board;

  RobustParams params;
  params.inner = Params::practical(kBudget);
  params.outer_reps = 3;
  const RobustResult outcome =
      robust_calculate_preferences(oracle, board, committee, params, /*key=*/1);

  const auto honest = committee.honest_players();
  const ErrorStats errors =
      error_stats(world.matrix, outcome.result.outputs, honest);
  const OptEstimate opt = opt_radius(world.matrix, kMembers / kBudget);

  std::printf("Leader elections: %zu/%zu honest leaders\n",
              outcome.honest_leader_reps, params.outer_reps);
  std::printf("Reading load: max %llu paper-probes per member (vs %zu to read all)\n",
              static_cast<unsigned long long>(outcome.result.max_probes), kMembers);
  std::printf("Prediction quality over %zu diligent members:\n", honest.size());
  std::printf("  max  wrong opinions : %zu of %zu papers\n", errors.max_error,
              kMembers);
  std::printf("  mean wrong opinions : %.2f\n", errors.mean_error);
  std::printf("  camp radius (Definition 1 reference): mean %.1f\n",
              opt.mean_radius);

  // Did the colluders manage to bias their friends' papers?
  std::size_t biased_predictions = 0, total_checked = 0;
  for (PlayerId p : honest) {
    for (ObjectId o : friends_papers) {
      ++total_checked;
      if (outcome.result.outputs[p].get(o) && !world.matrix.preference(p, o))
        ++biased_predictions;
    }
  }
  std::printf("Collusion damage: %zu/%zu friend-paper predictions flipped to "
              "positive (%.2f%%)\n",
              biased_predictions, total_checked,
              100.0 * static_cast<double>(biased_predictions) /
                  static_cast<double>(total_checked));
  return 0;
}
