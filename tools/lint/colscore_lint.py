#!/usr/bin/env python3
"""colscore-lint: the repo's invariant-enforcing static-analysis pass.

Enforces the codified invariants from ROADMAP.md ("Static analysis &
concurrency hygiene") as named, suppressible rules over the CMake
compilation database:

    CL001  workspace-group-ownership   RunWorkspace buffer groups
    CL002  deprecated-probe-api        probe_many / own_probe_many are gone
    CL003  serial-probe-loop           batch slates known up front
    CL004  slow-distance-call          hamming_exceeds / diff_positions_into
    CL005  ambient-randomness          seeds via Rng/mix_keys, time via Timer
    CL006  raw-thread                  ThreadPool/parallel_for only
    CL007  unordered-iteration         hash order must not feed output
    CL008  registry-description       add() must document the entry
    CL009  literal-metric-key          keys checkable offline
    CL010  stdio-in-library            log.hpp / ResultSink only
    CL011  raw-kernel-loop             distance loops use dispatched kernels
    CL000  lint hygiene (malformed or stale suppressions; not suppressible)

Suppress a diagnostic on its line (or from a comment-only line above) with:

    // colscore-lint: allow(CL003) adaptive: next coord depends on the answer

Usage:
    colscore_lint.py --compile-db build/compile_commands.json   # whole tree
    colscore_lint.py src/protocols/select.cpp ...               # these files
    colscore_lint.py --check-fixtures tests/lint                # golden test
    colscore_lint.py --list-rules

Exits non-zero iff any unsuppressed diagnostic (or fixture mismatch) exists.

The analysis itself is a deterministic token-level pass, so the golden
expected-diagnostics file is byte-identical on every machine.  The optional
libclang bindings (clang.cindex) are detected and reported by --version for
future AST-backed cross-checks, but no diagnostic depends on them: the CI
image only needs python3.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import re
import sys
from typing import Dict, List, Optional, Set, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from engine import Diagnostic, LintContext, SourceFile  # noqa: E402
from rules import KNOWN_IDS, RULES  # noqa: E402

_FIXTURE_AS_RE = re.compile(r"lint-fixture-as:\s*(\S+)")

_SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")


def detect_clang() -> str:
    try:
        import clang.cindex  # type: ignore  # noqa: F401
        return "available"
    except ImportError:
        return "unavailable (token backend only; diagnostics are identical)"


def repo_root(start: str) -> str:
    d = os.path.abspath(start)
    while d != os.path.dirname(d):
        if os.path.isdir(os.path.join(d, ".git")):
            return d
        d = os.path.dirname(d)
    return os.path.abspath(start)


def files_from_compile_db(db_path: str, root: str) -> List[str]:
    """Translation units from the db, plus every header under their source
    dirs (headers are not compile-db entries but carry invariants too)."""
    with open(db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    rels: Set[str] = set()
    dirs: Set[str] = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
            if not os.path.isabs(entry["file"]) else entry["file"])
        rel = os.path.relpath(path, root)
        if rel.startswith(".."):
            continue  # outside the repo (system sources)
        rels.add(rel)
        dirs.add(rel.split(os.sep, 1)[0])
    for top in sorted(dirs):
        for cur, _subdirs, names in os.walk(os.path.join(root, top)):
            for name in names:
                if name.endswith(_SOURCE_EXTS):
                    rels.add(os.path.relpath(os.path.join(cur, name), root))
    # Fixture files violate rules on purpose; never lint them in tree mode.
    return sorted(r.replace(os.sep, "/") for r in rels
                  if not r.replace(os.sep, "/").startswith("tests/lint/"))


def lint_files(rel_paths: List[str], root: str) -> List[Diagnostic]:
    ctx = LintContext(root)
    diags: List[Diagnostic] = []
    for rel in rel_paths:
        full = os.path.join(root, rel)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"colscore-lint: cannot read {rel}: {e}", file=sys.stderr)
            continue
        sf = SourceFile(full, rel, text, KNOWN_IDS)
        # The alias marker applies in every mode, so linting a fixture file
        # directly agrees with --check-fixtures (tree mode never sees
        # tests/lint/ at all).
        m = _FIXTURE_AS_RE.search(text)
        if m:
            sf.effective_path = m.group(1)
        raw: List[Diagnostic] = []
        for rule in RULES:
            if not rule.applies_to(sf.effective_path):
                continue
            raw.extend(rule.check(sf, ctx))
        # Apply suppressions; remember which were used.
        for d in raw:
            suppressed = False
            for s in sf.allowed_ids(d.line):
                if d.rule_id in s.ids:
                    s.used = True
                    suppressed = True
            if not suppressed:
                diags.append(d)
        for line, msg in sf.malformed:
            diags.append(Diagnostic(sf.path, line, 1, "CL000",
                                    "lint-hygiene", msg))
        for s in sf.suppressions:
            if not s.used:
                diags.append(Diagnostic(
                    sf.path, s.line, 1, "CL000", "lint-hygiene",
                    f"stale suppression: allow({','.join(s.ids)}) matches no "
                    "diagnostic on its line -- delete it"))
    diags.sort(key=lambda d: d.sort_key())
    return diags


def check_fixtures(fixture_dir: str, root: str, update: bool) -> int:
    rel_dir = os.path.relpath(os.path.abspath(fixture_dir), root)
    full_dir = os.path.join(root, rel_dir)
    fixtures = sorted(
        os.path.join(rel_dir, n).replace(os.sep, "/")
        for n in os.listdir(full_dir)
        if n.startswith("fixture_") and n.endswith(_SOURCE_EXTS))
    if not fixtures:
        print(f"colscore-lint: no fixture_* files in {rel_dir}", file=sys.stderr)
        return 2
    diags = lint_files(fixtures, root)
    got = [d.render(with_hint=False) for d in diags]
    expected_path = os.path.join(full_dir, "expected.txt")
    if update:
        with open(expected_path, "w", encoding="utf-8") as f:
            f.write("\n".join(got) + "\n")
        print(f"colscore-lint: wrote {len(got)} expected diagnostics to "
              f"{os.path.relpath(expected_path, root)}")
        return 0
    try:
        with open(expected_path, "r", encoding="utf-8") as f:
            want = [l for l in f.read().splitlines() if l.strip()]
    except OSError:
        print(f"colscore-lint: missing {expected_path} "
              "(run --check-fixtures with --update to create it)",
              file=sys.stderr)
        return 2
    if got == want:
        covered = {l.split(" ", 1)[1].split(" ")[0] for l in got if " " in l}
        print(f"colscore-lint: fixtures OK -- {len(got)} diagnostics, "
              f"{len(covered)} rule ids covered "
              f"({', '.join(sorted(covered))})")
        return 0
    print("colscore-lint: fixture diagnostics drifted from "
          f"{os.path.relpath(expected_path, root)}:")
    for line in difflib.unified_diff(want, got, "expected", "actual",
                                     lineterm=""):
        print(line)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="colscore_lint.py",
        description="invariant-enforcing static analysis for colscore")
    ap.add_argument("files", nargs="*", help="repo-relative files to lint")
    ap.add_argument("--compile-db", metavar="PATH",
                    help="lint every repo source named by this CMake "
                    "compilation database (plus headers in the same trees)")
    ap.add_argument("--check-fixtures", metavar="DIR",
                    help="lint DIR/fixture_* and compare to DIR/expected.txt")
    ap.add_argument("--update", action="store_true",
                    help="with --check-fixtures: rewrite expected.txt")
    ap.add_argument("--root", default=None,
                    help="repo root (default: nearest .git upward from cwd)")
    ap.add_argument("--rules", metavar="IDS",
                    help="comma-separated rule ids to run (default: all)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--no-hints", action="store_true")
    ap.add_argument("--version", action="store_true")
    args = ap.parse_args(argv)

    if args.version:
        print(f"colscore-lint ({len(RULES)} rules); "
              f"libclang bindings: {detect_clang()}")
        return 0
    if args.list_rules:
        for r in RULES:
            scope = ", ".join(r.scope) if r.scope else "everywhere"
            print(f"{r.rule_id}  {r.slug:28s} [{scope}]\n"
                  f"       {r.description}")
        return 0

    root = args.root or repo_root(os.getcwd())

    if args.rules:
        wanted = {x.strip() for x in args.rules.split(",") if x.strip()}
        unknown = wanted - {r.rule_id for r in RULES}
        if unknown:
            print(f"colscore-lint: unknown rule ids: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        RULES[:] = [r for r in RULES if r.rule_id in wanted]

    if args.check_fixtures:
        return check_fixtures(args.check_fixtures, root, args.update)

    if args.compile_db:
        rel_paths = files_from_compile_db(args.compile_db, root)
    elif args.files:
        rel_paths = [os.path.relpath(os.path.abspath(f), root).replace(os.sep, "/")
                     for f in args.files]
    else:
        ap.error("give files, --compile-db, or --check-fixtures")
        return 2

    diags = lint_files(rel_paths, root)
    for d in diags:
        print(d.render(with_hint=not args.no_hints))
    if diags:
        by_rule: Dict[str, int] = {}
        for d in diags:
            by_rule[d.rule_id] = by_rule.get(d.rule_id, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(by_rule.items()))
        print(f"colscore-lint: {len(diags)} diagnostic"
              f"{'s' if len(diags) != 1 else ''} ({summary}) over "
              f"{len(rel_paths)} files")
        return 1
    print(f"colscore-lint: clean over {len(rel_paths)} files "
          f"({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
