"""colscore-lint engine: lexing, suppression parsing, and the rule protocol.

The pass consumes the CMake compilation database for its file set and runs a
set of named rules over a comment/string-stripped view of each translation
unit.  Analysis is token-based and fully deterministic: the diagnostic stream
for a given tree is byte-identical on every machine, which is what lets
tests/lint/expected.txt be a golden file.  When the optional libclang Python
bindings (clang.cindex) are importable the driver reports so in --version
output and may use them for cross-checks, but no diagnostic ever depends on
them -- CI images without libclang produce the same output.

Suppression syntax (line-scoped, reason required):

    some_call();  // colscore-lint: allow(CL003) adaptive: next coord depends
                  //                                     on the last answer

A comment that sits alone on its line covers the next line instead, so long
statements can carry the suppression above them.  Several ids may be listed:
``allow(CL003,CL005)``.  A suppression with an unknown rule id, a missing
reason, or one that never matches a diagnostic is itself a diagnostic
(CL000) -- stale suppressions rot.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    path: str  # repo-relative path the diagnostic is reported at
    line: int  # 1-based
    col: int  # 1-based
    rule_id: str  # "CL003"
    slug: str  # "serial-probe-loop"
    message: str
    hint: str = ""

    def render(self, with_hint: bool = True) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.slug}] {self.message}"
        if with_hint and self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


# ---------------------------------------------------------------------------
# lexer: strip comments and string contents, keep offsets identical
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"colscore-lint:\s*allow\(\s*([A-Za-z0-9_\s,]*?)\s*\)[ \t]*(.*)")


@dataclasses.dataclass
class Suppression:
    line: int  # line the comment starts on
    target_line: int  # line of code the suppression covers
    ids: Tuple[str, ...]
    reason: str
    used: bool = False


def _strip(text: str) -> Tuple[str, List[Tuple[int, str]]]:
    """Returns (clean, comments).

    ``clean`` has the same length and line structure as ``text`` but with
    comments and the *contents* of string/char literals replaced by spaces
    (delimiters are kept, so an empty literal is still ``""``).  ``comments``
    is a list of (start_line, comment_text) pairs.
    """
    out = list(text)
    comments: List[Tuple[int, str]] = []
    i, n = 0, len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
            comments.append((line, text[start:i]))
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start, start_line = i, line
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            comments.append((start_line, text[start:i]))
            for j in range(start, i):
                if text[j] != "\n":
                    out[j] = " "
            continue
        if c == '"' and text[i - 1] == "R" and i + 1 < n and text[i + 1] == '"':
            # Raw string R"delim(...)delim"
            m = re.match(r'R"([^\s()\\]*)\(', text[i - 1:])
            if m:
                close = text.find(")" + m.group(1) + '"', i)
                close = n if close == -1 else close + len(m.group(1)) + 2
                for j in range(i + 1, close - 1):
                    if text[j] == "\n":
                        line += 1
                    else:
                        out[j] = " "
                i = close
                continue
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    out[i + 1] = " "
                    i += 2
                    continue
                if text[i] == "\n":  # unterminated; bail at newline
                    break
                out[i] = " "
                i += 1
            i += 1
            continue
        i += 1
    return "".join(out), comments


_TOKEN_RE = re.compile(r'[A-Za-z_]\w*|"[^"\n]*"|\'[^\'\n]*\'|\d[\w.]*|::|->|.')


@dataclasses.dataclass(frozen=True)
class Token:
    text: str
    line: int
    col: int
    offset: int

    @property
    def is_ident(self) -> bool:
        return bool(re.match(r"[A-Za-z_]", self.text))

    @property
    def is_string(self) -> bool:
        return self.text.startswith('"')


class SourceFile:
    """One linted file: cleaned text, token stream, and suppressions."""

    def __init__(self, real_path: str, rel_path: str, text: str,
                 known_ids: Set[str]):
        self.real_path = real_path
        self.path = rel_path  # diagnostics anchor here (repo-relative)
        self.effective_path = rel_path  # scope checks use this (fixture alias)
        self.raw = text
        self.clean, self._comments = _strip(text)
        self.lines = self.clean.split("\n")
        self.suppressions: List[Suppression] = []
        self.malformed: List[Tuple[int, str]] = []
        self._parse_suppressions(known_ids)
        self._tokens: Optional[List[Token]] = None

    # -- tokens --------------------------------------------------------------

    @property
    def tokens(self) -> List[Token]:
        if self._tokens is None:
            starts = self._line_starts()
            toks: List[Token] = []
            for m in _TOKEN_RE.finditer(self.clean):
                text = m.group(0)
                if text.isspace():
                    continue
                line, col = self._locate(starts, m.start())
                toks.append(Token(text, line, col, m.start()))
            self._tokens = toks
        return self._tokens

    def raw_token(self, tok: Token) -> str:
        """Original source text of ``tok`` (string literals keep their
        contents here; in the cleaned view they are blanked)."""
        return self.raw[tok.offset:tok.offset + len(tok.text)]

    def _line_starts(self) -> List[int]:
        starts = [0]
        for i, c in enumerate(self.clean):
            if c == "\n":
                starts.append(i + 1)
        return starts

    @staticmethod
    def _locate(starts: List[int], offset: int) -> Tuple[int, int]:
        import bisect
        idx = bisect.bisect_right(starts, offset) - 1
        return idx + 1, offset - starts[idx] + 1

    def line_col(self, offset: int) -> Tuple[int, int]:
        return self._locate(self._line_starts(), offset)

    def match_forward(self, offset: int, open_ch: str, close_ch: str) -> int:
        """Offset just past the bracket matching ``open_ch`` at ``offset``."""
        depth = 0
        i = offset
        n = len(self.clean)
        while i < n:
            c = self.clean[i]
            if c == open_ch:
                depth += 1
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n

    # -- suppressions --------------------------------------------------------

    def _parse_suppressions(self, known_ids: Set[str]) -> None:
        for start_line, comment in self._comments:
            if "colscore-lint" not in comment:
                continue
            m = _SUPPRESS_RE.search(comment)
            if not m:
                self.malformed.append(
                    (start_line, "colscore-lint comment is not of the form "
                     "'colscore-lint: allow(CLxxx) reason'"))
                continue
            ids = tuple(x.strip() for x in m.group(1).split(",") if x.strip())
            reason = m.group(2).strip().rstrip("*/").strip()
            bad = [i for i in ids if i not in known_ids]
            if not ids or bad:
                self.malformed.append(
                    (start_line,
                     f"unknown rule id{'s' if len(bad) > 1 else ''} "
                     f"{', '.join(bad) if bad else '(none given)'} in allow()"))
                continue
            if "CL000" in ids:
                self.malformed.append(
                    (start_line, "CL000 (lint hygiene) cannot be suppressed"))
                continue
            if len(reason) < 3:
                self.malformed.append(
                    (start_line,
                     f"allow({','.join(ids)}) carries no reason -- every "
                     "suppression must say why the rule does not apply"))
                continue
            self.suppressions.append(
                Suppression(start_line, self._target_line(start_line), ids,
                            reason))

    def _target_line(self, start_line: int) -> int:
        """The code line a suppression comment covers: its own line if it
        shares it with code, else the next line that has any code (chained
        comment-only and blank lines -- blank in the stripped view -- are
        skipped, so a suppression can sit atop an explanatory comment)."""
        if start_line <= len(self.lines) and self.lines[start_line - 1].strip():
            return start_line
        for line in range(start_line + 1, min(start_line + 25,
                                              len(self.lines) + 1)):
            if self.lines[line - 1].strip():
                return line
        return start_line

    def allowed_ids(self, line: int) -> List[Suppression]:
        """Suppressions covering ``line``."""
        return [s for s in self.suppressions if s.target_line == line]


# ---------------------------------------------------------------------------
# rule protocol
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Rule:
    rule_id: str
    slug: str
    description: str
    hint: str
    check: Callable[[SourceFile, "LintContext"], Iterable[Diagnostic]]
    # Path prefixes (repo-relative, '/'-separated) the rule applies to; empty
    # means everywhere the driver scans.
    scope: Tuple[str, ...] = ()
    # Exact repo-relative paths exempt from the rule (the owning/defining
    # files of the construct the rule polices).
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if path in self.exclude:
            return False
        if not self.scope:
            return True
        return any(path.startswith(p) for p in self.scope)


class LintContext:
    """Shared, read-only facts rules may need (repo root, sibling files)."""

    def __init__(self, root: str):
        self.root = root
        self._file_cache: Dict[str, Optional[str]] = {}

    def read_repo_file(self, rel_path: str) -> Optional[str]:
        if rel_path not in self._file_cache:
            full = os.path.join(self.root, rel_path)
            try:
                with open(full, "r", encoding="utf-8", errors="replace") as f:
                    self._file_cache[rel_path] = f.read()
            except OSError:
                self._file_cache[rel_path] = None
        return self._file_cache[rel_path]


def make_diag(rule: Rule, sf: SourceFile, line: int, col: int,
              message: str) -> Diagnostic:
    return Diagnostic(sf.path, line, col, rule.rule_id, rule.slug, message,
                      rule.hint)
