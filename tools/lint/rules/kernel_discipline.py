"""CL011: no hand-written XOR+popcount distance loops outside the kernels.

PR 7 put the hot distance kernels behind a runtime SIMD dispatcher
(src/common/simd.hpp); bitkernel::popcount / hamming / hamming_exceeds /
xor_into / extract_bits pick the best CPU tier automatically.  A hand-rolled
``for (...) total += std::popcount(a[i] ^ b[i])`` loop silently opts out of
that — it runs scalar forever and drifts from the single padding-mask source
of truth.  This rule flags word-level popcount calls (std::popcount or the
__builtin forms, i.e. the raw-``uint64_t*`` shape — container methods like
``row.popcount()`` are the sanctioned API and stay exempt) inside any loop
body that also XORs, anywhere outside the kernel-owning files.
"""

from __future__ import annotations

from typing import List

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag

from .probe_discipline import _loop_body_ranges

_POPCOUNT_IDENTS = {
    "popcount",  # std::popcount on raw words
    "__builtin_popcount", "__builtin_popcountl", "__builtin_popcountll",
}


def _check(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    toks = sf.tokens
    if not any(t.text in _POPCOUNT_IDENTS for t in toks):
        return []
    ranges = _loop_body_ranges(sf)
    if not ranges:
        return []
    xor_offsets = [t.offset for t in toks if t.text == "^"]
    out: List[Diagnostic] = []
    for i, tok in enumerate(toks):
        if tok.text not in _POPCOUNT_IDENTS or not tok.is_ident:
            continue
        # Member spellings (row.popcount()) are the sanctioned container API;
        # only the word-level forms (std::popcount / __builtin_*) count.
        if i > 0 and toks[i - 1].text in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        body = next(((lo, hi) for lo, hi in ranges if lo <= tok.offset < hi),
                    None)
        if body is None:
            continue
        if not any(body[0] <= x < body[1] for x in xor_offsets):
            continue
        out.append(make_diag(
            RULE, sf, tok.line, tok.col,
            "hand-written XOR+popcount loop; hot distance code must go "
            "through the dispatched kernels (bitkernel::hamming / "
            "hamming_exceeds / xor_into) so it picks up the SIMD tier"))
    return out


RULE = Rule(
    rule_id="CL011",
    slug="raw-kernel-loop",
    description="Loops combining raw-word popcount with XOR outside "
                "simd/bitkernels must use the dispatched bitkernel entry "
                "points instead.",
    hint="call bitkernel::hamming / hamming_exceeds (or add a kernel to "
         "simd.cpp) instead of open-coding the loop",
    check=_check,
    scope=("src/",),
    exclude=(
        "src/common/bitkernels.hpp",
        "src/common/simd.hpp",
        "src/common/simd.cpp",
    ),
)

RULES = [RULE]
