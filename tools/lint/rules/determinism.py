"""CL005/CL006/CL007: schedule-independent determinism hygiene.

The fixed-seed goldens (test_determinism_csv, test_sinks) are byte-identical
under any thread count because (a) all randomness flows from seeds through
the repo's Rng/mix_keys, (b) all parallelism goes through ThreadPool with
per-index keys, and (c) nothing emits in the iteration order of an unordered
container.  These rules ban the constructs that break each leg.
"""

from __future__ import annotations

import os
import re
from typing import List, Set

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag

# -- CL005: ambient randomness / wall-clock reads -----------------------------

# Bare identifiers that are banned outright (library entropy/clock sources
# and the stdlib distributions, whose output is implementation-defined --
# cross-platform nondeterminism even from a fixed seed).
_BANNED_IDENTS = {
    "random_device", "gettimeofday", "clock_gettime", "timespec_get",
    "mt19937", "mt19937_64", "default_random_engine", "minstd_rand",
    "uniform_int_distribution", "uniform_real_distribution",
    "normal_distribution", "bernoulli_distribution", "poisson_distribution",
    "shuffle", "random_shuffle",
}
# Banned only as calls (too common as variable names to ban bare).
_BANNED_CALLS = {"rand", "srand", "drand48", "lrand48", "time"}

_CLOCK_QUALIFIERS = re.compile(r"clock$")


def _check_randomness(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not tok.is_ident:
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prv = toks[i - 1].text if i > 0 else ""
        if tok.text in _BANNED_IDENTS:
            what = "entropy/clock source" \
                if tok.text in ("random_device", "gettimeofday",
                                "clock_gettime", "timespec_get") \
                else "implementation-defined stdlib RNG facility"
            out.append(make_diag(
                RULE_RANDOMNESS, sf, tok.line, tok.col,
                f"'{tok.text}' is a banned {what}; all randomness must "
                "derive from scenario seeds via Rng/mix_keys"))
        elif tok.text in _BANNED_CALLS and nxt == "(" and prv not in (".", "->"):
            out.append(make_diag(
                RULE_RANDOMNESS, sf, tok.line, tok.col,
                f"'{tok.text}()' is ambient (seed- and schedule-dependent) "
                "state; use Rng/mix_keys for randomness and Timer for time"))
        elif tok.text == "now" and prv == "::" and i >= 2 \
                and toks[i - 2].is_ident \
                and _CLOCK_QUALIFIERS.search(toks[i - 2].text):
            out.append(make_diag(
                RULE_RANDOMNESS, sf, tok.line, tok.col,
                f"raw '{toks[i - 2].text}::now()' outside timer.hpp; wall "
                "time must go through Timer so the wall column stays the "
                "only schedule-dependent output"))
    return out


RULE_RANDOMNESS = Rule(
    rule_id="CL005",
    slug="ambient-randomness",
    description="No entropy sources, stdlib RNG facilities, or raw clock "
                "reads outside src/common/timer.hpp -- randomness flows "
                "from seeds (Rng/mix_keys), wall time through Timer.",
    hint="Rng(mix_keys(seed, ...)) for randomness; colscore::Timer for "
         "wall time (its value only ever lands in the opt-in wall column)",
    check=_check_randomness,
    scope=("src/", "tools/"),
    exclude=("src/common/timer.hpp",),
)

# -- CL006: raw threads -------------------------------------------------------


def _check_threads(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not tok.is_ident:
            continue
        if tok.text in ("thread", "jthread", "async") and i >= 2 \
                and toks[i - 1].text == "::" and toks[i - 2].text == "std":
            out.append(make_diag(
                RULE_THREADS, sf, tok.line, tok.col,
                f"raw std::{tok.text} outside thread_pool; parallelism must "
                "go through ThreadPool/parallel_for so per-index work stays "
                "schedule-independent and workspaces stay per-worker"))
        elif tok.text == "pthread_create":
            out.append(make_diag(
                RULE_THREADS, sf, tok.line, tok.col,
                "pthread_create outside thread_pool; use "
                "ThreadPool/parallel_for"))
    return out


RULE_THREADS = Rule(
    rule_id="CL006",
    slug="raw-thread",
    description="std::thread/std::async/pthread_create only inside "
                "src/common/thread_pool.{hpp,cpp}; everything else uses "
                "ThreadPool/parallel_for.",
    hint="parallel_for derives per-index RNG streams from stable keys; a "
         "raw thread has no workspace and no seed discipline",
    check=_check_threads,
    scope=("src/", "tools/"),
    exclude=("src/common/thread_pool.hpp", "src/common/thread_pool.cpp"),
)

# -- CL007: iteration over unordered containers -------------------------------

_UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset")


def _unordered_names(sf: SourceFile, ctx: LintContext) -> Set[str]:
    """Names declared with an unordered container type, in this file and its
    sibling header (members declared in foo.hpp, iterated in foo.cpp)."""
    texts = [sf.clean]
    if sf.effective_path.endswith(".cpp"):
        sibling = sf.effective_path[:-4] + ".hpp"
        raw = ctx.read_repo_file(sibling)
        if raw is not None:
            texts.append(re.sub(r"//[^\n]*", "", raw))
    names: Set[str] = set()
    for text in texts:
        for m in re.finditer(r"\bunordered_(?:multi)?(?:map|set)\s*<", text):
            i, depth = m.end() - 1, 0
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            tail = text[i + 1:i + 120]
            dm = re.match(r"[\s&*]*([A-Za-z_]\w*)\s*[;={(,)]", tail)
            if dm:
                names.add(dm.group(1))
    return names


def _check_unordered_iteration(sf: SourceFile,
                               ctx: LintContext) -> List[Diagnostic]:
    names = _unordered_names(sf, ctx)
    if not names:
        return []
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        # Range-for whose sequence expression ends in an unordered name.
        if tok.text == "for" and i + 1 < len(toks) and toks[i + 1].text == "(":
            close_off = sf.match_forward(toks[i + 1].offset, "(", ")")
            inner = [t for t in toks
                     if toks[i + 1].offset < t.offset < close_off - 1]
            depth, colon = 0, None
            for t in inner:
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                elif t.text == ":" and depth == 0:
                    colon = t
                    break
            if colon is None:
                continue
            seq = [t for t in inner if t.offset > colon.offset and t.is_ident]
            if seq and seq[-1].text in names:
                out.append(make_diag(
                    RULE_UNORDERED, sf, tok.line, tok.col,
                    f"iteration order over unordered container "
                    f"'{seq[-1].text}' is nondeterministic; anything that "
                    "feeds output or protocol decisions must use a sorted "
                    "or insertion-ordered structure"))
        # Explicit iterator walks: name.begin() / name.cbegin().
        elif tok.is_ident and tok.text in ("begin", "cbegin") \
                and i >= 2 and toks[i - 1].text in (".", "->") \
                and toks[i - 2].text in names \
                and i + 1 < len(toks) and toks[i + 1].text == "(":
            out.append(make_diag(
                RULE_UNORDERED, sf, tok.line, tok.col,
                f"iterator walk over unordered container "
                f"'{toks[i - 2].text}' is nondeterministic; sort or "
                "restructure before it feeds output"))
    return out


RULE_UNORDERED = Rule(
    rule_id="CL007",
    slug="unordered-iteration",
    description="No iteration over unordered containers in library code -- "
                "hash order is ABI-dependent and would leak into sink/CSV "
                "output or protocol decisions.",
    hint="keep a parallel insertion-order vector (the bulletin board's "
         "bucket pattern) or sort before emitting",
    check=_check_unordered_iteration,
    scope=("src/",),
)

RULES = [RULE_RANDOMNESS, RULE_THREADS, RULE_UNORDERED]
