"""CL008/CL009: registry registration hygiene.

Registration is the whole integration surface for new scenarios, so the
linter polices the two properties the runtime cannot check cheaply: every
entry ships a non-empty one-line description (it IS the --list-* docs), and
metric/param keys are string literals, so shadowing against the built-in
columns can be cross-checked offline without executing registration code.
"""

from __future__ import annotations

from typing import List

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag

# -- CL008: add()/replace() must carry a description --------------------------


def _check_add_description(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not (tok.is_ident and tok.text in ("add", "replace")):
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        # add("name", { <description>, ... }) -- only braced entry literals
        # are checkable lexically; entries passed as variables are validated
        # at runtime by Registry::validate_entry.
        if i + 2 >= len(toks) or not toks[i + 2].is_string:
            continue
        name = sf.raw_token(toks[i + 2])
        if i + 4 >= len(toks) or toks[i + 3].text != "," \
                or toks[i + 4].text != "{":
            continue
        first = toks[i + 5] if i + 5 < len(toks) else None
        if first is not None and first.text == '""':
            out.append(make_diag(
                RULE_DESCRIPTION, sf, first.line, first.col,
                f"registry entry {name} is registered with an empty "
                "description; the description is the --list-* documentation"))
        elif first is not None and first.text == "}":
            out.append(make_diag(
                RULE_DESCRIPTION, sf, first.line, first.col,
                f"registry entry {name} is registered with no description"))
    return out


RULE_DESCRIPTION = Rule(
    rule_id="CL008",
    slug="registry-description",
    description="Registry add()/replace() calls must pass a non-empty "
                "one-line description (it is the --list-* output).",
    hint="one line, lowercase, what the entry simulates -- e.g. "
         "\"ring of overlapping taste groups\"",
    check=_check_add_description,
)

# -- CL009: metric/param keys are string literals -----------------------------

# Emitter methods (receiver must literally be an emitter object) and the
# typed Scenario::extra_* getters.
_EMITTER_METHODS = {"u64", "size", "f64", "boolean", "string"}
_EMITTER_RECEIVERS = {"emit", "emitter"}
_EXTRA_GETTERS = {"extra_size", "extra_u64", "extra_double", "extra_bool",
                  "extra_string"}
# RunRecord's keyed setters (any receiver, but a receiver is required --
# a free function or local lambda with the same name is not a record write).
_RECORD_SETTERS = {"set_u64", "set_size", "set_f64", "set_bool",
                   "set_string"}


def _check_literal_keys(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not tok.is_ident or i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        is_emit = tok.text in _EMITTER_METHODS and i >= 2 \
            and toks[i - 2].text in _EMITTER_RECEIVERS
        is_extra = tok.text in _EXTRA_GETTERS
        is_setter = tok.text in _RECORD_SETTERS
        if not (is_emit or is_extra or is_setter):
            continue
        first = toks[i + 2] if i + 2 < len(toks) else None
        if first is None or first.text == ")":
            continue  # zero-arg call; not a keyed access
        if not first.is_string:
            out.append(make_diag(
                RULE_LITERAL_KEYS, sf, first.line, first.col,
                f"key passed to {tok.text}() must be a string literal so "
                "declared metric/param keys can be cross-checked offline"))
    return out


RULE_LITERAL_KEYS = Rule(
    rule_id="CL009",
    slug="literal-metric-key",
    description="Keys passed to MetricEmitter methods, Scenario::extra_* "
                "getters, and RunRecord::set_* setters must be string "
                "literals (offline shadowing cross-checks need the key "
                "text).",
    hint="spell the key inline; if several call sites share it, a "
         "constexpr const char* kKey = \"...\" still defeats the offline "
         "check -- duplicate the literal",
    check=_check_literal_keys,
)

RULES = [RULE_DESCRIPTION, RULE_LITERAL_KEYS]
