"""CL010: no direct stdio in library code.

Library code (src/) reports through src/common/log.hpp or streams rows
through a ResultSink; a stray std::cout in a protocol corrupts CSV piped to
stdout and is invisible to the sinks.  The CLI and tests print freely.
"""

from __future__ import annotations

from typing import List

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag

_STREAMS = {"cout", "cerr", "clog"}
_CALLS = {"printf", "fprintf", "puts", "fputs", "putchar", "vprintf"}


def _check(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not tok.is_ident:
            continue
        if tok.text in _STREAMS and i >= 2 and toks[i - 1].text == "::" \
                and toks[i - 2].text == "std":
            out.append(make_diag(
                RULE, sf, tok.line, tok.col,
                f"std::{tok.text} in library code; report through "
                "log_warn()/log.hpp or stream rows through a ResultSink"))
        elif tok.text in _CALLS and i + 1 < len(toks) \
                and toks[i + 1].text == "(" \
                and (i == 0 or toks[i - 1].text not in (".", "->")):
            out.append(make_diag(
                RULE, sf, tok.line, tok.col,
                f"{tok.text}() in library code; report through "
                "log_warn()/log.hpp or stream rows through a ResultSink"))
    return out


RULE = Rule(
    rule_id="CL010",
    slug="stdio-in-library",
    description="src/ must not write to stdout/stderr directly -- logging "
                "goes through log.hpp, result rows through ResultSink.",
    hint="log_warn()/log_info() for diagnostics; the stdout CSV path lives "
         "in src/sim/sink.cpp on purpose",
    check=_check,
    scope=("src/",),
    exclude=("src/common/log.hpp", "src/common/log.cpp",
             "src/common/assert.hpp", "src/sim/sink.cpp"),
)

RULES = [RULE]
