"""CL002/CL003/CL004: probe-pipeline API discipline.

The probe pipeline (ROADMAP "Probe pipeline + run workspaces") has exactly
three sanctioned read shapes: probe_row for contiguous ranges, probe_gather /
own_probe_bits for slates known up front, and single probe()/own_probe()
only inside genuinely adaptive loops.  These rules keep the next perf PR
from quietly reintroducing the serial forms the pipeline replaced.
"""

from __future__ import annotations

from typing import List, Tuple

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag

# -- CL002: the deprecated uint8-out batch forms are gone ---------------------

_DEPRECATED = {
    "probe_many": "ProbeOracle::probe_row / ProbeOracle::probe_gather",
    "own_probe_many": "ProtocolEnv::own_probe_row / ProtocolEnv::own_probe_bits",
}


def _check_deprecated(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for tok in sf.tokens:
        if tok.is_ident and tok.text in _DEPRECATED:
            out.append(make_diag(
                RULE_DEPRECATED, sf, tok.line, tok.col,
                f"'{tok.text}' was removed (deprecated in PR 5); use "
                f"{_DEPRECATED[tok.text]}"))
    return out


RULE_DEPRECATED = Rule(
    rule_id="CL002",
    slug="deprecated-probe-api",
    description="The removed uint8-out batch probes (probe_many / "
                "own_probe_many) must not reappear.",
    hint="the BitRow forms carry identical charge semantics without the "
         "per-bit unpack: probe_row / probe_gather / own_probe_bits",
    check=_check_deprecated,
)

# -- CL003: no serial probe loops ---------------------------------------------


def _loop_body_ranges(sf: SourceFile) -> List[Tuple[int, int]]:
    """(start, end) clean-text offsets of every for/while loop body."""
    ranges: List[Tuple[int, int]] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if tok.text not in ("for", "while"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        header_end = sf.match_forward(toks[i + 1].offset, "(", ")")
        # Body: a braced block, or a single statement up to the next ';'.
        j = header_end
        clean = sf.clean
        while j < len(clean) and clean[j].isspace():
            j += 1
        if j < len(clean) and clean[j] == "{":
            ranges.append((j, sf.match_forward(j, "{", "}")))
        else:
            end = clean.find(";", j)
            ranges.append((j, len(clean) if end == -1 else end + 1))
    return ranges


def _probe_calls(sf: SourceFile) -> List[Tuple[int, int, int, str]]:
    """(offset, line, col, name) of .probe( / ->probe( / own_probe( calls."""
    calls = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not tok.is_ident:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        if tok.text == "own_probe":
            calls.append((tok.offset, tok.line, tok.col, tok.text))
        elif tok.text == "probe" and i > 0 and toks[i - 1].text in (".", "->"):
            calls.append((tok.offset, tok.line, tok.col, tok.text))
    return calls


def _check_serial_loop(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    calls = _probe_calls(sf)
    if not calls:
        return []
    ranges = _loop_body_ranges(sf)
    out: List[Diagnostic] = []
    for offset, line, col, name in calls:
        if any(lo <= offset < hi for lo, hi in ranges):
            out.append(make_diag(
                RULE_SERIAL_LOOP, sf, line, col,
                f"serial {name}() call inside a loop; a slate known up front "
                "must be charged as one batch (probe_row / probe_gather / "
                "own_probe_bits)"))
    return out


RULE_SERIAL_LOOP = Rule(
    rule_id="CL003",
    slug="serial-probe-loop",
    description="Loops may not issue single probe()/own_probe() calls unless "
                "genuinely adaptive (each coordinate depends on the previous "
                "answer) -- then suppress with the reason.",
    hint="batch the slate; if the loop is adaptive, add "
         "'// colscore-lint: allow(CL003) adaptive: <why>'",
    check=_check_serial_loop,
    scope=("src/",),
)

# -- CL004: early-exit/scratch forms, not the allocating ones -----------------

_BULK = ("hamming_exceeds", "diff_positions_into")
_SLOW = ("hamming", "diff_positions")


def _check_slow_distance(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    has_bulk = any(t.is_ident and t.text in _BULK for t in sf.tokens)
    if not has_bulk:
        return []
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not (tok.is_ident and tok.text in _SLOW):
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        alt = "hamming_exceeds(other, tau)" if tok.text == "hamming" \
            else "diff_positions_into(other, out)"
        out.append(make_diag(
            RULE_SLOW_DISTANCE, sf, tok.line, tok.col,
            f"'{tok.text}()' in a file that already uses the hot forms; "
            f"use {alt} here too (early exit / caller scratch)"))
    return out


RULE_SLOW_DISTANCE = Rule(
    rule_id="CL004",
    slug="slow-distance-call",
    description="Files on the hot path (they call hamming_exceeds / "
                "diff_positions_into) must not also use the full-scan or "
                "allocating distance forms.",
    hint="hamming_exceeds early-exits at the threshold; "
         "diff_positions_into reuses caller scratch",
    check=_check_slow_distance,
    scope=("src/",),
    exclude=(
        "src/common/bitvector.hpp", "src/common/bitvector.cpp",
        "src/common/bitkernels.hpp", "src/common/bitmatrix.hpp",
        "src/common/bitmatrix.cpp",
    ),
)

RULES = [RULE_DEPRECATED, RULE_SERIAL_LOOP, RULE_SLOW_DISTANCE]
