"""Rule registry for colscore-lint.

Each module contributes one thematic family; RULES is the flat, id-sorted
list the driver runs.  Rule ids are stable and documented in ROADMAP.md
("Static analysis & concurrency hygiene"); never renumber an id, retire it.
"""

from . import workspace_ownership
from . import probe_discipline
from . import determinism
from . import registry_hygiene
from . import logging_discipline
from . import kernel_discipline
from . import execution_discipline

RULES = sorted(
    workspace_ownership.RULES
    + probe_discipline.RULES
    + determinism.RULES
    + registry_hygiene.RULES
    + logging_discipline.RULES
    + kernel_discipline.RULES
    + execution_discipline.RULES,
    key=lambda r: r.rule_id,
)

KNOWN_IDS = {r.rule_id for r in RULES} | {"CL000"}
