"""CL012: no ambient execution state in library code.

PR 9 threaded an explicit ExecPolicy through every parallel loop: a policy
names where a loop runs (serial, or a specific pool) and owns the workspace
arena its workers bind, which is what lets two SuiteRunners on disjoint
pools execute concurrently and still emit byte-identical rows.  The ambient
spellings -- ThreadPool::global(), the free parallel_for shim,
RunWorkspace::current() -- reach that state through process globals instead,
silently re-coupling concurrent suites and bypassing policy-owned scratch.
Library code must take an ExecPolicy (usually via ProtocolEnv) and use
policy.par_for / policy.workspace(); the ambient forms survive only in the
files that define them and in the CLI entry point, which sizes the process
default exactly once.
"""

from __future__ import annotations

from typing import List

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag


def _check_ambient_execution(sf: SourceFile,
                             ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    toks = sf.tokens
    for i, tok in enumerate(toks):
        if not tok.is_ident:
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prv = toks[i - 1].text if i > 0 else ""
        qual = toks[i - 2].text if i >= 2 and prv == "::" else ""
        if tok.text == "global" and qual == "ThreadPool" and nxt == "(":
            out.append(make_diag(
                RULE_AMBIENT_EXECUTION, sf, tok.line, tok.col,
                "ThreadPool::global() in library code; take an ExecPolicy "
                "(ExecPolicy::pool(...) / ExecPolicy::process_default() at "
                "the entry point) so callers control where loops run"))
        elif tok.text == "parallel_for" and nxt == "(" \
                and prv not in (".", "->", "::"):
            out.append(make_diag(
                RULE_AMBIENT_EXECUTION, sf, tok.line, tok.col,
                "free parallel_for() runs on the ambient process pool; use "
                "policy.par_for(...) (or env.par_for inside protocols) so "
                "the loop stays on its suite's policy"))
        elif tok.text == "current" and qual == "RunWorkspace" and nxt == "(":
            out.append(make_diag(
                RULE_AMBIENT_EXECUTION, sf, tok.line, tok.col,
                "RunWorkspace::current() bypasses the policy-owned arena; "
                "use policy.workspace() (or env.workspace()) so concurrent "
                "suites never alias scratch buffers"))
    return out


RULE_AMBIENT_EXECUTION = Rule(
    rule_id="CL012",
    slug="ambient-execution",
    description="No ThreadPool::global(), free parallel_for(), or "
                "RunWorkspace::current() in library code -- execution and "
                "scratch flow through an explicit ExecPolicy "
                "(policy.par_for / policy.workspace), keeping concurrent "
                "suites on disjoint pools fully independent.",
    hint="thread a 'const ExecPolicy&' parameter (default "
         "ExecPolicy::process_default()) down to the loop, or use the "
         "ProtocolEnv's policy via env.par_for / env.workspace()",
    check=_check_ambient_execution,
    scope=("src/",),
    exclude=("src/common/exec_policy.hpp", "src/common/exec_policy.cpp",
             "src/common/thread_pool.hpp", "src/common/thread_pool.cpp",
             "src/common/workspace.cpp"),
)

RULES = [RULE_AMBIENT_EXECUTION]
