"""CL001: RunWorkspace buffer-group ownership.

The per-thread RunWorkspace (src/common/workspace.hpp) groups its scratch
buffers by owner prefix (sel_, pf_, zr_, ze_, vt_, sr_, cp_, probe_*).  The
contract -- nested frames on one thread are live simultaneously, so a
function may only touch its own group -- exists in ROADMAP prose; this rule
makes it executable.  The member list is parsed out of workspace.hpp itself,
so adding a buffer automatically extends enforcement, and the prefix->owner
map below is the single place the ownership table lives.
"""

from __future__ import annotations

import re
from typing import List

from engine import Diagnostic, LintContext, Rule, SourceFile, make_diag

WORKSPACE_HEADER = "src/common/workspace.hpp"

# Which translation units own each buffer group.  A group may list several
# files (a .cpp and the header that inlines part of the family).
GROUP_OWNERS = {
    "probe": ("src/board/probe_oracle.cpp", "src/board/probe_oracle.hpp"),
    "sel": ("src/protocols/select.cpp",),
    "pf": ("src/protocols/select.cpp",),
    "zr": ("src/protocols/zero_radius.cpp",),
    "ze": ("src/protocols/zero_radius.cpp",),
    "vt": ("src/protocols/work_share.cpp",),
    "sr": ("src/protocols/small_radius.cpp",),
    "nb": ("src/protocols/neighbor_csr.cpp",),
    "cp": ("src/core/calculate_preferences.cpp",),
}

# The workspace's own files may of course name every member.
ALWAYS_ALLOWED = ("src/common/workspace.hpp", "src/common/workspace.cpp")

_MEMBER_RE = re.compile(
    r"^\s*(?:std::|Bit)[\w:<>,\s*&]*?[>\s&*]\s*([A-Za-z_]\w*)\s*;", re.M)

_members_cache = None


def workspace_members(ctx: LintContext):
    """name -> group prefix, parsed from workspace.hpp member declarations."""
    global _members_cache
    if _members_cache is not None:
        return _members_cache
    text = ctx.read_repo_file(WORKSPACE_HEADER)
    members = {}
    if text is not None:
        # Strip comments so commented-out members do not register.
        text = re.sub(r"//[^\n]*", "", text)
        for m in _MEMBER_RE.finditer(text):
            name = m.group(1)
            prefix = name.split("_", 1)[0]
            if prefix in GROUP_OWNERS:
                members[name] = prefix
    _members_cache = members
    return members


def _check(sf: SourceFile, ctx: LintContext) -> List[Diagnostic]:
    if sf.effective_path in ALWAYS_ALLOWED:
        return []
    members = workspace_members(ctx)
    if not members:
        return []
    out: List[Diagnostic] = []
    for tok in sf.tokens:
        if not tok.is_ident:
            continue
        group = members.get(tok.text)
        if group is None:
            continue
        owners = GROUP_OWNERS[group]
        if sf.effective_path in owners:
            continue
        out.append(make_diag(
            RULE, sf, tok.line, tok.col,
            f"workspace buffer '{tok.text}' belongs to the {group}_ group "
            f"owned by {owners[0]}; nested frames share the thread's "
            "workspace, so foreign-group access aliases live state"))
    return out


RULE = Rule(
    rule_id="CL001",
    slug="workspace-group-ownership",
    description="RunWorkspace buffer groups may only be touched by their "
                "owning translation unit (see src/common/workspace.hpp).",
    hint="add a buffer to this function family's own group in "
         "src/common/workspace.hpp instead of borrowing another group's",
    check=_check,
    scope=("src/", "tools/"),
)

RULES = [RULE]
