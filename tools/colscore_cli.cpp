// colscore_cli — run any experiment configuration from the command line.
//
// Examples:
//   colscore_cli --n 512 --budget 8 --diameter 16
//   colscore_cli --workload chained --algorithm sample_and_share
//   colscore_cli --adversary hijacker --dishonest 10 --algorithm robust
//   colscore_cli --sweep diameter --values 4,8,16,32 --csv
//
// With --csv the tool prints one machine-readable row per run; otherwise a
// human-readable report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/experiment.hpp"

namespace colscore {
namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --n N               players == objects (default 256)\n"
      "  --budget B          reference probe budget (default 8)\n"
      "  --diameter D        planted cluster diameter / chain step (default 16)\n"
      "  --clusters K        planted cluster count (default: budget)\n"
      "  --seed S            RNG seed (default 1)\n"
      "  --workload W        planted|identical|lower_bound|chained|uniform|two_blocks\n"
      "  --algorithm A       calc|robust|probe_all|random_guess|oracle|baseline\n"
      "  --adversary X       none|random_liar|inverter|constant_one|targeted_bias|\n"
      "                      hijacker|sleeper|strange_colluder\n"
      "  --dishonest M       number of dishonest players (default 0)\n"
      "  --reps R            robust outer repetitions (default 3)\n"
      "  --paper-params      use the paper's literal constants\n"
      "  --no-opt            skip the O(n^2) empirical OPT computation\n"
      "  --sweep FIELD       sweep one field: n|budget|diameter|dishonest\n"
      "  --values a,b,c      sweep values\n"
      "  --csv               machine-readable output\n",
      argv0);
  std::exit(2);
}

std::optional<WorkloadKind> parse_workload(const std::string& w) {
  if (w == "planted") return WorkloadKind::kPlantedClusters;
  if (w == "identical") return WorkloadKind::kIdenticalClusters;
  if (w == "lower_bound") return WorkloadKind::kLowerBound;
  if (w == "chained") return WorkloadKind::kChained;
  if (w == "uniform") return WorkloadKind::kUniformRandom;
  if (w == "two_blocks") return WorkloadKind::kTwoBlocks;
  return std::nullopt;
}

std::optional<AlgorithmKind> parse_algorithm(const std::string& a) {
  if (a == "calc") return AlgorithmKind::kCalculatePreferences;
  if (a == "robust") return AlgorithmKind::kRobust;
  if (a == "probe_all") return AlgorithmKind::kProbeAll;
  if (a == "random_guess") return AlgorithmKind::kRandomGuess;
  if (a == "oracle") return AlgorithmKind::kOracleClusters;
  if (a == "baseline") return AlgorithmKind::kSampleAndShare;
  return std::nullopt;
}

std::optional<AdversaryKind> parse_adversary(const std::string& a) {
  if (a == "none") return AdversaryKind::kNone;
  if (a == "random_liar") return AdversaryKind::kRandomLiar;
  if (a == "inverter") return AdversaryKind::kInverter;
  if (a == "constant_one") return AdversaryKind::kConstantOne;
  if (a == "targeted_bias") return AdversaryKind::kTargetedBias;
  if (a == "hijacker") return AdversaryKind::kHijacker;
  if (a == "sleeper") return AdversaryKind::kSleeper;
  if (a == "strange_colluder") return AdversaryKind::kStrangeColluder;
  return std::nullopt;
}

std::vector<std::size_t> parse_values(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoull(item));
  return out;
}

void apply_sweep_value(ExperimentConfig& config, const std::string& field,
                       std::size_t value) {
  if (field == "n")
    config.n = value;
  else if (field == "budget")
    config.budget = value;
  else if (field == "diameter")
    config.diameter = value;
  else if (field == "dishonest")
    config.dishonest = value;
}

int run(int argc, char** argv) {
  ExperimentConfig config;
  bool csv = false;
  bool paper_params = false;
  std::string sweep_field;
  std::vector<std::size_t> sweep_values;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--n") config.n = std::stoull(next());
    else if (arg == "--budget") config.budget = std::stoull(next());
    else if (arg == "--diameter") config.diameter = std::stoull(next());
    else if (arg == "--clusters") config.n_clusters = std::stoull(next());
    else if (arg == "--seed") config.seed = std::stoull(next());
    else if (arg == "--dishonest") config.dishonest = std::stoull(next());
    else if (arg == "--reps") config.robust_outer_reps = std::stoull(next());
    else if (arg == "--workload") {
      auto w = parse_workload(next());
      if (!w) usage(argv[0]);
      config.workload = *w;
    } else if (arg == "--algorithm") {
      auto a = parse_algorithm(next());
      if (!a) usage(argv[0]);
      config.algorithm = *a;
    } else if (arg == "--adversary") {
      auto a = parse_adversary(next());
      if (!a) usage(argv[0]);
      config.adversary = *a;
    } else if (arg == "--paper-params") {
      paper_params = true;
    } else if (arg == "--no-opt") {
      config.compute_opt = false;
    } else if (arg == "--sweep") {
      sweep_field = next();
    } else if (arg == "--values") {
      sweep_values = parse_values(next());
    } else if (arg == "--csv") {
      csv = true;
    } else {
      usage(argv[0]);
    }
  }
  if (paper_params) config.params = Params::paper(config.budget);
  if (!sweep_field.empty() && sweep_values.empty()) usage(argv[0]);
  if (sweep_values.empty()) sweep_values.push_back(0);  // single run marker

  std::unique_ptr<CsvWriter> writer;
  if (csv) {
    writer = std::make_unique<CsvWriter>(
        std::cout,
        std::vector<std::string>{"workload", "algorithm", "adversary", "n", "budget",
                                 "diameter", "dishonest", "seed", "max_err",
                                 "mean_err", "max_probes", "total_probes",
                                 "err_over_opt", "wall_s"});
  }

  for (std::size_t value : sweep_values) {
    ExperimentConfig run_config = config;
    if (!sweep_field.empty()) apply_sweep_value(run_config, sweep_field, value);
    const ExperimentOutcome out = run_experiment(run_config);

    if (csv) {
      writer->row_values(
          ExperimentConfig::workload_name(run_config.workload),
          ExperimentConfig::algorithm_name(run_config.algorithm),
          ExperimentConfig::adversary_name(run_config.adversary), run_config.n,
          run_config.budget, run_config.diameter, run_config.dishonest,
          run_config.seed, out.error.max_error, out.error.mean_error,
          out.max_probes, out.total_probes, out.approx_ratio, out.wall_seconds);
    } else {
      std::printf(
          "%s/%s/%s n=%zu B=%zu D=%zu dishonest=%zu seed=%llu\n"
          "  max_err=%zu mean_err=%.2f max_probes=%llu err/opt=%.2f wall=%.2fs\n",
          ExperimentConfig::workload_name(run_config.workload).c_str(),
          ExperimentConfig::algorithm_name(run_config.algorithm).c_str(),
          ExperimentConfig::adversary_name(run_config.adversary).c_str(),
          run_config.n, run_config.budget, run_config.diameter,
          run_config.dishonest,
          static_cast<unsigned long long>(run_config.seed), out.error.max_error,
          out.error.mean_error,
          static_cast<unsigned long long>(out.max_probes), out.approx_ratio,
          out.wall_seconds);
    }
  }
  return 0;
}

}  // namespace
}  // namespace colscore

int main(int argc, char** argv) { return colscore::run(argc, argv); }
