// colscore_cli — run any registered scenario (or grid of scenarios) from the
// command line. Workloads, adversaries, and algorithms are looked up in the
// scenario registries, so anything registered — including entries added by
// downstream code — is runnable here without touching this file.
//
// Examples:
//   colscore_cli --list-algorithms
//   colscore_cli --n 512 --budget 8 --diameter 16
//   colscore_cli --workload chained --algorithm sample_and_share
//   colscore_cli --adversary hijacker --dishonest 10 --algorithm robust
//   colscore_cli --scenario "workload=planted n=512 dishonest=20"
//   colscore_cli --grid "n=256,512 x adversary=hijacker,sleeper" --csv
//   colscore_cli --grid "n=256,512 x reps=5" --sink sqlite --out sweep.sqlite
//   colscore_cli --suite examples/suites/smoke.json
//
// Machine-readable output goes through a registered result sink (--sink
// csv|jsonl|sqlite, --list-sinks; --csv is shorthand for --sink csv --wall),
// streamed in grid order as runs complete; otherwise a human-readable
// report. --suite runs a checked-in JSON suite file (base spec + grids +
// reps + sink), with --sink/--out/--threads overriding the file's choices.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/registry.hpp"
#include "src/sim/resume.hpp"
#include "src/sim/sink.hpp"
#include "src/sim/suite.hpp"
#include "src/sim/suitefile.hpp"

namespace colscore {
namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "scenario (names come from the registries; see --list-*):\n"
      "  --workload W        e.g. planted|identical|lower_bound|chained|uniform|two_blocks\n"
      "  --algorithm A       e.g. calculate_preferences|robust|probe_all|random_guess|\n"
      "                      oracle_clusters|sample_and_share (aliases: calc, oracle, baseline)\n"
      "  --adversary X       e.g. none|random_liar|inverter|constant_one|targeted_bias|\n"
      "                      hijacker|sleeper|strange_colluder\n"
      "  --scenario SPEC     full spec string, e.g. \"workload=chained n=512 dishonest=20\"\n"
      "  --set key=value     any scenario override (repeatable)\n"
      "knob shorthands (sugar for --set):\n"
      "  --n N               players == objects (default 256)\n"
      "  --budget B          reference probe budget (default 8)\n"
      "  --diameter D        planted cluster diameter / chain step (default 16)\n"
      "  --clusters K        planted cluster count (default: budget)\n"
      "  --seed S            RNG seed (default 1)\n"
      "  --dishonest M       number of dishonest players (default 0)\n"
      "  --reps R            robust outer repetitions (default 3)\n"
      "  --paper-params      use the paper's literal constants\n"
      "  --no-opt            skip the O(n^2) empirical OPT computation\n"
      "sweeps:\n"
      "  --grid AXES         cartesian sweep, e.g. \"n=256,512 x adversary=hijacker,sleeper\"\n"
      "                      a reps=K axis replicates every cell K times with\n"
      "                      distinct derived seeds and a rep column\n"
      "  --suite FILE        run a JSON suite file (base + grids + reps + sink);\n"
      "                      --sink/--out/--threads override the file's choices\n"
      "  --threads T         suite worker threads (default: hardware; 1 = serial)\n"
      "  --raw-seeds         do not derive per-run seeds from the grid index\n"
      "fault tolerance (a failed run becomes a status/error row; exit code 1):\n"
      "  --retries N         extra attempts per failed/timed-out run (default 0)\n"
      "  --timeout-s X       per-run wall-clock budget in seconds (0 = off);\n"
      "                      classification is post-hoc, the run is not preempted\n"
      "  --backoff-s X       retry k sleeps X*2^(k-1) seconds first (default 0.05)\n"
      "  --faults SPEC       deterministic fault injection, e.g. \"throw@3,delay@7=1x2\"\n"
      "                      (also read from COLSCORE_FAULTS when the flag is absent)\n"
      "  --shard I/K         run only shard I of K (contiguous slice of the flat\n"
      "                      run-index space; per-run seeds are unchanged, so K\n"
      "                      shard outputs concatenate to the unsharded rows)\n"
      "  --resume PATH       re-run only the missing/failed rows of a prior artifact\n"
      "                      (PATH or PATH.tmp is read; merged output is rewritten)\n"
      "output:\n"
      "  --sink NAME         result sink for machine-readable rows (see --list-sinks)\n"
      "  --out PATH          sink destination (default: stdout; sqlite requires a path)\n"
      "  --wall              include the wall_s column (off by default: byte-reproducible)\n"
      "  --csv               shorthand for --sink csv --wall (the historical output)\n"
      "  --columns a,b,c     select output columns from the metric schema\n"
      "                      (see --list-columns; default: the historical column set)\n"
      "  --summary STAT      one aggregated row per grid cell over its reps\n"
      "                      (mean|min|max of every numeric column)\n"
      "  --list-workloads    print registered workloads and exit\n"
      "  --list-adversaries  print registered adversaries and exit\n"
      "  --list-algorithms   print registered algorithms and exit\n"
      "  --list-sinks        print registered result sinks and exit\n"
      "  --list-columns      print the metric schema for the selected scenario\n"
      "                      (key, type, origin, description) and exit\n",
      argv0);
  std::exit(2);
}

void print_registry(const char* kind,
                    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::printf("%s:\n", kind);
  std::size_t width = 0;
  for (const auto& [name, description] : entries)
    width = std::max(width, name.size());
  for (const auto& [name, description] : entries)
    std::printf("  %-*s  %s\n", static_cast<int>(width), name.c_str(),
                description.c_str());
}

void print_human(const SuiteRun& run, bool show_rep) {
  const Scenario& sc = run.scenario;
  const ExperimentOutcome& out = run.outcome;
  if (show_rep) std::printf("[rep %zu] ", run.rep);
  if (run.status != RunStatus::kOk) {
    std::printf(
        "%s/%s/%s n=%zu B=%zu D=%zu dishonest=%zu seed=%llu\n"
        "  status=%s attempts=%zu error: %s\n",
        sc.workload.c_str(), sc.algorithm.c_str(), sc.adversary.c_str(), sc.n,
        sc.budget, sc.diameter, sc.dishonest,
        static_cast<unsigned long long>(sc.seed), run_status_name(run.status),
        run.attempts, run.error.c_str());
    return;
  }
  std::printf(
      "%s/%s/%s n=%zu B=%zu D=%zu dishonest=%zu seed=%llu\n"
      "  max_err=%zu mean_err=%.2f max_probes=%llu err/opt=%.2f wall=%.2fs\n",
      sc.workload.c_str(), sc.algorithm.c_str(), sc.adversary.c_str(), sc.n,
      sc.budget, sc.diameter, sc.dishonest,
      static_cast<unsigned long long>(sc.seed), out.error.max_error,
      out.error.mean_error, static_cast<unsigned long long>(out.max_probes),
      out.approx_ratio, out.wall_seconds);
}

/// Exit status for a finished sweep: 0 when every run completed, 1 with a
/// stderr summary when any run exhausted its retries.
int sweep_exit_code(const std::vector<SuiteRun>& runs) {
  const std::size_t failures = suite_failure_count(runs);
  if (failures == 0) return 0;
  std::fprintf(stderr,
               "colscore_cli: %zu of %zu runs failed (status/error columns "
               "name them); re-run with --resume to retry just those\n",
               failures, runs.size());
  return 1;
}

int run(int argc, char** argv) {
  ScenarioSpec spec;
  SuiteOptions options;
  std::string grid;
  std::string suite_path;
  std::optional<std::string> sink_name;
  std::optional<std::string> out_path;
  std::optional<std::size_t> threads_flag;
  std::optional<std::string> columns_flag;
  std::optional<std::size_t> retries_flag;
  std::optional<double> timeout_flag;
  std::optional<double> backoff_flag;
  std::optional<std::string> faults_flag;
  std::optional<std::pair<std::size_t, std::size_t>> shard_flag;
  std::optional<std::string> resume_flag;
  SummaryStat summary = SummaryStat::kNone;
  bool csv = false;
  bool wall = false;
  bool raw_seeds = false;
  bool grid_requested = false;
  bool spec_touched = false;
  bool list_columns = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    auto set_override = [&](const char* key) {
      spec_touched = true;
      spec.set(key, next());
    };
    auto next_size = [&]() -> std::size_t {
      const std::string value = next();
      std::size_t used = 0;
      std::size_t out = 0;
      try {
        if (value.empty() || value[0] == '-') throw ScenarioError("");
        out = std::stoull(value, &used);
      } catch (...) {
        used = 0;
      }
      if (used != value.size()) usage(argv[0]);
      return out;
    };
    auto next_seconds = [&]() -> double {
      const std::string value = next();
      std::size_t used = 0;
      double out = 0.0;
      try {
        out = std::stod(value, &used);
      } catch (...) {
        used = 0;
      }
      if (value.empty() || used != value.size() || out < 0) usage(argv[0]);
      return out;
    };

    if (arg == "--workload") { spec_touched = true; spec.workload = next(); }
    else if (arg == "--algorithm") { spec_touched = true; spec.algorithm = next(); }
    else if (arg == "--adversary") { spec_touched = true; spec.adversary = next(); }
    else if (arg == "--scenario") {
      spec_touched = true;
      // Apply token by token (not via ScenarioSpec::parse) so names the
      // string does not mention keep whatever earlier flags set them to.
      std::istringstream tokens{next()};
      std::string token;
      while (tokens >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
          throw ScenarioError("malformed scenario token '" + token +
                              "'; expected key=value");
        spec.set(token.substr(0, eq), token.substr(eq + 1));
      }
    } else if (arg == "--set") {
      spec_touched = true;
      const std::string kv = next();
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size()) usage(argv[0]);
      spec.set(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--n") set_override("n");
    else if (arg == "--budget") set_override("budget");
    else if (arg == "--diameter") set_override("diameter");
    else if (arg == "--clusters") set_override("clusters");
    else if (arg == "--seed") set_override("seed");
    else if (arg == "--dishonest") set_override("dishonest");
    else if (arg == "--reps") set_override("reps");
    else if (arg == "--paper-params") { spec_touched = true; spec.set("paper_params", "1"); }
    else if (arg == "--no-opt") { spec_touched = true; spec.set("opt", "0"); }
    else if (arg == "--grid") { grid = next(); grid_requested = true; }
    else if (arg == "--suite") suite_path = next();
    else if (arg == "--threads") {
      const std::string value = next();
      std::size_t used = 0;
      std::size_t threads = 0;
      try {
        threads = std::stoull(value, &used);
      } catch (...) {
        used = 0;
      }
      if (used != value.size()) usage(argv[0]);
      options.threads = threads;
      threads_flag = threads;
    }
    else if (arg == "--retries") {
      options.retries = next_size();
      retries_flag = options.retries;
    } else if (arg == "--timeout-s") {
      options.timeout_s = next_seconds();
      timeout_flag = options.timeout_s;
    } else if (arg == "--backoff-s") {
      options.backoff_s = next_seconds();
      backoff_flag = options.backoff_s;
    } else if (arg == "--faults") faults_flag = next();
    else if (arg == "--shard") {
      shard_flag = parse_shard(next());
      options.shard_index = shard_flag->first;
      options.shard_count = shard_flag->second;
    } else if (arg == "--resume") resume_flag = next();
    else if (arg == "--raw-seeds") { options.derive_seeds = false; raw_seeds = true; }
    else if (arg == "--csv") csv = true;
    else if (arg == "--wall") wall = true;
    else if (arg == "--sink") sink_name = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--columns") columns_flag = next();
    else if (arg == "--summary") summary = parse_summary_stat(next());
    else if (arg == "--list-columns") list_columns = true;
    else if (arg == "--list-workloads") {
      print_registry("workloads", WorkloadRegistry::instance().descriptions());
      return 0;
    } else if (arg == "--list-adversaries") {
      print_registry("adversaries", AdversaryRegistry::instance().descriptions());
      return 0;
    } else if (arg == "--list-algorithms") {
      print_registry("algorithms", AlgorithmRegistry::instance().descriptions());
      return 0;
    } else if (arg == "--list-sinks") {
      print_registry("sinks", SinkRegistry::instance().descriptions());
      return 0;
    } else {
      usage(argv[0]);
    }
  }

  // COLSCORE_FAULTS lets the chaos/crash tests inject faults into an
  // unmodified command line; an explicit --faults wins.
  if (!faults_flag.has_value()) {
    const char* env = std::getenv("COLSCORE_FAULTS");
    if (env != nullptr && *env != '\0') faults_flag = std::string(env);
  }

  // --threads also sizes the process-default policy, so default-argument
  // code paths (ExecPolicy::process_default) agree with the suite policy.
  // This is the one sanctioned reset_global call site (see CL012).
  if (threads_flag.has_value()) ThreadPool::reset_global(*threads_flag);

  // ---- schema listing --------------------------------------------------------
  // Handled after the flag loop (unlike the registry listings) so the schema
  // reflects the scenarios the other flags select — entry-declared metrics
  // appear for every workload/adversary/algorithm in play, including ones a
  // --grid axis sweeps in.
  if (list_columns) {
    MetricSchema schema;
    if (!suite_path.empty()) {
      // Listing for a suite file: its own expansion defines the schema, so
      // the same exclusivity rule as running it applies.
      if (spec_touched || grid_requested)
        throw ScenarioError(
            "--suite cannot be combined with scenario or grid flags; edit "
            "the suite file (or spell the sweep with --grid)");
      schema = suite_metric_schema(load_suite_file(suite_path).expand());
    } else {
      std::vector<GridAxis> list_axes = parse_grid(grid);
      (void)take_reps_axis(list_axes);
      schema = suite_metric_schema(expand_grid(spec, list_axes));
    }
    std::printf("columns:\n");
    std::size_t key_width = 0;
    std::size_t origin_width = 0;
    for (const MetricSpec& s : schema.specs()) {
      key_width = std::max(key_width, s.key.size());
      origin_width = std::max(origin_width, s.origin.size());
    }
    for (const MetricSpec& s : schema.specs())
      std::printf("  %-*s  %-6s  %-*s  %s\n", static_cast<int>(key_width),
                  s.key.c_str(), metric_type_name(s.type),
                  static_cast<int>(origin_width), s.origin.c_str(),
                  s.description.c_str());
    return 0;
  }

  // ---- suite-file mode -------------------------------------------------------
  if (!suite_path.empty()) {
    // A suite file is the reviewable artifact; flags silently fighting its
    // contents would defeat the point, so anything that defines the
    // experiment or the row shape is rejected rather than merged or
    // dropped. Sink/output/threads are runner choices, not experiment
    // definition, and stay overridable.
    if (spec_touched || grid_requested)
      throw ScenarioError(
          "--suite cannot be combined with scenario or grid flags; edit the "
          "suite file (or spell the sweep with --grid)");
    if (csv || wall || raw_seeds || columns_flag.has_value() ||
        summary != SummaryStat::kNone)
      throw ScenarioError(
          "--suite cannot be combined with --csv/--wall/--raw-seeds/"
          "--columns/--summary; set the suite file's \"sink\", \"wall\", "
          "\"derive_seeds\", \"columns\", or \"summary\" keys (or override "
          "the sink alone with --sink)");
    SuiteFileOverrides overrides;
    overrides.sink = sink_name;
    overrides.output = out_path;
    overrides.threads = threads_flag;
    overrides.retries = retries_flag;
    overrides.timeout_s = timeout_flag;
    overrides.backoff_s = backoff_flag;
    overrides.faults = faults_flag;
    overrides.shard = shard_flag;
    overrides.resume = resume_flag;
    return sweep_exit_code(run_suite_file(load_suite_file(suite_path),
                                          overrides));
  }

  // Single runs keep their literal seed; grids derive per-cell seeds.
  if (!grid_requested) options.derive_seeds = false;

  // A `reps=K` grid axis is a suite-level replication count, not a scenario
  // override; extract it here so the output grows a rep column exactly when
  // replication is in play.
  std::vector<GridAxis> axes = parse_grid(grid);
  options.reps = take_reps_axis(axes);
  const bool show_rep = options.reps > 1;

  // --csv is the historical shorthand: CSV rows with the wall column. Any
  // other machine output goes through a registered sink; --out, --columns,
  // or --summary alone imply the csv sink.
  if (csv) {
    if (!sink_name.has_value()) sink_name = "csv";
    wall = true;
  } else if (!sink_name.has_value() &&
             (out_path.has_value() || columns_flag.has_value() ||
              summary != SummaryStat::kNone)) {
    sink_name = "csv";
  }

  const std::vector<ScenarioSpec> specs = expand_grid(spec, axes);

  FaultPlan faults;  // outlives the runner below
  if (faults_flag.has_value()) faults = FaultPlan::parse(*faults_flag);
  if (!faults.empty()) options.faults = &faults;

  // Plan before the sink exists: --resume reads the prior artifact before
  // a fresh sink truncates PATH.tmp.
  std::vector<SuiteRun> runs = SuiteRunner(options).plan(specs);

  std::unique_ptr<ResultSink> sink;
  MetricSchema schema;
  std::optional<RecordStream> stream;
  std::optional<ResumeContext> resume;
  if (sink_name.has_value()) {
    // The sweep's schema (built-ins + every cell's entry metrics, resolved
    // once per distinct entry triple); column selection and the per-cell
    // summary run in RecordStream, shared by every sink.
    schema = suite_metric_schema(specs);
    std::vector<std::string> columns =
        columns_flag.has_value() ? parse_column_list(*columns_flag)
                                 : default_columns(wall, show_rep);
    // --wall (incl. --csv's implied wall) is an explicit request; honor it
    // alongside an explicit selection rather than silently dropping it.
    if (wall && columns_flag.has_value() &&
        std::find(columns.begin(), columns.end(), "wall_s") == columns.end())
      columns.push_back("wall_s");
    if (resume_flag.has_value())
      resume = prepare_resume(*sink_name, *resume_flag, runs, schema, columns,
                              summary);
    SinkConfig config;
    if (out_path.has_value()) config.path = *out_path;
    sink = make_sink(*sink_name, config);
    if (faults.has_sink_faults())
      sink = std::make_unique<FaultInjectingSink>(faults, std::move(sink));
    stream.emplace(*sink, schema, columns,
                   RecordStream::Options{summary, options.reps});
  } else if (resume_flag.has_value()) {
    throw ScenarioError(
        "--resume works on a sink artifact; pick the sink it was written "
        "with (--sink/--csv) and the destination (--out)");
  }
  options.on_result = [&](const SuiteRun& run) {
    if (stream) {
      // A kSkipped run inside the shard is a resume substitution: replay
      // the prior artifact's row byte-for-byte.
      if (run.status == RunStatus::kSkipped && resume.has_value()) {
        const std::ptrdiff_t ri = resume->plan.prior_row[run.index];
        if (ri >= 0) {
          stream->write(widen_prior_row(
              resume->prior.rows[static_cast<std::size_t>(ri)], schema));
          return;
        }
      }
      stream->write(make_run_record(run, schema));
    } else {
      print_human(run, show_rep);
    }
  };

  SuiteRunner(options).execute(runs);
  if (stream) stream->finish();
  return sweep_exit_code(runs);
}

}  // namespace
}  // namespace colscore

int main(int argc, char** argv) {
  try {
    return colscore::run(argc, argv);
  } catch (const colscore::ScenarioError& e) {
    std::fprintf(stderr, "colscore_cli: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    // A sink failure (real or injected) aborts the sweep mid-stream; the
    // durable partial artifact (PATH.tmp) survives for --resume.
    std::fprintf(stderr, "colscore_cli: aborted: %s\n", e.what());
    return 2;
  }
}
