#!/usr/bin/env python3
"""Run one or more google-benchmark binaries and distill their JSON into a
single compact record.

Usage:
    tools/bench_to_json.py BENCH_BINARY [BENCH_BINARY ...]
                           [--filter REGEX] [--out FILE]
                           [--label KEY=VALUE ...]
                           [--compare BASELINE.json]

The full google-benchmark JSON is verbose (context + per-iteration noise);
this keeps one entry per benchmark (name, real/cpu time in seconds,
iterations, user counters) plus freeform labels (e.g. --label pr=3
--label baseline_s=0.2508), which is what the BENCH_*.json trajectory files
in the repo root record. With several binaries (e.g. bench_neighbor_graph
and bench_suite_throughput) the entries merge into one trajectory record;
each entry is tagged with the binary it came from so CI can track every
tracked bench in a single artifact.

--compare prints a markdown table of per-metric deltas against a previously
recorded trajectory file (e.g. BENCH_pr3.json): real time plus every shared
user counter, matched by benchmark name. It is informational only — shared
CI runners are far too noisy to gate on — which is why CI pipes it into the
job summary under continue-on-error and the exit code stays 0 even when
every metric regressed.
"""

import argparse
import json
import os
import subprocess
import sys


def run_benchmark(binary: str, bench_filter: str | None) -> dict:
    cmd = [binary, "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark binary failed with code {proc.returncode}")
    return json.loads(proc.stdout)


def to_seconds(value: float, unit: str) -> float:
    scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    return value * scale.get(unit, 1.0)


def distill(raw: dict) -> list[dict]:
    reserved = {
        "name", "run_name", "run_type", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time", "time_unit",
        "family_index", "per_family_instance_index", "aggregate_name",
        "aggregate_unit", "label", "error_occurred", "error_message",
    }
    out = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "name": b["name"],
            "real_time_s": to_seconds(b["real_time"], b.get("time_unit", "s")),
            "cpu_time_s": to_seconds(b["cpu_time"], b.get("time_unit", "s")),
            "iterations": b.get("iterations", 0),
        }
        # The benchmark's SetLabel string (e.g. "tier=avx512 backend=csr")
        # pins the machine-dependent config a number was measured under.
        if b.get("label"):
            entry["label"] = b["label"]
        counters = {k: v for k, v in b.items() if k not in reserved}
        if counters:
            entry["counters"] = counters
        out.append(entry)
    return out


def format_delta(baseline: float, current: float) -> str:
    if baseline == 0:
        return "n/a"
    pct = (current - baseline) / baseline * 100.0
    return f"{pct:+.1f}%"


def compare_records(baseline: dict, current: dict) -> str:
    """Markdown per-metric delta table between two trajectory records.

    Benchmarks match by name (binary tags can differ between a merged CI
    record and a single-binary baseline). real_time_s always reports;
    counters report when both records carry them.
    """
    by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    lines = [
        f"### Perf trajectory vs PR {baseline.get('labels', {}).get('pr', '?')}"
        f" (informational, not a gate)",
        "",
        "| benchmark | metric | baseline | current | delta |",
        "|---|---|---:|---:|---:|",
    ]
    matched = False
    for bench in current.get("benchmarks", []):
        base = by_name.get(bench["name"])
        if base is None:
            lines.append(f"| {bench['name']} | — | n/a (new) | — | — |")
            continue
        matched = True
        rows = [("real_time_s", base["real_time_s"], bench["real_time_s"])]
        base_counters = base.get("counters", {})
        for key, value in bench.get("counters", {}).items():
            if key in base_counters:
                rows.append((key, base_counters[key], value))
        for metric, base_value, value in rows:
            lines.append(
                f"| {bench['name']} | {metric} | {base_value:.4g} | "
                f"{value:.4g} | {format_delta(base_value, value)} |")
    if not matched:
        lines.append("| (no shared benchmarks) | — | — | — | — |")
    lines.append("")
    lines.append(f"_baseline record: host={baseline.get('host', '?')}, "
                 f"date={baseline.get('date', '?')}_")
    return "\n".join(lines) + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binaries", nargs="+", metavar="binary",
                        help="google-benchmark executable(s); entries merge")
    parser.add_argument("--filter", default=None, help="--benchmark_filter regex")
    parser.add_argument("--out", default=None, help="output path (default stdout)")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE", help="freeform labels for the record")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="print per-metric deltas against a recorded "
                             "trajectory file (informational; exit code stays 0)")
    args = parser.parse_args()

    labels = {}
    for item in args.label:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--label expects KEY=VALUE, got '{item}'")
        labels[key] = value

    record = {"host": "", "num_cpus": 0, "date": "", "labels": labels,
              "benchmarks": []}
    for binary in args.binaries:
        raw = run_benchmark(binary, args.filter)
        context = raw.get("context", {})
        # Context comes from the first binary (same host for all of them).
        if not record["host"]:
            record["host"] = context.get("host_name", "")
            record["num_cpus"] = context.get("num_cpus", 0)
            record["date"] = context.get("date", "")
        entries = distill(raw)
        if len(args.binaries) > 1:
            name = os.path.basename(binary)
            for entry in entries:
                entry["binary"] = name
        record["benchmarks"].extend(entries)
    text = json.dumps(record, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        sys.stdout.write(compare_records(baseline, record))


if __name__ == "__main__":
    main()
