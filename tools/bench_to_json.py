#!/usr/bin/env python3
"""Run one or more google-benchmark binaries and distill their JSON into a
single compact record.

Usage:
    tools/bench_to_json.py BENCH_BINARY [BENCH_BINARY ...]
                           [--filter REGEX] [--out FILE]
                           [--label KEY=VALUE ...]

The full google-benchmark JSON is verbose (context + per-iteration noise);
this keeps one entry per benchmark (name, real/cpu time in seconds,
iterations, user counters) plus freeform labels (e.g. --label pr=3
--label baseline_s=0.2508), which is what the BENCH_*.json trajectory files
in the repo root record. With several binaries (e.g. bench_neighbor_graph
and bench_suite_throughput) the entries merge into one trajectory record;
each entry is tagged with the binary it came from so CI can track every
tracked bench in a single artifact.
"""

import argparse
import json
import os
import subprocess
import sys


def run_benchmark(binary: str, bench_filter: str | None) -> dict:
    cmd = [binary, "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark binary failed with code {proc.returncode}")
    return json.loads(proc.stdout)


def to_seconds(value: float, unit: str) -> float:
    scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    return value * scale.get(unit, 1.0)


def distill(raw: dict) -> list[dict]:
    reserved = {
        "name", "run_name", "run_type", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time", "time_unit",
        "family_index", "per_family_instance_index", "aggregate_name",
        "aggregate_unit", "label", "error_occurred", "error_message",
    }
    out = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "name": b["name"],
            "real_time_s": to_seconds(b["real_time"], b.get("time_unit", "s")),
            "cpu_time_s": to_seconds(b["cpu_time"], b.get("time_unit", "s")),
            "iterations": b.get("iterations", 0),
        }
        counters = {k: v for k, v in b.items() if k not in reserved}
        if counters:
            entry["counters"] = counters
        out.append(entry)
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binaries", nargs="+", metavar="binary",
                        help="google-benchmark executable(s); entries merge")
    parser.add_argument("--filter", default=None, help="--benchmark_filter regex")
    parser.add_argument("--out", default=None, help="output path (default stdout)")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE", help="freeform labels for the record")
    args = parser.parse_args()

    labels = {}
    for item in args.label:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--label expects KEY=VALUE, got '{item}'")
        labels[key] = value

    record = {"host": "", "num_cpus": 0, "date": "", "labels": labels,
              "benchmarks": []}
    for binary in args.binaries:
        raw = run_benchmark(binary, args.filter)
        context = raw.get("context", {})
        # Context comes from the first binary (same host for all of them).
        if not record["host"]:
            record["host"] = context.get("host_name", "")
            record["num_cpus"] = context.get("num_cpus", 0)
            record["date"] = context.get("date", "")
        entries = distill(raw)
        if len(args.binaries) > 1:
            name = os.path.basename(binary)
            for entry in entries:
                entry["binary"] = name
        record["benchmarks"].extend(entries)
    text = json.dumps(record, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
