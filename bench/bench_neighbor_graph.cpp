// Microbenchmark for the protocol's dominant O(n^2) path: neighbor-graph
// construction + greedy cluster peeling over a protocol-like z family
// (planted groups with intra-cluster spread, far inter-cluster distances —
// the regime where the early-exit Hamming kernel and pair symmetry pay).
//
// Two pinned regimes since PR 7:
//   * dense (n<=1024, 8 fat clusters, tau=208) — the PR 2 acceptance grid;
//     auto keeps the BitMatrix backend here.
//   * sparse (n=4096, 256 thin clusters, tau=96, expected degree ~16) — the
//     paper's sublinear-probe regime; auto picks the CSR backend, and the
//     *Baseline variant pins scalar+dense to measure the PR 7 speedup
//     (BENCH_pr7.json acceptance: >= 2x on BM_SparseGraphPlusCluster).
// Every benchmark labels the SIMD tier it actually dispatched and the
// resolved graph backend, so BENCH_*.json trajectories are comparable
// across machines. Build Release (-O3) for recorded numbers.
#include <benchmark/benchmark.h>

#include <string>

#include "src/common/bitmatrix.hpp"
#include "src/common/simd.hpp"
#include "src/common/exec_policy.hpp"
#include "src/protocols/neighbor_graph.hpp"

namespace colscore {
namespace {

constexpr std::size_t kDim = 4096;     // |S|: sampled coordinates per z-vector

// Dense regime (the PR 2 acceptance grid).
constexpr std::size_t kGroups = 8;     // B planted clusters
constexpr std::size_t kSpread = 40;    // intra-cluster flip count
constexpr std::size_t kTau = 208;      // ~graph_tau_c * ln n edge threshold

// Sparse regime (PR 7): thin clusters, tight threshold — expected degree
// ~n/kSparseGroups - 1 ~ 15, edge density ~1/256, far under the CSR cutoff.
constexpr std::size_t kSparseN = 4096;
constexpr std::size_t kSparseGroups = 256;
constexpr std::size_t kSparseTau = 96;

BitMatrix make_z_family(std::size_t n, std::size_t groups, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> centers;
  for (std::size_t g = 0; g < groups; ++g)
    centers.push_back(random_bitvector(kDim, rng));
  BitMatrix z(n, kDim);
  for (std::size_t i = 0; i < n; ++i) {
    BitVector v = centers[i % groups];
    v.flip_random(rng, kSpread);
    z.row(i) = v;
  }
  return z;
}

// Kernel benches build serially: measure the sweep, not the box's cores.
const ExecPolicy kSerial = ExecPolicy::serial();

std::size_t min_cluster_for(std::size_t n, std::size_t groups) {
  // (n/B) * (1 - cluster_slack) with the default slack of 1/3.
  return std::max<std::size_t>(2, n / groups * 2 / 3);
}

/// "tier=avx512 backend=csr" — the config label every benchmark reports.
std::string config_label(GraphBackend resolved) {
  return std::string("tier=") + simd::tier_name(simd::active_tier()) +
         " backend=" + backend_name(resolved);
}

void BM_NeighborGraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix z = make_z_family(n, kGroups, 42);
  std::size_t edges = 0;
  GraphBackend resolved = GraphBackend::kAuto;
  for (auto _ : state) {
    const NeighborGraph graph(z, kTau, GraphBackend::kAuto, kSerial);
    resolved = graph.backend();
    edges = 0;
    for (PlayerId p = 0; p < n; ++p) edges += graph.degree(p);
    benchmark::DoNotOptimize(edges);
  }
  state.SetLabel(config_label(resolved));
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["pairs_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ClusterPlayers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix z = make_z_family(n, kGroups, 42);
  const NeighborGraph graph(z, kTau, GraphBackend::kAuto, kSerial);
  std::size_t clusters = 0;
  for (auto _ : state) {
    const Clustering c = cluster_players(graph, min_cluster_for(n, kGroups));
    clusters = c.clusters.size();
    benchmark::DoNotOptimize(clusters);
  }
  state.SetLabel(config_label(graph.backend()));
  state.counters["clusters"] = static_cast<double>(clusters);
}

void BM_GraphPlusCluster(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix z = make_z_family(n, kGroups, 42);
  GraphBackend resolved = GraphBackend::kAuto;
  for (auto _ : state) {
    const NeighborGraph graph(z, kTau, GraphBackend::kAuto, kSerial);
    resolved = graph.backend();
    const Clustering c = cluster_players(graph, min_cluster_for(n, kGroups));
    benchmark::DoNotOptimize(c.clusters.size());
  }
  state.SetLabel(config_label(resolved));
}

/// The sparse pinned grid, parameterized by backend and (optionally) a
/// forced scalar tier so the baseline measures the pre-PR 7 code path.
void sparse_graph_plus_cluster(benchmark::State& state, GraphBackend backend,
                               bool force_scalar) {
  const simd::Tier saved = simd::active_tier();
  if (force_scalar) simd::set_tier(simd::Tier::kScalar);
  const BitMatrix z = make_z_family(kSparseN, kSparseGroups, 42);
  GraphBackend resolved = GraphBackend::kAuto;
  std::size_t edges = 0;
  for (auto _ : state) {
    const NeighborGraph graph(z, kSparseTau, backend, kSerial);
    resolved = graph.backend();
    edges = 0;
    for (PlayerId p = 0; p < kSparseN; ++p) edges += graph.degree(p);
    const Clustering c =
        cluster_players(graph, min_cluster_for(kSparseN, kSparseGroups));
    benchmark::DoNotOptimize(c.clusters.size());
  }
  state.SetLabel(config_label(resolved));
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["pairs_per_s"] = benchmark::Counter(
      static_cast<double>(kSparseN) * static_cast<double>(kSparseN - 1) / 2.0,
      benchmark::Counter::kIsIterationInvariantRate);
  simd::set_tier(saved);
}

// Pre-PR 7 code path: scalar kernels + dense BitMatrix adjacency.
void BM_SparseGraphPlusClusterBaseline(benchmark::State& state) {
  sparse_graph_plus_cluster(state, GraphBackend::kDense, /*force_scalar=*/true);
}

// SIMD kernels but still the dense backend — isolates the CSR contribution.
void BM_SparseGraphPlusClusterDense(benchmark::State& state) {
  sparse_graph_plus_cluster(state, GraphBackend::kDense, /*force_scalar=*/false);
}

// The shipped configuration: auto backend (resolves to CSR here) + best tier.
void BM_SparseGraphPlusCluster(benchmark::State& state) {
  sparse_graph_plus_cluster(state, GraphBackend::kAuto, /*force_scalar=*/false);
}

BENCHMARK(BM_NeighborGraphBuild)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClusterPlayers)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GraphPlusCluster)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseGraphPlusClusterBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseGraphPlusClusterDense)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseGraphPlusCluster)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
