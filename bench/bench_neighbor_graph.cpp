// Microbenchmark for the protocol's dominant O(n^2) path: neighbor-graph
// construction + greedy cluster peeling over a protocol-like z family
// (planted groups with intra-cluster spread, far inter-cluster distances —
// the regime where the early-exit Hamming kernel and pair symmetry pay).
//
// The acceptance configuration for PR 2 is n=1024, |S|=4096 single-thread
// (BM_GraphPlusCluster/1024); tools/bench_to_json.py distills the JSON
// output into BENCH_pr2.json. Build Release (-O3) for recorded numbers.
#include <benchmark/benchmark.h>

#include "src/common/bitmatrix.hpp"
#include "src/common/thread_pool.hpp"
#include "src/protocols/neighbor_graph.hpp"

namespace colscore {
namespace {

constexpr std::size_t kDim = 4096;     // |S|: sampled coordinates per z-vector
constexpr std::size_t kGroups = 8;     // B planted clusters
constexpr std::size_t kSpread = 40;    // intra-cluster flip count
constexpr std::size_t kTau = 208;      // ~graph_tau_c * ln n edge threshold

BitMatrix make_z_family(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> centers;
  for (std::size_t g = 0; g < kGroups; ++g)
    centers.push_back(random_bitvector(kDim, rng));
  BitMatrix z(n, kDim);
  for (std::size_t i = 0; i < n; ++i) {
    BitVector v = centers[i % kGroups];
    v.flip_random(rng, kSpread);
    z.row(i) = v;
  }
  return z;
}

std::size_t min_cluster_for(std::size_t n) {
  // (n/B) * (1 - cluster_slack) with the default slack of 1/3.
  return std::max<std::size_t>(2, n / kGroups * 2 / 3);
}

void BM_NeighborGraphBuild(benchmark::State& state) {
  ThreadPool::reset_global(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix z = make_z_family(n, 42);
  std::size_t edges = 0;
  for (auto _ : state) {
    const NeighborGraph graph(z, kTau);
    edges = 0;
    for (PlayerId p = 0; p < n; ++p) edges += graph.degree(p);
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["pairs_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0,
      benchmark::Counter::kIsIterationInvariantRate);
  ThreadPool::reset_global(0);
}

void BM_ClusterPlayers(benchmark::State& state) {
  ThreadPool::reset_global(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix z = make_z_family(n, 42);
  const NeighborGraph graph(z, kTau);
  std::size_t clusters = 0;
  for (auto _ : state) {
    const Clustering c = cluster_players(graph, min_cluster_for(n));
    clusters = c.clusters.size();
    benchmark::DoNotOptimize(clusters);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
  ThreadPool::reset_global(0);
}

void BM_GraphPlusCluster(benchmark::State& state) {
  ThreadPool::reset_global(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix z = make_z_family(n, 42);
  for (auto _ : state) {
    const NeighborGraph graph(z, kTau);
    const Clustering c = cluster_players(graph, min_cluster_for(n));
    benchmark::DoNotOptimize(c.clusters.size());
  }
  ThreadPool::reset_global(0);
}

BENCHMARK(BM_NeighborGraphBuild)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClusterPlayers)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GraphPlusCluster)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
