// F4 — Theorem 5 (SmallRadius).
//
// Claims: with >= n/B players within distance D of everyone, (a) the output
// is within 5D of the truth; (b) probes grow polynomially in D and linearly
// in B (the paper's B log n D^1.5 (D + log n)).
//
// Reproduction: planted clusters, sweep D. The shape: max_err <= 5D for all
// D; probes grow with D.
#include <benchmark/benchmark.h>

#include "src/model/generators.hpp"
#include "src/protocols/small_radius.hpp"

namespace colscore {
namespace {

void BM_SmallRadius(benchmark::State& state) {
  const std::size_t n = 256;
  const std::size_t budget = 4;
  const auto diameter = static_cast<std::size_t>(state.range(0));

  double err_total = 0, probes_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      World world = planted_clusters(n, n, budget, diameter, Rng(seed * 7));
      Population pop(n);
      ProbeOracle oracle(world.matrix);
      BulletinBoard board;
      HonestBeacon beacon(seed);
      ProtocolEnv env(oracle, board, pop, beacon, seed);

      std::vector<PlayerId> players(n);
      for (PlayerId p = 0; p < n; ++p) players[p] = p;
      std::vector<ObjectId> objects(n);
      for (ObjectId o = 0; o < n; ++o) objects[o] = o;

      SmallRadiusParams params;
      params.budget = budget;
      params.diameter = std::max<std::size_t>(diameter, 1);
      const SmallRadiusResult r = small_radius(players, objects, params, env, seed);
      std::size_t worst = 0;
      for (std::size_t i = 0; i < n; ++i)
        worst = std::max(worst, world.matrix.row(i).hamming(r.outputs[i]));
      err_total += static_cast<double>(worst);
      probes_total += static_cast<double>(oracle.max_probes());
      ++runs;
    }
  }
  state.counters["D"] = static_cast<double>(diameter);
  state.counters["max_err"] = err_total / static_cast<double>(runs);
  state.counters["bound_5D"] = 5.0 * static_cast<double>(diameter);
  state.counters["err_over_D"] = err_total / static_cast<double>(runs) /
                                 std::max<double>(1.0, static_cast<double>(diameter));
  state.counters["max_probes"] = probes_total / static_cast<double>(runs);
}

BENCHMARK(BM_SmallRadius)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
