// T3 — §7.1 (Byzantine leader election, after Feige [10]).
//
// Claim: with (1+delta)n/2 honest players, an honest leader is elected with
// probability Omega(delta^1.65), despite a rushing colluding adversary.
//
// Reproduction: sweep the dishonest fraction and measure the honest-win rate
// over many elections; report it next to the delta^1.65 reference. The shape:
// measured probability stays a constant multiple (or better) of the
// reference across the sweep, and never collapses below it.
#include <benchmark/benchmark.h>

#include <cmath>

#include "src/model/generators.hpp"
#include "src/protocols/election.hpp"

namespace colscore {
namespace {

void BM_Election(benchmark::State& state) {
  const std::size_t n = 240;
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  const auto dishonest = static_cast<std::size_t>(frac * static_cast<double>(n));

  double honest_wins = 0;
  double rounds_total = 0;
  std::size_t trials_total = 0;
  for (auto _ : state) {
    World world = identical_clusters(n, 16, 2, Rng(1));
    Population pop(n);
    Rng rng(2);
    pop.corrupt_random(dishonest, rng, [] { return std::make_unique<Inverter>(); });
    ProbeOracle oracle(world.matrix);
    BulletinBoard board;
    HonestBeacon beacon(3);
    ProtocolEnv env(oracle, board, pop, beacon, 4);
    const std::size_t trials = 400;
    for (std::uint64_t k = 0; k < trials; ++k) {
      const ElectionResult r = feige_election(env, 10'000 + k);
      if (r.leader_honest) honest_wins += 1;
      rounds_total += static_cast<double>(r.rounds);
      ++trials_total;
    }
  }
  const double delta = 1.0 - 2.0 * frac;  // honest = (1+delta)n/2
  state.counters["dishonest_frac"] = frac;
  state.counters["p_honest_leader"] = honest_wins / static_cast<double>(trials_total);
  state.counters["delta_pow_1.65"] =
      delta > 0 ? std::pow(delta, 1.65) : 0.0;
  state.counters["rounds"] = rounds_total / static_cast<double>(trials_total);
}

BENCHMARK(BM_Election)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(33)
    ->Arg(45)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
