// F5 — Lemma 6 (sampling concentration).
//
// Claims: with the sample rate 10 ln n / D, (a) pairs within distance D
// differ on <= 20 ln n sampled objects whp; (b) pairs at distance >= cD
// (c >= 3) differ on >= 5c ln n sampled objects whp.
//
// Reproduction: pairs planted at exact distance c*D for a sweep of c; report
// mean/min/max sample distance in units of ln n, and the misclassification
// rate against the edge threshold. The shape: close pairs stay below the
// threshold, c >= 3 pairs rise linearly in c and clear it.
#include <benchmark/benchmark.h>

#include <cmath>

#include "src/common/mathutil.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

void BM_SamplingConcentration(benchmark::State& state) {
  const std::size_t n = 4096;
  const std::size_t D = 256;
  const auto c = static_cast<std::size_t>(state.range(0));
  const double ln_n = ln_clamped(n);
  const double rate = std::min(1.0, 10.0 * ln_n / static_cast<double>(D));
  const double tau = 30.0 * ln_n;  // practical edge threshold (graph_tau_c)

  double mean = 0, lo = 1e18, hi = 0, misclass = 0;
  std::size_t trials_total = 0;
  for (auto _ : state) {
    Rng rng(c * 1237);
    const std::size_t trials = 400;
    for (std::size_t t = 0; t < trials; ++t) {
      // A pair at exact distance c*D: count how many differing coordinates
      // land in the sample (each coordinate iid with prob `rate`).
      std::size_t in_sample = 0;
      for (std::size_t i = 0; i < c * D; ++i)
        if (rng.chance(rate)) ++in_sample;
      const auto x = static_cast<double>(in_sample);
      mean += x;
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      // close pairs (c==1) should be below tau; far pairs (c>=3) above.
      if (c == 1 && x > tau) misclass += 1;
      if (c >= 3 && x <= tau) misclass += 1;
      ++trials_total;
    }
  }
  mean /= static_cast<double>(trials_total);
  state.counters["c"] = static_cast<double>(c);
  state.counters["mean_over_lnn"] = mean / ln_n;
  state.counters["min_over_lnn"] = lo / ln_n;
  state.counters["max_over_lnn"] = hi / ln_n;
  state.counters["tau_over_lnn"] = tau / ln_n;
  state.counters["misclass_rate"] = misclass / static_cast<double>(trials_total);
}

BENCHMARK(BM_SamplingConcentration)
    ->Arg(1)
    ->Arg(3)
    ->Arg(6)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
