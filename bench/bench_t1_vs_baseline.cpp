// T1 — the comparison against Alon et al. [2,3] (§1, §4).
//
// The paper's claims about [2,3]: O(B^2 polylog n) probes, only a
// B-approximation, and no Byzantine tolerance. Our reconstruction
// (sample_and_share) reproduces the probe bill and the missing robustness.
// Rows:
//   * probe scaling — the baseline's dominant cost is the public B^2 log n
//     sample (probes_over_B2 ~ flat), ours grows ~linearly in B at fixed n;
//   * Byzantine contrast — n/(3B) hijackers planted inside a victim's twin
//     set: the baseline's star neighbourhood is captured (victim error
//     jumps), the Fig. 2 protocol's domination-checked clusters are not;
//   * chained workload — a personalization-friendly instance where any
//     partition-based method (ours) pays ~the Definition-1 optimum (the
//     n/B-neighbourhood spans several links) while per-player stars track
//     each player; both stay O(D_opt), confirming our constant-factor
//     optimality on an instance that favours the baseline. (The literal
//     B-factor *lower* bound for [2,3] stems from their committee-drift
//     construction, which the modernized star reconstruction does not
//     exhibit — see EXPERIMENTS.md.)
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/baseline/baselines.hpp"
#include "src/core/calculate_preferences.hpp"

namespace colscore {
namespace {

void BM_ProbeScaling_Ours(benchmark::State& state) {
  Scenario scenario;
  scenario.n = 512;
  scenario.budget = static_cast<std::size_t>(state.range(0));
  scenario.diameter = 16;
  scenario.seed = 10;
  scenario.compute_opt = false;
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  state.counters["B"] = static_cast<double>(scenario.budget);
  state.counters["max_probes"] = static_cast<double>(out.max_probes);
  state.counters["probes_over_B"] = static_cast<double>(out.max_probes) /
                                    static_cast<double>(scenario.budget);
  state.counters["max_err"] = static_cast<double>(out.error.max_error);
}

void BM_ProbeScaling_Baseline(benchmark::State& state) {
  Scenario scenario;
  scenario.n = 512;
  scenario.budget = static_cast<std::size_t>(state.range(0));
  scenario.diameter = 16;
  scenario.seed = 10;
  scenario.algorithm = "sample_and_share";
  scenario.compute_opt = false;
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  const double b = static_cast<double>(scenario.budget);
  state.counters["B"] = b;
  state.counters["max_probes"] = static_cast<double>(out.max_probes);
  state.counters["probes_over_B2"] = static_cast<double>(out.max_probes) / (b * b);
  state.counters["max_err"] = static_cast<double>(out.error.max_error);
}

/// Victim error under targeted hijack for either algorithm.
double hijack_victim_error(bool use_baseline) {
  const std::size_t n = 256, budget = 8, byz = n / (3 * budget);
  World world = identical_clusters(n, n, budget, Rng(77));
  Population pop(n);
  for (PlayerId p = 1; p <= byz; ++p)
    pop.set_behavior(p, std::make_unique<ClusterHijacker>(world.matrix, 0));
  ProbeOracle oracle(world.matrix);
  BulletinBoard board;
  HonestBeacon beacon(78);
  ProtocolEnv env(oracle, board, pop, beacon, 79);
  BitVector victim_output;
  if (use_baseline) {
    SampleShareParams sp;
    sp.budget = budget;
    victim_output = sample_and_share(env, sp).result.outputs[0];
  } else {
    victim_output =
        calculate_preferences(env, Params::practical(budget), 80).outputs[0];
  }
  return static_cast<double>(world.matrix.row(0).hamming(victim_output));
}

void BM_Hijack_Ours(benchmark::State& state) {
  double err = 0;
  for (auto _ : state) err = hijack_victim_error(false);
  state.counters["victim_err"] = err;
  state.counters["hijackers"] = 256.0 / 24.0;
}

void BM_Hijack_Baseline(benchmark::State& state) {
  double err = 0;
  for (auto _ : state) err = hijack_victim_error(true);
  state.counters["victim_err"] = err;
  state.counters["hijackers"] = 256.0 / 24.0;
}

Scenario chained_scenario(const char* algorithm) {
  Scenario scenario;
  scenario.n = 256;
  scenario.budget = 4;
  scenario.workload = "chained";
  scenario.diameter = 12;  // chain step
  scenario.seed = 9;
  scenario.algorithm = algorithm;
  scenario.compute_opt = true;
  return scenario;
}

void BM_Chained_Ours(benchmark::State& state) {
  ExperimentOutcome out;
  const Scenario scenario = chained_scenario("calculate_preferences");
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["step"] = 12;
}

void BM_Chained_Baseline(benchmark::State& state) {
  ExperimentOutcome out;
  const Scenario scenario = chained_scenario("sample_and_share");
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["step"] = 12;
}

BENCHMARK(BM_ProbeScaling_Ours)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ProbeScaling_Baseline)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Hijack_Ours)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Hijack_Baseline)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Chained_Ours)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Chained_Baseline)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
