// T2 — the end-to-end scoreboard: every algorithm on the same planted world,
// with and without Byzantine players. Rows: error and probe cost. The genie
// (oracle_clusters) is the OPT reference; probe_all and random_guess are the
// degenerate corners.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace colscore {
namespace {

void run_row(benchmark::State& state, AlgorithmKind algo, bool byzantine) {
  ExperimentConfig config;
  config.n = 256;
  config.budget = 8;
  config.diameter = 16;
  config.seed = 21;
  config.algorithm = algo;
  config.robust_outer_reps = 3;
  if (byzantine) {
    config.adversary = AdversaryKind::kSleeper;
    config.dishonest = config.n / (3 * config.budget);
  }
  ExperimentOutcome out;
  for (auto _ : state) out = run_experiment(config);
  benchutil::attach_outcome(state, out);
  state.counters["byz"] = byzantine ? 1 : 0;
}

void BM_Ours(benchmark::State& s) { run_row(s, AlgorithmKind::kCalculatePreferences, s.range(0)); }
void BM_Robust(benchmark::State& s) { run_row(s, AlgorithmKind::kRobust, s.range(0)); }
void BM_ProbeAll(benchmark::State& s) { run_row(s, AlgorithmKind::kProbeAll, s.range(0)); }
void BM_RandomGuess(benchmark::State& s) { run_row(s, AlgorithmKind::kRandomGuess, s.range(0)); }
void BM_OracleClusters(benchmark::State& s) { run_row(s, AlgorithmKind::kOracleClusters, s.range(0)); }
void BM_SampleAndShare(benchmark::State& s) { run_row(s, AlgorithmKind::kSampleAndShare, s.range(0)); }

BENCHMARK(BM_Ours)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Robust)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ProbeAll)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_RandomGuess)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_OracleClusters)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SampleAndShare)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
