// T2 — the end-to-end scoreboard: every registered algorithm on the same
// planted world, with and without Byzantine players. Rows: error and probe
// cost. The genie (oracle_clusters) is the OPT reference; probe_all and
// random_guess are the degenerate corners.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace colscore {
namespace {

void run_row(benchmark::State& state, const char* algorithm, bool byzantine) {
  Scenario scenario;
  scenario.n = 256;
  scenario.budget = 8;
  scenario.diameter = 16;
  scenario.seed = 21;
  scenario.algorithm = algorithm;
  scenario.robust_outer_reps = 3;
  if (byzantine) {
    scenario.adversary = "sleeper";
    scenario.dishonest = scenario.n / (3 * scenario.budget);
  }
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["byz"] = byzantine ? 1 : 0;
}

void BM_Ours(benchmark::State& s) { run_row(s, "calculate_preferences", s.range(0)); }
void BM_Robust(benchmark::State& s) { run_row(s, "robust", s.range(0)); }
void BM_ProbeAll(benchmark::State& s) { run_row(s, "probe_all", s.range(0)); }
void BM_RandomGuess(benchmark::State& s) { run_row(s, "random_guess", s.range(0)); }
void BM_OracleClusters(benchmark::State& s) { run_row(s, "oracle_clusters", s.range(0)); }
void BM_SampleAndShare(benchmark::State& s) { run_row(s, "sample_and_share", s.range(0)); }

BENCHMARK(BM_Ours)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Robust)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ProbeAll)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_RandomGuess)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_OracleClusters)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SampleAndShare)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
