// F3 — Theorem 4 (ZeroRadius).
//
// Claims: with >= n/B' identical twins per player, (a) every player recovers
// its exact vector whp; (b) probe cost is O(B' log n) per player.
//
// Reproduction: identical clusters; sweep n at fixed B' and B' at fixed n.
// The shape: exact_rate ~= 1 everywhere; max_probes grows sublinearly in n
// (compression = max_probes/n falls) and ~linearly in B'.
#include <benchmark/benchmark.h>

#include "src/model/generators.hpp"
#include "src/protocols/zero_radius.hpp"

namespace colscore {
namespace {

void run_zero_radius(benchmark::State& state, std::size_t n, std::size_t budget) {
  double exact_total = 0, probes_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      World world = identical_clusters(n, n, budget, Rng(seed * 31));
      Population pop(n);
      ProbeOracle oracle(world.matrix);
      BulletinBoard board;
      HonestBeacon beacon(seed);
      ProtocolEnv env(oracle, board, pop, beacon, seed);

      std::vector<PlayerId> players(n);
      for (PlayerId p = 0; p < n; ++p) players[p] = p;
      std::vector<ObjectId> objects(n);
      for (ObjectId o = 0; o < n; ++o) objects[o] = o;

      ZeroRadiusParams params;
      params.budget = budget;
      const ZeroRadiusResult r = zero_radius(players, objects, params, env, seed);
      std::size_t exact = 0;
      for (std::size_t i = 0; i < n; ++i)
        if (r.outputs[i] == world.matrix.row(players[i])) ++exact;
      exact_total += static_cast<double>(exact) / static_cast<double>(n);
      probes_total += static_cast<double>(oracle.max_probes());
      ++runs;
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["exact_rate"] = exact_total / static_cast<double>(runs);
  state.counters["max_probes"] = probes_total / static_cast<double>(runs);
  state.counters["probes_over_n"] =
      probes_total / static_cast<double>(runs) / static_cast<double>(n);
}

void BM_ZeroRadius_SweepN(benchmark::State& state) {
  run_zero_radius(state, static_cast<std::size_t>(state.range(0)), 4);
}

void BM_ZeroRadius_SweepBudget(benchmark::State& state) {
  run_zero_radius(state, 1024, static_cast<std::size_t>(state.range(0)));
}

BENCHMARK(BM_ZeroRadius_SweepN)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_ZeroRadius_SweepBudget)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
