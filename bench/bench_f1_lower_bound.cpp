// F1 — Claim 2 (the lower bound).
//
// Claim: on the adversarial distribution (pivot p, a group of n/B players
// that agree with p everywhere except a special set S of D objects where
// they are random), NO B-budget algorithm can predict p's bits on S better
// than guessing: error >= D/4 in expectation.
//
// Reproduction: run the full protocol on lower_bound_instance for a sweep of
// D and report the pivot's measured error against the D/4 floor. The shape
// to see: pivot_err/floor >= 1 for every D (the floor binds), while the
// protocol stays within a small constant of D (it cannot do better, and does
// not do asymptotically worse).
#include <benchmark/benchmark.h>

#include "src/core/calculate_preferences.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

void BM_LowerBound(benchmark::State& state) {
  const std::size_t n = 256;
  const std::size_t budget = 8;
  const auto diameter = static_cast<std::size_t>(state.range(0));

  double pivot_err_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      World world = lower_bound_instance(n, budget, diameter, Rng(seed * 77));
      Population pop(n);
      ProbeOracle oracle(world.matrix);
      BulletinBoard board;
      HonestBeacon beacon(seed);
      ProtocolEnv env(oracle, board, pop, beacon, seed);
      const ProtocolResult r =
          calculate_preferences(env, Params::practical(budget), seed);
      pivot_err_total +=
          static_cast<double>(world.matrix.row(0).hamming(r.outputs[0]));
      ++runs;
    }
  }
  const double pivot_err = pivot_err_total / static_cast<double>(runs);
  const double floor = static_cast<double>(diameter) / 4.0;
  state.counters["D"] = static_cast<double>(diameter);
  state.counters["pivot_err"] = pivot_err;
  state.counters["claim2_floor"] = floor;
  state.counters["err_over_floor"] = pivot_err / floor;
}

BENCHMARK(BM_LowerBound)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
