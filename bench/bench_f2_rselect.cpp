// F2 — Theorem 3 (RSelect).
//
// Claims: (a) the chosen vector is within O(1)x of the best candidate's
// distance; (b) probe cost is O(k^2 log n).
//
// Reproduction: k candidates at staggered distances from the player's truth;
// sweep k and report the approximation ratio and probes / (k^2 log2 n).
// The shape: ratio stays ~constant in k; normalized probes stay ~constant.
#include <benchmark/benchmark.h>

#include <cmath>

#include "src/model/generators.hpp"
#include "src/protocols/select.hpp"

namespace colscore {
namespace {

void BM_RSelect(benchmark::State& state) {
  const std::size_t n_objects = 2048;
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t best_dist = 16;
  const std::size_t probes_per_pair = 22;  // ~2 log2 n

  std::vector<ObjectId> objects(n_objects);
  for (ObjectId o = 0; o < n_objects; ++o) objects[o] = o;

  double ratio_total = 0, probes_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      World world = uniform_random(2, n_objects, Rng(seed));
      Population pop(2);
      ProbeOracle oracle(world.matrix);
      BulletinBoard board;
      HonestBeacon beacon(seed);
      ProtocolEnv env(oracle, board, pop, beacon, seed);

      std::vector<BitVector> candidates;
      Rng crng(seed * 13);
      for (std::size_t i = 0; i < k; ++i) {
        BitVector c = world.matrix.row(0);
        c.flip_random(crng, best_dist * (i + 1));  // best is candidate 0
        candidates.push_back(std::move(c));
      }
      const SelectOutcome out =
          rselect(0, candidates, objects, env, seed, probes_per_pair);
      const double chosen_dist =
          static_cast<double>(world.matrix.row(0).hamming(candidates[out.chosen]));
      ratio_total += chosen_dist / static_cast<double>(best_dist);
      probes_total += static_cast<double>(out.probes);
      ++runs;
    }
  }
  const double dk = static_cast<double>(k);
  state.counters["k"] = dk;
  state.counters["approx_ratio"] = ratio_total / static_cast<double>(runs);
  state.counters["probes"] = probes_total / static_cast<double>(runs);
  state.counters["probes_per_k2logn"] =
      probes_total / static_cast<double>(runs) /
      (dk * dk * std::log2(static_cast<double>(n_objects)));
}

BENCHMARK(BM_RSelect)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
