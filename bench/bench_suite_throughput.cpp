// Whole-suite throughput: the tracked perf metric from PR 3 onward.
//
// PR 2 made single kernels fast; the ROADMAP north-star is million-run
// sweeps, so the number that matters is end-to-end runs/sec through
// SuiteRunner — world build, probes, board traffic, clustering, voting,
// select tournaments, metrics — not any one loop. This pins a representative
// grid (n=256,512 x adversary=none,hijacker,sleeper, three seeds, full
// calculate_preferences, OPT off) and times complete suites on one thread.
//
// The acceptance configuration for PR 3 is BM_SuiteThroughput (18 runs);
// tools/bench_to_json.py distills the JSON into BENCH_pr3.json. Build
// Release (-O3 + LTO) for recorded numbers.
#include <benchmark/benchmark.h>

#include <array>
#include <sstream>
#include <string>

#include "src/common/exec_policy.hpp"
#include "src/common/simd.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/sink.hpp"
#include "src/sim/suite.hpp"

namespace colscore {
namespace {

constexpr char kBaseSpec[] =
    "workload=planted budget=8 dishonest=8 opt=0";
constexpr char kGrid[] =
    "n=256,512 x adversary=none,hijacker,sleeper x seed=1,2,3";

std::vector<ScenarioSpec> pinned_specs() {
  return expand_grid(ScenarioSpec::parse(kBaseSpec), parse_grid(kGrid));
}

void BM_SuiteThroughput(benchmark::State& state) {
  const std::vector<ScenarioSpec> specs = pinned_specs();
  SuiteOptions options;
  options.threads = 1;  // single thread: measure work, not the box's cores
  std::size_t runs = 0;
  std::uint64_t total_probes = 0;
  for (auto _ : state) {
    SuiteRunner runner(options);
    const std::vector<SuiteRun> results = runner.run(specs);
    runs = results.size();
    total_probes = 0;
    for (const SuiteRun& r : results) total_probes += r.outcome.total_probes;
    benchmark::DoNotOptimize(total_probes);
  }
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["total_probes"] = static_cast<double>(total_probes);
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsIterationInvariantRate);
}

// The same grid driven through the reps= replication axis (PR 3): 6 cells x
// 3 reps = 18 runs with per-rep derived seeds — the natural stressor for
// multi-seed sweeps, and a check that replication adds no overhead beyond
// the runs themselves.
void BM_SuiteThroughputReps(benchmark::State& state) {
  const std::vector<ScenarioSpec> specs = expand_grid(
      ScenarioSpec::parse(kBaseSpec),
      parse_grid("n=256,512 x adversary=none,hijacker,sleeper"));
  SuiteOptions options;
  options.threads = 1;
  options.reps = 3;
  std::size_t runs = 0;
  for (auto _ : state) {
    SuiteRunner runner(options);
    runs = runner.run(specs).size();
    benchmark::DoNotOptimize(runs);
  }
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsIterationInvariantRate);
}

// The pinned grid streamed through a result sink (PR 4; typed schema since
// PR 5): runs become RunRecords and serialize as JSONL into an in-memory
// buffer, so the number isolates sink overhead on top of BM_SuiteThroughput
// — it must stay noise against the runs themselves (row formatting is
// microseconds per run).
void BM_SuiteThroughputJsonlSink(benchmark::State& state) {
  const std::vector<ScenarioSpec> specs = pinned_specs();
  const MetricSchema schema = [&] {
    std::vector<Scenario> resolved;
    for (const ScenarioSpec& s : specs) resolved.push_back(Scenario::resolve(s));
    return suite_metric_schema(resolved);
  }();
  const std::vector<std::string> columns = default_columns();
  std::size_t runs = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    SinkConfig config;
    config.stream = &out;
    JsonlSink sink(config);
    RecordStream stream(sink, schema, columns);
    SuiteOptions options;
    options.threads = 1;
    options.on_result = [&](const SuiteRun& run) {
      stream.write(make_run_record(run, schema));
    };
    runs = SuiteRunner(options).run(specs).size();
    stream.finish();
    bytes = out.str().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["row_bytes"] = static_cast<double>(bytes);
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsIterationInvariantRate);
}

// Sparse-regime suite throughput (PR 7): large n, many thin planted
// clusters — the configuration where calculate_preferences' neighbor graphs
// auto-select the CSR backend and the SIMD tiers carry the pair sweep. Two
// seeds keep the wall time sane (a single n=2048 run is seconds); the
// label pins the dispatched tier so trajectories compare across machines.
void BM_SuiteThroughputSparse(benchmark::State& state) {
  const std::vector<ScenarioSpec> specs = expand_grid(
      ScenarioSpec::parse("workload=planted budget=8 dishonest=8 opt=0 "
                          "n=2048 clusters=128"),
      parse_grid("seed=1,2"));
  SuiteOptions options;
  options.threads = 1;
  std::size_t runs = 0;
  for (auto _ : state) {
    SuiteRunner runner(options);
    runs = runner.run(specs).size();
    benchmark::DoNotOptimize(runs);
  }
  state.SetLabel(std::string("tier=") + simd::tier_name(simd::active_tier()));
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsIterationInvariantRate);
}

// Two SuiteRunners on disjoint pools driven concurrently (PR 9): the
// ExecPolicy seam end-to-end — per-suite pools and policy-owned workspace
// arenas, no ambient global state shared between the suites. The label and
// counters carry the policy shape so bench_to_json trajectories can split
// on it.
void BM_SuiteThroughputConcurrent(benchmark::State& state) {
  const std::vector<ScenarioSpec> specs = pinned_specs();
  ThreadPool outer(2);
  ThreadPool pool_a(2);
  ThreadPool pool_b(2);
  const ExecPolicy outer_policy = ExecPolicy::pool(outer);
  const ExecPolicy policy_a = ExecPolicy::pool(pool_a);
  const ExecPolicy policy_b = ExecPolicy::pool(pool_b);
  const std::array<const ExecPolicy*, 2> policies = {&policy_a, &policy_b};
  std::size_t runs = 0;
  for (auto _ : state) {
    std::array<std::size_t, 2> suite_runs = {0, 0};
    outer_policy.par_for(
        0, policies.size(),
        [&](std::size_t s) {
          SuiteOptions options;
          options.policy = policies[s];
          suite_runs[s] = SuiteRunner(options).run(specs).size();
        },
        /*grain=*/1);
    runs = suite_runs[0] + suite_runs[1];
    benchmark::DoNotOptimize(runs);
  }
  state.SetLabel("policy=pool suites=2 workers_per_suite=2");
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["suites"] = static_cast<double>(policies.size());
  state.counters["workers_per_suite"] = 2.0;
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_SuiteThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SuiteThroughputConcurrent)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SuiteThroughputSparse)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SuiteThroughputReps)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SuiteThroughputJsonlSink)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
