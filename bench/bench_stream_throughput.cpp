// Steady-state streaming throughput (PR 10): epochs/sec of churn maintenance
// over the pinned grid n=2048, 128 planted clusters, flip_rate=1% (2 bits per
// drifting row), 32 epochs, with light population churn (depart=0.2%,
// arrive=25%) so the alive-set path is exercised too.
//
// The epoch plans — fates AND flip bit positions — are precomputed from one
// seeded Rng, so every iteration replays the exact same row evolution; the
// timed region is pure maintenance work:
//   * BM_StreamEpochs          — StreamSession::apply_epoch (incremental
//                                O(k·n) graph deltas + recluster-iff-dirty),
//                                the shipped path.
//   * BM_StreamEpochsRebuildBaseline — the pre-PR 10 answer: a fresh
//                                alive-masked NeighborGraph + cluster_players
//                                from scratch every epoch, pinned to the SAME
//                                resolved backend so the ratio isolates
//                                incrementality (BENCH_pr10.json acceptance:
//                                >= 5x on epochs_per_s).
// Initial graph construction and row restoration happen under PauseTiming —
// steady state means the build cost is amortized away, exactly the regime the
// churn workload lives in. Labels carry SIMD tier + resolved backend like
// every other bench. Build Release (-O3) for recorded numbers.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/bitmatrix.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/simd.hpp"
#include "src/protocols/stream.hpp"

namespace colscore {
namespace {

constexpr std::size_t kN = 2048;
constexpr std::size_t kGroups = 128;   // planted clusters, expected degree ~15
constexpr std::size_t kDim = 2048;
constexpr std::size_t kSpread = 40;    // intra-cluster flip count
constexpr std::size_t kTau = 96;       // sparse regime: auto resolves to CSR
constexpr std::size_t kMinCluster = kN / kGroups * 2 / 3;
constexpr std::size_t kEpochs = 32;
constexpr double kFlipRate = 0.01;
constexpr std::size_t kFlipBits = 2;
constexpr double kDepartRate = 0.002;
constexpr double kArriveRate = 0.25;

// Maintenance benches run serially: measure the delta path, not the box.
const ExecPolicy kSerial = ExecPolicy::serial();

/// One epoch's precomputed script: the update batch plus the exact bit
/// positions every drifting row flips (replayable, unlike live Rng draws).
struct EpochPlan {
  std::vector<RowUpdate> batch;
  std::vector<std::pair<PlayerId, std::size_t>> flips;  // (player, bit)
};

bool chance(Rng& rng, double p) {
  return static_cast<double>(rng() >> 11) * 0x1p-53 < p;
}

BitMatrix make_z_family(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> centers;
  for (std::size_t g = 0; g < kGroups; ++g)
    centers.push_back(random_bitvector(kDim, rng));
  BitMatrix z(kN, kDim);
  for (std::size_t i = 0; i < kN; ++i) {
    BitVector v = centers[i % kGroups];
    v.flip_random(rng, kSpread);
    z.row(i) = v;
  }
  return z;
}

std::vector<EpochPlan> make_plans(std::uint64_t seed) {
  Rng rng(seed);
  BitVector alive(kN, true);
  std::vector<EpochPlan> plans(kEpochs);
  for (EpochPlan& plan : plans) {
    for (PlayerId p = 0; p < kN; ++p) {
      if (alive.get(p)) {
        if (chance(rng, kDepartRate)) {
          alive.set(p, false);
          plan.batch.push_back({p, UpdateKind::kDepart});
        } else if (chance(rng, kFlipRate)) {
          plan.batch.push_back({p, UpdateKind::kFlip});
        }
      } else if (chance(rng, kArriveRate)) {
        alive.set(p, true);
        plan.batch.push_back({p, UpdateKind::kArrive});
      }
    }
    for (const RowUpdate& u : plan.batch)
      if (u.kind == UpdateKind::kFlip)
        for (std::size_t b = 0; b < kFlipBits; ++b)
          plan.flips.emplace_back(u.player, rng.below(kDim));
  }
  return plans;
}

void replay_flips(BitMatrix& z, const EpochPlan& plan) {
  for (const auto& [p, bit] : plan.flips) z.row(p).flip(bit);
}

std::string config_label(GraphBackend resolved) {
  return std::string("tier=") + simd::tier_name(simd::active_tier()) +
         " backend=" + backend_name(resolved);
}

/// The backend the shipped auto heuristic picks on this grid; the baseline
/// pins the same one so the comparison is incremental-vs-rebuild, not
/// csr-vs-dense.
GraphBackend resolved_backend(const BitMatrix& pristine) {
  return NeighborGraph(pristine, kTau, GraphBackend::kAuto, kSerial).backend();
}

void BM_StreamEpochs(benchmark::State& state) {
  const BitMatrix pristine = make_z_family(42);
  const std::vector<EpochPlan> plans = make_plans(7);
  GraphBackend resolved = GraphBackend::kAuto;
  std::size_t edges_changed = 0, reclusters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BitMatrix z = pristine;  // every iteration replays the same evolution
    const std::vector<ConstBitRow> views = z.row_views();
    StreamSession session(views, kTau, kMinCluster, GraphBackend::kAuto,
                          kSerial);
    resolved = session.graph().backend();
    state.ResumeTiming();
    for (const EpochPlan& plan : plans) {
      replay_flips(z, plan);
      session.apply_epoch(plan.batch, kSerial);
    }
    benchmark::DoNotOptimize(session.clustering().clusters.size());
    state.PauseTiming();
    edges_changed = session.totals().edges_changed;
    reclusters = session.totals().reclusters;
    state.ResumeTiming();
  }
  state.SetLabel(config_label(resolved));
  state.counters["edges_changed"] = static_cast<double>(edges_changed);
  state.counters["reclusters"] = static_cast<double>(reclusters);
  state.counters["epochs_per_s"] = benchmark::Counter(
      static_cast<double>(kEpochs), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_StreamEpochsRebuildBaseline(benchmark::State& state) {
  const BitMatrix pristine = make_z_family(42);
  const std::vector<EpochPlan> plans = make_plans(7);
  const GraphBackend backend = resolved_backend(pristine);
  for (auto _ : state) {
    state.PauseTiming();
    BitMatrix z = pristine;
    const std::vector<ConstBitRow> views = z.row_views();
    BitVector alive(kN, true);
    state.ResumeTiming();
    for (const EpochPlan& plan : plans) {
      replay_flips(z, plan);
      for (const RowUpdate& u : plan.batch) {
        if (u.kind == UpdateKind::kDepart) alive.set(u.player, false);
        if (u.kind == UpdateKind::kArrive) alive.set(u.player, true);
      }
      const NeighborGraph graph(views, kTau, backend, kSerial, &alive);
      const Clustering c = cluster_players(graph, kMinCluster);
      benchmark::DoNotOptimize(c.clusters.size());
    }
  }
  state.SetLabel(config_label(backend));
  state.counters["epochs_per_s"] = benchmark::Counter(
      static_cast<double>(kEpochs), benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_StreamEpochs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamEpochsRebuildBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
