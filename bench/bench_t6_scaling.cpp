// T6 — simulator throughput (the HPC harness itself).
//
// Two views:
//   * Parallel kernels — the O(n^2) phases (neighbor-graph construction,
//     empirical-OPT radius scan) are embarrassingly parallel over players;
//     the thread sweep should show near-linear speedup.
//   * Full protocol — end-to-end wall time per thread count. The protocol
//     interleaves parallel per-player work with serialized bulletin-board
//     publication (determinism requirement), so Amdahl's law caps the
//     end-to-end speedup; the kernels show the parallel headroom.
// Outputs are identical across thread counts (ThreadDeterminism test).
#include <benchmark/benchmark.h>

#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/metrics/optimal.hpp"
#include "src/protocols/neighbor_graph.hpp"
#include "src/sim/suite.hpp"

namespace colscore {
namespace {

void BM_NeighborGraphKernel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  const std::size_t n = 3072, dim = 768;
  Rng rng(1);
  std::vector<BitVector> z;
  z.reserve(n);
  for (std::size_t i = 0; i < n; ++i) z.push_back(random_bitvector(dim, rng));

  double seconds = 0;
  for (auto _ : state) {
    Timer timer;
    const NeighborGraph graph(z, dim / 3, GraphBackend::kAuto, policy);
    benchmark::DoNotOptimize(graph.degree(0));
    seconds = timer.seconds();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_s"] = seconds;
  state.counters["pairs_per_s"] =
      static_cast<double>(n) * static_cast<double>(n) / seconds;
}

void BM_OptRadiusKernel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  const World world = planted_clusters(2048, 2048, 8, 16, Rng(2));

  double seconds = 0;
  for (auto _ : state) {
    Timer timer;
    const OptEstimate est = opt_radius(world.matrix, 256, policy);
    benchmark::DoNotOptimize(est.max_radius);
    seconds = timer.seconds();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_s"] = seconds;
}

void BM_FullProtocol(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  const ExecPolicy policy = ExecPolicy::pool(pool);

  Scenario scenario;
  scenario.n = 512;
  scenario.budget = 8;
  scenario.diameter = 16;
  scenario.seed = 33;
  scenario.compute_opt = false;

  double seconds = 0;
  for (auto _ : state) {
    const ExperimentOutcome out = run_scenario(scenario, policy);
    seconds = out.wall_seconds;
    state.counters["max_err"] = static_cast<double>(out.error.max_error);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_s"] = seconds;
}

void BM_SuiteGrid(benchmark::State& state) {
  // Suite-level parallelism: a 3x2 grid of full scenarios executed by the
  // SuiteRunner across worker threads (run-level, on top of the per-run
  // data-parallelism). Outputs are schedule-independent by construction.
  const auto threads = static_cast<std::size_t>(state.range(0));
  ScenarioSpec base;
  base.set("n", "256").set("budget", "8").set("opt", "0");

  SuiteOptions options;
  options.threads = threads;
  SuiteRunner runner(options);

  double seconds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    Timer timer;
    const auto results =
        runner.run_grid(base, "adversary=none,sleeper,random_liar x dishonest=0,8");
    runs = results.size();
    seconds = timer.seconds();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["grid_runs"] = static_cast<double>(runs);
  state.counters["wall_s"] = seconds;
}

BENCHMARK(BM_NeighborGraphKernel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

BENCHMARK(BM_OptRadiusKernel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

BENCHMARK(BM_FullProtocol)
    ->Arg(1)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

BENCHMARK(BM_SuiteGrid)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
