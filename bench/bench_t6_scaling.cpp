// T6 — simulator throughput (the HPC harness itself).
//
// Two views:
//   * Parallel kernels — the O(n^2) phases (neighbor-graph construction,
//     empirical-OPT radius scan) are embarrassingly parallel over players;
//     the thread sweep should show near-linear speedup.
//   * Full protocol — end-to-end wall time per thread count. The protocol
//     interleaves parallel per-player work with serialized bulletin-board
//     publication (determinism requirement), so Amdahl's law caps the
//     end-to-end speedup; the kernels show the parallel headroom.
// Outputs are identical across thread counts (ThreadDeterminism test).
#include <benchmark/benchmark.h>

#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/metrics/optimal.hpp"
#include "src/protocols/neighbor_graph.hpp"
#include "src/sim/experiment.hpp"

namespace colscore {
namespace {

void BM_NeighborGraphKernel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool::reset_global(threads);
  const std::size_t n = 3072, dim = 768;
  Rng rng(1);
  std::vector<BitVector> z;
  z.reserve(n);
  for (std::size_t i = 0; i < n; ++i) z.push_back(random_bitvector(dim, rng));

  double seconds = 0;
  for (auto _ : state) {
    Timer timer;
    const NeighborGraph graph(z, dim / 3);
    benchmark::DoNotOptimize(graph.degree(0));
    seconds = timer.seconds();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_s"] = seconds;
  state.counters["pairs_per_s"] =
      static_cast<double>(n) * static_cast<double>(n) / seconds;
  ThreadPool::reset_global(0);
}

void BM_OptRadiusKernel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool::reset_global(threads);
  const World world = planted_clusters(2048, 2048, 8, 16, Rng(2));

  double seconds = 0;
  for (auto _ : state) {
    Timer timer;
    const OptEstimate est = opt_radius(world.matrix, 256);
    benchmark::DoNotOptimize(est.max_radius);
    seconds = timer.seconds();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_s"] = seconds;
  ThreadPool::reset_global(0);
}

void BM_FullProtocol(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool::reset_global(threads);

  ExperimentConfig config;
  config.n = 512;
  config.budget = 8;
  config.diameter = 16;
  config.seed = 33;
  config.compute_opt = false;

  double seconds = 0;
  for (auto _ : state) {
    const ExperimentOutcome out = run_experiment(config);
    seconds = out.wall_seconds;
    state.counters["max_err"] = static_cast<double>(out.error.max_error);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_s"] = seconds;
  ThreadPool::reset_global(0);
}

BENCHMARK(BM_NeighborGraphKernel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

BENCHMARK(BM_OptRadiusKernel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

BENCHMARK(BM_FullProtocol)
    ->Arg(1)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
