// T5 — the §8 extensions.
//
//  * Heterogeneous budgets: probe load follows each player's declared
//    budget while cluster accuracy is unchanged (weighted vote assignment).
//  * Non-binary scores: threshold decomposition across R-1 layers keeps the
//    L1 error at O(D) with a (R-1)x probe overhead.
#include <benchmark/benchmark.h>

#include "src/ext/hetero.hpp"
#include "src/ext/scored.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

void BM_HeteroBudgets(benchmark::State& state) {
  const std::size_t n = 64, n_objects = 512;
  const auto big_weight = static_cast<std::size_t>(state.range(0));

  double big_mean = 0, small_mean = 0, err = 0;
  for (auto _ : state) {
    World world = identical_clusters(n, n_objects, 1, Rng(5));
    Population pop(n);
    ProbeOracle oracle(world.matrix);
    BulletinBoard board;
    HonestBeacon beacon(6);
    ProtocolEnv env(oracle, board, pop, beacon, 7);

    std::vector<PlayerId> members(n);
    for (PlayerId p = 0; p < n; ++p) members[p] = p;
    std::vector<std::size_t> budgets(n, 1);
    for (std::size_t i = 0; i < n / 4; ++i) budgets[i] = big_weight;

    WorkShareParams params;
    params.votes_per_object = 10;
    const BitVector prediction =
        weighted_cluster_votes(members, budgets, env, 1, params);
    err = static_cast<double>(prediction.hamming(world.matrix.row(0)));

    std::uint64_t big = 0, small = 0;
    for (PlayerId p = 0; p < n / 4; ++p) big += oracle.probes_by(p);
    for (PlayerId p = n / 4; p < n; ++p) small += oracle.probes_by(p);
    big_mean = static_cast<double>(big) / (n / 4.0);
    small_mean = static_cast<double>(small) / (3.0 * n / 4.0);
  }
  state.counters["big_weight"] = static_cast<double>(big_weight);
  state.counters["big_load"] = big_mean;
  state.counters["small_load"] = small_mean;
  state.counters["load_ratio"] = small_mean > 0 ? big_mean / small_mean : 0;
  state.counters["err"] = err;
}

void BM_ScoredLevels(benchmark::State& state) {
  const auto levels = static_cast<std::uint8_t>(state.range(0));
  const std::size_t l1_diam = 8;

  double err = 0, probes = 0;
  for (auto _ : state) {
    const ScoredWorld world =
        planted_scored_clusters(128, 128, 4, levels, l1_diam, Rng(11));
    Population pop(128);
    const ScoredResult r =
        scored_calculate_preferences(world, pop, Params::practical(4), 12);
    err = static_cast<double>(scored_max_error(world, pop, r));
    probes = static_cast<double>(r.max_probes);
  }
  state.counters["levels"] = static_cast<double>(levels);
  state.counters["l1_max_err"] = err;
  state.counters["l1_diameter"] = static_cast<double>(l1_diam);
  state.counters["max_probes"] = probes;
  state.counters["probes_per_layer"] =
      probes / static_cast<double>(levels - 1);
}

void BM_ScoredByzantine(benchmark::State& state) {
  double err = 0;
  for (auto _ : state) {
    const ScoredWorld world = planted_scored_clusters(128, 128, 4, 4, 8, Rng(13));
    Population pop(128);
    Rng rng(14);
    pop.corrupt_random(10, rng, [] { return std::make_unique<Sleeper>(); });
    const ScoredResult r =
        scored_calculate_preferences(world, pop, Params::practical(4), 15);
    err = static_cast<double>(scored_max_error(world, pop, r));
  }
  state.counters["l1_max_err"] = err;
  state.counters["l1_diameter"] = 8;
  state.counters["dishonest"] = 10;
}

BENCHMARK(BM_HeteroBudgets)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ScoredLevels)
    ->Arg(2)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ScoredByzantine)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
