// Shared helpers for the experiment benches. Every bench reports its
// scientific outputs (errors, probes, ratios) as google-benchmark counters so
// the numbers appear in the standard bench output next to the timings.
#pragma once

#include <benchmark/benchmark.h>

#include "src/sim/registry.hpp"

namespace colscore::benchutil {

inline void attach_outcome(benchmark::State& state, const ExperimentOutcome& out) {
  state.counters["max_err"] = static_cast<double>(out.error.max_error);
  state.counters["mean_err"] = out.error.mean_error;
  state.counters["max_probes"] = static_cast<double>(out.max_probes);
  state.counters["total_probes"] = static_cast<double>(out.total_probes);
  if (out.opt.radius.empty()) return;
  state.counters["opt_radius"] = out.opt.mean_radius;
  state.counters["err_over_opt"] = out.approx_ratio;
}

}  // namespace colscore::benchutil
