// F6 — Lemmas 7-9 (neighbor graph + clustering), including the hijack case.
//
// Claims: every cluster has >= ~n/B members (Lemma 9.2); cluster diameter in
// true preference space is O(D) (Lemma 9.3); hijackers mimicking a victim
// join its cluster but cannot exceed ~1/3 of it (the §7.2 precondition for
// vote domination).
//
// Reproduction: run the full protocol on planted clusters with 0 or n/(3B)
// hijackers and report, from the per-iteration diagnostics plus a replayed
// clustering, cluster counts, sizes, diameter/D, and the dishonest fraction
// of the victim's cluster.
#include <benchmark/benchmark.h>

#include "src/core/calculate_preferences.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

void BM_Clustering(benchmark::State& state) {
  const std::size_t n = 256;
  const std::size_t budget = 8;
  const std::size_t D = 16;
  const bool with_hijackers = state.range(0) != 0;
  const std::size_t byz = with_hijackers ? n / (3 * budget) : 0;

  double clusters_total = 0, min_cluster_total = 0, orphans_total = 0;
  double victim_err_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      World world = planted_clusters(n, n, budget, D, Rng(seed * 11));
      Population pop(n);
      if (with_hijackers) {
        Rng rng(seed);
        pop.corrupt_random(
            byz, rng,
            [&world] { return std::make_unique<ClusterHijacker>(world.matrix, 0); },
            /*protected_player=*/0);
      }
      ProbeOracle oracle(world.matrix);
      BulletinBoard board;
      HonestBeacon beacon(seed);
      ProtocolEnv env(oracle, board, pop, beacon, seed);
      const ProtocolResult r =
          calculate_preferences(env, Params::practical(budget), seed);

      // Diagnose the full-universe iteration (index 0, the one that matches
      // the planted D < saturation regime).
      const IterationInfo& it = r.iterations.front();
      clusters_total += static_cast<double>(it.clusters);
      min_cluster_total += static_cast<double>(it.min_cluster);
      orphans_total += static_cast<double>(it.orphans);
      victim_err_total +=
          static_cast<double>(world.matrix.row(0).hamming(r.outputs[0]));
      ++runs;
    }
  }
  const auto dr = static_cast<double>(runs);
  state.counters["hijackers"] = static_cast<double>(byz);
  state.counters["clusters"] = clusters_total / dr;
  state.counters["planted_clusters"] = static_cast<double>(budget);
  state.counters["min_cluster"] = min_cluster_total / dr;
  state.counters["n_over_B"] = static_cast<double>(n / budget);
  state.counters["orphans"] = orphans_total / dr;
  state.counters["victim_err"] = victim_err_total / dr;
  state.counters["D"] = static_cast<double>(D);
}

BENCHMARK(BM_Clustering)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
