// T4 — ablations of the design choices DESIGN.md calls out.
//
// Each row removes one defense and measures the damage under the same
// Byzantine workload (sleepers at the n/(3B) bound on planted clusters):
//   control      — full protocol defaults;
//   votes1       — no vote redundancy (1 probe per object instead of
//                  Θ(log n)): Lemma 13's domination argument has nothing to
//                  work with and error blows up;
//   slack0       — cluster formation demands the full n/B degree: clusters
//                  containing non-cooperating dishonest members can never
//                  form (see Params::cluster_slack);
//   tau_uncapped — the paper's literal 220 ln n edge threshold at laptop n:
//                  it exceeds typical inter-cluster distances and merges
//                  everything into one cluster;
//   biased_beacon— a dishonest leader grinds the shared randomness to
//                  starve the protocol's sample sets (smallest |S| wins),
//                  demonstrating why §7.1 repeats under fresh leaders.
#include <benchmark/benchmark.h>

#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

struct AblationResult {
  std::size_t max_err = 0;
  double mean_err = 0;
  std::size_t clusters_iter0 = 0;
};

/// A dishonest leader's worst-case beacon: one constant seed for every
/// phase. Every per-object vote assignment then draws the same member
/// pattern, so a handful of players cast ALL the votes — if any of them is a
/// sleeper, it controls a constant fraction of every object's ballot.
class ConstantBeacon final : public RandomnessBeacon {
 public:
  std::uint64_t seed_for(std::uint64_t) override { return 0xdeadULL; }
  bool honest() const override { return false; }
};

enum class Foe { kSleeper, kLiar };

AblationResult run_case(const Params& params, bool biased_beacon, Foe foe) {
  const std::size_t n = 256, budget = 8, D = 12;
  World world = planted_clusters(n, n, budget, D, Rng(4242));
  Population pop(n);
  Rng rng(7);
  pop.corrupt_random(n / (3 * budget), rng, [&]() -> std::unique_ptr<Behavior> {
    if (foe == Foe::kSleeper) return std::make_unique<Sleeper>();
    return std::make_unique<RandomLiar>();
  });
  ProbeOracle oracle(world.matrix);
  BulletinBoard board;

  std::unique_ptr<RandomnessBeacon> beacon;
  if (biased_beacon) {
    beacon = std::make_unique<ConstantBeacon>();
  } else {
    beacon = std::make_unique<HonestBeacon>(99);
  }
  ProtocolEnv env(oracle, board, pop, *beacon, 5);
  const ProtocolResult r = calculate_preferences(env, params, 6);

  AblationResult out;
  const auto honest = pop.honest_players();
  const auto errors = hamming_errors(world.matrix, r.outputs, honest);
  double sum = 0;
  for (auto e : errors) {
    out.max_err = std::max(out.max_err, e);
    sum += static_cast<double>(e);
  }
  out.mean_err = sum / static_cast<double>(errors.size());
  out.clusters_iter0 = r.iterations.empty() ? 0 : r.iterations.front().clusters;
  return out;
}

void report(benchmark::State& state, const AblationResult& r) {
  state.counters["max_err"] = static_cast<double>(r.max_err);
  state.counters["mean_err"] = r.mean_err;
  state.counters["clusters_iter0"] = static_cast<double>(r.clusters_iter0);
}

void BM_ControlSleepers(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) r = run_case(Params::practical(8), false, Foe::kSleeper);
  report(state, r);
}

void BM_ControlLiars(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) r = run_case(Params::practical(8), false, Foe::kLiar);
  report(state, r);
}

void BM_NoVoteRedundancy(benchmark::State& state) {
  Params p = Params::practical(8);
  p.vote_c = 0.0;
  p.vote_min = 1;
  AblationResult r;
  for (auto _ : state) r = run_case(p, false, Foe::kSleeper);
  report(state, r);
}

void BM_NoClusterSlack(benchmark::State& state) {
  // Liars garble their published sample vectors, so clusters containing
  // them cannot reach the full n/B degree; without slack they never form.
  Params p = Params::practical(8);
  p.cluster_slack = 0.0;
  AblationResult r;
  for (auto _ : state) r = run_case(p, false, Foe::kLiar);
  report(state, r);
}

void BM_UncappedTau(benchmark::State& state) {
  Params p = Params::practical(8);
  p.graph_tau_c = 220.0;  // the paper's literal constant
  p.graph_tau_sample_frac = 1.0;
  AblationResult r;
  for (auto _ : state) r = run_case(p, false, Foe::kSleeper);
  report(state, r);
}

void BM_BiasedBeacon(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) r = run_case(Params::practical(8), true, Foe::kSleeper);
  report(state, r);
}

BENCHMARK(BM_ControlSleepers)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ControlLiars)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_NoVoteRedundancy)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_NoClusterSlack)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_UncappedTau)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_BiasedBeacon)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
