// F8 — Lemma 12 + Theorem 14 (end-to-end accuracy, honest and Byzantine).
//
// Claims: max error over honest players is O(D); with up to n/(3B) dishonest
// players there is NO asymptotic loss of accuracy (the headline result).
//
// Reproduction: (a) honest sweep over planted D — err_over_D stays ~constant;
// (b) adversary sweep at fixed D over multiples of the tolerance — error
// stays flat up to 1x the bound, then degrades past it.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace colscore {
namespace {

void BM_Accuracy_HonestSweepD(benchmark::State& state) {
  Scenario scenario;
  scenario.n = 256;
  scenario.budget = 8;
  scenario.diameter = static_cast<std::size_t>(state.range(0));
  scenario.seed = 5;
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["D"] = static_cast<double>(scenario.diameter);
  state.counters["err_over_D"] =
      static_cast<double>(out.error.max_error) /
      std::max<double>(1.0, static_cast<double>(scenario.diameter));
}

void BM_Accuracy_ByzantineSweep(benchmark::State& state) {
  Scenario scenario;
  scenario.n = 256;
  scenario.budget = 8;
  scenario.diameter = 12;
  scenario.seed = 6;
  scenario.adversary = "sleeper";
  const std::size_t tolerance = scenario.n / (3 * scenario.budget);
  // range is dishonest count in units of tolerance/2.
  scenario.dishonest = static_cast<std::size_t>(state.range(0)) * tolerance / 2;
  scenario.compute_opt = false;
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["dishonest"] = static_cast<double>(scenario.dishonest);
  state.counters["tolerance"] = static_cast<double>(tolerance);
  state.counters["err_over_D"] =
      static_cast<double>(out.error.max_error) / 12.0;
}

void BM_Accuracy_StrangeColluders(benchmark::State& state) {
  // Lemma 13's crux adversary: omniscient colluders that vote with the
  // honest minority exactly on the "strange" (split) objects — the only
  // votes that can flip. Error must stay O(D) at the tolerance bound.
  Scenario scenario;
  scenario.n = 256;
  scenario.budget = 8;
  scenario.diameter = 12;
  scenario.seed = 8;
  scenario.adversary = "strange_colluder";
  scenario.dishonest = static_cast<std::size_t>(state.range(0)) *
                       (scenario.n / (3 * scenario.budget)) / 2;
  scenario.compute_opt = false;
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["dishonest"] = static_cast<double>(scenario.dishonest);
  state.counters["err_over_D"] = static_cast<double>(out.error.max_error) / 12.0;
}

void BM_Accuracy_RobustWrapper(benchmark::State& state) {
  // The §7 wrapper (leader election + repetitions) at the tolerance bound.
  Scenario scenario;
  scenario.n = 192;
  scenario.budget = 8;
  scenario.diameter = 12;
  scenario.seed = 7;
  scenario.algorithm = "robust";
  scenario.robust_outer_reps = 3;
  scenario.adversary = "sleeper";
  scenario.dishonest = scenario.n / (3 * scenario.budget);
  scenario.compute_opt = false;
  ExperimentOutcome out;
  for (auto _ : state) out = run_scenario(scenario);
  benchutil::attach_outcome(state, out);
  state.counters["honest_leader_reps"] =
      static_cast<double>(out.honest_leader_reps);
}

BENCHMARK(BM_Accuracy_HonestSweepD)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Accuracy_ByzantineSweep)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)  // exactly the n/(3B) bound
    ->Arg(4)
    ->Arg(8)  // 4x past the bound
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Accuracy_StrangeColluders)
    ->Arg(0)
    ->Arg(2)  // exactly the n/(3B) bound
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Accuracy_RobustWrapper)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
