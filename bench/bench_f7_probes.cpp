// F7 — Lemmas 10-11 (probe complexity).
//
// Claims: no player makes more than O(B polylog n) probes; the voting phase
// alone costs O(B log n) per player.
//
// Reproduction: sweep n at fixed B, and B at fixed n, reporting the max
// per-player probe count. The shape: probes/n FALLS as n grows (sublinear
// growth — the collaboration actually saves work at scale, unlike the
// probe-everything baseline), and probes grow ~linearly in B at fixed n/B
// cluster structure.
#include <benchmark/benchmark.h>

#include "src/sim/registry.hpp"

namespace colscore {
namespace {

void run_probe_sweep(benchmark::State& state, std::size_t n, std::size_t budget) {
  Scenario scenario;
  scenario.n = n;
  scenario.budget = budget;
  scenario.diameter = 16;
  scenario.seed = 3;
  scenario.compute_opt = false;

  double max_probes = 0, honest_max = 0, max_err = 0;
  for (auto _ : state) {
    const ExperimentOutcome out = run_scenario(scenario);
    max_probes = static_cast<double>(out.max_probes);
    honest_max = static_cast<double>(out.honest_max_probes);
    max_err = static_cast<double>(out.error.max_error);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["B"] = static_cast<double>(budget);
  state.counters["max_probes"] = max_probes;
  state.counters["honest_max_probes"] = honest_max;
  state.counters["probes_over_n"] = max_probes / static_cast<double>(n);
  state.counters["max_err"] = max_err;
}

void BM_Probes_SweepN(benchmark::State& state) {
  run_probe_sweep(state, static_cast<std::size_t>(state.range(0)), 8);
}

void BM_Probes_SweepB(benchmark::State& state) {
  run_probe_sweep(state, 1024, static_cast<std::size_t>(state.range(0)));
}

BENCHMARK(BM_Probes_SweepN)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Probes_SweepB)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace colscore

BENCHMARK_MAIN();
