#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>

namespace colscore {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t threads = thread_count();
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (grain == 0) grain = std::max<std::size_t>(1, count / (threads * 8));

  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> pending;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin);

  const std::size_t n_tasks = std::min(threads, (count + grain - 1) / grain);
  shared->pending.store(n_tasks);

  auto run_chunks = [shared, end, grain, &body] {
    for (;;) {
      const std::size_t lo = shared->next.fetch_add(grain);
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
        shared->next.store(end);  // cancel remaining chunks
        break;
      }
    }
  };

  {
    std::lock_guard lock(mutex_);
    for (std::size_t t = 0; t + 1 < n_tasks; ++t) {
      tasks_.emplace([shared, run_chunks] {
        run_chunks();
        if (shared->pending.fetch_sub(1) == 1) {
          std::lock_guard done_lock(shared->done_mutex);
          shared->done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // The calling thread participates too.
  run_chunks();
  if (shared->pending.fetch_sub(1) != 1) {
    // Help-drain the pool queue while waiting: a nested parallel_for invoked
    // from a worker thread must not deadlock when every worker is blocked in
    // its own wait — someone has to keep executing queued subtasks.
    for (;;) {
      if (shared->pending.load() == 0) break;
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_, std::try_to_lock);
        if (lock.owns_lock() && !tasks_.empty()) {
          task = std::move(tasks_.front());
          tasks_.pop();
        }
      }
      if (task) {
        task();
      } else {
        std::unique_lock lock(shared->done_mutex);
        shared->done_cv.wait_for(lock, std::chrono::microseconds(50),
                                 [&] { return shared->pending.load() == 0; });
      }
    }
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_mutex());
  return *global_slot();
}

void ThreadPool::reset_global(std::size_t threads) {
  std::lock_guard lock(global_mutex());
  global_slot() = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace colscore
