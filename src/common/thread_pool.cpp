#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>

namespace colscore {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain, const ThreadScope& scope) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t threads = thread_count();
  if (threads <= 1 || count == 1) {
    const auto inline_loop = [&] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    };
    if (scope) {
      scope(inline_loop);
    } else {
      inline_loop();
    }
    return;
  }
  if (grain == 0) grain = std::max<std::size_t>(1, count / (threads * 8));

  // Completion tracks claimed-and-running CHUNKS, not queued helper tasks.
  // Helpers that never get scheduled are harmless (they claim nothing and
  // never touch `body` once next >= end), so the caller does not need to
  // execute foreign queue entries while it waits. That matters beyond
  // latency: a waiting thread that ran an arbitrary queued task could
  // re-enter protocol code mid-frame — and protocol frames keep live state
  // in the per-thread RunWorkspace, which an interleaved second run would
  // overwrite. A waiting thread therefore only ever waits for in-flight
  // chunk bodies; loops self-complete through the caller's own claiming
  // loop, so nesting cannot deadlock.
  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> in_flight{0};
    std::size_t end = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin);
  shared->end = end;
  shared->body = &body;

  const std::size_t n_tasks = std::min(threads, (count + grain - 1) / grain);

  // `scope` is copied into run_chunks (and thus into every queued task):
  // a helper scheduled after the caller returned must still own the
  // per-thread context it binds, not borrow it from a dead frame.
  auto run_chunks = [grain, scope](const std::shared_ptr<Shared>& s) {
    const auto claim_loop = [&] {
      for (;;) {
        // in_flight brackets the claim: once a thread holds a chunk with
        // lo < end, the caller cannot observe (next >= end && in_flight == 0)
        // and so cannot return while s->body is being used.
        s->in_flight.fetch_add(1);
        const std::size_t lo = s->next.fetch_add(grain);
        if (lo >= s->end) {
          if (s->in_flight.fetch_sub(1) == 1) {
            std::lock_guard done_lock(s->done_mutex);
            s->done_cv.notify_all();
          }
          break;
        }
        const std::size_t hi = std::min(s->end, lo + grain);
        try {
          for (std::size_t i = lo; i < hi; ++i) (*s->body)(i);
        } catch (...) {
          std::lock_guard lock(s->error_mutex);
          if (!s->error) s->error = std::current_exception();
          s->next.store(s->end);  // cancel remaining chunks
        }
        if (s->in_flight.fetch_sub(1) == 1) {
          std::lock_guard done_lock(s->done_mutex);
          s->done_cv.notify_all();
        }
      }
    };
    if (scope) {
      scope(claim_loop);
    } else {
      claim_loop();
    }
  };

  {
    std::lock_guard lock(mutex_);
    for (std::size_t t = 0; t + 1 < n_tasks; ++t)
      tasks_.emplace([shared, run_chunks] { run_chunks(shared); });
  }
  cv_.notify_all();

  // The calling thread participates too; when its claiming loop exits,
  // every chunk has been claimed (next >= end) and only bodies already
  // running on other threads remain.
  run_chunks(shared);
  while (shared->in_flight.load() != 0) {
    std::unique_lock lock(shared->done_mutex);
    shared->done_cv.wait_for(lock, std::chrono::microseconds(50),
                             [&] { return shared->in_flight.load() == 0; });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

void sleep_for_seconds(double seconds) {
  if (!(seconds > 0)) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_mutex());
  return *global_slot();
}

void ThreadPool::reset_global(std::size_t threads) {
  std::lock_guard lock(global_mutex());
  global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace colscore
