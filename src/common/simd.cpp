// SIMD kernel tiers + runtime CPU dispatch (see simd.hpp for the contract).
//
// Every intrinsic in the repo lives in this file. The AVX paths are built
// with per-function target attributes, so the translation unit compiles with
// the project's baseline flags and the binary still runs on machines without
// the features — the dispatcher only ever installs a table the CPU (and the
// operating system's xsave state) actually supports.
//
// Result-identical by construction: the vector bulk loops reduce exactly the
// same XOR+popcount terms as the scalar forms, remainders go through the
// shared scalar tail helpers in bitkernel::scalar, and the early exit of
// hamming_exceeds only moves *when* the scan stops, never the returned bool.
// tests/test_simd.cpp cross-checks every tier against the scalar reference.

#include "src/common/simd.hpp"

#include <cstring>

#include "src/common/bitkernels.hpp"
#include "src/common/log.hpp"

#if defined(__GNUC__) && defined(__x86_64__)
#define COLSCORE_SIMD_X86 1
#include <cpuid.h>
#include <immintrin.h>
// _mm512_reduce_add_epi64 expands through _mm256_undefined_si256, whose
// deliberately-uninitialized value GCC 12 flags at every use site.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#else
#define COLSCORE_SIMD_X86 0
#endif

namespace colscore::simd {

namespace {

using bitkernel::kWordBits;
using bitkernel::low_mask;
using bitkernel::word_count;

#if COLSCORE_SIMD_X86

// ---- AVX2 tier --------------------------------------------------------------

/// Per-lane popcount of one 256-bit vector via the nibble LUT + psadbw trick:
/// returns four 64-bit partial sums.
__attribute__((target("avx2"))) inline __m256i popcnt256(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::uint64_t hsum256(__m256i v) noexcept {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// Harley-Seal carry-save adder step: (h, l) = full-adder(a, b, c).
__attribute__((target("avx2"))) inline void csa256(__m256i& h, __m256i& l,
                                                   __m256i a, __m256i b,
                                                   __m256i c) noexcept {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

/// Harley-Seal popcount over 8-vector (32-word) blocks: the carry-save tree
/// defers the LUT popcount to one eighth of the loads, so the bulk loop is
/// mostly cheap boolean ops. Remainder vectors go through popcnt256, the
/// word-level remainder through the shared scalar tail.
__attribute__((target("avx2"))) inline __m256i load256(
    const std::uint64_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

__attribute__((target("avx2"))) inline __m256i load_xor256(
    const std::uint64_t* a, const std::uint64_t* b) noexcept {
  return _mm256_xor_si256(load256(a), load256(b));
}

__attribute__((target("avx2"))) std::size_t popcount_avx2(
    const std::uint64_t* w, std::size_t words) noexcept {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  std::size_t i = 0;
  __m256i tA, tB, fA;  // carry outputs of the adder tree
  for (; i + 32 <= words; i += 32) {
    csa256(tA, ones, ones, load256(w + i), load256(w + i + 4));
    csa256(tB, ones, ones, load256(w + i + 8), load256(w + i + 12));
    csa256(fA, twos, twos, tA, tB);
    csa256(tA, ones, ones, load256(w + i + 16), load256(w + i + 20));
    csa256(tB, ones, ones, load256(w + i + 24), load256(w + i + 28));
    csa256(tB, twos, twos, tA, tB);
    csa256(fA, fours, fours, fA, tB);
    total = _mm256_add_epi64(total, popcnt256(fA));
  }
  total = _mm256_slli_epi64(total, 3);  // eights weigh 8
  total = _mm256_add_epi64(
      total, _mm256_slli_epi64(popcnt256(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcnt256(twos), 1));
  total = _mm256_add_epi64(total, popcnt256(ones));
  for (; i + 4 <= words; i += 4)
    total = _mm256_add_epi64(total, popcnt256(load256(w + i)));
  return hsum256(total) + bitkernel::scalar::popcount_tail(w, i, words);
}

__attribute__((target("avx2"))) std::size_t hamming_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) noexcept {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  std::size_t i = 0;
  __m256i tA, tB, fA;
  for (; i + 32 <= words; i += 32) {
    csa256(tA, ones, ones, load_xor256(a + i, b + i),
           load_xor256(a + i + 4, b + i + 4));
    csa256(tB, ones, ones, load_xor256(a + i + 8, b + i + 8),
           load_xor256(a + i + 12, b + i + 12));
    csa256(fA, twos, twos, tA, tB);
    csa256(tA, ones, ones, load_xor256(a + i + 16, b + i + 16),
           load_xor256(a + i + 20, b + i + 20));
    csa256(tB, ones, ones, load_xor256(a + i + 24, b + i + 24),
           load_xor256(a + i + 28, b + i + 28));
    csa256(tB, twos, twos, tA, tB);
    csa256(fA, fours, fours, fA, tB);
    total = _mm256_add_epi64(total, popcnt256(fA));
  }
  total = _mm256_slli_epi64(total, 3);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcnt256(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcnt256(twos), 1));
  total = _mm256_add_epi64(total, popcnt256(ones));
  for (; i + 4 <= words; i += 4)
    total = _mm256_add_epi64(total, popcnt256(load_xor256(a + i, b + i)));
  return hsum256(total) + bitkernel::scalar::hamming_tail(a, b, i, words);
}

__attribute__((target("avx2"))) bool hamming_exceeds_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words,
    std::size_t threshold) noexcept {
  // Early exit per 8-word block: far pairs (the common case) cross the
  // threshold within the first block or two, so keeping the check dense
  // matters more than Harley-Seal amortization here.
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m256i x0 = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i x1 = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    total += hsum256(_mm256_add_epi64(popcnt256(x0), popcnt256(x1)));
    if (total > threshold) return true;
  }
  return total + bitkernel::scalar::hamming_tail(a, b, i, words) > threshold;
}

__attribute__((target("avx2"))) void xor_into_avx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), x);
  }
  bitkernel::scalar::xor_tail(dst, src, i, words);
}

__attribute__((target("avx2"))) void extract_bits_avx2(
    const std::uint64_t* src, std::size_t src_words, std::size_t first,
    std::size_t n, std::uint64_t* out) noexcept {
  if (n == 0) return;
  const std::size_t out_words = word_count(n);
  const std::size_t base = first / kWordBits;
  const std::size_t off = first % kWordBits;
  std::size_t i = 0;
  if (off == 0) {
    for (; i + 4 <= out_words; i += 4)
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + i),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + base + i)));
  } else {
    // out[i] = (src[base+i] >> off) | (src[base+i+1] << (64-off)); the hi
    // load reads through src[base+i+4], so the vector loop stops while that
    // stays inside src_words and the shared tail finishes (it alone knows
    // how to treat the missing word past the end as zero).
    const __m128i shr = _mm_cvtsi32_si128(static_cast<int>(off));
    const __m128i shl = _mm_cvtsi32_si128(static_cast<int>(kWordBits - off));
    for (; i + 4 <= out_words && base + i + 5 <= src_words; i += 4) {
      const __m256i lo =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + base + i));
      const __m256i hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + base + i + 1));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + i),
          _mm256_or_si256(_mm256_srl_epi64(lo, shr), _mm256_sll_epi64(hi, shl)));
    }
  }
  bitkernel::scalar::extract_tail(src, src_words, base, off, i, n, out);
}

// ---- AVX-512 tier -----------------------------------------------------------

#define COLSCORE_AVX512 "avx512f,avx512bw,avx512vpopcntdq"

__attribute__((target(COLSCORE_AVX512))) std::size_t popcount_avx512(
    const std::uint64_t* w, std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8)
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc)) +
         bitkernel::scalar::popcount_tail(w, i, words);
}

__attribute__((target(COLSCORE_AVX512))) std::size_t hamming_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc)) +
         bitkernel::scalar::hamming_tail(a, b, i, words);
}

__attribute__((target(COLSCORE_AVX512))) bool hamming_exceeds_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words,
    std::size_t threshold) noexcept {
  // One 512-bit block per early-exit check: a far pair is gone after a
  // single vpopcntq round-trip.
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    total += static_cast<std::size_t>(
        _mm512_reduce_add_epi64(_mm512_popcnt_epi64(x)));
    if (total > threshold) return true;
  }
  return total + bitkernel::scalar::hamming_tail(a, b, i, words) > threshold;
}

__attribute__((target(COLSCORE_AVX512))) void xor_into_avx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8)
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(_mm512_loadu_si512(dst + i),
                                                  _mm512_loadu_si512(src + i)));
  bitkernel::scalar::xor_tail(dst, src, i, words);
}

__attribute__((target(COLSCORE_AVX512))) void extract_bits_avx512(
    const std::uint64_t* src, std::size_t src_words, std::size_t first,
    std::size_t n, std::uint64_t* out) noexcept {
  if (n == 0) return;
  const std::size_t out_words = word_count(n);
  const std::size_t base = first / kWordBits;
  const std::size_t off = first % kWordBits;
  std::size_t i = 0;
  if (off == 0) {
    for (; i + 8 <= out_words; i += 8)
      _mm512_storeu_si512(out + i, _mm512_loadu_si512(src + base + i));
  } else {
    const __m128i shr = _mm_cvtsi32_si128(static_cast<int>(off));
    const __m128i shl = _mm_cvtsi32_si128(static_cast<int>(kWordBits - off));
    for (; i + 8 <= out_words && base + i + 9 <= src_words; i += 8) {
      const __m512i lo = _mm512_loadu_si512(src + base + i);
      const __m512i hi = _mm512_loadu_si512(src + base + i + 1);
      _mm512_storeu_si512(out + i, _mm512_or_si512(_mm512_srl_epi64(lo, shr),
                                                   _mm512_sll_epi64(hi, shl)));
    }
  }
  bitkernel::scalar::extract_tail(src, src_words, base, off, i, n, out);
}

#undef COLSCORE_AVX512

#endif  // COLSCORE_SIMD_X86

// ---- tier tables ------------------------------------------------------------

constexpr Kernels kScalarKernels = {
    &bitkernel::scalar::popcount,
    &bitkernel::scalar::hamming,
    &bitkernel::scalar::hamming_exceeds,
    &bitkernel::scalar::xor_into,
    &bitkernel::scalar::extract_bits,
};

#if COLSCORE_SIMD_X86
constexpr Kernels kAvx2Kernels = {
    &popcount_avx2, &hamming_avx2, &hamming_exceeds_avx2,
    &xor_into_avx2, &extract_bits_avx2,
};
constexpr Kernels kAvx512Kernels = {
    &popcount_avx512, &hamming_avx512, &hamming_exceeds_avx512,
    &xor_into_avx512, &extract_bits_avx512,
};
#endif

// ---- CPU/OS detection -------------------------------------------------------

Tier detect_cpu() noexcept {
#if COLSCORE_SIMD_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return Tier::kScalar;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return Tier::kScalar;
  // The OS must have enabled the wide register state (XCR0 via xgetbv):
  // bits 1-2 for xmm/ymm, additionally 5-7 for the AVX-512 k/zmm state.
  std::uint32_t xlo = 0, xhi = 0;
  __asm__("xgetbv" : "=a"(xlo), "=d"(xhi) : "c"(0));
  const std::uint64_t xcr0 = (static_cast<std::uint64_t>(xhi) << 32) | xlo;
  if ((xcr0 & 0x6) != 0x6) return Tier::kScalar;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return Tier::kScalar;
  if ((ebx & (1u << 5)) == 0) return Tier::kScalar;  // no AVX2
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512bw = (ebx & (1u << 30)) != 0;
  const bool vpopcntdq = (ecx & (1u << 14)) != 0;
  const bool zmm_state = (xcr0 & 0xe6) == 0xe6;
  if (avx512f && avx512bw && vpopcntdq && zmm_state) return Tier::kAvx512;
  return Tier::kAvx2;
#else
  return Tier::kScalar;
#endif
}

/// COLSCORE_SIMD caps the detected tier (it cannot grant features the CPU
/// lacks). Unknown spellings warn once and are ignored.
Tier apply_env_cap(Tier cpu) noexcept {
  const char* env = std::getenv("COLSCORE_SIMD");
  if (env == nullptr || *env == '\0') return cpu;
  Tier cap;
  if (std::strcmp(env, "scalar") == 0) {
    cap = Tier::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    cap = Tier::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    cap = Tier::kAvx512;
  } else {
    log_warn("COLSCORE_SIMD='", env,
             "' is not scalar|avx2|avx512; using detected tier ",
             tier_name(cpu));
    return cpu;
  }
  if (static_cast<int>(cap) > static_cast<int>(cpu)) {
    log_warn("COLSCORE_SIMD=", env, " exceeds CPU support; using ",
             tier_name(cpu));
    return cpu;
  }
  return cap;
}

std::atomic<int> g_active_tier{-1};

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "unknown";
}

Tier detected_tier() noexcept {
  static const Tier tier = apply_env_cap(detect_cpu());
  return tier;
}

const Kernels& kernels_for(Tier tier) noexcept {
#if COLSCORE_SIMD_X86
  if (!tier_supported(tier)) return kScalarKernels;
  switch (tier) {
    case Tier::kScalar: return kScalarKernels;
    case Tier::kAvx2: return kAvx2Kernels;
    case Tier::kAvx512: return kAvx512Kernels;
  }
#else
  (void)tier;
#endif
  return kScalarKernels;
}

Tier active_tier() noexcept {
  const int t = g_active_tier.load(std::memory_order_acquire);
  if (t >= 0) return static_cast<Tier>(t);
  detail::init_active();
  return static_cast<Tier>(g_active_tier.load(std::memory_order_acquire));
}

bool set_tier(Tier tier) noexcept {
  if (!tier_supported(tier)) return false;
  detail::g_active.store(&kernels_for(tier), std::memory_order_release);
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  return true;
}

namespace detail {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels& init_active() noexcept {
  const Tier tier = detected_tier();
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  const Kernels& table = kernels_for(tier);
  g_active.store(&table, std::memory_order_release);
  return table;
}

}  // namespace detail

}  // namespace colscore::simd
