#include "src/common/bitmatrix.hpp"

#include <cstdlib>
#include <cstring>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

constexpr std::size_t kWordsPerLine = 8;  // 64 bytes

std::size_t aligned_stride(std::size_t cols) {
  const std::size_t words = bitkernel::word_count(cols);
  return (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
}

std::uint64_t* alloc_words(std::size_t words) {
  if (words == 0) return nullptr;
  void* p = std::aligned_alloc(64, words * sizeof(std::uint64_t));
  CS_ASSERT(p != nullptr, "BitMatrix: allocation failed");
  return static_cast<std::uint64_t*>(p);
}

}  // namespace

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols, bool value)
    : rows_(rows), cols_(cols), stride_(aligned_stride(cols)),
      capacity_words_(rows * stride_), words_(alloc_words(rows * stride_)) {
  if (total_words() == 0) return;
  if (!value) {
    std::memset(words_.get(), 0, total_words() * sizeof(std::uint64_t));
    return;
  }
  // All-ones rows with zeroed padding (both intra-word and stride padding).
  std::memset(words_.get(), 0, total_words() * sizeof(std::uint64_t));
  for (std::size_t r = 0; r < rows_; ++r) row(r).fill(true);
}

BitMatrix::BitMatrix(const BitMatrix& other)
    : rows_(other.rows_), cols_(other.cols_), stride_(other.stride_),
      capacity_words_(other.total_words()), words_(alloc_words(other.total_words())) {
  if (total_words() != 0)
    std::memcpy(words_.get(), other.words_.get(),
                total_words() * sizeof(std::uint64_t));
}

BitMatrix& BitMatrix::operator=(const BitMatrix& other) {
  if (this == &other) return *this;
  BitMatrix copy(other);
  *this = std::move(copy);
  return *this;
}

BitMatrix::BitMatrix(BitMatrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), stride_(other.stride_),
      capacity_words_(other.capacity_words_), words_(std::move(other.words_)) {
  other.rows_ = other.cols_ = other.stride_ = other.capacity_words_ = 0;
}

BitMatrix& BitMatrix::operator=(BitMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  stride_ = other.stride_;
  capacity_words_ = other.capacity_words_;
  words_ = std::move(other.words_);
  other.rows_ = other.cols_ = other.stride_ = other.capacity_words_ = 0;
  return *this;
}

void BitMatrix::reset(std::size_t rows, std::size_t cols) {
  const std::size_t stride = aligned_stride(cols);
  const std::size_t needed = rows * stride;
  if (needed > capacity_words_) {
    words_.reset(alloc_words(needed));
    capacity_words_ = needed;
  }
  rows_ = rows;
  cols_ = cols;
  stride_ = stride;
  if (needed != 0)
    std::memset(words_.get(), 0, needed * sizeof(std::uint64_t));
}

void BitMatrix::fill(bool value) noexcept {
  if (total_words() == 0) return;
  std::memset(words_.get(), 0, total_words() * sizeof(std::uint64_t));
  if (value)
    for (std::size_t r = 0; r < rows_; ++r) row(r).fill(true);
}

std::vector<ConstBitRow> BitMatrix::row_views() const {
  std::vector<ConstBitRow> views;
  views.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) views.push_back(row(r));
  return views;
}

bool operator==(const BitMatrix& a, const BitMatrix& b) noexcept {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    if (!(a.row(r) == b.row(r))) return false;
  return true;
}

}  // namespace colscore
