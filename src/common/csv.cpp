#include "src/common/csv.hpp"

#include "src/common/assert.hpp"

namespace colscore {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns,
                     bool emit_header)
    : out_(out), width_(columns.size()) {
  CS_ASSERT(width_ > 0, "csv: empty header");
  if (emit_header) write_row(columns);
  rows_ = 0;  // header does not count
}

void CsvWriter::row(std::initializer_list<std::string> values) {
  write_row(std::vector<std::string>(values));
}

void CsvWriter::row(const std::vector<std::string>& values) { write_row(values); }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  CS_ASSERT(cells.size() == width_, "csv: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    // Quote cells containing separators.
    if (cells[i].find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char c : cells[i]) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << cells[i];
    }
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace colscore
