// Runtime-dispatched SIMD tiers for the word-parallel bit kernels.
//
// The hot distance kernels (XOR+popcount sweeps in the neighbor graph,
// packed-row extraction in the probe pipeline) are memory-streaming loops
// over 64-bit words; on x86 they vectorize 4x-8x with AVX2 / AVX-512
// VPOPCNTDQ. This header is the single dispatch point: one kernel table per
// tier, the best CPU-supported tier resolved once at first use, and every
// call site in bitkernels.hpp routed through `active()`. Nothing outside
// simd.cpp contains an intrinsic, and every tier produces bit-identical
// results — the tier only moves time, never output (test_simd cross-checks
// each tier against the scalar reference exhaustively).
//
// Forcing a tier (CI legs, A/B benching):
//   * env COLSCORE_SIMD=scalar|avx2|avx512 caps the *detected* tier before
//     first use — the process then behaves exactly like a machine without
//     the masked features (tiers above the cap report unsupported).
//   * simd::set_tier(t) switches the active tier at runtime (tests); it
//     cannot exceed the detected cap.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace colscore::simd {

/// Ordered capability tiers: every tier above kScalar implies the ones below
/// it (the AVX-512 tier requires AVX2), so "supported" is a simple <=.
enum class Tier : int {
  kScalar = 0,  // portable fallback (bitkernel::scalar, 4-way unrolled)
  kAvx2 = 1,    // AVX2, Harley-Seal carry-save popcount
  kAvx512 = 2,  // AVX-512F + VPOPCNTDQ
};

/// One function table per tier. Signatures mirror the bitkernel entry
/// points; every implementation handles arbitrary `words` (vector bulk +
/// shared scalar tail), so callers never need to round sizes.
struct Kernels {
  std::size_t (*popcount)(const std::uint64_t*, std::size_t) noexcept;
  std::size_t (*hamming)(const std::uint64_t*, const std::uint64_t*,
                         std::size_t) noexcept;
  bool (*hamming_exceeds)(const std::uint64_t*, const std::uint64_t*,
                          std::size_t, std::size_t) noexcept;
  void (*xor_into)(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
  void (*extract_bits)(const std::uint64_t*, std::size_t, std::size_t,
                       std::size_t, std::uint64_t*) noexcept;
};

/// "scalar" / "avx2" / "avx512" — the spelling COLSCORE_SIMD accepts and the
/// one benches print in their config labels.
const char* tier_name(Tier tier) noexcept;

/// Best tier this process may use: CPU/OS capability, capped by
/// COLSCORE_SIMD if set. Resolved once; stable for the process lifetime.
Tier detected_tier() noexcept;

inline bool tier_supported(Tier tier) noexcept {
  return static_cast<int>(tier) <= static_cast<int>(detected_tier());
}

/// Tier currently behind `active()` (defaults to detected_tier()).
Tier active_tier() noexcept;

/// Forces the active tier; false (and no change) if the tier is above the
/// detected cap. Thread-safe, but meant for tests and benches, not for
/// flipping mid-sweep.
bool set_tier(Tier tier) noexcept;

/// The kernel table of one tier. Caller must check tier_supported() first:
/// asking for an unsupported tier returns the scalar table rather than a
/// table that would fault.
const Kernels& kernels_for(Tier tier) noexcept;

namespace detail {
extern std::atomic<const Kernels*> g_active;
const Kernels& init_active() noexcept;
}  // namespace detail

/// The active kernel table (one relaxed atomic load on the hot path).
inline const Kernels& active() noexcept {
  const Kernels* k = detail::g_active.load(std::memory_order_acquire);
  return k != nullptr ? *k : detail::init_active();
}

/// Below this many words the inline scalar forms win: the vector bulk loop
/// would not execute even once at the AVX-512 width, and the indirect call
/// through the table costs more than the loop it replaces. bitkernels.hpp
/// compares against this before dispatching, so sub-512-bit rows (the whole
/// n<=512 suite grid) never pay for the table.
inline constexpr std::size_t kDispatchMinWords = 8;

}  // namespace colscore::simd
