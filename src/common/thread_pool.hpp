// Fixed-size worker pool with a chunked parallel_for.
//
// All parallelism in the simulator is data-parallel over players or objects;
// a simple chunk-claiming loop keeps results deterministic (each index is
// processed exactly once, and per-index RNG streams are derived from stable
// keys, never from thread identity).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace colscore {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Wraps each participating thread's whole chunk-claiming loop (not each
  /// chunk): the pool calls scope(loop) once per thread, and the callable
  /// runs loop() inside whatever per-thread context it establishes.
  /// ExecPolicy uses this to bind a workspace slot to the worker for the
  /// duration of its participation.
  using ThreadScope = std::function<void(const std::function<void()>&)>;

  /// Runs body(i) for every i in [begin, end); blocks until done.
  /// Exceptions from body are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0, const ThreadScope& scope = {});

  /// Process-wide pool backing ExecPolicy::process_default(), sized from
  /// hardware concurrency on first use. Library code never names it
  /// directly (lint rule CL012) — it reaches the pool through an ExecPolicy.
  static ThreadPool& global();
  /// Overrides the global pool thread count (rebuilds the pool). Reserved
  /// for the CLI entry point; tests and library code hold their own pools
  /// behind explicit ExecPolicy instances instead.
  static void reset_global(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Blocking sleep, used by the suite runner's retry backoff and the fault
/// plan's injected delays. Lives with the pool so blocking-wait machinery
/// (and the <thread> include) stays confined to the threading layer — the
/// rest of the tree reaches wall time only through colscore::Timer.
/// Sleeping occupies the calling pool worker; that is the documented cost of
/// retrying a failed run in place (ordered emission needs the run finished
/// on its claimed index anyway). No-op for seconds <= 0.
void sleep_for_seconds(double seconds);

// The free parallel_for convenience template lives in exec_policy.hpp now
// (a shim over ExecPolicy::process_default(), for benches and tests only);
// library code threads an explicit ExecPolicy instead (lint rule CL012).

}  // namespace colscore
