// Fixed-size worker pool with a chunked parallel_for.
//
// All parallelism in the simulator is data-parallel over players or objects;
// a simple chunk-claiming loop keeps results deterministic (each index is
// processed exactly once, and per-index RNG streams are derived from stable
// keys, never from thread identity).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace colscore {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Runs body(i) for every i in [begin, end); blocks until done.
  /// Exceptions from body are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Process-wide pool, sized from hardware concurrency on first use.
  static ThreadPool& global();
  /// Overrides the global pool thread count (rebuilds the pool). Test-only.
  static void reset_global(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Blocking sleep, used by the suite runner's retry backoff and the fault
/// plan's injected delays. Lives with the pool so blocking-wait machinery
/// (and the <thread> include) stays confined to the threading layer — the
/// rest of the tree reaches wall time only through colscore::Timer.
/// Sleeping occupies the calling pool worker; that is the documented cost of
/// retrying a failed run in place (ordered emission needs the run finished
/// on its claimed index anyway). No-op for seconds <= 0.
void sleep_for_seconds(double seconds);

/// Convenience wrapper over ThreadPool::global(). Template so the serial
/// path (one worker, or a single index) calls the body directly — inlined,
/// no std::function construction. The protocol hot path invokes this
/// millions of times per suite; on a 1-core box the type-erasure wrapper
/// was a heap allocation per call.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 0) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::global();
  if (pool.thread_count() <= 1 || end - begin == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  pool.parallel_for(begin, end, std::function<void(std::size_t)>(std::ref(body)),
                    grain);
}

}  // namespace colscore
