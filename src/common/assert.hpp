// Lightweight always-on invariant checks. Protocol invariants are cheap
// relative to probe simulation, so these stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace colscore::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "colscore assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}
}  // namespace colscore::detail

#define CS_ASSERT(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) ::colscore::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
