#include "src/common/json.hpp"

#include <cctype>
#include <charconv>

namespace colscore {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members)
    if (name == key) return &value;
  return nullptr;
}

const char* JsonValue::kind_name() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; }
      else ++col;
    }
    throw JsonError("json: " + what + " at line " + std::to_string(line) +
                    ":" + std::to_string(col));
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect(char c, const char* where) {
    if (done() || peek() != c)
      fail(std::string("expected '") + c + "' " + where);
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (done()) fail("unexpected end of document");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v; v.kind = JsonValue::Kind::kBool; v.boolean = true; return v;
    }
    if (consume_literal("false")) {
      JsonValue v; v.kind = JsonValue::Kind::kBool; v.boolean = false; return v;
    }
    if (consume_literal("null")) return JsonValue{};
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!done() && peek() == '.') {
      ++pos_;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    const char* first = v.text.data();
    const char* last = first + v.text.size();
    const auto [end, ec] = std::from_chars(first, last, v.number);
    if (ec != std::errc{} || end != last) {
      pos_ = start;
      fail("malformed number '" + v.text + "'");
    }
    return v;
  }

  std::string parse_string() {
    expect('"', "to open a string");
    std::string out;
    while (true) {
      if (done()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') { --pos_; fail("raw newline inside a string"); }
      if (c != '\\') { out += c; continue; }
      if (done()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else { pos_ -= 1; fail("non-hex digit in \\u escape"); }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are out of
          // scope for config files; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          pos_ -= 1;
          fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  JsonValue parse_array() {
    expect('[', "to open an array");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (!done() && peek() == ']') { ++pos_; return v; }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (done()) fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return v; }
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{', "to open an object");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (!done() && peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (v.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':', "after an object key");
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (done()) fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return v; }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace colscore
