// Per-worker run workspace: reusable scratch for the protocol hot path.
//
// A whole-suite sweep executes millions of small protocol steps (Select
// tournaments, ZeroRadius adoptions, voting slates), and before PR 3 every
// one of them re-malloc'd its scratch — diff buffers, probe memos, voter
// assignments — from cold. RunWorkspace keeps one set of named, growable
// buffers per worker; a buffer grows to the high-water mark of the runs its
// worker executes and then stops touching the allocator entirely.
//
// Contract (see ROADMAP "Performance" and "Execution policy"):
//   * Access via ExecPolicy::workspace() (protocol code spells it
//     ProtocolEnv::workspace()) — each ExecPolicy owns an arena of
//     workspaces and binds one slot per participating thread for the
//     duration of a par_for chunk loop. Slots are recycled across grid
//     cells, which is exactly the per-worker pooling that lets cell N+1
//     reuse cell N's allocations. Threads not running under any policy
//     (plain unit tests) fall back to a thread-local instance.
//   * Buffers are grouped by owner (sel_* for the Select tournament, pf_*
//     for the prefilter, zr_* for ZeroRadius adoption, vt_* for work-share
//     voting, ze_* for ZeroRadius reassembly, probe_* for oracle staging,
//     nb_* for the CSR neighbor-graph build).
//     A function may only touch its own group, because nested frames on one
//     thread are live simultaneously: select_prefiltered (pf_*) is still
//     using its finalist list while the inner tournament (sel_*) runs, and
//     a parallel_for body shares a thread — and therefore a workspace —
//     with the caller that spawned it.
//   * Every user re-initialises (assign/resize/clear) what it reads; no
//     state is carried between calls on purpose.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/bitmatrix.hpp"
#include "src/common/types.hpp"

namespace colscore {

struct RunWorkspace {
  /// This thread's workspace (created on first use, lives with the thread).
  static RunWorkspace& current();

  // ---- oracle probe staging (ProbeOracle bulk reads) -----------------------
  std::vector<std::uint64_t> probe_row_words;  // one full truth row, packed

  // ---- Select tournament (select.cpp run_tournament) -----------------------
  std::vector<std::uint64_t> sel_probed_words;  // probed? plane
  std::vector<std::uint64_t> sel_value_words;   // own-bit plane
  std::vector<std::uint64_t> sel_batch_words;   // batched probe results
  std::vector<std::uint8_t> sel_alive;
  std::vector<std::size_t> sel_wins;
  std::vector<std::uint64_t> sel_hashes;
  std::vector<std::size_t> sel_diff;
  std::vector<std::size_t> sel_coords;        // the t drawn coords of a pair
  std::vector<std::size_t> sel_batch_coords;  // first-occurrence uncached ones
  std::vector<ObjectId> sel_batch_objects;

  // ---- Select prefilter (select.cpp select_prefiltered) --------------------
  std::vector<std::uint64_t> pf_own_words;
  std::vector<std::size_t> pf_coords;
  std::vector<ObjectId> pf_objects;
  std::vector<std::pair<std::size_t, std::size_t>> pf_scored;
  std::vector<ConstBitRow> pf_finalists;
  std::vector<std::size_t> pf_finalist_ids;

  // ---- ZeroRadius adoption (zero_radius.cpp adopt) -------------------------
  std::vector<std::uint64_t> zr_probed_words;
  std::vector<std::uint64_t> zr_value_words;
  std::vector<std::uint64_t> zr_batch_words;
  std::vector<std::size_t> zr_coords;  // coords actually probed (patch list)
  std::vector<std::size_t> zr_verify_coords;
  std::vector<std::size_t> zr_batch_coords;
  std::vector<ObjectId> zr_batch_objects;
  std::vector<std::size_t> zr_alive;
  std::vector<std::size_t> zr_next;
  std::vector<std::size_t> zr_diff;

  // ---- ZeroRadius reassembly (zero_radius.cpp solve/emit) ------------------
  // objects[j] -> j and players[i] -> i index maps as flat arrays. Safe
  // without generations: a solve node stamps its whole span before reading,
  // and only ever reads ids inside that span.
  std::vector<std::uint32_t> ze_coord_of;
  std::vector<std::uint32_t> ze_row_of;

  // ---- work-share voting (work_share.cpp cluster_votes) --------------------
  std::vector<std::uint32_t> vt_voter_of;
  std::vector<std::uint8_t> vt_tie_coin;
  std::vector<std::size_t> vt_offsets;
  std::vector<std::size_t> vt_cursor;
  std::vector<std::uint32_t> vt_slots_of_voter;
  std::vector<std::uint8_t> vt_report_of_slot;
  std::vector<std::uint8_t> vt_verdicts;
  std::vector<ObjectId> vt_slate_objects;       // per-voter (parallel body)
  std::vector<std::uint64_t> vt_slate_words;    // per-voter (parallel body)
  std::vector<PlayerId> vt_authors;             // per-object (parallel body)

  // ---- SmallRadius orchestration (small_radius.cpp, caller thread) ---------
  std::vector<std::uint32_t> sr_subset_of;
  std::vector<std::size_t> sr_subset_offsets;
  std::vector<std::size_t> sr_subset_cursor;
  std::vector<std::size_t> sr_coords_flat;
  std::vector<ObjectId> sr_sub_objects;

  // ---- CSR neighbor-graph build (neighbor_csr.cpp) -------------------------
  // nb_tile_edges[ti] is written only by the task owning tile ti (the outer
  // vector is sized before the parallel sweep); counts/cursor are sequential.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> nb_tile_edges;
  std::vector<std::uint32_t> nb_degree;
  std::vector<std::uint32_t> nb_cursor;

  // ---- scratch matrices (calculate_preferences / small_radius) -------------
  BitMatrix cp_z;                         // per-iteration z family
  std::vector<BitMatrix> cp_candidates;   // per-guess candidate matrices
  std::vector<BitMatrix> sr_candidates;   // per-repeat candidate matrices
};

}  // namespace colscore
