#include "src/common/workspace.hpp"

namespace colscore {

RunWorkspace& RunWorkspace::current() {
  static thread_local RunWorkspace workspace;
  return workspace;
}

}  // namespace colscore
