#include "src/common/bitvector.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/assert.hpp"

namespace colscore {

namespace {
constexpr std::size_t kWordBits = bitkernel::kWordBits;

std::size_t word_count(std::size_t bits) { return bitkernel::word_count(bits); }
}  // namespace

// ---- ConstBitRow / BitRow (out-of-line pieces) ------------------------------

BitVector ConstBitRow::to_bitvector() const {
  BitVector out(bits_);
  if (bits_ != 0)
    std::memcpy(out.word_data(), words_, word_count(bits_) * sizeof(std::uint64_t));
  return out;
}

BitVector ConstBitRow::gather(std::span<const std::size_t> positions) const {
  BitVector out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < bits_, "gather: position out of range");
    out.set(i, get(positions[i]));
  }
  return out;
}

BitVector ConstBitRow::gather(std::span<const ObjectId> positions) const {
  BitVector out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < bits_, "gather: position out of range");
    out.set(i, get(positions[i]));
  }
  return out;
}

std::string ConstBitRow::to_string() const {
  std::string s(bits_, '0');
  for (std::size_t i = 0; i < bits_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

bool operator==(const ConstBitRow& a, const ConstBitRow& b) noexcept {
  if (a.size() != b.size()) return false;
  const auto aw = a.words();
  const auto bw = b.words();
  return std::equal(aw.begin(), aw.end(), bw.begin());
}

void BitRow::fill(bool value) noexcept {
  const std::size_t words = word_count(bits_);
  for (std::size_t i = 0; i < words; ++i) mwords_[i] = value ? ~0ULL : 0ULL;
  const std::size_t rem = bits_ % kWordBits;
  if (rem != 0 && words != 0) mwords_[words - 1] &= (1ULL << rem) - 1;
}

BitRow& BitRow::operator=(const ConstBitRow& src) noexcept {
  CS_ASSERT(bits_ == src.size(), "BitRow assign: size mismatch");
  if (bits_ != 0)
    std::memmove(mwords_, src.words().data(),
                 word_count(bits_) * sizeof(std::uint64_t));
  return *this;
}

BitRow& BitRow::operator^=(ConstBitRow other) noexcept {
  CS_ASSERT(bits_ == other.size(), "xor: size mismatch");
  const std::uint64_t* ow = other.words().data();
  for (std::size_t i = 0; i < word_count(bits_); ++i) mwords_[i] ^= ow[i];
  return *this;
}

BitRow& BitRow::operator&=(ConstBitRow other) noexcept {
  CS_ASSERT(bits_ == other.size(), "and: size mismatch");
  const std::uint64_t* ow = other.words().data();
  for (std::size_t i = 0; i < word_count(bits_); ++i) mwords_[i] &= ow[i];
  return *this;
}

BitRow& BitRow::operator|=(ConstBitRow other) noexcept {
  CS_ASSERT(bits_ == other.size(), "or: size mismatch");
  const std::uint64_t* ow = other.words().data();
  for (std::size_t i = 0; i < word_count(bits_); ++i) mwords_[i] |= ow[i];
  return *this;
}

// ---- BitVector --------------------------------------------------------------

BitVector::BitVector(std::size_t size, bool value)
    : size_(size), words_(word_count(size), value ? ~0ULL : 0ULL) {
  clear_padding();
}

BitVector::BitVector(ConstBitRow row) : size_(row.size()), words_(word_count(row.size())) {
  if (size_ != 0)
    std::memcpy(words_.data(), row.words().data(),
                word_count(size_) * sizeof(std::uint64_t));
}

void BitVector::clear_padding() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) words_.back() &= (1ULL << rem) - 1;
}

bool BitVector::get(std::size_t i) const noexcept {
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) noexcept {
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void BitVector::flip(std::size_t i) noexcept { words_[i / kWordBits] ^= 1ULL << (i % kWordBits); }

std::size_t BitVector::popcount() const noexcept {
  return bitkernel::popcount(words_.data(), words_.size());
}

std::size_t BitVector::hamming(ConstBitRow other) const noexcept {
  return ConstBitRow(*this).hamming(other);
}

bool BitVector::hamming_exceeds(ConstBitRow other, std::size_t threshold) const noexcept {
  return ConstBitRow(*this).hamming_exceeds(other, threshold);
}

std::size_t BitVector::hamming_prefix(ConstBitRow other,
                                      std::size_t prefix_bits) const noexcept {
  return ConstBitRow(*this).hamming_prefix(other, prefix_bits);
}

std::vector<std::size_t> BitVector::diff_positions(ConstBitRow other) const {
  return ConstBitRow(*this).diff_positions(other);
}

void BitVector::diff_positions_into(ConstBitRow other,
                                    std::vector<std::size_t>& out) const {
  ConstBitRow(*this).diff_positions_into(other, out);
}

BitVector BitVector::gather(std::span<const std::size_t> positions) const {
  return ConstBitRow(*this).gather(positions);
}

BitVector BitVector::gather(std::span<const ObjectId> positions) const {
  return ConstBitRow(*this).gather(positions);
}

void BitVector::scatter(std::span<const std::size_t> positions, ConstBitRow patch) {
  CS_ASSERT(positions.size() == patch.size(), "scatter: size mismatch");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < size_, "scatter: position out of range");
    set(positions[i], patch.get(i));
  }
}

void BitVector::fill(bool value) noexcept {
  std::fill(words_.begin(), words_.end(), value ? ~0ULL : 0ULL);
  clear_padding();
}

void BitVector::randomize(Rng& rng, double density) {
  if (density == 0.5) {
    for (auto& w : words_) w = rng();
    clear_padding();
    return;
  }
  for (std::size_t i = 0; i < size_; ++i) set(i, rng.chance(density));
}

void BitVector::flip_random(Rng& rng, std::size_t count) {
  CS_ASSERT(count <= size_, "flip_random: count exceeds size");
  // Floyd's algorithm for a uniform k-subset without replacement.
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  for (std::size_t j = size_ - count; j < size_; ++j) {
    const std::size_t t = rng.below(j + 1);
    bool already = std::find(chosen.begin(), chosen.end(), t) != chosen.end();
    chosen.push_back(already ? j : t);
  }
  for (std::size_t pos : chosen) flip(pos);
}

BitVector& BitVector::operator^=(ConstBitRow other) noexcept {
  BitRow(*this) ^= other;
  return *this;
}

BitVector& BitVector::operator&=(ConstBitRow other) noexcept {
  BitRow(*this) &= other;
  return *this;
}

BitVector& BitVector::operator|=(ConstBitRow other) noexcept {
  BitRow(*this) |= other;
  return *this;
}

BitVector BitVector::operator~() const {
  BitVector out = *this;
  for (auto& w : out.words_) w = ~w;
  out.clear_padding();
  return out;
}

std::string BitVector::to_string() const { return ConstBitRow(*this).to_string(); }

std::uint64_t BitVector::content_hash() const noexcept {
  return bitkernel::content_hash(words_.data(), size_);
}

BitVector random_bitvector(std::size_t size, Rng& rng, double density) {
  BitVector v(size);
  v.randomize(rng, density);
  return v;
}

}  // namespace colscore
