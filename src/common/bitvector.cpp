#include "src/common/bitvector.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/assert.hpp"

namespace colscore {

namespace {
constexpr std::size_t kWordBits = bitkernel::kWordBits;

std::size_t word_count(std::size_t bits) { return bitkernel::word_count(bits); }
}  // namespace

// ---- ConstBitRow / BitRow (out-of-line pieces) ------------------------------

BitVector ConstBitRow::to_bitvector() const {
  BitVector out(bits_);
  if (bits_ != 0)
    std::memcpy(out.word_data(), words_, word_count(bits_) * sizeof(std::uint64_t));
  return out;
}

BitVector ConstBitRow::gather(std::span<const std::size_t> positions) const {
  BitVector out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < bits_, "gather: position out of range");
    out.set(i, get(positions[i]));
  }
  return out;
}

BitVector ConstBitRow::gather(std::span<const ObjectId> positions) const {
  BitVector out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < bits_, "gather: position out of range");
    out.set(i, get(positions[i]));
  }
  return out;
}

std::string ConstBitRow::to_string() const {
  std::string s(bits_, '0');
  for (std::size_t i = 0; i < bits_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

bool operator==(const ConstBitRow& a, const ConstBitRow& b) noexcept {
  if (a.size() != b.size()) return false;
  const auto aw = a.words();
  const auto bw = b.words();
  return std::equal(aw.begin(), aw.end(), bw.begin());
}

void BitRow::fill(bool value) noexcept {
  const std::size_t words = word_count(bits_);
  for (std::size_t i = 0; i < words; ++i) mwords_[i] = value ? ~0ULL : 0ULL;
  const std::size_t rem = bits_ % kWordBits;
  if (rem != 0 && words != 0) mwords_[words - 1] &= (1ULL << rem) - 1;
}

void BitRow::randomize(Rng& rng, double density) noexcept {
  if (density == 0.5) {
    const std::size_t words = word_count(bits_);
    for (std::size_t i = 0; i < words; ++i) mwords_[i] = rng();
    const std::size_t rem = bits_ % kWordBits;
    if (rem != 0 && words != 0) mwords_[words - 1] &= (1ULL << rem) - 1;
    return;
  }
  for (std::size_t i = 0; i < bits_; ++i) set(i, rng.chance(density));
}

void BitRow::flip_random(Rng& rng, std::size_t count) {
  CS_ASSERT(count <= bits_, "flip_random: count exceeds size");
  // Floyd's algorithm for a uniform k-subset without replacement.
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  for (std::size_t j = bits_ - count; j < bits_; ++j) {
    const std::size_t t = rng.below(j + 1);
    bool already = std::find(chosen.begin(), chosen.end(), t) != chosen.end();
    chosen.push_back(already ? j : t);
  }
  for (std::size_t pos : chosen) flip(pos);
}

BitRow& BitRow::operator=(const ConstBitRow& src) noexcept {
  CS_ASSERT(bits_ == src.size(), "BitRow assign: size mismatch");
  if (bits_ != 0)
    std::memmove(mwords_, src.words().data(),
                 word_count(bits_) * sizeof(std::uint64_t));
  return *this;
}

BitRow& BitRow::operator^=(ConstBitRow other) noexcept {
  CS_ASSERT(bits_ == other.size(), "xor: size mismatch");
  bitkernel::xor_into(mwords_, other.words().data(), word_count(bits_));
  return *this;
}

BitRow& BitRow::operator&=(ConstBitRow other) noexcept {
  CS_ASSERT(bits_ == other.size(), "and: size mismatch");
  const std::uint64_t* ow = other.words().data();
  for (std::size_t i = 0; i < word_count(bits_); ++i) mwords_[i] &= ow[i];
  return *this;
}

BitRow& BitRow::operator|=(ConstBitRow other) noexcept {
  CS_ASSERT(bits_ == other.size(), "or: size mismatch");
  const std::uint64_t* ow = other.words().data();
  for (std::size_t i = 0; i < word_count(bits_); ++i) mwords_[i] |= ow[i];
  return *this;
}

// ---- BitVector --------------------------------------------------------------

void BitVector::acquire(std::size_t size) {
  size_ = size;
  const std::size_t words = word_count(size);
  if (words <= kInlineWords) {
    for (std::size_t i = 0; i < kInlineWords; ++i) store_.inline_words[i] = 0;
  } else {
    store_.heap = static_cast<std::uint64_t*>(
        std::calloc(words, sizeof(std::uint64_t)));
    CS_ASSERT(store_.heap != nullptr, "BitVector: allocation failed");
  }
}

void BitVector::release() noexcept {
  if (!is_inline()) std::free(store_.heap);
}

BitVector::BitVector(std::size_t size, bool value) {
  acquire(size);
  if (value) fill(true);
}

BitVector::BitVector(ConstBitRow row) {
  acquire(row.size());
  if (size_ != 0)
    std::memcpy(word_ptr(), row.words().data(),
                word_count(size_) * sizeof(std::uint64_t));
}

BitVector::BitVector(const BitVector& other) {
  acquire(other.size_);
  if (size_ != 0)
    std::memcpy(word_ptr(), other.word_ptr(),
                word_count(size_) * sizeof(std::uint64_t));
}

BitVector::BitVector(BitVector&& other) noexcept
    : size_(other.size_), store_(other.store_) {
  other.size_ = 0;
  other.store_.heap = nullptr;
}

BitVector& BitVector::operator=(const BitVector& other) {
  if (this == &other) return *this;
  if (word_count(size_) != word_count(other.size_) || is_inline() != other.is_inline()) {
    release();
    acquire(other.size_);
  } else {
    size_ = other.size_;
  }
  if (size_ != 0)
    std::memcpy(word_ptr(), other.word_ptr(),
                word_count(size_) * sizeof(std::uint64_t));
  return *this;
}

BitVector& BitVector::operator=(BitVector&& other) noexcept {
  if (this == &other) return *this;
  release();
  size_ = other.size_;
  store_ = other.store_;
  other.size_ = 0;
  other.store_.heap = nullptr;
  return *this;
}

void BitVector::clear_padding() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0) word_ptr()[word_count(size_) - 1] &= (1ULL << rem) - 1;
}

bool BitVector::get(std::size_t i) const noexcept {
  return (word_ptr()[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) noexcept {
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    word_ptr()[i / kWordBits] |= mask;
  else
    word_ptr()[i / kWordBits] &= ~mask;
}

void BitVector::flip(std::size_t i) noexcept {
  word_ptr()[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

std::size_t BitVector::popcount() const noexcept {
  return bitkernel::popcount(word_ptr(), word_count(size_));
}

std::size_t BitVector::hamming(ConstBitRow other) const noexcept {
  return ConstBitRow(*this).hamming(other);
}

bool BitVector::hamming_exceeds(ConstBitRow other, std::size_t threshold) const noexcept {
  return ConstBitRow(*this).hamming_exceeds(other, threshold);
}

std::size_t BitVector::hamming_prefix(ConstBitRow other,
                                      std::size_t prefix_bits) const noexcept {
  return ConstBitRow(*this).hamming_prefix(other, prefix_bits);
}

std::vector<std::size_t> BitVector::diff_positions(ConstBitRow other) const {
  return ConstBitRow(*this).diff_positions(other);
}

void BitVector::diff_positions_into(ConstBitRow other,
                                    std::vector<std::size_t>& out) const {
  ConstBitRow(*this).diff_positions_into(other, out);
}

BitVector BitVector::gather(std::span<const std::size_t> positions) const {
  return ConstBitRow(*this).gather(positions);
}

BitVector BitVector::gather(std::span<const ObjectId> positions) const {
  return ConstBitRow(*this).gather(positions);
}

void BitVector::scatter(std::span<const std::size_t> positions, ConstBitRow patch) {
  CS_ASSERT(positions.size() == patch.size(), "scatter: size mismatch");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < size_, "scatter: position out of range");
    set(positions[i], patch.get(i));
  }
}

void BitVector::fill(bool value) noexcept {
  std::uint64_t* w = word_ptr();
  const std::size_t words = word_count(size_);
  for (std::size_t i = 0; i < words; ++i) w[i] = value ? ~0ULL : 0ULL;
  clear_padding();
}

void BitVector::randomize(Rng& rng, double density) {
  BitRow(*this).randomize(rng, density);
}

void BitVector::flip_random(Rng& rng, std::size_t count) {
  BitRow(*this).flip_random(rng, count);
}

BitVector& BitVector::operator^=(ConstBitRow other) noexcept {
  BitRow(*this) ^= other;
  return *this;
}

BitVector& BitVector::operator&=(ConstBitRow other) noexcept {
  BitRow(*this) &= other;
  return *this;
}

BitVector& BitVector::operator|=(ConstBitRow other) noexcept {
  BitRow(*this) |= other;
  return *this;
}

BitVector BitVector::operator~() const {
  BitVector out = *this;
  std::uint64_t* w = out.word_ptr();
  const std::size_t words = word_count(size_);
  for (std::size_t i = 0; i < words; ++i) w[i] = ~w[i];
  out.clear_padding();
  return out;
}

std::string BitVector::to_string() const { return ConstBitRow(*this).to_string(); }

std::uint64_t BitVector::content_hash() const noexcept {
  return bitkernel::content_hash(word_ptr(), size_);
}

BitVector random_bitvector(std::size_t size, Rng& rng, double density) {
  BitVector v(size);
  v.randomize(rng, density);
  return v;
}

}  // namespace colscore
