#include "src/common/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "src/common/assert.hpp"

namespace colscore {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(std::size_t size, bool value)
    : size_(size), words_(word_count(size), value ? ~0ULL : 0ULL) {
  clear_padding();
}

void BitVector::clear_padding() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) words_.back() &= (1ULL << rem) - 1;
}

bool BitVector::get(std::size_t i) const noexcept {
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) noexcept {
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void BitVector::flip(std::size_t i) noexcept { words_[i / kWordBits] ^= 1ULL << (i % kWordBits); }

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVector::hamming(const BitVector& other) const noexcept {
  CS_ASSERT(size_ == other.size_, "hamming: size mismatch");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  return total;
}

std::size_t BitVector::hamming_prefix(const BitVector& other,
                                      std::size_t prefix_bits) const noexcept {
  CS_ASSERT(prefix_bits <= size_ && prefix_bits <= other.size_, "hamming_prefix: oob");
  const std::size_t full = prefix_bits / kWordBits;
  std::size_t total = 0;
  for (std::size_t i = 0; i < full; ++i)
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  const std::size_t rem = prefix_bits % kWordBits;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    total += static_cast<std::size_t>(
        std::popcount((words_[full] ^ other.words_[full]) & mask));
  }
  return total;
}

std::vector<std::size_t> BitVector::diff_positions(const BitVector& other) const {
  CS_ASSERT(size_ == other.size_, "diff_positions: size mismatch");
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t x = words_[w] ^ other.words_[w];
    while (x != 0) {
      const int bit = std::countr_zero(x);
      out.push_back(w * kWordBits + static_cast<std::size_t>(bit));
      x &= x - 1;
    }
  }
  return out;
}

BitVector BitVector::gather(std::span<const std::size_t> positions) const {
  BitVector out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < size_, "gather: position out of range");
    out.set(i, get(positions[i]));
  }
  return out;
}

BitVector BitVector::gather(std::span<const ObjectId> positions) const {
  BitVector out(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < size_, "gather: position out of range");
    out.set(i, get(positions[i]));
  }
  return out;
}

void BitVector::scatter(std::span<const std::size_t> positions, const BitVector& patch) {
  CS_ASSERT(positions.size() == patch.size(), "scatter: size mismatch");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CS_ASSERT(positions[i] < size_, "scatter: position out of range");
    set(positions[i], patch.get(i));
  }
}

void BitVector::fill(bool value) noexcept {
  std::fill(words_.begin(), words_.end(), value ? ~0ULL : 0ULL);
  clear_padding();
}

void BitVector::randomize(Rng& rng, double density) {
  if (density == 0.5) {
    for (auto& w : words_) w = rng();
    clear_padding();
    return;
  }
  for (std::size_t i = 0; i < size_; ++i) set(i, rng.chance(density));
}

void BitVector::flip_random(Rng& rng, std::size_t count) {
  CS_ASSERT(count <= size_, "flip_random: count exceeds size");
  // Floyd's algorithm for a uniform k-subset without replacement.
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  for (std::size_t j = size_ - count; j < size_; ++j) {
    const std::size_t t = rng.below(j + 1);
    bool already = std::find(chosen.begin(), chosen.end(), t) != chosen.end();
    chosen.push_back(already ? j : t);
  }
  for (std::size_t pos : chosen) flip(pos);
}

bool BitVector::operator==(const BitVector& other) const noexcept {
  return size_ == other.size_ && words_ == other.words_;
}

BitVector& BitVector::operator^=(const BitVector& other) noexcept {
  CS_ASSERT(size_ == other.size_, "xor: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) noexcept {
  CS_ASSERT(size_ == other.size_, "and: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) noexcept {
  CS_ASSERT(size_ == other.size_, "or: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector BitVector::operator~() const {
  BitVector out = *this;
  for (auto& w : out.words_) w = ~w;
  out.clear_padding();
  return out;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

std::uint64_t BitVector::content_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ size_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

BitVector random_bitvector(std::size_t size, Rng& rng, double density) {
  BitVector v(size);
  v.randomize(rng, density);
  return v;
}

}  // namespace colscore
