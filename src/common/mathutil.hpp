// Tiny math helpers shared by protocol parameter derivations.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace colscore {

/// Smallest l with 2^l >= n (at least 1).
inline std::size_t log2_ceil(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return std::max<std::size_t>(l, 1);
}

/// Natural log clamped below at 1.0 (protocol constants scale with ln n and
/// must stay positive for tiny test sizes).
inline double ln_clamped(std::size_t n) {
  return std::max(1.0, std::log(static_cast<double>(n)));
}

/// ceil of a positive double as size_t (>= 1).
inline std::size_t ceil_size(double x) {
  return static_cast<std::size_t>(std::max(1.0, std::ceil(x)));
}

}  // namespace colscore
