// Leveled logging to stderr. Default level is Warn so tests and benches stay
// quiet; examples raise it to Info to narrate protocol phases.
#pragma once

#include <sstream>
#include <string>

namespace colscore {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

template <typename... Ts>
void log(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << parts);
  detail::log_emit(level, os.str());
}

template <typename... Ts>
void log_debug(const Ts&... parts) { log(LogLevel::Debug, parts...); }
template <typename... Ts>
void log_info(const Ts&... parts) { log(LogLevel::Info, parts...); }
template <typename... Ts>
void log_warn(const Ts&... parts) { log(LogLevel::Warn, parts...); }
template <typename... Ts>
void log_error(const Ts&... parts) { log(LogLevel::Error, parts...); }

}  // namespace colscore
