// Dense bit vector used for binary preference vectors.
//
// Preference distances are Hamming distances, so the representation is
// optimized for word-parallel XOR + popcount sweeps; all hot loops in the
// protocols (neighbor graphs, Select tournaments) reduce to these.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace colscore {

class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all set to `value`.
  explicit BitVector(std::size_t size, bool value = false);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const noexcept;
  void set(std::size_t i, bool value) noexcept;
  void flip(std::size_t i) noexcept;

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// Hamming distance; both vectors must have equal size.
  std::size_t hamming(const BitVector& other) const noexcept;

  /// Hamming distance restricted to the first `prefix_bits` positions.
  std::size_t hamming_prefix(const BitVector& other, std::size_t prefix_bits) const noexcept;

  /// Positions where `this` and `other` differ, ascending.
  std::vector<std::size_t> diff_positions(const BitVector& other) const;

  /// New vector containing bits at `positions` (in the given order).
  BitVector gather(std::span<const std::size_t> positions) const;
  BitVector gather(std::span<const ObjectId> positions) const;

  /// Writes bits of `patch` into positions `positions[i]` of this vector.
  void scatter(std::span<const std::size_t> positions, const BitVector& patch);

  void fill(bool value) noexcept;
  /// Independently randomize every bit with P(bit=1) = density.
  void randomize(Rng& rng, double density = 0.5);

  /// Flips exactly `count` distinct positions chosen uniformly (count <= size).
  void flip_random(Rng& rng, std::size_t count);

  bool operator==(const BitVector& other) const noexcept;
  bool operator!=(const BitVector& other) const noexcept { return !(*this == other); }

  BitVector& operator^=(const BitVector& other) noexcept;
  BitVector& operator&=(const BitVector& other) noexcept;
  BitVector& operator|=(const BitVector& other) noexcept;
  BitVector operator~() const;

  /// "0110..." debug rendering.
  std::string to_string() const;

  /// Stable 64-bit content hash (fnv-style over words); used for vector
  /// deduplication on the bulletin board.
  std::uint64_t content_hash() const noexcept;

  std::span<const std::uint64_t> words() const noexcept { return words_; }

 private:
  void clear_padding() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Fresh uniform-random vector.
BitVector random_bitvector(std::size_t size, Rng& rng, double density = 0.5);

}  // namespace colscore
