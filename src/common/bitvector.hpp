// Dense bit vector used for binary preference vectors, plus the zero-copy
// row views shared with BitMatrix.
//
// Preference distances are Hamming distances, so the representation is
// optimized for word-parallel XOR + popcount sweeps; all hot loops in the
// protocols (neighbor graphs, Select tournaments) reduce to these. The view
// types let those loops run over rows of a contiguous BitMatrix and over
// standalone BitVectors through one code path:
//
//   * ConstBitRow — non-owning read view (word pointer + bit count). Every
//     word-parallel kernel (hamming, hamming_exceeds, diff_positions_into,
//     content_hash, ...) lives here; BitVector converts implicitly, so any
//     API taking ConstBitRow accepts both.
//   * BitRow — mutable view. Assignment writes *through* the view (proxy
//     semantics, like vector<bool>::reference); copy construction rebinds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/bitkernels.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace colscore {

class BitVector;

class ConstBitRow {
 public:
  ConstBitRow() = default;
  ConstBitRow(const std::uint64_t* words, std::size_t bits) noexcept
      : words_(words), bits_(bits) {}
  /*implicit*/ ConstBitRow(const BitVector& v) noexcept;  // zero-copy view

  std::size_t size() const noexcept { return bits_; }
  bool empty() const noexcept { return bits_ == 0; }

  bool get(std::size_t i) const noexcept {
    return (words_[i / bitkernel::kWordBits] >> (i % bitkernel::kWordBits)) & 1ULL;
  }

  std::size_t popcount() const noexcept {
    return bitkernel::popcount(words_, bitkernel::word_count(bits_));
  }

  std::size_t hamming(ConstBitRow other) const noexcept;

  /// True iff hamming(*this, other) > threshold, with an early exit as soon
  /// as the running distance crosses the threshold.
  bool hamming_exceeds(ConstBitRow other, std::size_t threshold) const noexcept;

  std::size_t hamming_prefix(ConstBitRow other, std::size_t prefix_bits) const noexcept;

  /// Positions where `this` and `other` differ, ascending.
  std::vector<std::size_t> diff_positions(ConstBitRow other) const;
  /// Appends differing positions to `out` (caller-owned scratch buffer).
  void diff_positions_into(ConstBitRow other, std::vector<std::size_t>& out) const;

  /// New vector containing bits at `positions` (in the given order).
  BitVector gather(std::span<const std::size_t> positions) const;
  BitVector gather(std::span<const ObjectId> positions) const;

  /// Owning copy of the viewed bits.
  BitVector to_bitvector() const;

  /// "0110..." debug rendering.
  std::string to_string() const;

  std::uint64_t content_hash() const noexcept {
    return bitkernel::content_hash(words_, bits_);
  }

  std::span<const std::uint64_t> words() const noexcept {
    return {words_, bitkernel::word_count(bits_)};
  }

 protected:
  const std::uint64_t* words_ = nullptr;
  std::size_t bits_ = 0;
};

/// Content equality (size + bits). Found by ordinary lookup for BitVector
/// operands too, since both convert; != is synthesized by rewriting.
bool operator==(const ConstBitRow& a, const ConstBitRow& b) noexcept;

class BitRow : public ConstBitRow {
 public:
  BitRow() = default;
  BitRow(std::uint64_t* words, std::size_t bits) noexcept
      : ConstBitRow(words, bits), mwords_(words) {}
  /*implicit*/ BitRow(BitVector& v) noexcept;  // zero-copy mutable view

  void set(std::size_t i, bool value) noexcept {
    const std::uint64_t mask = 1ULL << (i % bitkernel::kWordBits);
    if (value)
      mwords_[i / bitkernel::kWordBits] |= mask;
    else
      mwords_[i / bitkernel::kWordBits] &= ~mask;
  }

  void flip(std::size_t i) noexcept {
    mwords_[i / bitkernel::kWordBits] ^= 1ULL << (i % bitkernel::kWordBits);
  }

  void fill(bool value) noexcept;

  /// Independently randomize every viewed bit with P(bit=1) = density. Draw
  /// order matches BitVector::randomize exactly, so filling a matrix row in
  /// place consumes the same RNG stream as building a BitVector and copying.
  void randomize(Rng& rng, double density = 0.5) noexcept;

  /// Flips exactly `count` distinct positions chosen uniformly (count <=
  /// size). Same draw order as BitVector::flip_random.
  void flip_random(Rng& rng, std::size_t count);

  /// Copies the bits of `src` into the viewed storage (sizes must match).
  /// NOTE: proxy semantics — assignment writes through the view; copy
  /// construction rebinds the view.
  BitRow& operator=(const ConstBitRow& src) noexcept;
  BitRow& operator=(const BitRow& src) noexcept {
    return *this = static_cast<const ConstBitRow&>(src);
  }
  BitRow& operator=(const BitVector& src) noexcept {
    return *this = ConstBitRow(src);
  }
  BitRow(const BitRow&) = default;

  BitRow& operator^=(ConstBitRow other) noexcept;
  BitRow& operator&=(ConstBitRow other) noexcept;
  BitRow& operator|=(ConstBitRow other) noexcept;

  std::uint64_t* word_data() noexcept { return mwords_; }

 private:
  std::uint64_t* mwords_ = nullptr;
};

class BitVector {
 public:
  BitVector() noexcept : size_(0) { store_.heap = nullptr; }
  /// Creates a vector of `size` bits, all set to `value`.
  explicit BitVector(std::size_t size, bool value = false);
  /// Owning copy of a row view (lets `BitVector v = matrix.row(p);` work).
  /*implicit*/ BitVector(ConstBitRow row);

  BitVector(const BitVector& other);
  BitVector(BitVector&& other) noexcept;
  BitVector& operator=(const BitVector& other);
  BitVector& operator=(BitVector&& other) noexcept;
  ~BitVector() { release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const noexcept;
  void set(std::size_t i, bool value) noexcept;
  void flip(std::size_t i) noexcept;

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// Hamming distance; both sides must have equal size. Accepts BitVectors
  /// and BitMatrix rows alike (ConstBitRow converts from both).
  std::size_t hamming(ConstBitRow other) const noexcept;

  /// True iff hamming(*this, other) > threshold (early-exit scan).
  bool hamming_exceeds(ConstBitRow other, std::size_t threshold) const noexcept;

  /// Hamming distance restricted to the first `prefix_bits` positions.
  std::size_t hamming_prefix(ConstBitRow other, std::size_t prefix_bits) const noexcept;

  /// Positions where `this` and `other` differ, ascending.
  std::vector<std::size_t> diff_positions(ConstBitRow other) const;
  /// Appends differing positions to `out` (caller-owned scratch buffer).
  void diff_positions_into(ConstBitRow other, std::vector<std::size_t>& out) const;

  /// New vector containing bits at `positions` (in the given order).
  BitVector gather(std::span<const std::size_t> positions) const;
  BitVector gather(std::span<const ObjectId> positions) const;

  /// Writes bits of `patch` into positions `positions[i]` of this vector.
  void scatter(std::span<const std::size_t> positions, ConstBitRow patch);

  void fill(bool value) noexcept;
  /// Independently randomize every bit with P(bit=1) = density.
  void randomize(Rng& rng, double density = 0.5);

  /// Flips exactly `count` distinct positions chosen uniformly (count <= size).
  void flip_random(Rng& rng, std::size_t count);

  BitVector& operator^=(ConstBitRow other) noexcept;
  BitVector& operator&=(ConstBitRow other) noexcept;
  BitVector& operator|=(ConstBitRow other) noexcept;
  BitVector operator~() const;

  /// "0110..." debug rendering.
  std::string to_string() const;

  /// Stable 64-bit content hash (fnv-style over words); used for vector
  /// deduplication on the bulletin board.
  std::uint64_t content_hash() const noexcept;

  std::span<const std::uint64_t> words() const noexcept {
    return {word_ptr(), bitkernel::word_count(size_)};
  }
  std::uint64_t* word_data() noexcept { return word_ptr(); }

 private:
  // Small-buffer storage: protocols shuttle millions of short vectors
  // (board posts, subset outputs) per suite, so vectors of up to
  // kInlineWords * 64 bits live inline — no heap traffic — while longer
  // ones use an exact-sized heap block. Size is fixed at construction
  // (there is no resize), so no capacity bookkeeping is needed.
  static constexpr std::size_t kInlineWords = 3;

  bool is_inline() const noexcept {
    return bitkernel::word_count(size_) <= kInlineWords;
  }
  const std::uint64_t* word_ptr() const noexcept {
    return is_inline() ? store_.inline_words : store_.heap;
  }
  std::uint64_t* word_ptr() noexcept {
    return is_inline() ? store_.inline_words : store_.heap;
  }
  /// Allocates (or inlines) zero-initialized storage for `size` bits.
  void acquire(std::size_t size);
  void release() noexcept;
  void clear_padding() noexcept;

  std::size_t size_ = 0;
  union Store {
    std::uint64_t inline_words[kInlineWords];
    std::uint64_t* heap;
  } store_;
};

inline ConstBitRow::ConstBitRow(const BitVector& v) noexcept
    : words_(v.words().data()), bits_(v.size()) {}

inline BitRow::BitRow(BitVector& v) noexcept
    : ConstBitRow(v), mwords_(v.word_data()) {}

inline std::size_t ConstBitRow::hamming(ConstBitRow other) const noexcept {
  CS_ASSERT(bits_ == other.bits_, "hamming: size mismatch");
  return bitkernel::hamming(words_, other.words_, bitkernel::word_count(bits_));
}

inline bool ConstBitRow::hamming_exceeds(ConstBitRow other,
                                         std::size_t threshold) const noexcept {
  CS_ASSERT(bits_ == other.bits_, "hamming_exceeds: size mismatch");
  return bitkernel::hamming_exceeds(words_, other.words_,
                                    bitkernel::word_count(bits_), threshold);
}

inline std::size_t ConstBitRow::hamming_prefix(ConstBitRow other,
                                               std::size_t prefix_bits) const noexcept {
  CS_ASSERT(prefix_bits <= bits_ && prefix_bits <= other.bits_, "hamming_prefix: oob");
  return bitkernel::hamming_prefix(words_, other.words_, prefix_bits);
}

inline void ConstBitRow::diff_positions_into(ConstBitRow other,
                                             std::vector<std::size_t>& out) const {
  CS_ASSERT(bits_ == other.bits_, "diff_positions: size mismatch");
  bitkernel::diff_positions_into(words_, other.words_,
                                 bitkernel::word_count(bits_), out);
}

inline std::vector<std::size_t> ConstBitRow::diff_positions(ConstBitRow other) const {
  std::vector<std::size_t> out;
  diff_positions_into(other, out);
  return out;
}

/// Fresh uniform-random vector.
BitVector random_bitvector(std::size_t size, Rng& rng, double density = 0.5);

}  // namespace colscore
