// Core identifier and size types shared by every colscore subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace colscore {

/// Index of a player in the population [0, n_players).
using PlayerId = std::uint32_t;
/// Index of an object in the universe [0, n_objects).
using ObjectId = std::uint32_t;

inline constexpr PlayerId kInvalidPlayer = static_cast<PlayerId>(-1);
inline constexpr ObjectId kInvalidObject = static_cast<ObjectId>(-1);

}  // namespace colscore
