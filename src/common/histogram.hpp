// Fixed-width bucket histogram, used by the sampling-concentration
// experiments (Lemma 6) and probe-distribution reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace colscore {

class Histogram {
 public:
  /// Buckets of equal width covering [lo, hi); out-of-range samples clamp to
  /// the edge buckets.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t total() const noexcept { return total_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Fraction of mass at or below x.
  double cdf(double x) const noexcept;

  /// ASCII rendering (one row per non-empty bucket).
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace colscore
