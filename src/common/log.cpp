#include "src/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace colscore {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?    ";
  }
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[colscore %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace colscore
