// ExecPolicy: an explicit execution-policy handle threaded through every
// parallel loop (the lgrtk device_policy shape, specialized to this repo).
//
// A policy names *where* data-parallel work runs — serial inline, on a
// caller-owned ThreadPool, or on the process-default pool — and *which*
// scratch it uses: each policy owns an arena of RunWorkspace slots, and a
// worker executing under the policy is bound to exactly one slot for the
// duration of its outermost frame (WorkerScope). Nested frames on the same
// worker share that slot, preserving the CL001 workspace-group contract,
// while two policies (two concurrent suites) can never alias scratch because
// their arenas are disjoint.
//
// Migration rule for new code: take `const ExecPolicy&` (or a ProtocolEnv,
// which carries one) and spell loops `policy.par_for(...)` / `env.par_for(...)`
// and scratch `policy.workspace()` / `env.workspace()`. The ambient spellings
// `ThreadPool::global()`, free `parallel_for(...)`, and
// `RunWorkspace::current()` are banned in src/ by lint rule CL012.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "src/common/thread_pool.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

class WorkspaceArena;

class ExecPolicy {
 public:
  /// Everything runs inline on the calling thread; worker_count() == 1.
  static ExecPolicy serial();
  /// Work runs on `pool` (caller keeps ownership; the pool must outlive
  /// every par_for issued through the policy, including queued stragglers —
  /// ThreadPool's destructor drains its queue, so pool-before-policy
  /// destruction order is safe).
  static ExecPolicy pool(ThreadPool& pool);
  /// The process-wide default policy over ThreadPool::global(). The one
  /// sanctioned spelling for code without a caller-provided policy (benches,
  /// tests, the free parallel_for shim). Resolves the global pool lazily on
  /// every call so the CLI's startup sizing still applies.
  static const ExecPolicy& process_default();

  ExecPolicy(const ExecPolicy&) = default;
  ExecPolicy& operator=(const ExecPolicy&) = default;

  /// Number of workers a par_for may use (1 => par_for runs inline).
  std::size_t worker_count() const noexcept {
    switch (kind_) {
      case Kind::kSerial: return 1;
      case Kind::kPool: return workers_;
      case Kind::kGlobal: return global_worker_count();
    }
    return 1;
  }

  /// The workspace slot bound to the calling worker (via WorkerScope). On a
  /// thread not bound to this policy's arena, falls back to the per-thread
  /// workspace, which is always private to the caller.
  RunWorkspace& workspace() const;

  /// Runs body(i) for every i in [begin, end); blocks until done. Serial
  /// path (one worker, or a single index) calls the body directly — inlined,
  /// no std::function construction; the protocol hot path invokes this
  /// millions of times per suite.
  template <typename Body>
  void par_for(std::size_t begin, std::size_t end, Body&& body,
               std::size_t grain = 0) const {
    if (begin >= end) return;
    if (worker_count() <= 1 || end - begin == 1) {
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }
    run_on_pool(begin, end,
                std::function<void(std::size_t)>(std::ref(body)), grain);
  }

 private:
  enum class Kind { kSerial, kPool, kGlobal };

  ExecPolicy(Kind kind, ThreadPool* pool, std::size_t workers);

  static std::size_t global_worker_count();
  ThreadPool& resolve_pool() const;
  void run_on_pool(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain) const;

  Kind kind_;
  ThreadPool* pool_ = nullptr;  // kPool only
  std::size_t workers_ = 1;     // cached thread count for kPool
  std::shared_ptr<WorkspaceArena> arena_;

  friend class WorkerScope;
};

/// Binds the calling thread to a workspace slot of `policy` for the scope's
/// lifetime. Reentrant per thread: if the thread is already bound to the same
/// policy's arena (an outer frame), the scope is a no-op and the nested frame
/// shares the outer slot — exactly the old thread_local sharing that the
/// CL001 group-ownership contract is written against. Pool workers get a
/// scope automatically around their chunk-claiming loop; open one explicitly
/// at a serial entry point (run_scenario does) so serial and pooled runs see
/// the same workspace discipline.
class WorkerScope {
 public:
  explicit WorkerScope(const ExecPolicy& policy);
  ~WorkerScope();
  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;

 private:
  std::shared_ptr<WorkspaceArena> arena_;  // keepalive for straggler helpers
  RunWorkspace* slot_ = nullptr;           // null => reused an outer binding
  const WorkspaceArena* prev_arena_ = nullptr;
  RunWorkspace* prev_ws_ = nullptr;
};

/// Legacy free wrapper, kept for benches and tests only: a shim over the
/// process-default policy. Library code takes an ExecPolicy (CL012).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 0) {
  ExecPolicy::process_default().par_for(begin, end, std::forward<Body>(body),
                                        grain);
}

}  // namespace colscore
