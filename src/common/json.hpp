// Minimal JSON reader/writer for checked-in configuration artifacts (suite
// files) and line-oriented result output (JsonlSink).
//
// Scope is deliberately small: full parse of one document into a JsonValue
// tree, with errors that carry line:column positions. Numbers keep their
// source spelling (`raw`) so integer-valued config fields round-trip into
// scenario override strings without a float detour ("64" never becomes
// "64.000000"). Objects preserve insertion order and reject duplicate keys —
// a duplicated key in a config file is always a mistake worth naming.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace colscore {

/// Thrown on malformed documents. The message includes line:column and the
/// offending token or construct.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Source spelling for numbers ("64", "0.25", "1e6"); value text for
  /// strings (unescaped).
  std::string text;
  std::vector<JsonValue> items;                              // arrays
  std::vector<std::pair<std::string, JsonValue>> members;    // objects

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// "null", "boolean", "number", "string", "array", "object" — for errors.
  const char* kind_name() const;
};

/// Parses exactly one JSON document (trailing non-whitespace is an error).
JsonValue json_parse(std::string_view text);

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
std::string json_quote(std::string_view s);

}  // namespace colscore
