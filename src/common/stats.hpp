// Small statistics helpers used by metrics and the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace colscore {

/// Summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  std::string to_string() const;
};

Summary summarize(std::span<const double> values);
Summary summarize(std::span<const std::size_t> values);

/// q-th quantile (q in [0,1]) with linear interpolation; input need not be sorted.
double quantile(std::vector<double> values, double q);

/// Online mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  // sample variance, 0 if n < 2
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Least-squares slope of log(y) against log(x); used to fit scaling
/// exponents in the probe-complexity experiments. Points with
/// non-positive coordinates are skipped.
double loglog_slope(std::span<const double> x, std::span<const double> y);

/// Chernoff-style tail helper: probability that Binomial(k, 1/2) deviates
/// from k/2 by at least delta*k (upper bound, exp(-2 delta^2 k)).
double binomial_tail_bound(std::size_t k, double delta);

}  // namespace colscore
