// Minimal CSV emitter for experiment outputs (stdout or file).
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace colscore {

class CsvWriter {
 public:
  /// Writes rows to `out`; the header row is emitted on construction.
  /// Pass emit_header=false when appending to an artifact that already has
  /// one (the columns still pin the expected row width).
  CsvWriter(std::ostream& out, std::vector<std::string> columns,
            bool emit_header = true);

  /// Number of values must match the header width.
  void row(std::initializer_list<std::string> values);
  void row(const std::vector<std::string>& values);

  template <typename... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(Ts));
    (cells.push_back(to_cell(vals)), ...);
    write_row(cells);
  }

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }
  void write_row(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace colscore
