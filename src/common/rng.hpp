// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible across runs and thread counts, so every
// parallel task derives its own statistically-independent stream from
// (root seed, stable task key) instead of sharing a generator. Streams are
// xoshiro256** states seeded through SplitMix64, the construction recommended
// by the xoshiro authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace colscore {

/// SplitMix64 step; used for seeding and for hash-style key mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of up to three 64-bit keys into one well-distributed word.
std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                       std::uint64_t c = 0xbf58476d1ce4e5b9ULL) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xc0fefe1234abcdefULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli(p).
  bool chance(double p) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Child stream for a stable key; independent of calls made on this stream.
  Rng fork(std::uint64_t key) const noexcept;
  Rng fork(std::uint64_t key1, std::uint64_t key2) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t origin_ = 0;  // seed identity preserved so fork() is call-order independent
};

}  // namespace colscore
