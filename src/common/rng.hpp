// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible across runs and thread counts, so every
// parallel task derives its own statistically-independent stream from
// (root seed, stable task key) instead of sharing a generator. Streams are
// xoshiro256** states seeded through SplitMix64, the construction recommended
// by the xoshiro authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace colscore {

/// SplitMix64 step; used for seeding and for hash-style key mixing.
/// Inline: key derivation runs tens of millions of times per suite.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of up to three 64-bit keys into one well-distributed word.
inline std::uint64_t mix_keys(std::uint64_t a,
                              std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                              std::uint64_t c = 0xbf58476d1ce4e5b9ULL) noexcept {
  std::uint64_t st = a;
  std::uint64_t x = splitmix64(st);
  st ^= b + 0x9e3779b97f4a7c15ULL + (st << 6) + (st >> 2);
  x ^= splitmix64(st);
  st ^= c + 0x9e3779b97f4a7c15ULL + (st << 6) + (st >> 2);
  x ^= splitmix64(st);
  return x;
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xc0fefe1234abcdefULL) noexcept : origin_(seed) {
    std::uint64_t st = seed;
    for (auto& word : s_) word = splitmix64(st);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Power-of-two bounds: 2^64 mod bound is 0, so every draw is accepted
    // and the mod is a mask. One draw consumed, same value as r % bound.
    if ((bound & (bound - 1)) == 0) return (*this)() & (bound - 1);
    // Lemire-style rejection to avoid modulo bias. The rejection threshold
    // is 2^64 mod bound, which is < bound: any draw >= bound is accepted
    // without computing it, so the almost-always path pays one division
    // (the final mod), not two. Draw sequence and accepted values are
    // identical to the textbook formulation.
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= bound || r >= (0 - bound) % bound) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli(p).
  bool chance(double p) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Child stream for a stable key; independent of calls made on this stream.
  Rng fork(std::uint64_t key) const noexcept;
  Rng fork(std::uint64_t key1, std::uint64_t key2) const noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  std::uint64_t origin_ = 0;  // seed identity preserved so fork() is call-order independent
};

}  // namespace colscore
