// Word-parallel kernels over raw 64-bit word arrays.
//
// BitVector and the BitMatrix row views (BitRow/ConstBitRow) share these so
// the hot loops — Hamming sweeps in the neighbor graph, diff enumeration in
// the Select tournaments — compile to the same XOR+popcount code regardless
// of which container owns the bits. All functions assume the caller has
// validated sizes and that padding bits past `bits` in the last word are
// zero (both containers maintain that invariant).
//
// The entry points here are *dispatched*: rows at or above
// simd::kDispatchMinWords route through the runtime-selected SIMD tier
// (src/common/simd.hpp — AVX-512 VPOPCNTDQ / AVX2 Harley-Seal / scalar),
// smaller ones stay on the inline scalar forms. The scalar forms live in
// bitkernel::scalar and double as the portable fallback tier and the
// reference the SIMD tiers are cross-checked against (tests/test_simd.cpp);
// their tail loops and the final-word mask are shared helpers so the scalar
// and SIMD paths cannot drift.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "src/common/simd.hpp"

namespace colscore::bitkernel {

inline constexpr std::size_t kWordBits = 64;

inline constexpr std::size_t word_count(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Mask keeping the low `nbits` (1 <= nbits < 64) bits of a word. The single
/// source of truth for the padding-bits-are-zero invariant: every path that
/// writes a partial final word (scalar and SIMD extract_bits, hamming_prefix,
/// the containers' fill/randomize) masks through this.
inline constexpr std::uint64_t low_mask(std::size_t nbits) noexcept {
  return (1ULL << nbits) - 1;
}

// ---- scalar reference forms (the portable fallback tier) --------------------

namespace scalar {

/// Shared tail: popcount of words [i, words). Both the 4-way-unrolled scalar
/// bulk loops and every SIMD tier's remainder land here.
inline std::size_t popcount_tail(const std::uint64_t* w, std::size_t i,
                                 std::size_t words) noexcept {
  std::size_t total = 0;
  for (; i < words; ++i)
    total += static_cast<std::size_t>(std::popcount(w[i]));
  return total;
}

/// Shared tail: popcount of a[i]^b[i] for words [i, words).
inline std::size_t hamming_tail(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t i, std::size_t words) noexcept {
  std::size_t total = 0;
  for (; i < words; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

/// Shared tail: dst[i] ^= src[i] for words [i, words).
inline void xor_tail(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t i, std::size_t words) noexcept {
  for (; i < words; ++i) dst[i] ^= src[i];
}

inline std::size_t popcount(const std::uint64_t* w, std::size_t words) noexcept {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
    total += static_cast<std::size_t>(std::popcount(w[i + 1]));
    total += static_cast<std::size_t>(std::popcount(w[i + 2]));
    total += static_cast<std::size_t>(std::popcount(w[i + 3]));
  }
  return total + popcount_tail(w, i, words);
}

inline std::size_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    total += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    total += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    total += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  return total + hamming_tail(a, b, i, words);
}

/// True iff hamming(a, b) > threshold; stops scanning as soon as the running
/// distance crosses the threshold. Far pairs (the common case in neighbor
/// graph construction, where most players sit in other clusters) exit after a
/// handful of words instead of scanning the whole row. The check runs once
/// per 4-word block so near pairs pay almost nothing for it.
inline bool hamming_exceeds(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words, std::size_t threshold) noexcept {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    total += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    total += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    total += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
    if (total > threshold) return true;
  }
  return total + hamming_tail(a, b, i, words) > threshold;
}

inline void xor_into(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    dst[i] ^= src[i];
    dst[i + 1] ^= src[i + 1];
    dst[i + 2] ^= src[i + 2];
    dst[i + 3] ^= src[i + 3];
  }
  xor_tail(dst, src, i, words);
}

/// Shared tail of the bit-extraction shift: writes out-words [i, out_words)
/// given the source split (base word + bit offset), then masks the final
/// word so padding bits past n come out zero. Every SIMD tier finishes its
/// vector bulk through this, so the boundary handling (the last source word
/// may not exist) and the padding mask live in exactly one place.
inline void extract_tail(const std::uint64_t* src, std::size_t src_words,
                         std::size_t base, std::size_t off, std::size_t i,
                         std::size_t n, std::uint64_t* out) noexcept {
  const std::size_t out_words = word_count(n);
  if (off == 0) {
    for (; i < out_words; ++i) out[i] = src[base + i];
  } else {
    for (; i < out_words; ++i) {
      const std::uint64_t lo = src[base + i] >> off;
      const std::uint64_t hi =
          base + i + 1 < src_words ? src[base + i + 1] << (kWordBits - off) : 0;
      out[i] = lo | hi;
    }
  }
  const std::size_t rem = n % kWordBits;
  if (rem != 0) out[out_words - 1] &= low_mask(rem);
}

/// Copies bits [first, first + n) of a packed source row into `out` (bit i
/// of out = source bit first + i). Writes word_count(n) words; padding bits
/// past n in the last word come out zero. `src_words` is the number of
/// valid words at `src` — reads never go past it (the tail beyond a
/// partial last word is treated as zero).
inline void extract_bits(const std::uint64_t* src, std::size_t src_words,
                         std::size_t first, std::size_t n,
                         std::uint64_t* out) noexcept {
  if (n == 0) return;
  extract_tail(src, src_words, first / kWordBits, first % kWordBits, 0, n, out);
}

}  // namespace scalar

// ---- dispatched entry points ------------------------------------------------
// Identical results on every tier; the size gate keeps sub-512-bit rows on
// the inline scalar forms (see simd::kDispatchMinWords).

inline std::size_t popcount(const std::uint64_t* w, std::size_t words) noexcept {
  if (words < simd::kDispatchMinWords) return scalar::popcount(w, words);
  return simd::active().popcount(w, words);
}

inline std::size_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  if (words < simd::kDispatchMinWords) return scalar::hamming(a, b, words);
  return simd::active().hamming(a, b, words);
}

/// True iff hamming(a, b) > threshold, early-exiting block by block (see the
/// scalar form for the semantics; the SIMD tiers check per vector block).
inline bool hamming_exceeds(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words, std::size_t threshold) noexcept {
  if (words < simd::kDispatchMinWords)
    return scalar::hamming_exceeds(a, b, words, threshold);
  return simd::active().hamming_exceeds(a, b, words, threshold);
}

/// dst[i] ^= src[i] over `words` words.
inline void xor_into(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t words) noexcept {
  if (words < simd::kDispatchMinWords) return scalar::xor_into(dst, src, words);
  simd::active().xor_into(dst, src, words);
}

/// Copies bits [first, first + n) of a packed source row into `out`; see
/// scalar::extract_bits for the exact contract (padding zero, bounded reads).
inline void extract_bits(const std::uint64_t* src, std::size_t src_words,
                         std::size_t first, std::size_t n,
                         std::uint64_t* out) noexcept {
  if (word_count(n) < simd::kDispatchMinWords)
    return scalar::extract_bits(src, src_words, first, n, out);
  simd::active().extract_bits(src, src_words, first, n, out);
}

inline std::size_t hamming_prefix(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t prefix_bits) noexcept {
  const std::size_t full = prefix_bits / kWordBits;
  std::size_t total = hamming(a, b, full);
  const std::size_t rem = prefix_bits % kWordBits;
  if (rem != 0)
    total += static_cast<std::size_t>(
        std::popcount((a[full] ^ b[full]) & low_mask(rem)));
  return total;
}

/// Appends the positions where a and b differ (ascending) to `out`. The
/// caller clears `out` if it wants only this pair's positions — keeping the
/// clear outside lets tournament loops reuse one buffer across pairs.
inline void diff_positions_into(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words, std::vector<std::size_t>& out) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t x = a[w] ^ b[w];
    while (x != 0) {
      const int bit = std::countr_zero(x);
      out.push_back(w * kWordBits + static_cast<std::size_t>(bit));
      x &= x - 1;
    }
  }
}

/// Stable fnv-style content hash; must produce identical values for identical
/// bit content whether the bits live in a BitVector or a BitMatrix row (the
/// deterministic Select variant keys probe streams off this).
inline std::uint64_t content_hash(const std::uint64_t* w, std::size_t bits) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ bits;
  const std::size_t words = word_count(bits);
  for (std::size_t i = 0; i < words; ++i) {
    h ^= w[i];
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace colscore::bitkernel
