// Word-parallel kernels over raw 64-bit word arrays.
//
// BitVector and the BitMatrix row views (BitRow/ConstBitRow) share these so
// the hot loops — Hamming sweeps in the neighbor graph, diff enumeration in
// the Select tournaments — compile to the same XOR+popcount code regardless
// of which container owns the bits. All functions assume the caller has
// validated sizes and that padding bits past `bits` in the last word are
// zero (both containers maintain that invariant).
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace colscore::bitkernel {

inline constexpr std::size_t kWordBits = 64;

inline constexpr std::size_t word_count(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}

inline std::size_t popcount(const std::uint64_t* w, std::size_t words) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i)
    total += static_cast<std::size_t>(std::popcount(w[i]));
  return total;
}

inline std::size_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

/// True iff hamming(a, b) > threshold; stops scanning as soon as the running
/// distance crosses the threshold. Far pairs (the common case in neighbor
/// graph construction, where most players sit in other clusters) exit after a
/// handful of words instead of scanning the whole row. The check runs once
/// per 4-word block so near pairs pay almost nothing for it.
inline bool hamming_exceeds(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words, std::size_t threshold) noexcept {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    total += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    total += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    total += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
    if (total > threshold) return true;
  }
  for (; i < words; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total > threshold;
}

inline std::size_t hamming_prefix(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t prefix_bits) noexcept {
  const std::size_t full = prefix_bits / kWordBits;
  std::size_t total = 0;
  for (std::size_t i = 0; i < full; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  const std::size_t rem = prefix_bits % kWordBits;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    total += static_cast<std::size_t>(std::popcount((a[full] ^ b[full]) & mask));
  }
  return total;
}

/// Appends the positions where a and b differ (ascending) to `out`. The
/// caller clears `out` if it wants only this pair's positions — keeping the
/// clear outside lets tournament loops reuse one buffer across pairs.
inline void diff_positions_into(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words, std::vector<std::size_t>& out) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t x = a[w] ^ b[w];
    while (x != 0) {
      const int bit = std::countr_zero(x);
      out.push_back(w * kWordBits + static_cast<std::size_t>(bit));
      x &= x - 1;
    }
  }
}

/// Copies bits [first, first + n) of a packed source row into `out` (bit i
/// of out = source bit first + i). Writes word_count(n) words; padding bits
/// past n in the last word come out zero. `src_words` is the number of
/// valid words at `src` — reads never go past it (the tail beyond a
/// partial last word is treated as zero).
inline void extract_bits(const std::uint64_t* src, std::size_t src_words,
                         std::size_t first, std::size_t n, std::uint64_t* out) {
  if (n == 0) return;
  const std::size_t out_words = word_count(n);
  const std::size_t base = first / kWordBits;
  const std::size_t off = first % kWordBits;
  if (off == 0) {
    for (std::size_t i = 0; i < out_words; ++i) out[i] = src[base + i];
  } else {
    for (std::size_t i = 0; i < out_words; ++i) {
      const std::uint64_t lo = src[base + i] >> off;
      const std::uint64_t hi =
          base + i + 1 < src_words ? src[base + i + 1] << (kWordBits - off) : 0;
      out[i] = lo | hi;
    }
  }
  const std::size_t rem = n % kWordBits;
  if (rem != 0) out[out_words - 1] &= (1ULL << rem) - 1;
}

/// Stable fnv-style content hash; must produce identical values for identical
/// bit content whether the bits live in a BitVector or a BitMatrix row (the
/// deterministic Select variant keys probe streams off this).
inline std::uint64_t content_hash(const std::uint64_t* w, std::size_t bits) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ bits;
  const std::size_t words = word_count(bits);
  for (std::size_t i = 0; i < words; ++i) {
    h ^= w[i];
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace colscore::bitkernel
