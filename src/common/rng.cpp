#include "src/common/rng.hpp"

namespace colscore {

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t key) const noexcept {
  return Rng(mix_keys(origin_, key));
}

Rng Rng::fork(std::uint64_t key1, std::uint64_t key2) const noexcept {
  return Rng(mix_keys(origin_, key1, key2));
}

}  // namespace colscore
