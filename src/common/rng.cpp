#include "src/common/rng.hpp"

namespace colscore {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  std::uint64_t st = a;
  std::uint64_t x = splitmix64(st);
  st ^= b + 0x9e3779b97f4a7c15ULL + (st << 6) + (st >> 2);
  x ^= splitmix64(st);
  st ^= c + 0x9e3779b97f4a7c15ULL + (st << 6) + (st >> 2);
  x ^= splitmix64(st);
  return x;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : origin_(seed) {
  std::uint64_t st = seed;
  for (auto& word : s_) word = splitmix64(st);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t key) const noexcept {
  return Rng(mix_keys(origin_, key));
}

Rng Rng::fork(std::uint64_t key1, std::uint64_t key2) const noexcept {
  return Rng(mix_keys(origin_, key1, key2));
}

}  // namespace colscore
