#include "src/common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/assert.hpp"

namespace colscore {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  CS_ASSERT(hi > lo, "histogram: empty range");
  CS_ASSERT(buckets > 0, "histogram: zero buckets");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<long>(std::floor((x - lo_) / width_));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bucket_hi(b) <= x)
      below += counts_[b];
    else
      break;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::ostringstream os;
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_width / peak;
    os << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") " << counts_[b] << " "
       << std::string(std::max<std::size_t>(bar, 1), '#') << "\n";
  }
  return os.str();
}

}  // namespace colscore
