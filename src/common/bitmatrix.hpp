// Contiguous row-major bit matrix for families of preference vectors.
//
// The protocol's hot phases (neighbor graph, clustering, RSelect tournaments)
// sweep Hamming distances over *families* of binary vectors. Storing a family
// as std::vector<BitVector> costs one heap allocation per row and scatters
// rows across the heap; BitMatrix packs all rows into a single 64-byte-aligned
// allocation so tiled pair sweeps stream rows linearly through cache.
//
// Layout invariants (relied on by callers — see ROADMAP "Performance"):
//   * One allocation; row r starts at words() + r * word_stride().
//   * word_stride() is a multiple of 8 words (64 bytes), so every row starts
//     on its own cache line: distinct rows never share a word, which makes
//     per-row parallel writes race-free, and never share a cache line, which
//     avoids false sharing.
//   * Padding bits past cols() in a row's last used word are zero, and the
//     stride-padding words between rows are zero — row views hash/compare
//     identically to an equal BitVector.
//
// Rows are exposed as BitRow/ConstBitRow views (see bitvector.hpp), which
// share BitVector's word-parallel kernels: any code written against the views
// runs unchanged over BitVectors and matrix rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bitvector.hpp"

namespace colscore {

class BitMatrix {
 public:
  BitMatrix() = default;
  /// rows x cols matrix, every bit set to `value`.
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false);

  BitMatrix(const BitMatrix& other);
  BitMatrix& operator=(const BitMatrix& other);
  BitMatrix(BitMatrix&& other) noexcept;
  BitMatrix& operator=(BitMatrix&& other) noexcept;

  /// Reshapes to rows x cols with every bit zero, reusing the existing
  /// allocation when it is large enough (workspace pooling across runs).
  /// All layout invariants above hold afterwards.
  void reset(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0; }
  /// Words from the start of one row to the start of the next (multiple of 8).
  std::size_t word_stride() const noexcept { return stride_; }

  BitRow row(std::size_t r) noexcept {
    return BitRow(words_.get() + r * stride_, cols_);
  }
  ConstBitRow row(std::size_t r) const noexcept {
    return ConstBitRow(words_.get() + r * stride_, cols_);
  }

  bool get(std::size_t r, std::size_t c) const noexcept { return row(r).get(c); }
  void set(std::size_t r, std::size_t c, bool value) noexcept { row(r).set(c, value); }

  void fill(bool value) noexcept;

  /// Read views of every row, for APIs taking std::span<const ConstBitRow>.
  std::vector<ConstBitRow> row_views() const;

  const std::uint64_t* words() const noexcept { return words_.get(); }

 private:
  struct FreeDeleter {
    void operator()(std::uint64_t* p) const noexcept { std::free(p); }
  };

  std::size_t total_words() const noexcept { return rows_ * stride_; }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::size_t capacity_words_ = 0;  // allocation size; >= total_words()
  std::unique_ptr<std::uint64_t[], FreeDeleter> words_;
};

bool operator==(const BitMatrix& a, const BitMatrix& b) noexcept;

}  // namespace colscore
