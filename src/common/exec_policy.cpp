#include "src/common/exec_policy.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <vector>

namespace colscore {

// Policy-owned per-worker workspace slots. A deque keeps slots pointer-stable
// while the arena grows; released slots are recycled (warm buffers) before a
// new one is constructed. The arena is shared_ptr-held by the policy and by
// every WorkerScope, so a straggler pool helper that outlives the policy
// object still owns the storage it is bound to.
class WorkspaceArena {
 public:
  RunWorkspace* acquire() {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      RunWorkspace* ws = free_.back();
      free_.pop_back();
      return ws;
    }
    slots_.emplace_back();
    return &slots_.back();
  }

  void release(RunWorkspace* ws) {
    std::lock_guard lock(mutex_);
    free_.push_back(ws);
  }

 private:
  std::mutex mutex_;
  std::deque<RunWorkspace> slots_;
  std::vector<RunWorkspace*> free_;
};

namespace {

// The calling thread's current binding: which arena it is working for and
// which slot it holds. Confined to this TU — everything else reaches scratch
// through ExecPolicy::workspace().
struct Binding {
  const WorkspaceArena* arena = nullptr;
  RunWorkspace* ws = nullptr;
};
thread_local Binding tl_binding;

}  // namespace

ExecPolicy::ExecPolicy(Kind kind, ThreadPool* pool, std::size_t workers)
    : kind_(kind),
      pool_(pool),
      workers_(workers),
      arena_(std::make_shared<WorkspaceArena>()) {}

ExecPolicy ExecPolicy::serial() {
  return ExecPolicy(Kind::kSerial, nullptr, 1);
}

ExecPolicy ExecPolicy::pool(ThreadPool& pool) {
  return ExecPolicy(Kind::kPool, &pool,
                    std::max<std::size_t>(1, pool.thread_count()));
}

const ExecPolicy& ExecPolicy::process_default() {
  static const ExecPolicy policy(Kind::kGlobal, nullptr, 0);
  return policy;
}

std::size_t ExecPolicy::global_worker_count() {
  return ThreadPool::global().thread_count();
}

ThreadPool& ExecPolicy::resolve_pool() const {
  if (kind_ == Kind::kPool) return *pool_;
  return ThreadPool::global();
}

RunWorkspace& ExecPolicy::workspace() const {
  if (tl_binding.arena == arena_.get() && tl_binding.ws != nullptr)
    return *tl_binding.ws;
  // Thread not bound to this policy (bench/test entry point, or a serial
  // frame that never opened a WorkerScope): the per-thread workspace is
  // private to the caller and therefore always safe.
  return RunWorkspace::current();
}

void ExecPolicy::run_on_pool(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) const {
  // Value-copy the policy into the scope: queued helper tasks may run after
  // this frame returns (claiming nothing), and the copy's arena_ shared_ptr
  // keeps the slot storage alive for them.
  ExecPolicy self = *this;
  const ThreadPool::ThreadScope scope =
      [self](const std::function<void()>& chunk_loop) {
        WorkerScope worker(self);
        chunk_loop();
      };
  resolve_pool().parallel_for(begin, end, body, grain, scope);
}

WorkerScope::WorkerScope(const ExecPolicy& policy) : arena_(policy.arena_) {
  if (tl_binding.arena == arena_.get()) return;  // nested frame: share slot
  prev_arena_ = tl_binding.arena;
  prev_ws_ = tl_binding.ws;
  slot_ = arena_->acquire();
  tl_binding = Binding{arena_.get(), slot_};
}

WorkerScope::~WorkerScope() {
  if (slot_ == nullptr) return;
  tl_binding = Binding{prev_arena_, prev_ws_};
  arena_->release(slot_);
}

}  // namespace colscore
