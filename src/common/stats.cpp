#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace colscore {

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " mean=" << mean << " p50=" << p50
     << " p95=" << p95 << " max=" << max << " sd=" << stddev;
  return os.str();
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  Accumulator acc;
  for (double v : sorted) acc.add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  auto q = [&](double p) {
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p50 = q(0.50);
  s.p95 = q(0.95);
  s.p99 = q(0.99);
  return s;
}

Summary summarize(std::span<const std::size_t> values) {
  std::vector<double> d(values.size());
  std::transform(values.begin(), values.end(), d.begin(),
                 [](std::size_t v) { return static_cast<double>(v); });
  return summarize(std::span<const double>(d));
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

double binomial_tail_bound(std::size_t k, double delta) {
  if (k == 0) return 1.0;
  return std::exp(-2.0 * delta * delta * static_cast<double>(k));
}

}  // namespace colscore
