#include "src/protocols/small_radius.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/bitmatrix.hpp"
#include "src/common/workspace.hpp"
#include "src/protocols/select.hpp"

namespace colscore {

namespace {

std::size_t subset_count(const SmallRadiusParams& params, std::size_t n_objects) {
  const double raw = params.subset_scale *
                     std::pow(std::max<double>(1.0, static_cast<double>(params.diameter)),
                              params.subset_exponent);
  const auto s = static_cast<std::size_t>(std::ceil(raw));
  return std::clamp<std::size_t>(s, 1, n_objects);
}

}  // namespace

SmallRadiusResult small_radius(std::span<const PlayerId> players,
                               std::span<const ObjectId> objects,
                               const SmallRadiusParams& params, ProtocolEnv& env,
                               std::uint64_t phase_key) {
  CS_ASSERT(params.budget >= 1, "small_radius: budget >= 1 required");
  SmallRadiusResult result;
  result.outputs.assign(players.size(), BitVector(objects.size()));
  if (players.empty() || objects.empty()) return result;

  const std::size_t s = subset_count(params, objects.size());
  result.stats.subsets = s;

  ZeroRadiusParams zr = params.zr;
  zr.budget = 5 * params.budget;

  // Support threshold for U_i: vectors output by >= n/(divisor*B) players.
  const auto support_threshold = static_cast<std::size_t>(std::max(
      1.0, std::floor(static_cast<double>(env.n_players()) /
                      (params.support_divisor * static_cast<double>(params.budget)))));
  const std::size_t max_candidates = std::max<std::size_t>(
      2, static_cast<std::size_t>(params.support_divisor *
                                  static_cast<double>(params.budget)));

  // candidates[r] row i = candidate vector of players[i] from repeat r.
  // Contiguous rows: the per-subset parallel writes below touch only their
  // own row, and BitMatrix rows never share a cache line. The matrices are
  // pooled in the per-worker workspace so repeated grid cells reuse the
  // allocation (sr_* group; disjoint from calculate_preferences' cp_* pool,
  // whose matrices are live while this runs).
  std::vector<BitMatrix>& candidates = env.workspace().sr_candidates;
  if (candidates.size() < params.repeats) candidates.resize(params.repeats);

  // Flat partition buffers (counting sort) — a vector-of-vectors here cost s
  // allocations per repeat.
  RunWorkspace& ws = env.workspace();
  auto& subset_of = ws.sr_subset_of;
  auto& subset_offsets = ws.sr_subset_offsets;
  auto& subset_cursor = ws.sr_subset_cursor;
  auto& coords_flat = ws.sr_coords_flat;
  auto& sub_objects = ws.sr_sub_objects;

  for (std::size_t rep = 0; rep < params.repeats; ++rep) {
    const std::uint64_t rep_key = mix_keys(phase_key, 0x5e9ULL, rep);

    // Step 1: shared random partition of objects into s subsets (same draw
    // per coordinate as the vector-of-vectors formulation, then a counting
    // sort so subset j's coordinate indices stay ascending).
    Rng shared = env.shared_rng(mix_keys(rep_key, 0x9a97ULL));
    subset_of.resize(objects.size());
    for (std::size_t j = 0; j < objects.size(); ++j)
      subset_of[j] = static_cast<std::uint32_t>(shared.below(s));
    subset_offsets.assign(s + 1, 0);
    for (std::uint32_t sub : subset_of) ++subset_offsets[sub + 1];
    for (std::size_t sub = 1; sub <= s; ++sub)
      subset_offsets[sub] += subset_offsets[sub - 1];
    coords_flat.resize(objects.size());
    subset_cursor.assign(subset_offsets.begin(), subset_offsets.end() - 1);
    for (std::size_t j = 0; j < objects.size(); ++j)
      coords_flat[subset_cursor[subset_of[j]]++] = j;

    candidates[rep].reset(players.size(), objects.size());

    // Steps 2-3 per subset: ZeroRadius, support-vote U_i, per-player Select.
    for (std::size_t sub = 0; sub < s; ++sub) {
      const std::span<const std::size_t> coords{
          coords_flat.data() + subset_offsets[sub],
          subset_offsets[sub + 1] - subset_offsets[sub]};
      if (coords.empty()) continue;
      sub_objects.resize(coords.size());
      for (std::size_t j = 0; j < coords.size(); ++j) sub_objects[j] = objects[coords[j]];

      const std::uint64_t sub_key = mix_keys(rep_key, 0x50b5ULL, sub);
      ZeroRadiusResult zr_out = zero_radius(players, sub_objects, zr, env, sub_key);
      result.stats.zr.merge(zr_out.stats);

      // Publish outputs so support can be counted on the board (dishonest
      // players may publish garbage here). Honest publications are the
      // protocol output verbatim — no behaviour call, no RNG stream (an
      // honest publication never draws from it).
      const std::uint64_t channel = mix_keys(sub_key, 0xbea0ULL);
      const ReportContext rctx{Phase::kSmallRadius, channel};
      {
        auto writer = env.board.vector_channel(channel);
        for (std::size_t i = 0; i < players.size(); ++i) {
          if (env.population.is_honest(players[i])) {
            writer.post(players[i], std::move(zr_out.outputs[i]));
            continue;
          }
          Rng prng = env.local_rng(players[i], channel);
          writer.post(players[i],
                      env.population.publication(players[i], zr_out.outputs[i],
                                                 sub_objects, rctx, prng));
        }
      }
      auto supported = env.board.vectors_by_support(channel);
      std::vector<BitVector> ui;
      for (auto& sv : supported) {
        if (sv.support >= support_threshold) ui.push_back(std::move(sv.vector));
        if (ui.size() >= max_candidates) break;
      }
      if (ui.empty()) {
        // Preferences are too fragmented for the support filter (assumption
        // violated); keep the most popular vectors so Select can still run.
        ++result.stats.candidate_overflow;
        for (auto& sv : supported) {
          ui.push_back(std::move(sv.vector));
          if (ui.size() >= max_candidates) break;
        }
      }

      // Step 3: every player selects its vector for this subset. The view
      // list is built once here instead of once per player inside the
      // BitVector overload.
      const std::vector<ConstBitRow> ui_views(ui.begin(), ui.end());
      env.par_for(0, players.size(), [&](std::size_t i) {
        const SelectOutcome sel = select_prefiltered(
            players[i], ui_views, sub_objects, env, mix_keys(sub_key, players[i]),
            params.probes_per_pair, params.prefilter_probes, params.max_finalists,
            /*skip_below=*/0);
        // Write the chosen subset vector into the repeat's full candidate.
        BitRow row = candidates[rep].row(i);
        const ConstBitRow chosen(ui[sel.chosen]);
        for (std::size_t j = 0; j < coords.size(); ++j)
          row.set(coords[j], chosen.get(j));
      });
    }
  }

  // Final step: Select among the per-repeat candidates (zero-copy views).
  env.par_for(0, players.size(), [&](std::size_t i) {
    std::vector<ConstBitRow> cands;
    cands.reserve(params.repeats);
    for (std::size_t rep = 0; rep < params.repeats; ++rep)
      cands.push_back(candidates[rep].row(i));
    const SelectOutcome sel = select_deterministic(
        players[i], cands, objects, env, mix_keys(phase_key, 0xf17a1ULL, players[i]),
        params.probes_per_pair, /*skip_below=*/params.diameter);
    result.outputs[i] = cands[sel.chosen].to_bitvector();
  });

  return result;
}

}  // namespace colscore
