#include "src/protocols/election.hpp"

#include <algorithm>
#include <limits>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

/// Greedy rushing strategy: given honest loads, the colluders pick the bin
/// where, after adding x of their own, the bin still wins and their fraction
/// x / (load + x) is maximal; leftover colluders pile onto the heaviest bin
/// (extra weight elsewhere can only help the chosen bin win).
/// Returns per-bin dishonest placements.
std::vector<std::size_t> place_colluders(const std::vector<std::size_t>& honest_load,
                                         std::size_t colluders) {
  const std::size_t m = honest_load.size();
  std::vector<std::size_t> placement(m, 0);
  if (colluders == 0) return placement;

  // The winning bin is the lightest non-empty (ties -> smallest index).
  auto winner_of = [&](const std::vector<std::size_t>& total) {
    std::size_t win = m;  // sentinel: none
    for (std::size_t b = 0; b < m; ++b) {
      if (total[b] == 0) continue;
      if (win == m || total[b] < total[win]) win = b;
    }
    return win;
  };

  double best_fraction = -1.0;
  std::size_t best_bin = m;
  std::size_t best_x = 0;
  for (std::size_t b = 0; b < m; ++b) {
    // Try to capture bin b with x colluders, x as large as possible while b
    // still wins (all other colluders go to the current heaviest bin).
    for (std::size_t x = colluders; x > 0; --x) {
      std::vector<std::size_t> total = honest_load;
      total[b] += x;
      // Dump the rest on the heaviest other bin.
      std::size_t heavy = b == 0 ? 1 : 0;
      for (std::size_t h = 0; h < m; ++h)
        if (h != b && total[h] > total[heavy]) heavy = h;
      if (heavy < m && heavy != b) total[heavy] += colluders - x;
      if (winner_of(total) != b) continue;
      const double fraction =
          static_cast<double>(x) / static_cast<double>(total[b]);
      if (fraction > best_fraction) {
        best_fraction = fraction;
        best_bin = b;
        best_x = x;
      }
      break;  // largest feasible x found for this bin
    }
  }

  if (best_bin == m) {
    // No capture possible; minimize damage by joining the currently winning
    // bin with everyone (keeps colluders alive if that bin still wins).
    std::size_t win = winner_of(honest_load);
    if (win == m) win = 0;
    placement[win] = colluders;
    return placement;
  }
  placement[best_bin] = best_x;
  std::size_t heavy = best_bin == 0 ? (m > 1 ? 1 : 0) : 0;
  for (std::size_t h = 0; h < m; ++h) {
    if (h == best_bin) continue;
    if (honest_load[h] > honest_load[heavy] || heavy == best_bin) heavy = h;
  }
  if (heavy != best_bin) placement[heavy] += colluders - best_x;
  return placement;
}

}  // namespace

ElectionResult feige_election(ProtocolEnv& env, std::uint64_t phase_key,
                              const ElectionParams& params) {
  ElectionResult result;
  std::vector<PlayerId> remaining(env.n_players());
  for (PlayerId p = 0; p < remaining.size(); ++p) remaining[p] = p;

  const ReportContext ctx{Phase::kElection, phase_key};
  (void)ctx;

  std::size_t round = 0;
  while (remaining.size() > 1 && round < params.max_rounds) {
    const std::uint64_t round_key = mix_keys(phase_key, 0xe1ec7ULL, round);
    const std::size_t m =
        std::max<std::size_t>(2, remaining.size() / params.bin_load);

    // Honest players announce first (their choices are local randomness).
    std::vector<std::size_t> honest_load(m, 0);
    std::vector<PlayerId> honest_in_bin_order;  // stable registry per bin
    std::vector<std::vector<PlayerId>> bin_members(m);
    std::size_t colluders = 0;
    std::vector<PlayerId> dishonest;
    for (PlayerId p : remaining) {
      if (env.population.is_honest(p)) {
        Rng local = env.local_rng(p, round_key);
        const std::size_t b = local.below(m);
        ++honest_load[b];
        bin_members[b].push_back(p);
        env.board.post_report(round_key, p, static_cast<ObjectId>(b), true);
      } else {
        ++colluders;
        dishonest.push_back(p);
      }
    }

    // Rushing colluders answer last.
    const std::vector<std::size_t> placement = place_colluders(honest_load, colluders);
    std::size_t cursor = 0;
    for (std::size_t b = 0; b < m && cursor < dishonest.size(); ++b) {
      for (std::size_t x = 0; x < placement[b] && cursor < dishonest.size(); ++x) {
        bin_members[b].push_back(dishonest[cursor]);
        env.board.post_report(round_key, dishonest[cursor], static_cast<ObjectId>(b),
                              true);
        ++cursor;
      }
    }
    // Any stragglers (placement underflow) go to bin 0.
    for (; cursor < dishonest.size(); ++cursor)
      bin_members[0].push_back(dishonest[cursor]);

    // Lightest non-empty bin survives.
    std::size_t win = m;
    for (std::size_t b = 0; b < m; ++b) {
      if (bin_members[b].empty()) continue;
      if (win == m || bin_members[b].size() < bin_members[win].size()) win = b;
    }
    CS_ASSERT(win < m, "election: no non-empty bin");

    if (bin_members[win].size() == remaining.size() && m >= remaining.size()) {
      // Degenerate no-progress round with maximal bin count: drop the last
      // announcer to force termination (cannot happen with > 1 bin occupied).
      bin_members[win].pop_back();
    }
    remaining = std::move(bin_members[win]);
    ++round;
  }

  result.rounds = round;
  result.leader = remaining.empty() ? kInvalidPlayer : remaining.front();
  result.leader_honest =
      result.leader != kInvalidPlayer && env.population.is_honest(result.leader);
  return result;
}

}  // namespace colscore
