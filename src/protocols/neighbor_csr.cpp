#include "src/protocols/neighbor_csr.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/bitkernels.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

namespace {

/// Same tile sizing as the dense build (neighbor_graph.cpp): two tiles of
/// z-rows resident in L1/L2 while the pair sweep runs.
std::size_t tile_rows(std::size_t n, std::size_t row_bytes) {
  constexpr std::size_t kTileBytes = 32 * 1024;
  const std::size_t rows = kTileBytes / std::max<std::size_t>(1, row_bytes);
  return std::clamp<std::size_t>(rows, 8, std::max<std::size_t>(8, n));
}

/// Deterministic index hash (murmur3 finalizer) for the density sample —
/// spreads pair picks across the triangle without any runtime entropy.
std::uint64_t mix_index(std::uint64_t i) noexcept {
  std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 32;
  return h;
}

constexpr std::size_t kDensitySamples = 256;
constexpr std::size_t kCsrMinPlayers = 2048;
constexpr double kCsrMaxDensity = 1.0 / 16.0;

}  // namespace

bool CsrNeighbors::has_edge(PlayerId p, PlayerId q) const noexcept {
  const std::span<const std::uint32_t> nb = neighbors(p);
  return std::binary_search(nb.begin(), nb.end(), q);
}

double estimate_edge_density(std::span<const ConstBitRow> z,
                             std::size_t threshold) {
  const std::size_t n = z.size();
  if (n < 2) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kDensitySamples; ++i) {
    const std::uint64_t h = mix_index(i);
    const auto p = static_cast<std::size_t>(h % n);
    auto q = static_cast<std::size_t>((h >> 32) % (n - 1));
    if (q >= p) ++q;
    if (!z[p].hamming_exceeds(z[q], threshold)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(kDensitySamples);
}

bool csr_preferred(std::span<const ConstBitRow> z, std::size_t threshold) {
  if (z.size() < kCsrMinPlayers) return false;
  return estimate_edge_density(z, threshold) <= kCsrMaxDensity;
}

CsrNeighbors build_csr_neighbors(std::span<const ConstBitRow> z,
                                 std::size_t threshold,
                                 const ExecPolicy& policy,
                                 const BitVector* alive) {
  const std::size_t n = z.size();
  CS_ASSERT(alive == nullptr || alive->size() == n,
            "csr: alive mask size mismatch");
  CsrNeighbors out;
  out.offsets.assign(n + 1, 0);
  if (n < 2) return out;
  const bool masked = alive != nullptr && alive->popcount() != n;
  const std::size_t dim_words = bitkernel::word_count(z[0].size());
  const std::size_t tile = tile_rows(n, dim_words * sizeof(std::uint64_t));
  const std::size_t n_tiles = (n + tile - 1) / tile;

  // Upper-triangle pass, one task per p-tile exactly as in the dense build —
  // but each task appends (p, q) edges to its own tile list instead of
  // setting bits. The list content depends only on the tile index, never on
  // the thread schedule.
  RunWorkspace& ws = policy.workspace();
  ws.nb_tile_edges.resize(std::max(ws.nb_tile_edges.size(), n_tiles));
  policy.par_for(0, n_tiles, [&, threshold](std::size_t ti) {
    auto& edges = ws.nb_tile_edges[ti];
    edges.clear();
    const std::size_t p_begin = ti * tile;
    const std::size_t p_end = std::min(n, p_begin + tile);
    for (std::size_t tj = ti; tj < n_tiles; ++tj) {
      const std::size_t q_tile_begin = tj * tile;
      const std::size_t q_tile_end = std::min(n, q_tile_begin + tile);
      for (std::size_t p = p_begin; p < p_end; ++p) {
        if (masked && !alive->get(p)) continue;
        const ConstBitRow zp = z[p];
        for (std::size_t q = std::max(q_tile_begin, p + 1); q < q_tile_end; ++q) {
          if (masked && !alive->get(q)) continue;
          if (!zp.hamming_exceeds(z[q], threshold))
            edges.emplace_back(static_cast<std::uint32_t>(p),
                               static_cast<std::uint32_t>(q));
        }
      }
    }
  });

  // counts -> offsets -> scatter, all sequential. Walking the tile lists in
  // tile order yields each row's neighbors fully ascending: within a tile
  // list the (tj, p, q) loop order puts a row's mirror entries (p' < r,
  // appended while the middle loop sits at p' < r) before its forward
  // entries (q > r, appended at p = r in ascending q), and earlier tiles
  // only contribute smaller p'.
  ws.nb_degree.assign(n, 0);
  std::size_t total = 0;
  for (std::size_t ti = 0; ti < n_tiles; ++ti) {
    for (const auto& [p, q] : ws.nb_tile_edges[ti]) {
      ++ws.nb_degree[p];
      ++ws.nb_degree[q];
    }
    total += 2 * ws.nb_tile_edges[ti].size();
  }
  CS_ASSERT(total <= static_cast<std::size_t>(UINT32_MAX),
            "csr: adjacency exceeds uint32 index space");
  for (std::size_t p = 0; p < n; ++p)
    out.offsets[p + 1] = out.offsets[p] + ws.nb_degree[p];

  out.adj.resize(total);
  ws.nb_cursor.assign(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t ti = 0; ti < n_tiles; ++ti) {
    for (const auto& [p, q] : ws.nb_tile_edges[ti]) {
      out.adj[ws.nb_cursor[p]++] = q;
      out.adj[ws.nb_cursor[q]++] = p;
    }
  }
  return out;
}

}  // namespace colscore
