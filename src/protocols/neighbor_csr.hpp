// Sparse CSR backend for the neighbor graph (offsets + flat neighbor array).
//
// The dense BitMatrix adjacency costs O(n^2) bits to allocate, zero, and
// mirror regardless of how many edges exist. In the sparse regime the
// paper's sublinear-probe analysis targets (large n, small tau — expected
// degree far below n), almost all of that work is wasted: the classic
// counts -> offsets -> flat-array CSR layout stores exactly the edges and
// makes every per-player neighbor walk O(degree) instead of O(n/64).
//
// Determinism: the build parallelizes the same upper-triangle tile sweep as
// the dense backend, but each task appends its tile's edges to a private
// per-tile list; the scatter then runs sequentially in tile order. The
// (tile, p, q) generation order makes every adjacency list come out fully
// ascending with no sort and no dependence on thread schedule, so CSR and
// dense backends yield byte-identical downstream output (asserted by
// tests/test_neighbor_csr.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/types.hpp"

namespace colscore {

struct CsrNeighbors {
  /// offsets[p] .. offsets[p+1] index the neighbors of p in `adj`
  /// (ascending). offsets has size n + 1; offsets[n] == adj.size().
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> adj;

  std::size_t size() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::span<const std::uint32_t> neighbors(PlayerId p) const noexcept {
    return {adj.data() + offsets[p], adj.data() + offsets[p + 1]};
  }
  std::size_t degree(PlayerId p) const noexcept {
    return offsets[p + 1] - offsets[p];
  }
  /// Binary search in the ascending neighbor list of p.
  bool has_edge(PlayerId p, PlayerId q) const noexcept;
};

/// Builds the CSR adjacency: edge iff hamming(z[p], z[q]) <= threshold.
/// Same tiled early-exit pair sweep as the dense build, run under `policy`;
/// scratch comes from the calling worker's workspace (nb_ group).
/// A non-null `alive` mask (|alive| == |z|) drops departed players from the
/// pair sweep entirely — their adjacency lists come out empty, matching the
/// streaming update contract (NeighborGraph::apply_updates).
CsrNeighbors build_csr_neighbors(
    std::span<const ConstBitRow> z, std::size_t threshold,
    const ExecPolicy& policy = ExecPolicy::process_default(),
    const BitVector* alive = nullptr);

/// Estimated edge density in [0, 1] from a deterministic sample of pairs
/// (index-hash driven — no ambient randomness, same answer on every run and
/// machine for the same input).
double estimate_edge_density(std::span<const ConstBitRow> z,
                             std::size_t threshold);

/// The auto-backend policy: CSR pays off when n is large enough that the
/// dense O(n^2)-bit adjacency dominates and the graph is actually sparse.
/// Thresholds (n >= 2048, density <= 1/16) chosen from BENCH_pr7 A/B runs;
/// see ROADMAP "SIMD dispatch + CSR neighbor core".
bool csr_preferred(std::span<const ConstBitRow> z, std::size_t threshold);

}  // namespace colscore
