// Work sharing (Fig. 2 step 1.e; Lemmas 10, 12, 13).
//
// For each cluster and each object, Θ(log n) cluster members chosen by the
// shared randomness probe the object and post their reports; the cluster's
// prediction is the majority vote. Redundancy + honest domination inside
// each cluster is what defeats the dishonest voters (Lemma 13).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/protocols/env.hpp"

namespace colscore {

struct WorkShareParams {
  /// Votes per object (Θ(log n)).
  std::size_t votes_per_object = 8;
};

struct WorkShareStats {
  std::uint64_t reports = 0;     // total reports posted
  std::uint64_t ties = 0;        // objects decided by the tie-break coin
};

/// Runs the voting phase for one cluster over the full object universe and
/// returns the cluster's predicted preference vector. Reports go through the
/// bulletin board channel `phase_key` so they are publicly auditable.
BitVector cluster_votes(std::span<const PlayerId> members, ProtocolEnv& env,
                        std::uint64_t phase_key, const WorkShareParams& params,
                        WorkShareStats* stats = nullptr);

}  // namespace colscore
