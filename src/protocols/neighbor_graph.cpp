#include "src/protocols/neighbor_graph.hpp"

#include <algorithm>
#include <bit>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

/// Rows per tile: two tiles of z-rows should sit comfortably in L1/L2 while
/// the pair sweep runs, so the inner loop streams words instead of DRAM.
std::size_t tile_rows(std::size_t n, std::size_t row_bytes) {
  constexpr std::size_t kTileBytes = 32 * 1024;
  const std::size_t rows = kTileBytes / std::max<std::size_t>(1, row_bytes);
  return std::clamp<std::size_t>(rows, 8, std::max<std::size_t>(8, n));
}

}  // namespace

const char* backend_name(GraphBackend backend) noexcept {
  switch (backend) {
    case GraphBackend::kAuto: return "auto";
    case GraphBackend::kDense: return "dense";
    case GraphBackend::kCsr: return "csr";
  }
  return "unknown";
}

NeighborGraph::NeighborGraph(std::span<const ConstBitRow> z,
                             std::size_t threshold, GraphBackend backend,
                             const ExecPolicy& policy) {
  build(z, threshold, backend, policy);
}

NeighborGraph::NeighborGraph(const BitMatrix& z, std::size_t threshold,
                             GraphBackend backend, const ExecPolicy& policy) {
  build(z.row_views(), threshold, backend, policy);
}

NeighborGraph::NeighborGraph(std::span<const BitVector> z, std::size_t threshold,
                             GraphBackend backend, const ExecPolicy& policy) {
  std::vector<ConstBitRow> views(z.begin(), z.end());
  build(views, threshold, backend, policy);
}

ConstBitRow NeighborGraph::row(PlayerId p) const {
  CS_ASSERT(backend_ == GraphBackend::kDense,
            "NeighborGraph::row: dense backend only");
  return adj_.row(p);
}

std::span<const std::uint32_t> NeighborGraph::neighbors(PlayerId p) const {
  CS_ASSERT(backend_ == GraphBackend::kCsr,
            "NeighborGraph::neighbors: csr backend only");
  return csr_.neighbors(p);
}

void NeighborGraph::build(std::span<const ConstBitRow> z, std::size_t threshold,
                          GraphBackend backend, const ExecPolicy& policy) {
  const std::size_t n = z.size();
  n_ = n;
  if (backend == GraphBackend::kAuto)
    backend = csr_preferred(z, threshold) ? GraphBackend::kCsr
                                          : GraphBackend::kDense;
  backend_ = backend;
  if (backend_ == GraphBackend::kCsr) {
    csr_ = build_csr_neighbors(z, threshold, policy);
    return;
  }

  adj_ = BitMatrix(n, n);
  if (n < 2) return;
  const std::size_t dim_words = bitkernel::word_count(z[0].size());
  const std::size_t tile = tile_rows(n, dim_words * sizeof(std::uint64_t));
  const std::size_t n_tiles = (n + tile - 1) / tile;

  // Upper-triangle pass: each task owns the rows of one p-tile (writes only
  // bits q > p of those rows — race-free), scanning the q-rows tile by tile
  // so both tiles stay cache-resident across the pair sweep.
  policy.par_for(0, n_tiles, [&, threshold](std::size_t ti) {
    const std::size_t p_begin = ti * tile;
    const std::size_t p_end = std::min(n, p_begin + tile);
    for (std::size_t tj = ti; tj < n_tiles; ++tj) {
      const std::size_t q_tile_begin = tj * tile;
      const std::size_t q_tile_end = std::min(n, q_tile_begin + tile);
      for (std::size_t p = p_begin; p < p_end; ++p) {
        BitRow out = adj_.row(p);
        const ConstBitRow zp = z[p];
        for (std::size_t q = std::max(q_tile_begin, p + 1); q < q_tile_end; ++q) {
          if (!zp.hamming_exceeds(z[q], threshold)) out.set(q, true);
        }
      }
    }
  });

  // Symmetrize: mirror every upper-triangle edge. O(n^2/64) word scans plus
  // O(edges) bit sets — negligible next to the distance pass it halves.
  for (std::size_t p = 0; p < n; ++p) {
    const std::span<const std::uint64_t> words = adj_.row(p).words();
    for (std::size_t w = (p + 1) / bitkernel::kWordBits; w < words.size(); ++w) {
      std::uint64_t x = words[w];
      while (x != 0) {
        const std::size_t q =
            w * bitkernel::kWordBits + static_cast<std::size_t>(std::countr_zero(x));
        x &= x - 1;
        if (q > p) adj_.set(q, p, true);
      }
    }
  }
}

std::size_t Clustering::min_cluster_size() const {
  if (clusters.empty()) return 0;
  std::size_t best = clusters.front().size();
  for (const auto& c : clusters) best = std::min(best, c.size());
  return best;
}

std::size_t Clustering::max_cluster_size() const {
  std::size_t best = 0;
  for (const auto& c : clusters) best = std::max(best, c.size());
  return best;
}

Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster) {
  const std::size_t n = graph.size();
  CS_ASSERT(min_cluster >= 1, "cluster_players: min_cluster >= 1");
  const bool dense = graph.backend() == GraphBackend::kDense;
  Clustering out;
  out.cluster_of.assign(n, Clustering::kNoClusterAssigned);

  BitVector alive(n, true);
  // deg[p] = |row(p) & alive|, maintained incrementally as members are
  // absorbed (the previous formulation rescanned an O(n/64)-word popcount —
  // and allocated a temp vector — per candidate per round).
  std::vector<std::size_t> deg(n);
  for (PlayerId p = 0; p < n; ++p) deg[p] = graph.degree(p);

  /// Set bits of (row & alive), ascending. The dense walk ANDs adjacency
  /// words against the alive words; the CSR walk filters the (already
  /// ascending) neighbor list — same ids in the same order either way.
  const auto for_alive_neighbors = [&](PlayerId p, auto&& fn) {
    if (dense) {
      const std::span<const std::uint64_t> rw = graph.row(p).words();
      const std::span<const std::uint64_t> aw = alive.words();
      for (std::size_t w = 0; w < rw.size(); ++w) {
        std::uint64_t x = rw[w] & aw[w];
        while (x != 0) {
          fn(static_cast<PlayerId>(w * bitkernel::kWordBits +
                                   static_cast<std::size_t>(std::countr_zero(x))));
          x &= x - 1;
        }
      }
    } else {
      for (const std::uint32_t q : graph.neighbors(p))
        if (alive.get(q)) fn(static_cast<PlayerId>(q));
    }
  };

  // Peeling pass: pick the max-alive-degree player with degree >=
  // min_cluster - 1, absorb its alive neighbourhood.
  for (;;) {
    PlayerId best = kInvalidPlayer;
    std::size_t best_deg = 0;
    for (PlayerId p = 0; p < n; ++p) {
      if (!alive.get(p)) continue;
      if (deg[p] + 1 >= min_cluster && (best == kInvalidPlayer || deg[p] > best_deg)) {
        best = p;
        best_deg = deg[p];
      }
    }
    if (best == kInvalidPlayer) break;

    const auto cluster_id = static_cast<std::uint32_t>(out.clusters.size());
    std::vector<PlayerId> members;
    members.push_back(best);
    for_alive_neighbors(best, [&](PlayerId q) {
      if (q != best) members.push_back(q);
    });
    for (PlayerId q : members) {
      alive.set(q, false);
      out.cluster_of[q] = cluster_id;
    }
    // Every surviving neighbour of an absorbed member loses one alive-degree
    // per absorbed member it was adjacent to (edge symmetry makes this the
    // exact delta of |row(q) & alive|).
    for (PlayerId m : members)
      for_alive_neighbors(m, [&](PlayerId q) { --deg[q]; });
    out.clusters.push_back(std::move(members));
  }

  /// First neighbour of p (scanning ascending) that already has a cluster,
  /// or kNoClusterAssigned.
  const auto first_assigned_neighbor = [&](PlayerId p) -> std::uint32_t {
    if (dense) {
      const std::span<const std::uint64_t> rw = graph.row(p).words();
      for (std::size_t w = 0; w < rw.size(); ++w) {
        std::uint64_t x = rw[w];
        while (x != 0) {
          const auto q = static_cast<PlayerId>(
              w * bitkernel::kWordBits + static_cast<std::size_t>(std::countr_zero(x)));
          x &= x - 1;
          if (out.cluster_of[q] != Clustering::kNoClusterAssigned)
            return out.cluster_of[q];
        }
      }
    } else {
      for (const std::uint32_t q : graph.neighbors(p))
        if (out.cluster_of[q] != Clustering::kNoClusterAssigned)
          return out.cluster_of[q];
    }
    return Clustering::kNoClusterAssigned;
  };

  // Leftover pass: attach each survivor to the cluster of any removed
  // neighbour (the paper's V'_j rule).
  std::uint32_t orphan_pool = Clustering::kNoClusterAssigned;
  for (PlayerId p = 0; p < n; ++p) {
    if (!alive.get(p)) continue;
    std::uint32_t target = first_assigned_neighbor(p);
    if (target == Clustering::kNoClusterAssigned) {
      // Orphan: the diameter guess was wrong for this player (it has no
      // n/B-sized D-neighbourhood — e.g. the random background players of
      // the Claim 2 instance). Orphans pool into their own residual cluster
      // rather than joining a real one: attaching them to the nearest seed
      // would pollute that cluster's votes with uncorrelated preferences.
      ++out.orphans;
      if (orphan_pool == Clustering::kNoClusterAssigned) {
        orphan_pool = static_cast<std::uint32_t>(out.clusters.size());
        out.clusters.push_back({});
      }
      target = orphan_pool;
    } else {
      ++out.leftovers;
    }
    alive.set(p, false);
    out.cluster_of[p] = target;
    out.clusters[target].push_back(p);
  }
  return out;
}

}  // namespace colscore
