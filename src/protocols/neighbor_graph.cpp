#include "src/protocols/neighbor_graph.hpp"

#include <algorithm>
#include <bit>
#include <iterator>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

/// Rows per tile: two tiles of z-rows should sit comfortably in L1/L2 while
/// the pair sweep runs, so the inner loop streams words instead of DRAM.
std::size_t tile_rows(std::size_t n, std::size_t row_bytes) {
  constexpr std::size_t kTileBytes = 32 * 1024;
  const std::size_t rows = kTileBytes / std::max<std::size_t>(1, row_bytes);
  return std::clamp<std::size_t>(rows, 8, std::max<std::size_t>(8, n));
}

}  // namespace

const char* backend_name(GraphBackend backend) noexcept {
  switch (backend) {
    case GraphBackend::kAuto: return "auto";
    case GraphBackend::kDense: return "dense";
    case GraphBackend::kCsr: return "csr";
  }
  return "unknown";
}

NeighborGraph::NeighborGraph(std::span<const ConstBitRow> z,
                             std::size_t threshold, GraphBackend backend,
                             const ExecPolicy& policy, const BitVector* alive) {
  build(z, threshold, backend, policy, alive);
}

NeighborGraph::NeighborGraph(const BitMatrix& z, std::size_t threshold,
                             GraphBackend backend, const ExecPolicy& policy) {
  build(z.row_views(), threshold, backend, policy, nullptr);
}

NeighborGraph::NeighborGraph(std::span<const BitVector> z, std::size_t threshold,
                             GraphBackend backend, const ExecPolicy& policy) {
  std::vector<ConstBitRow> views(z.begin(), z.end());
  build(views, threshold, backend, policy, nullptr);
}

ConstBitRow NeighborGraph::row(PlayerId p) const {
  CS_ASSERT(backend_ == GraphBackend::kDense,
            "NeighborGraph::row needs the dense backend, but this graph "
            "resolved to the csr backend; walk neighbors()/has_edge() or "
            "branch on backend() like cluster_players does");
  return adj_.row(p);
}

std::span<const std::uint32_t> NeighborGraph::neighbors(PlayerId p) const {
  CS_ASSERT(backend_ == GraphBackend::kCsr,
            "NeighborGraph::neighbors needs the csr backend, but this graph "
            "resolved to the dense backend; walk row()/has_edge() or branch "
            "on backend() like cluster_players does");
  return csr_.neighbors(p);
}

void NeighborGraph::build(std::span<const ConstBitRow> z, std::size_t threshold,
                          GraphBackend backend, const ExecPolicy& policy,
                          const BitVector* alive) {
  const std::size_t n = z.size();
  CS_ASSERT(alive == nullptr || alive->size() == n,
            "NeighborGraph: alive mask size mismatch");
  n_ = n;
  threshold_ = threshold;
  alive_ = alive != nullptr ? *alive : BitVector(n, true);
  alive_count_ = alive_.popcount();
  // kAuto resolves on the full row family (the density sample ignores the
  // alive mask): the verdict stays stable across a streaming session no
  // matter how the population churns.
  if (backend == GraphBackend::kAuto)
    backend = csr_preferred(z, threshold) ? GraphBackend::kCsr
                                          : GraphBackend::kDense;
  backend_ = backend;
  rebuild_adjacency(z, policy);
}

void NeighborGraph::rebuild_adjacency(std::span<const ConstBitRow> z,
                                      const ExecPolicy& policy) {
  const std::size_t n = n_;
  const std::size_t threshold = threshold_;
  degrees_.assign(n, 0);
  if (backend_ == GraphBackend::kCsr) {
    csr_ = build_csr_neighbors(z, threshold, policy, &alive_);
    for (std::size_t p = 0; p < n; ++p)
      degrees_[p] = csr_.offsets[p + 1] - csr_.offsets[p];
    return;
  }

  adj_ = BitMatrix(n, n);
  if (n < 2) return;
  const bool masked = alive_count_ != n;
  const std::size_t dim_words = bitkernel::word_count(z[0].size());
  const std::size_t tile = tile_rows(n, dim_words * sizeof(std::uint64_t));
  const std::size_t n_tiles = (n + tile - 1) / tile;

  // Upper-triangle pass: each task owns the rows of one p-tile (writes only
  // bits q > p of those rows — race-free), scanning the q-rows tile by tile
  // so both tiles stay cache-resident across the pair sweep.
  policy.par_for(0, n_tiles, [&, threshold](std::size_t ti) {
    const std::size_t p_begin = ti * tile;
    const std::size_t p_end = std::min(n, p_begin + tile);
    for (std::size_t tj = ti; tj < n_tiles; ++tj) {
      const std::size_t q_tile_begin = tj * tile;
      const std::size_t q_tile_end = std::min(n, q_tile_begin + tile);
      for (std::size_t p = p_begin; p < p_end; ++p) {
        if (masked && !alive_.get(p)) continue;
        BitRow out = adj_.row(p);
        const ConstBitRow zp = z[p];
        for (std::size_t q = std::max(q_tile_begin, p + 1); q < q_tile_end; ++q) {
          if (masked && !alive_.get(q)) continue;
          if (!zp.hamming_exceeds(z[q], threshold)) out.set(q, true);
        }
      }
    }
  });

  // Symmetrize: mirror every upper-triangle edge. O(n^2/64) word scans plus
  // O(edges) bit sets — negligible next to the distance pass it halves.
  for (std::size_t p = 0; p < n; ++p) {
    const std::span<const std::uint64_t> words = adj_.row(p).words();
    for (std::size_t w = (p + 1) / bitkernel::kWordBits; w < words.size(); ++w) {
      std::uint64_t x = words[w];
      while (x != 0) {
        const std::size_t q =
            w * bitkernel::kWordBits + static_cast<std::size_t>(std::countr_zero(x));
        x &= x - 1;
        if (q > p) adj_.set(q, p, true);
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p)
    degrees_[p] = static_cast<std::uint32_t>(adj_.row(p).popcount());
}

void NeighborGraph::neighbor_list(PlayerId p,
                                  std::vector<std::uint32_t>& out) const {
  out.clear();
  if (backend_ == GraphBackend::kCsr) {
    const std::span<const std::uint32_t> nb = csr_.neighbors(p);
    out.assign(nb.begin(), nb.end());
    return;
  }
  const std::span<const std::uint64_t> words = adj_.row(p).words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t x = words[w];
    while (x != 0) {
      out.push_back(static_cast<std::uint32_t>(
          w * bitkernel::kWordBits +
          static_cast<std::size_t>(std::countr_zero(x))));
      x &= x - 1;
    }
  }
}

GraphDelta NeighborGraph::apply_updates(std::span<const RowUpdate> updates,
                                        std::span<const ConstBitRow> z,
                                        const ExecPolicy& policy) {
  CS_ASSERT(z.size() == n_, "apply_updates: z row count mismatch");
  GraphDelta delta;
  const std::size_t k = updates.size();
  if (k == 0) return delta;

  // Pass 0 (serial): validate the batch and apply the alive transitions.
  // The batch is atomic: every distance below is evaluated against the
  // post-epoch rows and post-epoch alive set.
  if (scratch_.updated.size() != n_) scratch_.updated = BitVector(n_);
  else scratch_.updated.fill(false);
  scratch_.update_index.resize(n_);
  for (std::size_t i = 0; i < k; ++i) {
    const RowUpdate& u = updates[i];
    CS_ASSERT(u.player < n_, "apply_updates: player id out of range");
    CS_ASSERT(!scratch_.updated.get(u.player),
              "apply_updates: player appears twice in one batch");
    scratch_.updated.set(u.player, true);
    scratch_.update_index[u.player] = static_cast<std::uint32_t>(i);
    switch (u.kind) {
      case UpdateKind::kFlip:
        CS_ASSERT(alive_.get(u.player), "apply_updates: flip of a departed player");
        break;
      case UpdateKind::kArrive:
        CS_ASSERT(!alive_.get(u.player),
                  "apply_updates: arrival of a player already present");
        alive_.set(u.player, true);
        ++alive_count_;
        break;
      case UpdateKind::kDepart:
        CS_ASSERT(alive_.get(u.player),
                  "apply_updates: departure of a player not present");
        alive_.set(u.player, false);
        --alive_count_;
        break;
    }
  }

  // Rebuild fallback: past ~n/8 changed rows the per-row sweeps and list
  // splicing cost more than the tiled full build they replace (the tiled
  // sweep halves the pair work via symmetry and streams cache-resident
  // tiles). The resolved backend is kept; only the adjacency is redone.
  if (k * 8 >= n_) {
    std::size_t old_edges = 0;
    for (const std::uint32_t d : degrees_) old_edges += d;
    old_edges /= 2;
    rebuild_adjacency(z, policy);
    std::size_t new_edges = 0;
    for (const std::uint32_t d : degrees_) new_edges += d;
    new_edges /= 2;
    delta.rebuilt = true;
    delta.edges_added = new_edges > old_edges ? new_edges - old_edges : 0;
    delta.edges_removed = old_edges > new_edges ? old_edges - new_edges : 0;
    return delta;
  }

  // Phase 1 (parallel, read-only): each updated row's post-epoch neighbor
  // list, swept against the alive set with the dispatched early-exit kernel.
  // Deterministic: list i depends only on (z, alive, threshold), never on
  // the schedule; update-vs-update pairs agree by Hamming symmetry.
  if (scratch_.new_lists.size() < k) scratch_.new_lists.resize(k);
  if (scratch_.old_lists.size() < k) scratch_.old_lists.resize(k);
  policy.par_for(0, k, [&](std::size_t i) {
    std::vector<std::uint32_t>& nb = scratch_.new_lists[i];
    nb.clear();
    if (updates[i].kind == UpdateKind::kDepart) return;
    const PlayerId p = updates[i].player;
    const ConstBitRow zp = z[p];
    const std::span<const std::uint64_t> aw = alive_.words();
    for (std::size_t w = 0; w < aw.size(); ++w) {
      std::uint64_t x = aw[w];
      while (x != 0) {
        const std::size_t q =
            w * bitkernel::kWordBits + static_cast<std::size_t>(std::countr_zero(x));
        x &= x - 1;
        if (q == p) continue;
        if (!zp.hamming_exceeds(z[q], threshold_))
          nb.push_back(static_cast<std::uint32_t>(q));
      }
    }
  });

  // Phase 2 (serial): snapshot every updated row's *old* list before any
  // structural change — the mirror writes below touch other updated rows,
  // so reading lists lazily would see half-applied state.
  for (std::size_t i = 0; i < k; ++i)
    neighbor_list(updates[i].player, scratch_.old_lists[i]);

  // Phase 3 (serial): per-update sorted diffs drive the degree cache, the
  // edge-churn counters, and (per backend) the structural splice. A pair
  // with both endpoints updated shows up in both diffs; it is counted once
  // (from the lower id) and applied idempotently.
  scratch_.csr_adds.clear();
  scratch_.csr_dels.clear();
  const bool dense = backend_ == GraphBackend::kDense;
  for (std::size_t i = 0; i < k; ++i) {
    const PlayerId p = updates[i].player;
    const std::vector<std::uint32_t>& olds = scratch_.old_lists[i];
    const std::vector<std::uint32_t>& news = scratch_.new_lists[i];
    scratch_.added.clear();
    scratch_.removed.clear();
    std::set_difference(news.begin(), news.end(), olds.begin(), olds.end(),
                        std::back_inserter(scratch_.added));
    std::set_difference(olds.begin(), olds.end(), news.begin(), news.end(),
                        std::back_inserter(scratch_.removed));
    for (const std::uint32_t q : scratch_.removed) {
      if (dense) {
        adj_.set(p, q, false);
        adj_.set(q, p, false);
      }
      if (!scratch_.updated.get(q)) {
        --degrees_[q];
        ++delta.edges_removed;
        if (!dense) scratch_.csr_dels.emplace_back(q, static_cast<std::uint32_t>(p));
      } else if (q > p) {
        ++delta.edges_removed;
      }
    }
    for (const std::uint32_t q : scratch_.added) {
      if (dense) {
        adj_.set(p, q, true);
        adj_.set(q, p, true);
      }
      if (!scratch_.updated.get(q)) {
        ++degrees_[q];
        ++delta.edges_added;
        if (!dense) scratch_.csr_adds.emplace_back(q, static_cast<std::uint32_t>(p));
      } else if (q > p) {
        ++delta.edges_added;
      }
    }
    degrees_[p] = static_cast<std::uint32_t>(news.size());
  }

  if (dense) return delta;

  // Phase 4 (CSR): delta-aware counts -> offsets -> flat rebuild. Updated
  // rows take their fresh lists verbatim; rows with spillover deltas merge
  // their old list against the sorted add/del streams; untouched rows copy
  // their old range unchanged. O(n + total edges) with no re-sorting — the
  // inputs are already ascending.
  std::sort(scratch_.csr_adds.begin(), scratch_.csr_adds.end());
  std::sort(scratch_.csr_dels.begin(), scratch_.csr_dels.end());
  std::vector<std::uint32_t>& offsets = scratch_.csr_offsets;
  std::vector<std::uint32_t>& adj = scratch_.csr_adj;
  offsets.assign(n_ + 1, 0);
  for (std::size_t p = 0; p < n_; ++p)
    offsets[p + 1] = offsets[p] + degrees_[p];
  CS_ASSERT(static_cast<std::size_t>(offsets[n_]) <=
                static_cast<std::size_t>(UINT32_MAX),
            "csr: adjacency exceeds uint32 index space");
  adj.resize(offsets[n_]);
  std::size_t ai = 0;  // cursor into csr_adds
  std::size_t di = 0;  // cursor into csr_dels
  for (std::size_t p = 0; p < n_; ++p) {
    std::uint32_t* out = adj.data() + offsets[p];
    if (scratch_.updated.get(p)) {
      const std::vector<std::uint32_t>& news =
          scratch_.new_lists[scratch_.update_index[p]];
      std::copy(news.begin(), news.end(), out);
      // Spillover streams never name updated rows; no cursor advance here.
      continue;
    }
    const std::span<const std::uint32_t> olds = csr_.neighbors(p);
    const bool has_adds = ai < scratch_.csr_adds.size() &&
                          scratch_.csr_adds[ai].first == p;
    const bool has_dels = di < scratch_.csr_dels.size() &&
                          scratch_.csr_dels[di].first == p;
    if (!has_adds && !has_dels) {
      std::copy(olds.begin(), olds.end(), out);
      continue;
    }
    std::size_t oi = 0;
    while (oi < olds.size() ||
           (ai < scratch_.csr_adds.size() && scratch_.csr_adds[ai].first == p)) {
      const bool take_add =
          ai < scratch_.csr_adds.size() && scratch_.csr_adds[ai].first == p &&
          (oi == olds.size() || scratch_.csr_adds[ai].second < olds[oi]);
      if (take_add) {
        *out++ = scratch_.csr_adds[ai++].second;
        continue;
      }
      const std::uint32_t q = olds[oi++];
      if (di < scratch_.csr_dels.size() && scratch_.csr_dels[di].first == p &&
          scratch_.csr_dels[di].second == q) {
        ++di;
        continue;
      }
      *out++ = q;
    }
    CS_ASSERT(out == adj.data() + offsets[p + 1],
              "csr splice: merged row length disagrees with its degree");
  }
  csr_.offsets.swap(offsets);
  csr_.adj.swap(adj);
  return delta;
}

std::size_t Clustering::min_cluster_size() const {
  if (clusters.empty()) return 0;
  std::size_t best = clusters.front().size();
  for (const auto& c : clusters) best = std::min(best, c.size());
  return best;
}

std::size_t Clustering::max_cluster_size() const {
  std::size_t best = 0;
  for (const auto& c : clusters) best = std::max(best, c.size());
  return best;
}

Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster) {
  const std::size_t n = graph.size();
  CS_ASSERT(min_cluster >= 1, "cluster_players: min_cluster >= 1");
  const bool dense = graph.backend() == GraphBackend::kDense;
  Clustering out;
  out.cluster_of.assign(n, Clustering::kNoClusterAssigned);

  BitVector alive(n, true);
  // deg[p] = |row(p) & alive|, maintained incrementally as members are
  // absorbed (the previous formulation rescanned an O(n/64)-word popcount —
  // and allocated a temp vector — per candidate per round).
  std::vector<std::size_t> deg(n);
  for (PlayerId p = 0; p < n; ++p) deg[p] = graph.degree(p);

  /// Set bits of (row & alive), ascending. The dense walk ANDs adjacency
  /// words against the alive words; the CSR walk filters the (already
  /// ascending) neighbor list — same ids in the same order either way.
  const auto for_alive_neighbors = [&](PlayerId p, auto&& fn) {
    if (dense) {
      const std::span<const std::uint64_t> rw = graph.row(p).words();
      const std::span<const std::uint64_t> aw = alive.words();
      for (std::size_t w = 0; w < rw.size(); ++w) {
        std::uint64_t x = rw[w] & aw[w];
        while (x != 0) {
          fn(static_cast<PlayerId>(w * bitkernel::kWordBits +
                                   static_cast<std::size_t>(std::countr_zero(x))));
          x &= x - 1;
        }
      }
    } else {
      for (const std::uint32_t q : graph.neighbors(p))
        if (alive.get(q)) fn(static_cast<PlayerId>(q));
    }
  };

  // Peeling pass: pick the max-alive-degree player with degree >=
  // min_cluster - 1, absorb its alive neighbourhood.
  for (;;) {
    PlayerId best = kInvalidPlayer;
    std::size_t best_deg = 0;
    for (PlayerId p = 0; p < n; ++p) {
      if (!alive.get(p)) continue;
      if (deg[p] + 1 >= min_cluster && (best == kInvalidPlayer || deg[p] > best_deg)) {
        best = p;
        best_deg = deg[p];
      }
    }
    if (best == kInvalidPlayer) break;

    const auto cluster_id = static_cast<std::uint32_t>(out.clusters.size());
    std::vector<PlayerId> members;
    members.push_back(best);
    for_alive_neighbors(best, [&](PlayerId q) {
      if (q != best) members.push_back(q);
    });
    for (PlayerId q : members) {
      alive.set(q, false);
      out.cluster_of[q] = cluster_id;
    }
    // Every surviving neighbour of an absorbed member loses one alive-degree
    // per absorbed member it was adjacent to (edge symmetry makes this the
    // exact delta of |row(q) & alive|).
    for (PlayerId m : members)
      for_alive_neighbors(m, [&](PlayerId q) { --deg[q]; });
    out.clusters.push_back(std::move(members));
  }

  /// First neighbour of p (scanning ascending) that already has a cluster,
  /// or kNoClusterAssigned.
  const auto first_assigned_neighbor = [&](PlayerId p) -> std::uint32_t {
    if (dense) {
      const std::span<const std::uint64_t> rw = graph.row(p).words();
      for (std::size_t w = 0; w < rw.size(); ++w) {
        std::uint64_t x = rw[w];
        while (x != 0) {
          const auto q = static_cast<PlayerId>(
              w * bitkernel::kWordBits + static_cast<std::size_t>(std::countr_zero(x)));
          x &= x - 1;
          if (out.cluster_of[q] != Clustering::kNoClusterAssigned)
            return out.cluster_of[q];
        }
      }
    } else {
      for (const std::uint32_t q : graph.neighbors(p))
        if (out.cluster_of[q] != Clustering::kNoClusterAssigned)
          return out.cluster_of[q];
    }
    return Clustering::kNoClusterAssigned;
  };

  // Leftover pass: attach each survivor to the cluster of any removed
  // neighbour (the paper's V'_j rule).
  std::uint32_t orphan_pool = Clustering::kNoClusterAssigned;
  for (PlayerId p = 0; p < n; ++p) {
    if (!alive.get(p)) continue;
    std::uint32_t target = first_assigned_neighbor(p);
    if (target == Clustering::kNoClusterAssigned) {
      // Orphan: the diameter guess was wrong for this player (it has no
      // n/B-sized D-neighbourhood — e.g. the random background players of
      // the Claim 2 instance). Orphans pool into their own residual cluster
      // rather than joining a real one: attaching them to the nearest seed
      // would pollute that cluster's votes with uncorrelated preferences.
      ++out.orphans;
      if (orphan_pool == Clustering::kNoClusterAssigned) {
        orphan_pool = static_cast<std::uint32_t>(out.clusters.size());
        out.clusters.push_back({});
      }
      target = orphan_pool;
    } else {
      ++out.leftovers;
    }
    alive.set(p, false);
    out.cluster_of[p] = target;
    out.clusters[target].push_back(p);
  }
  return out;
}

}  // namespace colscore
