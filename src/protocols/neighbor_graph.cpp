#include "src/protocols/neighbor_graph.hpp"

#include <algorithm>
#include <limits>

#include "src/common/assert.hpp"
#include "src/common/thread_pool.hpp"

namespace colscore {

NeighborGraph::NeighborGraph(std::span<const BitVector> z, std::size_t threshold) {
  const std::size_t n = z.size();
  adj_.assign(n, BitVector(n));
  // Each task owns row p (writes only adj_[p]) — safe to parallelize.
  parallel_for(0, n, [&, threshold](std::size_t p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p) continue;
      if (z[p].hamming(z[q]) <= threshold) adj_[p].set(q, true);
    }
  });
}

std::size_t Clustering::min_cluster_size() const {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const auto& c : clusters) best = std::min(best, c.size());
  return clusters.empty() ? 0 : best;
}

std::size_t Clustering::max_cluster_size() const {
  std::size_t best = 0;
  for (const auto& c : clusters) best = std::max(best, c.size());
  return best;
}

Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster,
                           std::span<const BitVector> z) {
  (void)z;  // kept in the API for diagnostics/extension hooks
  const std::size_t n = graph.size();
  CS_ASSERT(min_cluster >= 1, "cluster_players: min_cluster >= 1");
  Clustering out;
  out.cluster_of.assign(n, Clustering::kNoClusterAssigned);

  BitVector alive(n, true);
  auto alive_degree = [&](PlayerId p) {
    BitVector masked = graph.row(p);
    masked &= alive;
    return masked.popcount();
  };

  // Peeling pass: pick the max-alive-degree player with degree >=
  // min_cluster - 1, absorb its alive neighbourhood.
  for (;;) {
    PlayerId best = kInvalidPlayer;
    std::size_t best_deg = 0;
    for (PlayerId p = 0; p < n; ++p) {
      if (!alive.get(p)) continue;
      const std::size_t deg = alive_degree(p);
      if (deg + 1 >= min_cluster && (best == kInvalidPlayer || deg > best_deg)) {
        best = p;
        best_deg = deg;
      }
    }
    if (best == kInvalidPlayer) break;

    const auto cluster_id = static_cast<std::uint32_t>(out.clusters.size());
    std::vector<PlayerId> members;
    members.push_back(best);
    BitVector hood = graph.row(best);
    hood &= alive;
    for (PlayerId q = 0; q < n; ++q)
      if (hood.get(q)) members.push_back(q);
    for (PlayerId q : members) {
      alive.set(q, false);
      out.cluster_of[q] = cluster_id;
    }
    out.clusters.push_back(std::move(members));
  }

  // Leftover pass: attach each survivor to the cluster of any removed
  // neighbour (the paper's V'_j rule).
  std::uint32_t orphan_pool = Clustering::kNoClusterAssigned;
  for (PlayerId p = 0; p < n; ++p) {
    if (!alive.get(p)) continue;
    std::uint32_t target = Clustering::kNoClusterAssigned;
    const BitVector& row = graph.row(p);
    for (PlayerId q = 0; q < n; ++q) {
      if (row.get(q) && out.cluster_of[q] != Clustering::kNoClusterAssigned) {
        target = out.cluster_of[q];
        break;
      }
    }
    if (target == Clustering::kNoClusterAssigned) {
      // Orphan: the diameter guess was wrong for this player (it has no
      // n/B-sized D-neighbourhood — e.g. the random background players of
      // the Claim 2 instance). Orphans pool into their own residual cluster
      // rather than joining a real one: attaching them to the nearest seed
      // would pollute that cluster's votes with uncorrelated preferences.
      ++out.orphans;
      if (orphan_pool == Clustering::kNoClusterAssigned) {
        orphan_pool = static_cast<std::uint32_t>(out.clusters.size());
        out.clusters.push_back({});
      }
      target = orphan_pool;
    } else {
      ++out.leftovers;
    }
    alive.set(p, false);
    out.cluster_of[p] = target;
    out.clusters[target].push_back(p);
  }
  return out;
}

}  // namespace colscore
