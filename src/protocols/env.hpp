// Execution environment threaded through every protocol: the probe oracle,
// the public bulletin board, the behaviour table, the shared-randomness
// beacon, and a root for players' local (non-shared) randomness.
//
// Key derivation convention: every protocol invocation owns a 64-bit
// `phase_key`; sub-phases, board channels and per-player local streams are
// derived with mix_keys so the whole simulation is reproducible and
// independent of thread scheduling.
#pragma once

#include <atomic>

#include "src/board/bulletin_board.hpp"
#include "src/board/probe_oracle.hpp"
#include "src/board/shared_random.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/workspace.hpp"
#include "src/model/population.hpp"

namespace colscore {

struct ProtocolEnv {
  ProtocolEnv(ProbeOracle& oracle_in, BulletinBoard& board_in,
              const Population& population_in, RandomnessBeacon& beacon_in,
              std::uint64_t local_seed_in = 0x10ca1ULL,
              const ExecPolicy& policy_in = ExecPolicy::process_default())
      : oracle(oracle_in), board(board_in), population(population_in),
        beacon(beacon_in), local_seed(local_seed_in), policy(policy_in) {}

  ProbeOracle& oracle;
  BulletinBoard& board;
  const Population& population;
  RandomnessBeacon& beacon;
  /// Root seed for per-player local randomness (probe sampling in RSelect
  /// etc.). Local randomness is private to a player, never shared.
  std::uint64_t local_seed;
  /// Where this invocation's data-parallel loops run and which workspace
  /// arena their workers bind (see exec_policy.hpp). Held by value — a copy
  /// shares the original's pool and workspace arena — so callers may pass a
  /// temporary (e.g. ExecPolicy::serial()).
  const ExecPolicy policy;

  /// A player privately learning one of its own preference bits. Honest
  /// players pay a charged probe; dishonest players peek for free (their own
  /// outputs are irrelevant to the error metric, and the paper's adversary
  /// is omniscient anyway).
  bool own_probe(PlayerId p, ObjectId o) {
    return population.is_honest(p) ? oracle.probe(p, o) : oracle.adversary_peek(p, o);
  }

  /// Word-level form: learn the contiguous object range [first_object,
  /// first_object + n) straight into a BitRow (one charge, packed transfer).
  void own_probe_row(PlayerId p, ObjectId first_object, std::size_t n, BitRow out) {
    if (population.is_honest(p))
      oracle.probe_row(p, first_object, n, out);
    else
      oracle.adversary_peek_row(p, first_object, n, out);
  }

  /// Learn an arbitrary object slate into a BitRow: bit i = v(p)_objects[i].
  /// Contiguous ascending slates take the word path (probe_row); scattered
  /// ones go through the batched gather. Charges are identical to probing
  /// the slate object by object with no memo (duplicates pay).
  void own_probe_bits(PlayerId p, std::span<const ObjectId> objects, BitRow out) {
    if (objects.size() == 1) {  // common in elimination-style probing
      out.set(0, own_probe(p, objects.front()));
      return;
    }
    bool contiguous = !objects.empty();
    for (std::size_t i = 1; contiguous && i < objects.size(); ++i)
      contiguous = objects[i] == objects[i - 1] + 1;
    if (contiguous && out.size() == objects.size()) {
      own_probe_row(p, objects.front(), objects.size(), out);
      return;
    }
    if (population.is_honest(p))
      oracle.probe_gather(p, objects, out);
    else
      oracle.adversary_peek_gather(p, objects, out);
  }

  /// The executing worker's reusable scratch, owned by the policy's arena
  /// (see src/common/workspace.hpp for the group-aliasing contract and
  /// exec_policy.hpp for the per-worker binding).
  RunWorkspace& workspace() const { return policy.workspace(); }

  /// Runs body(i) for i in [begin, end) under this env's policy.
  template <typename Body>
  void par_for(std::size_t begin, std::size_t end, Body&& body,
               std::size_t grain = 0) const {
    policy.par_for(begin, end, std::forward<Body>(body), grain);
  }

  /// Local RNG stream for (player, phase).
  Rng local_rng(PlayerId p, std::uint64_t phase_key) const {
    return Rng(mix_keys(local_seed, p, phase_key));
  }

  /// Shared RNG stream for a phase (from the beacon; adversarial if the
  /// beacon is dishonest).
  Rng shared_rng(std::uint64_t phase_key) { return beacon.rng_for(phase_key); }

  std::size_t n_players() const { return oracle.n_players(); }
  std::size_t n_objects() const { return oracle.n_objects(); }

  /// Unique phase key for a fresh top-level protocol invocation. Board
  /// channels are tag-scoped, so distinct invocations sharing one env must
  /// not reuse keys; orchestration code calls this once per invocation.
  std::uint64_t fresh_phase() {
    return mix_keys(0xF0E5EEDULL, phase_counter.fetch_add(1, std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> phase_counter{1};
};

}  // namespace colscore
