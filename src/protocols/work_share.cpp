#include "src/protocols/work_share.hpp"

#include <atomic>

#include "src/common/assert.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

// The voting loop is the hottest probe path in CalculatePreferences: every
// cluster charges votes_per_object probes per object. Instead of one charged
// probe per (object, vote) — which hammers the per-player atomic counters —
// the loop materialises the shared-random voter assignment first, groups the
// slots by voter, and lets each honest voter answer its whole slate through
// the word-level probe pipeline (one charge round-trip per voter; contiguous
// slates ride ProbeOracle::probe_row, scattered ones the staged gather).
// Verdicts are identical to the one-probe-at-a-time formulation:
// assignments, tie-break coins, and per-slot RNG streams are all derived
// from stable keys, never from execution order. Assignment/report buffers
// come from the per-worker workspace (vt_* group) so back-to-back clusters
// and grid cells reuse them.
BitVector cluster_votes(std::span<const PlayerId> members, ProtocolEnv& env,
                        std::uint64_t phase_key, const WorkShareParams& params,
                        WorkShareStats* stats) {
  CS_ASSERT(!members.empty(), "cluster_votes: empty cluster");
  const std::size_t n_objects = env.n_objects();
  const std::size_t k = params.votes_per_object;
  const std::size_t n_slots = n_objects * k;
  RunWorkspace& ws = env.workspace();

  // Phase 1: derive the voter assignment and tie-break coins from the shared
  // randomness (with an honest beacon the adversary cannot aim its members
  // at chosen objects). slot = object * k + vote_index.
  auto& voter_of = ws.vt_voter_of;
  auto& tie_coin = ws.vt_tie_coin;
  voter_of.resize(n_slots);
  tie_coin.resize(n_objects);
  env.par_for(0, n_objects, [&](std::size_t o) {
    Rng assign = env.shared_rng(mix_keys(phase_key, 0xa551ULL, o));
    for (std::size_t v = 0; v < k; ++v)
      voter_of[o * k + v] = static_cast<std::uint32_t>(assign.below(members.size()));
    // Drawn unconditionally so the coin only depends on the assignment
    // stream position, not on whether a tie actually occurs.
    tie_coin[o] = (assign() & 1) != 0 ? 1 : 0;
  });

  // Phase 2: group slots by voter (counting sort — slot order within a voter
  // follows slot index, so batches are deterministic).
  auto& offsets = ws.vt_offsets;
  offsets.assign(members.size() + 1, 0);
  for (std::uint32_t m : voter_of) ++offsets[m + 1];
  for (std::size_t m = 1; m <= members.size(); ++m) offsets[m] += offsets[m - 1];
  auto& slots_of_voter = ws.vt_slots_of_voter;
  slots_of_voter.resize(n_slots);
  {
    auto& cursor = ws.vt_cursor;
    cursor.assign(offsets.begin(), offsets.end() - 1);
    for (std::size_t slot = 0; slot < n_slots; ++slot)
      slots_of_voter[cursor[voter_of[slot]]++] = static_cast<std::uint32_t>(slot);
  }

  // Phase 3: each voter answers its slate. Honest voters batch-probe through
  // the bit pipeline; dishonest voters go through their behaviour slot by
  // slot with the same (phase_key, object, vote) RNG streams the serial
  // formulation used. Bodies use their own worker's vt_slate_* scratch,
  // disjoint from the caller's buffers above.
  const ReportContext ctx{Phase::kVote, phase_key};
  auto& report_of_slot = ws.vt_report_of_slot;
  report_of_slot.resize(n_slots);
  env.par_for(0, members.size(), [&](std::size_t m) {
    const PlayerId voter = members[m];
    const std::span<const std::uint32_t> slate{
        slots_of_voter.data() + offsets[m], offsets[m + 1] - offsets[m]};
    if (slate.empty()) return;
    if (env.population.is_honest(voter)) {
      RunWorkspace& tws = env.workspace();
      auto& objects = tws.vt_slate_objects;
      objects.resize(slate.size());
      for (std::size_t i = 0; i < slate.size(); ++i)
        objects[i] = static_cast<ObjectId>(slate[i] / k);
      tws.vt_slate_words.assign(bitkernel::word_count(slate.size()), 0);
      BitRow bits(tws.vt_slate_words.data(), slate.size());
      env.oracle.probe_gather(voter, objects, bits);
      for (std::size_t i = 0; i < slate.size(); ++i)
        report_of_slot[slate[i]] = bits.get(i) ? 1 : 0;
    } else {
      for (std::uint32_t slot : slate) {
        const auto object = static_cast<ObjectId>(slot / k);
        const std::size_t v = slot % k;
        Rng vote_rng = env.local_rng(voter, mix_keys(phase_key, object, v));
        report_of_slot[slot] =
            env.population.report_of(voter, object, env.oracle, ctx, vote_rng) ? 1
                                                                               : 0;
      }
    }
  });

  // Phase 4: post the reports and take majorities.
  std::atomic<std::uint64_t> ties{0};
  auto& verdicts = ws.vt_verdicts;
  verdicts.assign(n_objects, 0);
  env.par_for(0, n_objects, [&](std::size_t o) {
    const auto object = static_cast<ObjectId>(o);
    RunWorkspace& tws = env.workspace();
    auto& authors = tws.vt_authors;
    authors.resize(k);
    std::size_t ones = 0;
    for (std::size_t v = 0; v < k; ++v) {
      const std::uint32_t slot = o * k + v;
      authors[v] = members[voter_of[slot]];
      if (report_of_slot[slot] != 0) ++ones;
    }
    // An object's k votes are contiguous slots, so the whole block posts in
    // one board round-trip (identical report order and content).
    env.board.post_reports(phase_key, object, authors,
                           {report_of_slot.data() + o * k, k});
    const std::size_t zeros = k - ones;
    bool verdict;
    if (ones > zeros) {
      verdict = true;
    } else if (zeros > ones) {
      verdict = false;
    } else {
      verdict = tie_coin[o] != 0;  // shared tie-break coin
      ties.fetch_add(1, std::memory_order_relaxed);
    }
    verdicts[o] = verdict ? 1 : 0;
  });

  BitVector prediction(n_objects);
  for (std::size_t o = 0; o < n_objects; ++o) prediction.set(o, verdicts[o] != 0);

  if (stats != nullptr) {
    stats->reports += n_slots;
    stats->ties += ties.load();
  }
  return prediction;
}

}  // namespace colscore
