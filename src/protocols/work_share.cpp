#include "src/protocols/work_share.hpp"

#include <atomic>

#include "src/common/assert.hpp"
#include "src/common/thread_pool.hpp"

namespace colscore {

BitVector cluster_votes(std::span<const PlayerId> members, ProtocolEnv& env,
                        std::uint64_t phase_key, const WorkShareParams& params,
                        WorkShareStats* stats) {
  CS_ASSERT(!members.empty(), "cluster_votes: empty cluster");
  const std::size_t n_objects = env.n_objects();
  // Byte-per-object staging: BitVector::set on neighbouring bits would race
  // across parallel tasks (word-level read-modify-write).
  std::vector<std::uint8_t> verdicts(n_objects, 0);

  std::atomic<std::uint64_t> reports{0};
  std::atomic<std::uint64_t> ties{0};

  parallel_for(0, n_objects, [&](std::size_t o) {
    const auto object = static_cast<ObjectId>(o);
    // Assignment of voters comes from the shared randomness: with an honest
    // beacon the adversary cannot aim its members at chosen objects.
    Rng assign = env.shared_rng(mix_keys(phase_key, 0xa551ULL, object));
    const ReportContext ctx{Phase::kVote, phase_key};
    std::size_t ones = 0;
    for (std::size_t v = 0; v < params.votes_per_object; ++v) {
      const PlayerId voter = members[assign.below(members.size())];
      Rng vote_rng = env.local_rng(voter, mix_keys(phase_key, object, v));
      const bool report = env.population.report_of(voter, object, env.oracle, ctx,
                                                   vote_rng);
      env.board.post_report(phase_key, voter, object, report);
      if (report) ++ones;
    }
    reports.fetch_add(params.votes_per_object, std::memory_order_relaxed);
    const std::size_t zeros = params.votes_per_object - ones;
    bool verdict;
    if (ones > zeros) {
      verdict = true;
    } else if (zeros > ones) {
      verdict = false;
    } else {
      verdict = (assign() & 1) != 0;  // shared tie-break coin
      ties.fetch_add(1, std::memory_order_relaxed);
    }
    verdicts[o] = verdict ? 1 : 0;
  });

  BitVector prediction(n_objects);
  for (std::size_t o = 0; o < n_objects; ++o) prediction.set(o, verdicts[o] != 0);

  if (stats != nullptr) {
    stats->reports += reports.load();
    stats->ties += ties.load();
  }
  return prediction;
}

}  // namespace colscore
