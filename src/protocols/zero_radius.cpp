#include "src/protocols/zero_radius.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

void ZeroRadiusStats::merge(const ZeroRadiusStats& other) {
  base_case_players += other.base_case_players;
  fallbacks += other.fallbacks;
  empty_support += other.empty_support;
  repairs += other.repairs;
  max_depth = std::max(max_depth, other.max_depth);
}

namespace {

std::size_t log2_ceil(std::size_t n) {
  std::size_t l = 0;
  while ((1ULL << l) < n) ++l;
  return std::max<std::size_t>(l, 1);
}

struct Ctx {
  const ZeroRadiusParams& params;
  ProtocolEnv& env;
  std::size_t base_threshold;
  std::size_t elim_cap;
  std::size_t verify_probes;
};

/// Splits `items` into two non-empty halves with the shared coin. If a side
/// comes out empty (only possible for tiny inputs), re-draws.
template <typename T>
void shared_partition(std::span<const T> items, Rng& shared, std::vector<T>& left,
                      std::vector<T>& right) {
  left.clear();
  right.clear();
  for (int attempt = 0; attempt < 64; ++attempt) {
    for (const T& item : items) (shared() & 1 ? left : right).push_back(item);
    if (items.size() < 2 || (!left.empty() && !right.empty())) return;
    left.clear();
    right.clear();
  }
  // Deterministic fallback: alternate.
  for (std::size_t i = 0; i < items.size(); ++i)
    (i % 2 == 0 ? left : right).push_back(items[i]);
}

/// One player adopts a vector over `objects` from the published candidates.
/// `verify_key` seeds the deterministic verification coordinates.
///
/// The per-coordinate probe memo is a two-plane bit cache plus a probed-coord
/// list (zr_* workspace group) — this runs once per learner per merge, and
/// the hash map it replaced was the hottest allocation in whole-suite sweeps.
BitVector adopt(PlayerId p, std::span<const ObjectId> objects,
                const std::vector<BulletinBoard::SupportedVector>& candidates,
                Ctx& ctx, std::uint64_t verify_key, ZeroRadiusStats& stats) {
  if (candidates.empty()) {
    // Nothing published at all (degenerate); probe everything we can afford
    // (one batched charge — the whole slate is known up front).
    ++stats.fallbacks;
    BitVector own(objects.size());
    const std::size_t limit = std::min(objects.size(), ctx.elim_cap);
    if (limit == objects.size()) {
      ctx.env.own_probe_bits(p, objects, own);
    } else if (limit != 0) {
      RunWorkspace& ws = ctx.env.workspace();
      ws.zr_batch_words.assign(bitkernel::word_count(limit), 0);
      BitRow got(ws.zr_batch_words.data(), limit);
      ctx.env.own_probe_bits(p, objects.subspan(0, limit), got);
      for (std::size_t i = 0; i < limit; ++i) own.set(i, got.get(i));
    }
    return own;
  }

  RunWorkspace& ws = ctx.env.workspace();
  const std::size_t words = bitkernel::word_count(objects.size());
  ws.zr_probed_words.assign(words, 0);
  ws.zr_value_words.assign(words, 0);
  BitRow probed(ws.zr_probed_words.data(), objects.size());
  BitRow pvalue(ws.zr_value_words.data(), objects.size());
  auto& probed_coords = ws.zr_coords;  // coord -> own truth lives in the planes
  probed_coords.clear();

  auto& alive = ws.zr_alive;
  alive.resize(candidates.size());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;

  std::size_t probes_used = 0;
  bool fell_back = false;
  auto& diff = ws.zr_diff;  // reused across elimination rounds

  while (alive.size() > 1) {
    // Deduplicate identical leaders to avoid probing ties.
    const BitVector& front = candidates[alive[0]].vector;
    diff.clear();
    front.diff_positions_into(candidates[alive[1]].vector, diff);
    if (diff.empty()) {
      alive.erase(alive.begin() + 1);
      continue;
    }
    if (probes_used >= ctx.elim_cap) {
      fell_back = true;
      break;
    }
    // Elimination is inherently adaptive — each coordinate choice depends on
    // the previous answer — so this stays a per-coordinate probe.
    const std::size_t coord = diff.front();
    bool bit;
    if (probed.get(coord)) {
      bit = pvalue.get(coord);
    } else {
      // colscore-lint: allow(CL003) adaptive: the eliminating coordinate is
      // picked from the survivor set of the previous answer
      bit = ctx.env.own_probe(p, objects[coord]);
      ++probes_used;
      probed.set(coord, true);
      pvalue.set(coord, bit);
      probed_coords.push_back(coord);
    }
    auto& next = ws.zr_next;
    next.clear();
    for (std::size_t idx : alive)
      if (candidates[idx].vector.get(coord) == bit) next.push_back(idx);
    if (next.empty()) {
      // Our true vector was not among the candidates (noisy invocation from
      // SmallRadius). Keep the highest-support candidate and patch below.
      fell_back = true;
      break;
    }
    std::swap(alive, next);
  }

  if (fell_back) ++stats.fallbacks;
  BitVector result = candidates[alive.empty() ? 0 : alive.front()].vector;

  // Verification-repair: sample a few coordinates and patch mismatches. This
  // mops up the rare deep-recursion failure where the player's exact vector
  // missed the support filter and the survivor is merely the nearest cluster.
  // The coordinates are SHARED across learners (derived from the channel, not
  // the player): identical twins must patch identical coordinates, otherwise
  // their published vectors fragment and upstream support voting collapses.
  // The draw stream never depends on probe results, so the whole slate is
  // drawn first and the not-yet-probed coordinates charge in one batch.
  Rng verify(mix_keys(verify_key, 0x7e81f1ULL));
  auto& verify_coords = ws.zr_verify_coords;
  auto& batch_coords = ws.zr_batch_coords;
  auto& batch_objects = ws.zr_batch_objects;
  verify_coords.clear();
  batch_coords.clear();
  batch_objects.clear();
  for (std::size_t s = 0; s < ctx.verify_probes && s < objects.size(); ++s)
    verify_coords.push_back(verify.below(objects.size()));
  for (std::size_t coord : verify_coords) {
    if (probed.get(coord)) continue;
    probed.set(coord, true);  // also dedups repeats inside this batch
    batch_coords.push_back(coord);
    batch_objects.push_back(objects[coord]);
  }
  if (!batch_coords.empty()) {
    ws.zr_batch_words.assign(bitkernel::word_count(batch_coords.size()), 0);
    BitRow got(ws.zr_batch_words.data(), batch_coords.size());
    ctx.env.own_probe_bits(p, batch_objects, got);
    for (std::size_t b = 0; b < batch_coords.size(); ++b) {
      const std::size_t coord = batch_coords[b];
      const bool bit = got.get(b);
      pvalue.set(coord, bit);
      probed_coords.push_back(coord);
      if (result.get(coord) != bit) ++stats.repairs;
    }
  }

  // Patch in everything this player actually observed.
  for (std::size_t coord : probed_coords) result.set(coord, pvalue.get(coord));
  return result;
}

/// Publication + adoption for one direction of the merge: `learners` adopt
/// vectors over `objects` computed by `publishers` (whose outputs are given).
void cross_adopt(std::span<const PlayerId> learners,
                 std::span<const PlayerId> publishers,
                 std::span<const ObjectId> objects,
                 const std::vector<BitVector>& publisher_outputs,
                 std::vector<BitVector>& learner_outputs, Ctx& ctx,
                 std::uint64_t channel, ZeroRadiusStats& stats) {
  const ReportContext rctx{Phase::kZeroRadius, channel};
  // Publications are serial so board ordering (and thus candidate order) is
  // deterministic; adoption below is the expensive part and runs parallel.
  // Honest players publish their protocol output verbatim, so the behaviour
  // table (and its per-player RNG stream, which an honest publication never
  // draws from) is only consulted for dishonest ones.
  {
    auto writer = ctx.env.board.vector_channel(channel);
    for (std::size_t i = 0; i < publishers.size(); ++i) {
      const PlayerId q = publishers[i];
      if (ctx.env.population.is_honest(q)) {
        writer.post(q, publisher_outputs[i]);
        continue;
      }
      Rng prng = ctx.env.local_rng(q, channel);
      writer.post(q, ctx.env.population.publication(q, publisher_outputs[i],
                                                    objects, rctx, prng));
    }
  }

  auto supported = ctx.env.board.vectors_by_support(channel);
  const auto threshold = static_cast<std::size_t>(
      std::max(2.0, std::floor(static_cast<double>(publishers.size()) /
                               (ctx.params.support_divisor *
                                static_cast<double>(ctx.params.budget)))));
  std::vector<BulletinBoard::SupportedVector> filtered;
  for (auto& sv : supported)
    if (sv.support >= threshold) filtered.push_back(std::move(sv));
  if (filtered.empty() && !supported.empty()) {
    ++stats.empty_support;
    // Keep the most-supported few so adoption can still proceed.
    const std::size_t keep = std::min<std::size_t>(supported.size(),
                                                   2 * ctx.params.budget);
    filtered.assign(supported.begin(), supported.begin() + static_cast<long>(keep));
  }

  std::vector<ZeroRadiusStats> local(learners.size());
  learner_outputs.assign(learners.size(), BitVector());
  ctx.env.par_for(0, learners.size(), [&](std::size_t i) {
    learner_outputs[i] =
        adopt(learners[i], objects, filtered, ctx, channel, local[i]);
  });
  for (const auto& s : local) stats.merge(s);
}

ZeroRadiusResult solve(std::span<const PlayerId> players,
                       std::span<const ObjectId> objects, Ctx& ctx,
                       std::uint64_t phase_key, std::size_t depth) {
  ZeroRadiusResult result;
  result.stats.max_depth = depth;
  result.outputs.assign(players.size(), BitVector(objects.size()));
  if (players.empty() || objects.empty()) return result;

  if (std::min(players.size(), objects.size()) <= ctx.base_threshold) {
    // Base case: every player probes every object in O — a whole known slate
    // per player, so each row is one batched charge through the word-level
    // pipeline (contiguous object spans skip bit staging entirely).
    result.stats.base_case_players = players.size();
    ctx.env.par_for(0, players.size(), [&](std::size_t i) {
      ctx.env.own_probe_bits(players[i], objects, result.outputs[i]);
    });
    return result;
  }

  // Shared-random halving of both universes (same partition for everyone).
  Rng shared = ctx.env.shared_rng(mix_keys(phase_key, 0xA11, depth));
  std::vector<PlayerId> p_left, p_right;
  std::vector<ObjectId> o_left, o_right;
  shared_partition<PlayerId>(players, shared, p_left, p_right);
  shared_partition<ObjectId>(objects, shared, o_left, o_right);

  ZeroRadiusResult left =
      solve(p_left, o_left, ctx, mix_keys(phase_key, 1), depth + 1);
  ZeroRadiusResult right =
      solve(p_right, o_right, ctx, mix_keys(phase_key, 2), depth + 1);
  result.stats.merge(left.stats);
  result.stats.merge(right.stats);

  // Cross adoption: left players adopt o_right vectors published by right
  // players, and vice versa.
  std::vector<BitVector> left_adopted, right_adopted;
  cross_adopt(p_left, p_right, o_right, right.outputs, left_adopted, ctx,
              mix_keys(phase_key, 0xC0, 1), result.stats);
  cross_adopt(p_right, p_left, o_left, left.outputs, right_adopted, ctx,
              mix_keys(phase_key, 0xC0, 2), result.stats);

  // Reassemble full vectors in the original `objects` coordinate order.
  // Index maps are flat workspace arrays, not per-level hash maps: this node
  // stamps its whole span after the recursion below it has finished with the
  // arrays, and only ever reads ids inside its span.
  RunWorkspace& ws = ctx.env.workspace();
  auto& coord_of = ws.ze_coord_of;
  auto& row_of = ws.ze_row_of;
  if (coord_of.size() < ctx.env.n_objects()) coord_of.resize(ctx.env.n_objects());
  if (row_of.size() < ctx.env.n_players()) row_of.resize(ctx.env.n_players());
  for (std::size_t j = 0; j < objects.size(); ++j)
    coord_of[objects[j]] = static_cast<std::uint32_t>(j);
  for (std::size_t i = 0; i < players.size(); ++i)
    row_of[players[i]] = static_cast<std::uint32_t>(i);

  auto emit = [&](std::span<const PlayerId> group, const std::vector<BitVector>& own,
                  std::span<const ObjectId> own_objs,
                  const std::vector<BitVector>& adopted,
                  std::span<const ObjectId> adopted_objs) {
    ctx.env.par_for(0, group.size(), [&](std::size_t i) {
      BitRow row(result.outputs[row_of[group[i]]]);
      const ConstBitRow own_bits(own[i]);
      const ConstBitRow adopted_bits(adopted[i]);
      for (std::size_t j = 0; j < own_objs.size(); ++j)
        row.set(coord_of[own_objs[j]], own_bits.get(j));
      for (std::size_t j = 0; j < adopted_objs.size(); ++j)
        row.set(coord_of[adopted_objs[j]], adopted_bits.get(j));
    });
  };
  emit(p_left, left.outputs, o_left, left_adopted, o_right);
  emit(p_right, right.outputs, o_right, right_adopted, o_left);
  return result;
}

}  // namespace

ZeroRadiusResult zero_radius(std::span<const PlayerId> players,
                             std::span<const ObjectId> objects,
                             const ZeroRadiusParams& params, ProtocolEnv& env,
                             std::uint64_t phase_key) {
  CS_ASSERT(params.budget >= 1, "zero_radius: budget must be >= 1");
  const std::size_t n_total = env.n_players();
  Ctx ctx{params, env,
          /*base_threshold=*/static_cast<std::size_t>(
              params.base_factor * static_cast<double>(params.budget) *
              static_cast<double>(log2_ceil(n_total))),
          /*elim_cap=*/params.elim_cap != 0
              ? params.elim_cap
              : 4 * params.budget * log2_ceil(n_total) + 4,
          /*verify_probes=*/params.verify_probes != 0 ? params.verify_probes
                                                      : 2 * log2_ceil(n_total)};
  return solve(players, objects, ctx, phase_key, 0);
}

}  // namespace colscore
