#include "src/protocols/zero_radius.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/assert.hpp"
#include "src/common/thread_pool.hpp"

namespace colscore {

void ZeroRadiusStats::merge(const ZeroRadiusStats& other) {
  base_case_players += other.base_case_players;
  fallbacks += other.fallbacks;
  empty_support += other.empty_support;
  repairs += other.repairs;
  max_depth = std::max(max_depth, other.max_depth);
}

namespace {

std::size_t log2_ceil(std::size_t n) {
  std::size_t l = 0;
  while ((1ULL << l) < n) ++l;
  return std::max<std::size_t>(l, 1);
}

struct Ctx {
  const ZeroRadiusParams& params;
  ProtocolEnv& env;
  std::size_t base_threshold;
  std::size_t elim_cap;
  std::size_t verify_probes;
};

/// Splits `items` into two non-empty halves with the shared coin. If a side
/// comes out empty (only possible for tiny inputs), re-draws.
template <typename T>
void shared_partition(std::span<const T> items, Rng& shared, std::vector<T>& left,
                      std::vector<T>& right) {
  left.clear();
  right.clear();
  for (int attempt = 0; attempt < 64; ++attempt) {
    for (const T& item : items) (shared() & 1 ? left : right).push_back(item);
    if (items.size() < 2 || (!left.empty() && !right.empty())) return;
    left.clear();
    right.clear();
  }
  // Deterministic fallback: alternate.
  for (std::size_t i = 0; i < items.size(); ++i)
    (i % 2 == 0 ? left : right).push_back(items[i]);
}

/// One player adopts a vector over `objects` from the published candidates.
/// `verify_key` seeds the deterministic verification coordinates.
BitVector adopt(PlayerId p, std::span<const ObjectId> objects,
                const std::vector<BulletinBoard::SupportedVector>& candidates,
                Ctx& ctx, std::uint64_t verify_key, ZeroRadiusStats& stats) {
  if (candidates.empty()) {
    // Nothing published at all (degenerate); probe everything we can afford.
    ++stats.fallbacks;
    BitVector own(objects.size());
    const std::size_t limit = std::min(objects.size(), ctx.elim_cap);
    for (std::size_t i = 0; i < limit; ++i)
      own.set(i, ctx.env.own_probe(p, objects[i]));
    return own;
  }

  std::vector<std::size_t> alive(candidates.size());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;

  std::unordered_map<std::size_t, bool> probed;  // coord -> own truth
  std::size_t probes_used = 0;
  bool fell_back = false;
  std::vector<std::size_t> diff;  // reused across elimination rounds

  while (alive.size() > 1) {
    // Deduplicate identical leaders to avoid probing ties.
    const BitVector& front = candidates[alive[0]].vector;
    diff.clear();
    front.diff_positions_into(candidates[alive[1]].vector, diff);
    if (diff.empty()) {
      alive.erase(alive.begin() + 1);
      continue;
    }
    if (probes_used >= ctx.elim_cap) {
      fell_back = true;
      break;
    }
    const std::size_t coord = diff.front();
    bool bit;
    if (auto it = probed.find(coord); it != probed.end()) {
      bit = it->second;
    } else {
      bit = ctx.env.own_probe(p, objects[coord]);
      ++probes_used;
      probed.emplace(coord, bit);
    }
    std::vector<std::size_t> next;
    next.reserve(alive.size());
    for (std::size_t idx : alive)
      if (candidates[idx].vector.get(coord) == bit) next.push_back(idx);
    if (next.empty()) {
      // Our true vector was not among the candidates (noisy invocation from
      // SmallRadius). Keep the highest-support candidate and patch below.
      fell_back = true;
      break;
    }
    alive = std::move(next);
  }

  if (fell_back) ++stats.fallbacks;
  BitVector result = candidates[alive.empty() ? 0 : alive.front()].vector;

  // Verification-repair: sample a few coordinates and patch mismatches. This
  // mops up the rare deep-recursion failure where the player's exact vector
  // missed the support filter and the survivor is merely the nearest cluster.
  // The coordinates are SHARED across learners (derived from the channel, not
  // the player): identical twins must patch identical coordinates, otherwise
  // their published vectors fragment and upstream support voting collapses.
  Rng verify(mix_keys(verify_key, 0x7e81f1ULL));
  for (std::size_t s = 0; s < ctx.verify_probes && s < objects.size(); ++s) {
    const std::size_t coord = verify.below(objects.size());
    if (probed.contains(coord)) continue;
    const bool bit = ctx.env.own_probe(p, objects[coord]);
    probed.emplace(coord, bit);
    if (result.get(coord) != bit) ++stats.repairs;
  }

  // Patch in everything this player actually observed.
  for (const auto& [coord, bit] : probed) result.set(coord, bit);
  return result;
}

/// Publication + adoption for one direction of the merge: `learners` adopt
/// vectors over `objects` computed by `publishers` (whose outputs are given).
void cross_adopt(std::span<const PlayerId> learners,
                 std::span<const PlayerId> publishers,
                 std::span<const ObjectId> objects,
                 const std::vector<BitVector>& publisher_outputs,
                 std::vector<BitVector>& learner_outputs, Ctx& ctx,
                 std::uint64_t channel, ZeroRadiusStats& stats) {
  const ReportContext rctx{Phase::kZeroRadius, channel};
  // Publications are serial so board ordering (and thus candidate order) is
  // deterministic; adoption below is the expensive part and runs parallel.
  for (std::size_t i = 0; i < publishers.size(); ++i) {
    const PlayerId q = publishers[i];
    Rng prng = ctx.env.local_rng(q, channel);
    BitVector published = ctx.env.population.publication(q, publisher_outputs[i],
                                                         objects, rctx, prng);
    ctx.env.board.post_vector(channel, q, std::move(published));
  }

  auto supported = ctx.env.board.vectors_by_support(channel);
  const auto threshold = static_cast<std::size_t>(
      std::max(2.0, std::floor(static_cast<double>(publishers.size()) /
                               (ctx.params.support_divisor *
                                static_cast<double>(ctx.params.budget)))));
  std::vector<BulletinBoard::SupportedVector> filtered;
  for (auto& sv : supported)
    if (sv.support >= threshold) filtered.push_back(std::move(sv));
  if (filtered.empty() && !supported.empty()) {
    ++stats.empty_support;
    // Keep the most-supported few so adoption can still proceed.
    const std::size_t keep = std::min<std::size_t>(supported.size(),
                                                   2 * ctx.params.budget);
    filtered.assign(supported.begin(), supported.begin() + static_cast<long>(keep));
  }

  std::vector<ZeroRadiusStats> local(learners.size());
  learner_outputs.assign(learners.size(), BitVector());
  parallel_for(0, learners.size(), [&](std::size_t i) {
    learner_outputs[i] =
        adopt(learners[i], objects, filtered, ctx, channel, local[i]);
  });
  for (const auto& s : local) stats.merge(s);
}

ZeroRadiusResult solve(std::span<const PlayerId> players,
                       std::span<const ObjectId> objects, Ctx& ctx,
                       std::uint64_t phase_key, std::size_t depth) {
  ZeroRadiusResult result;
  result.stats.max_depth = depth;
  result.outputs.assign(players.size(), BitVector(objects.size()));
  if (players.empty() || objects.empty()) return result;

  if (std::min(players.size(), objects.size()) <= ctx.base_threshold) {
    // Base case: every player probes every object in O.
    result.stats.base_case_players = players.size();
    parallel_for(0, players.size(), [&](std::size_t i) {
      BitVector& row = result.outputs[i];
      for (std::size_t j = 0; j < objects.size(); ++j)
        row.set(j, ctx.env.own_probe(players[i], objects[j]));
    });
    return result;
  }

  // Shared-random halving of both universes (same partition for everyone).
  Rng shared = ctx.env.shared_rng(mix_keys(phase_key, 0xA11, depth));
  std::vector<PlayerId> p_left, p_right;
  std::vector<ObjectId> o_left, o_right;
  shared_partition<PlayerId>(players, shared, p_left, p_right);
  shared_partition<ObjectId>(objects, shared, o_left, o_right);

  ZeroRadiusResult left =
      solve(p_left, o_left, ctx, mix_keys(phase_key, 1), depth + 1);
  ZeroRadiusResult right =
      solve(p_right, o_right, ctx, mix_keys(phase_key, 2), depth + 1);
  result.stats.merge(left.stats);
  result.stats.merge(right.stats);

  // Cross adoption: left players adopt o_right vectors published by right
  // players, and vice versa.
  std::vector<BitVector> left_adopted, right_adopted;
  cross_adopt(p_left, p_right, o_right, right.outputs, left_adopted, ctx,
              mix_keys(phase_key, 0xC0, 1), result.stats);
  cross_adopt(p_right, p_left, o_left, left.outputs, right_adopted, ctx,
              mix_keys(phase_key, 0xC0, 2), result.stats);

  // Reassemble full vectors in the original `objects` coordinate order.
  std::unordered_map<ObjectId, std::size_t> coord_of;
  coord_of.reserve(objects.size());
  for (std::size_t j = 0; j < objects.size(); ++j) coord_of.emplace(objects[j], j);
  std::unordered_map<PlayerId, std::size_t> row_of;
  row_of.reserve(players.size());
  for (std::size_t i = 0; i < players.size(); ++i) row_of.emplace(players[i], i);

  auto emit = [&](std::span<const PlayerId> group, const std::vector<BitVector>& own,
                  std::span<const ObjectId> own_objs,
                  const std::vector<BitVector>& adopted,
                  std::span<const ObjectId> adopted_objs) {
    parallel_for(0, group.size(), [&](std::size_t i) {
      BitVector& row = result.outputs[row_of.at(group[i])];
      for (std::size_t j = 0; j < own_objs.size(); ++j)
        row.set(coord_of.at(own_objs[j]), own[i].get(j));
      for (std::size_t j = 0; j < adopted_objs.size(); ++j)
        row.set(coord_of.at(adopted_objs[j]), adopted[i].get(j));
    });
  };
  emit(p_left, left.outputs, o_left, left_adopted, o_right);
  emit(p_right, right.outputs, o_right, right_adopted, o_left);
  return result;
}

}  // namespace

ZeroRadiusResult zero_radius(std::span<const PlayerId> players,
                             std::span<const ObjectId> objects,
                             const ZeroRadiusParams& params, ProtocolEnv& env,
                             std::uint64_t phase_key) {
  CS_ASSERT(params.budget >= 1, "zero_radius: budget must be >= 1");
  const std::size_t n_total = env.n_players();
  Ctx ctx{params, env,
          /*base_threshold=*/static_cast<std::size_t>(
              params.base_factor * static_cast<double>(params.budget) *
              static_cast<double>(log2_ceil(n_total))),
          /*elim_cap=*/params.elim_cap != 0
              ? params.elim_cap
              : 4 * params.budget * log2_ceil(n_total) + 4,
          /*verify_probes=*/params.verify_probes != 0 ? params.verify_probes
                                                      : 2 * log2_ceil(n_total)};
  return solve(players, objects, ctx, phase_key, 0);
}

}  // namespace colscore
