// SmallRadius (Fig. 1 of the paper; Theorem 5 / [2] Thm 4.4).
//
// Collaborative scoring when every player has >= n/B neighbours within
// Hamming distance D. Repeats Θ(log n) times: randomly partition the objects
// into s = Θ(D^e) subsets (small enough that same-cluster players are
// *identical* on most subsets), solve each subset with ZeroRadius(·,·,5B),
// keep the popular per-subset vectors, and let each player Select its own;
// concatenations across subsets become candidates, and a final Select picks
// the winner.
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/protocols/env.hpp"
#include "src/protocols/zero_radius.hpp"

namespace colscore {

struct SmallRadiusParams {
  std::size_t budget = 8;    // B
  std::size_t diameter = 16; // D: assumed cluster diameter over `objects`
  /// Outer repetitions (Θ(log n) in the paper; 2-3 suffice in practice).
  std::size_t repeats = 2;
  /// Subset count s = clamp(ceil(subset_scale * D^subset_exponent), 1, |O|).
  /// The paper uses exponent 1.5; exponent 1 with scale 2 keeps the expected
  /// per-subset intra-cluster distance below 1/2 and is the practical preset.
  double subset_scale = 2.0;
  double subset_exponent = 1.0;
  /// Support threshold divisor for U_i: vectors output by >= n/(u_divisor*B)
  /// players (paper: 5).
  double support_divisor = 5.0;
  /// Select tournament sample size (Θ(log n)).
  std::size_t probes_per_pair = 12;
  /// Prefilter configuration for large U_i (see select_prefiltered).
  std::size_t prefilter_probes = 16;
  std::size_t max_finalists = 8;
  /// ZeroRadius configuration; its budget is overridden to 5 * budget.
  ZeroRadiusParams zr;
};

struct SmallRadiusStats {
  std::size_t subsets = 0;          // s actually used (last repeat)
  std::size_t candidate_overflow = 0;  // U_i truncations
  ZeroRadiusStats zr;
};

struct SmallRadiusResult {
  /// outputs[i] = vector of players[i] over `objects` (coordinate j is
  /// objects[j]).
  std::vector<BitVector> outputs;
  SmallRadiusStats stats;
};

SmallRadiusResult small_radius(std::span<const PlayerId> players,
                               std::span<const ObjectId> objects,
                               const SmallRadiusParams& params, ProtocolEnv& env,
                               std::uint64_t phase_key);

}  // namespace colscore
