// Streaming scoring session (PR 10): a long-lived NeighborGraph + Clustering
// over an externally-owned, mutating row family.
//
// The paper's setting is static — build the graph once, peel once. A churn
// workload instead drifts preference rows, admits and retires players epoch
// by epoch. StreamSession keeps the derived state (edges, degrees,
// clustering) synchronized with those deltas at incremental cost:
//
//   * graph maintenance goes through NeighborGraph::apply_updates — O(k·n)
//     distance work per epoch instead of the O(n²) full rebuild (with the
//     documented >= n/8 fallback);
//   * re-clustering is epoch-amortized: the greedy peel re-runs only when
//     the epoch actually changed an edge (or forced a rebuild), seeded from
//     the graph's incrementally-maintained degree cache; a delta-free epoch
//     reuses the previous clustering verbatim, which is sound because
//     cluster_players is a pure function of the edge set.
//
// The session observes the caller's rows (ConstBitRow views): mutate the
// rows first (e.g. BitRow::flip_random), then describe what changed in one
// apply_epoch batch. Outputs are pinned: after any sequence of epochs the
// graph and clustering are byte-identical to a fresh build over the current
// rows + alive set (tests/test_stream.cpp fuzzes this on both backends).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/exec_policy.hpp"
#include "src/protocols/neighbor_graph.hpp"

namespace colscore {

/// What one epoch did to the session's derived state.
struct StreamEpochStats {
  std::size_t edges_added = 0;
  std::size_t edges_removed = 0;
  /// The graph fell back to a full (alive-masked) rebuild this epoch.
  bool rebuilt = false;
  /// The greedy peel re-ran (false = previous clustering reused verbatim).
  bool reclustered = false;
};

/// Running totals over a session's lifetime (feeds the churn workload's
/// entry metrics: epochs, edges_changed, rebuild_fraction).
struct StreamTotals {
  std::uint64_t epochs = 0;
  std::uint64_t edges_changed = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t reclusters = 0;
  std::uint64_t flips = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
};

class StreamSession {
 public:
  /// Builds the initial graph + clustering over `z` (the session keeps
  /// views, not copies: the rows must outlive the session and never
  /// reallocate — BitMatrix rows qualify). `threshold` is the edge
  /// threshold, `min_cluster` the peel floor (paper's n/B).
  StreamSession(std::span<const ConstBitRow> z, std::size_t threshold,
                std::size_t min_cluster,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default());

  /// Applies one epoch: the caller has already mutated the flipped rows in
  /// place; `updates` lists every player whose row content or aliveness
  /// changed (at most once each). Returns what the epoch did.
  StreamEpochStats apply_epoch(
      std::span<const RowUpdate> updates,
      const ExecPolicy& policy = ExecPolicy::process_default());

  const NeighborGraph& graph() const noexcept { return graph_; }
  const Clustering& clustering() const noexcept { return clustering_; }
  const StreamTotals& totals() const noexcept { return totals_; }
  std::size_t min_cluster() const noexcept { return min_cluster_; }

 private:
  std::vector<ConstBitRow> z_;
  std::size_t min_cluster_;
  NeighborGraph graph_;
  Clustering clustering_;
  StreamTotals totals_;
};

}  // namespace colscore
