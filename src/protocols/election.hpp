// Byzantine-tolerant leader election in the full-information model (§7.1,
// after Feige's lightest-bin protocol [10]).
//
// Each round the remaining players announce a bin choice on the bulletin
// board; the members of the lightest non-empty bin survive. Honest players
// choose uniformly at random; the colluding dishonest players are *rushing* —
// they observe every honest choice first and then place their own balls with
// a greedy capture strategy (maximize their fraction of the winning bin).
// With a dishonest fraction below 1/2 an honest leader wins with constant
// probability, which is all §7.1 needs: the outer loop repeats the election
// Θ(log n) times and RSelect discards the candidates produced under
// dishonest leaders.
#pragma once

#include <vector>

#include "src/protocols/env.hpp"

namespace colscore {

struct ElectionParams {
  /// Target expected players per bin (bins = max(2, |R| / bin_load)).
  std::size_t bin_load = 8;
  /// Hard stop; the protocol converges long before this.
  std::size_t max_rounds = 256;
};

struct ElectionResult {
  PlayerId leader = kInvalidPlayer;
  bool leader_honest = false;
  std::size_t rounds = 0;
};

/// Runs one election among all players in the population. `phase_key` scopes
/// the board channel; honest players draw their bin choices from their local
/// randomness streams.
ElectionResult feige_election(ProtocolEnv& env, std::uint64_t phase_key,
                              const ElectionParams& params = {});

}  // namespace colscore
