// ZeroRadius (Fig. 1 of the paper; Theorem 4 / [4], [2] Thm 3.1).
//
// Collaborative scoring when every player has >= n/B' exact twins. The
// player/object universes are halved recursively; each half solves itself,
// then each player adopts its opposite-half vector from the published
// outputs by support voting plus an elimination-probing loop.
//
// Deviations from the paper's pseudocode (documented in DESIGN.md §3):
//   * The elimination loop is capped (`elim_cap` probes); on cap overflow or
//     full elimination the player falls back to the highest-support
//     candidate patched with its own probed bits. The precondition only
//     holds approximately when SmallRadius invokes us on noisy sub-universes,
//     and the caller's Select step absorbs the O(D) residual.
//   * Degenerate random partitions are re-drawn (bounded retries).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/protocols/env.hpp"

namespace colscore {

struct ZeroRadiusParams {
  /// B': at least |players|/budget twins assumed per player.
  std::size_t budget = 8;
  /// Base case when min(|P|, |O|) <= base_factor * budget * log2(n_total).
  /// The constant matters: recursion is only sound while every player's twin
  /// set keeps Ω(log n) members on both sides of the random halving, i.e.
  /// while |P|/budget stays well above log2 n. Below that, support voting
  /// loses whole clusters with constant probability (the paper's Θ(·) hides
  /// exactly this constant).
  double base_factor = 4.0;
  /// Support threshold for adopted vectors:
  /// max(2, |P''| / (support_divisor * budget)). The floor of 2 keeps small
  /// honest clusters eligible at deep recursion levels while still dropping
  /// liars' singleton garbage.
  double support_divisor = 2.0;
  /// Max elimination probes per player per merge step; 0 derives
  /// 4 * budget * log2(n_total) + 4.
  std::size_t elim_cap = 0;
  /// After adopting a vector, the player verifies this many uniformly chosen
  /// coordinates and patches mismatches (0 derives 2 * log2(n_total)).
  /// Repairs the rare deep-recursion case where a cluster lost all its
  /// members on one side of the partition and the adopted vector is close
  /// but not exact.
  std::size_t verify_probes = 0;
};

struct ZeroRadiusStats {
  std::size_t base_case_players = 0;  // players that hit a base case (any level)
  std::size_t fallbacks = 0;          // elimination loops that needed the fallback
  std::size_t empty_support = 0;      // merges where no vector met the threshold
  std::size_t repairs = 0;            // verification probes that found mismatches
  std::size_t max_depth = 0;

  void merge(const ZeroRadiusStats& other);
};

struct ZeroRadiusResult {
  /// outputs[i] = computed preference vector of players[i] over `objects`
  /// (coordinate j corresponds to objects[j]).
  std::vector<BitVector> outputs;
  ZeroRadiusStats stats;
};

ZeroRadiusResult zero_radius(std::span<const PlayerId> players,
                             std::span<const ObjectId> objects,
                             const ZeroRadiusParams& params, ProtocolEnv& env,
                             std::uint64_t phase_key);

}  // namespace colscore
