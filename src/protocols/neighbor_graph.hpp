// Neighbor graph and greedy clustering (Fig. 2 step 1.d; Lemmas 7-9).
//
// Players p, q share an edge when their estimated sample vectors z(p), z(q)
// are within the edge threshold. Clusters are peeled greedily: repeatedly
// take a player with >= min_cluster-1 surviving neighbours together with its
// whole neighbourhood; leftovers then attach to the cluster of any previously
// removed neighbour.
//
// Two adjacency backends behind one interface (identical downstream output):
//   * kDense — contiguous BitMatrix, O(n^2) bits. Wins when the graph is
//     dense or n is small: neighbor walks are word-parallel AND+ctz scans.
//   * kCsr — offsets + flat neighbor array (src/protocols/neighbor_csr.hpp).
//     Wins in the sparse regime (large n, small tau): no O(n^2)-bit
//     allocation/zero/mirror, and every neighbor walk is O(degree).
// kAuto picks per instance via a deterministic sampled-density heuristic
// (csr_preferred), so the choice is identical on every machine and run.
//
// Hot-path layout (both backends): construction computes each unordered pair
// {p, q} once, in cache-sized row tiles, with an early-exit Hamming kernel
// that abandons a pair as soon as its running distance crosses the threshold
// (far pairs — the common case — cost a handful of words instead of a full
// row scan). The kernel itself is SIMD-dispatched (src/common/simd.hpp).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitmatrix.hpp"
#include "src/common/bitvector.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/types.hpp"
#include "src/protocols/neighbor_csr.hpp"

namespace colscore {

/// Adjacency storage choice; kAuto resolves to kDense or kCsr at build time.
enum class GraphBackend { kAuto, kDense, kCsr };

/// "dense" / "csr" — the spelling benches print in their config labels.
const char* backend_name(GraphBackend backend) noexcept;

class NeighborGraph {
 public:
  /// Builds the graph over the published sample vectors: edge iff
  /// hamming(z[p], z[q]) <= threshold. Each pair is computed once (symmetry)
  /// in row tiles; the per-pair kernel early-exits past the threshold. The
  /// tile sweep runs under `policy`.
  NeighborGraph(std::span<const ConstBitRow> z, std::size_t threshold,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default());
  NeighborGraph(const BitMatrix& z, std::size_t threshold,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default());
  NeighborGraph(std::span<const BitVector> z, std::size_t threshold,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default());

  /// The resolved backend (never kAuto).
  GraphBackend backend() const noexcept { return backend_; }

  std::size_t size() const noexcept { return n_; }
  bool has_edge(PlayerId p, PlayerId q) const {
    return backend_ == GraphBackend::kDense ? adj_.get(p, q)
                                            : csr_.has_edge(p, q);
  }
  std::size_t degree(PlayerId p) const {
    return backend_ == GraphBackend::kDense ? adj_.row(p).popcount()
                                            : csr_.degree(p);
  }
  /// Neighbours of p as an n-bit row view (bit q set iff edge pq).
  /// Dense backend only — callers that must handle both backends walk
  /// degree()/has_edge() or branch on backend() like cluster_players does.
  ConstBitRow row(PlayerId p) const;
  /// Neighbours of p as an ascending id list. CSR backend only.
  std::span<const std::uint32_t> neighbors(PlayerId p) const;

 private:
  void build(std::span<const ConstBitRow> z, std::size_t threshold,
             GraphBackend backend, const ExecPolicy& policy);

  std::size_t n_ = 0;
  GraphBackend backend_ = GraphBackend::kDense;
  BitMatrix adj_;      // kDense
  CsrNeighbors csr_;   // kCsr
};

struct Clustering {
  /// cluster_of[p] = cluster index, or kNoClusterAssigned if the graph was
  /// too sparse even for the leftover-attachment pass.
  static constexpr std::uint32_t kNoClusterAssigned = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> cluster_of;
  std::vector<std::vector<PlayerId>> clusters;
  /// Players attached by the leftover rule (paper's V'_j pass).
  std::size_t leftovers = 0;
  /// Players that had no removed neighbour and were force-attached to the
  /// nearest seed (only happens when the diameter guess was wrong).
  std::size_t orphans = 0;

  std::size_t min_cluster_size() const;
  std::size_t max_cluster_size() const;
};

/// Greedy peeling per Fig. 2 step 1.d with cluster size floor `min_cluster`
/// (= n/B in the paper). Alive-degrees are maintained incrementally as
/// members are absorbed instead of rescanned per probe. Runs on either
/// backend with identical output (neighbor walks visit the same ids in the
/// same ascending order both ways).
Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster);

/// Compat overload: `z` was only ever a diagnostics hook and is ignored.
inline Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster,
                                  std::span<const BitVector> /*z*/) {
  return cluster_players(graph, min_cluster);
}

}  // namespace colscore
