// Neighbor graph and greedy clustering (Fig. 2 step 1.d; Lemmas 7-9).
//
// Players p, q share an edge when their estimated sample vectors z(p), z(q)
// are within the edge threshold. Clusters are peeled greedily: repeatedly
// take a player with >= min_cluster-1 surviving neighbours together with its
// whole neighbourhood; leftovers then attach to the cluster of any previously
// removed neighbour.
//
// Hot-path layout: the adjacency lives in a contiguous BitMatrix and the
// construction computes each unordered pair {p, q} once, in cache-sized row
// tiles, with an early-exit Hamming kernel that abandons a pair as soon as
// its running distance crosses the threshold (far pairs — the common case —
// cost a handful of words instead of a full row scan).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitmatrix.hpp"
#include "src/common/bitvector.hpp"
#include "src/common/types.hpp"

namespace colscore {

class NeighborGraph {
 public:
  /// Builds the graph over the published sample vectors: edge iff
  /// hamming(z[p], z[q]) <= threshold. Each pair is computed once (symmetry)
  /// in row tiles; the per-pair kernel early-exits past the threshold.
  NeighborGraph(std::span<const ConstBitRow> z, std::size_t threshold);
  NeighborGraph(const BitMatrix& z, std::size_t threshold);
  NeighborGraph(std::span<const BitVector> z, std::size_t threshold);

  std::size_t size() const noexcept { return adj_.rows(); }
  bool has_edge(PlayerId p, PlayerId q) const { return adj_.get(p, q); }
  std::size_t degree(PlayerId p) const { return adj_.row(p).popcount(); }
  /// Neighbours of p as an n-bit row view (bit q set iff edge pq).
  ConstBitRow row(PlayerId p) const { return adj_.row(p); }

 private:
  void build(std::span<const ConstBitRow> z, std::size_t threshold);

  BitMatrix adj_;
};

struct Clustering {
  /// cluster_of[p] = cluster index, or kNoClusterAssigned if the graph was
  /// too sparse even for the leftover-attachment pass.
  static constexpr std::uint32_t kNoClusterAssigned = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> cluster_of;
  std::vector<std::vector<PlayerId>> clusters;
  /// Players attached by the leftover rule (paper's V'_j pass).
  std::size_t leftovers = 0;
  /// Players that had no removed neighbour and were force-attached to the
  /// nearest seed (only happens when the diameter guess was wrong).
  std::size_t orphans = 0;

  std::size_t min_cluster_size() const;
  std::size_t max_cluster_size() const;
};

/// Greedy peeling per Fig. 2 step 1.d with cluster size floor `min_cluster`
/// (= n/B in the paper). Alive-degrees are maintained incrementally as
/// members are absorbed instead of rescanned per probe.
Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster);

/// Compat overload: `z` was only ever a diagnostics hook and is ignored.
inline Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster,
                                  std::span<const BitVector> /*z*/) {
  return cluster_players(graph, min_cluster);
}

}  // namespace colscore
