// Neighbor graph and greedy clustering (Fig. 2 step 1.d; Lemmas 7-9).
//
// Players p, q share an edge when their estimated sample vectors z(p), z(q)
// are within the edge threshold. Clusters are peeled greedily: repeatedly
// take a player with >= min_cluster-1 surviving neighbours together with its
// whole neighbourhood; leftovers then attach to the cluster of any previously
// removed neighbour.
//
// Two adjacency backends behind one interface (identical downstream output):
//   * kDense — contiguous BitMatrix, O(n^2) bits. Wins when the graph is
//     dense or n is small: neighbor walks are word-parallel AND+ctz scans.
//   * kCsr — offsets + flat neighbor array (src/protocols/neighbor_csr.hpp).
//     Wins in the sparse regime (large n, small tau): no O(n^2)-bit
//     allocation/zero/mirror, and every neighbor walk is O(degree).
// kAuto picks per instance via a deterministic sampled-density heuristic
// (csr_preferred), so the choice is identical on every machine and run.
//
// Hot-path layout (both backends): construction computes each unordered pair
// {p, q} once, in cache-sized row tiles, with an early-exit Hamming kernel
// that abandons a pair as soon as its running distance crosses the threshold
// (far pairs — the common case — cost a handful of words instead of a full
// row scan). The kernel itself is SIMD-dispatched (src/common/simd.hpp).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitmatrix.hpp"
#include "src/common/bitvector.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/types.hpp"
#include "src/protocols/neighbor_csr.hpp"

namespace colscore {

/// Adjacency storage choice; kAuto resolves to kDense or kCsr at build time.
enum class GraphBackend { kAuto, kDense, kCsr };

/// "dense" / "csr" — the spelling benches print in their config labels.
const char* backend_name(GraphBackend backend) noexcept;

/// One streaming delta against a player's published row (PR 10). A batch of
/// these describes everything that happened in one churn epoch; the batch
/// applies atomically against the *post-epoch* row contents (the caller
/// mutates rows first, then reports which players changed).
enum class UpdateKind : std::uint8_t {
  kFlip,    ///< alive player's row content changed in place
  kArrive,  ///< previously departed player re-enters with its current row
  kDepart,  ///< alive player leaves; all its edges drop
};

struct RowUpdate {
  PlayerId player = 0;
  UpdateKind kind = UpdateKind::kFlip;
};

/// What one apply_updates() batch did to the edge set. Counts are unordered
/// edges. On a rebuild epoch (see apply_updates) the exact churn is unknown —
/// added/removed collapse to the net totals difference and `rebuilt` is set,
/// so callers must treat `rebuilt` as "assume everything may have changed".
struct GraphDelta {
  std::size_t edges_added = 0;
  std::size_t edges_removed = 0;
  bool rebuilt = false;

  std::size_t edges_changed() const noexcept {
    return edges_added + edges_removed;
  }
  /// True when downstream state derived from the edge set (clusterings,
  /// degree orderings) may differ from the previous epoch's.
  bool dirty() const noexcept { return rebuilt || edges_changed() != 0; }
};

class NeighborGraph {
 public:
  /// Builds the graph over the published sample vectors: edge iff
  /// hamming(z[p], z[q]) <= threshold. Each pair is computed once (symmetry)
  /// in row tiles; the per-pair kernel early-exits past the threshold. The
  /// tile sweep runs under `policy`. A non-null `alive` mask excludes
  /// departed players from the pair sweep (their rows keep zero edges until
  /// a kArrive update readmits them).
  NeighborGraph(std::span<const ConstBitRow> z, std::size_t threshold,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default(),
                const BitVector* alive = nullptr);
  NeighborGraph(const BitMatrix& z, std::size_t threshold,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default());
  NeighborGraph(std::span<const BitVector> z, std::size_t threshold,
                GraphBackend backend = GraphBackend::kAuto,
                const ExecPolicy& policy = ExecPolicy::process_default());

  /// The resolved backend (never kAuto). Stable across apply_updates — a
  /// rebuild epoch keeps the backend resolved at construction so the
  /// streaming trajectory is schedule- and history-independent.
  GraphBackend backend() const noexcept { return backend_; }

  std::size_t size() const noexcept { return n_; }
  std::size_t threshold() const noexcept { return threshold_; }
  bool has_edge(PlayerId p, PlayerId q) const {
    return backend_ == GraphBackend::kDense ? adj_.get(p, q)
                                            : csr_.has_edge(p, q);
  }
  /// O(1): degrees are cached at build time and maintained incrementally by
  /// apply_updates (they seed cluster_players' alive-degree peel each epoch).
  std::size_t degree(PlayerId p) const { return degrees_[p]; }

  /// Present players (all-true unless built with a mask or updated with
  /// kArrive/kDepart). Departed players always have degree 0 and no edges.
  const BitVector& alive() const noexcept { return alive_; }
  bool is_alive(PlayerId p) const { return alive_.get(p); }
  std::size_t alive_count() const noexcept { return alive_count_; }

  /// Applies one epoch's batch of row deltas incrementally: O(k·n) distance
  /// work (k = batch size, each changed row swept against the alive set with
  /// the dispatched early-exit kernel) plus O(edges touched) structural
  /// splicing — instead of the O(n²) full rebuild. `z` must be the same row
  /// family the graph was built over, already holding the post-epoch
  /// contents; each player may appear at most once per batch.
  ///
  /// Falls back to a full (alive-masked) rebuild when the batch covers
  /// >= 1/8 of the population — past that point the incremental bookkeeping
  /// costs more than the tiled sweep it avoids. Either path leaves the graph
  /// byte-identical to a fresh build over (z, alive): edge sets, degrees and
  /// downstream clusterings never depend on update history (fuzz-asserted by
  /// tests/test_stream.cpp).
  GraphDelta apply_updates(std::span<const RowUpdate> updates,
                           std::span<const ConstBitRow> z,
                           const ExecPolicy& policy = ExecPolicy::process_default());

  /// Neighbours of p as an n-bit row view (bit q set iff edge pq).
  /// Dense backend only — callers that must handle both backends walk
  /// degree()/has_edge() or branch on backend() like cluster_players does.
  ConstBitRow row(PlayerId p) const;
  /// Neighbours of p as an ascending id list. CSR backend only.
  std::span<const std::uint32_t> neighbors(PlayerId p) const;

 private:
  void build(std::span<const ConstBitRow> z, std::size_t threshold,
             GraphBackend backend, const ExecPolicy& policy,
             const BitVector* alive);
  /// (Re)computes the full adjacency + degree cache for the resolved
  /// backend over the current alive set.
  void rebuild_adjacency(std::span<const ConstBitRow> z,
                         const ExecPolicy& policy);
  /// Current neighbor list of p, ascending, into `out` (either backend).
  void neighbor_list(PlayerId p, std::vector<std::uint32_t>& out) const;

  std::size_t n_ = 0;
  std::size_t threshold_ = 0;
  GraphBackend backend_ = GraphBackend::kDense;
  BitMatrix adj_;      // kDense
  CsrNeighbors csr_;   // kCsr
  BitVector alive_;
  std::size_t alive_count_ = 0;
  /// degrees_[p] == |edges incident to p|; maintained by apply_updates.
  std::vector<std::uint32_t> degrees_;

  /// Per-batch scratch, reused across epochs (a streaming session calls
  /// apply_updates thousands of times; reallocating these each epoch would
  /// dominate small batches).
  struct UpdateScratch {
    std::vector<std::vector<std::uint32_t>> new_lists;
    std::vector<std::vector<std::uint32_t>> old_lists;
    std::vector<std::uint32_t> added, removed;
    BitVector updated;
    std::vector<std::uint32_t> update_index;          // valid where updated
    std::vector<std::pair<std::uint32_t, std::uint32_t>> csr_adds, csr_dels;
    std::vector<std::uint32_t> csr_offsets, csr_adj;  // rebuilt arrays
  };
  UpdateScratch scratch_;
};

struct Clustering {
  /// cluster_of[p] = cluster index, or kNoClusterAssigned if the graph was
  /// too sparse even for the leftover-attachment pass.
  static constexpr std::uint32_t kNoClusterAssigned = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> cluster_of;
  std::vector<std::vector<PlayerId>> clusters;
  /// Players attached by the leftover rule (paper's V'_j pass).
  std::size_t leftovers = 0;
  /// Players that had no removed neighbour and were force-attached to the
  /// nearest seed (only happens when the diameter guess was wrong).
  std::size_t orphans = 0;

  std::size_t min_cluster_size() const;
  std::size_t max_cluster_size() const;
};

/// Greedy peeling per Fig. 2 step 1.d with cluster size floor `min_cluster`
/// (= n/B in the paper). Alive-degrees are maintained incrementally as
/// members are absorbed instead of rescanned per probe. Runs on either
/// backend with identical output (neighbor walks visit the same ids in the
/// same ascending order both ways).
Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster);

/// Compat overload: `z` was only ever a diagnostics hook and is ignored.
inline Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster,
                                  std::span<const BitVector> /*z*/) {
  return cluster_players(graph, min_cluster);
}

}  // namespace colscore
