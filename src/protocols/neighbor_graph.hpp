// Neighbor graph and greedy clustering (Fig. 2 step 1.d; Lemmas 7-9).
//
// Players p, q share an edge when their estimated sample vectors z(p), z(q)
// are within the edge threshold. Clusters are peeled greedily: repeatedly
// take a player with >= min_cluster-1 surviving neighbours together with its
// whole neighbourhood; leftovers then attach to the cluster of any previously
// removed neighbour.
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/common/types.hpp"

namespace colscore {

class NeighborGraph {
 public:
  /// Builds the graph over the published sample vectors: edge iff
  /// hamming(z[p], z[q]) <= threshold. O(n^2) distance computations,
  /// parallelized.
  NeighborGraph(std::span<const BitVector> z, std::size_t threshold);

  std::size_t size() const noexcept { return adj_.size(); }
  bool has_edge(PlayerId p, PlayerId q) const { return adj_[p].get(q); }
  std::size_t degree(PlayerId p) const { return adj_[p].popcount(); }
  /// Neighbours of p as an n-bit row (bit q set iff edge pq).
  const BitVector& row(PlayerId p) const { return adj_[p]; }

 private:
  std::vector<BitVector> adj_;
};

struct Clustering {
  /// cluster_of[p] = cluster index, or kNoClusterAssigned if the graph was
  /// too sparse even for the leftover-attachment pass.
  static constexpr std::uint32_t kNoClusterAssigned = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> cluster_of;
  std::vector<std::vector<PlayerId>> clusters;
  /// Players attached by the leftover rule (paper's V'_j pass).
  std::size_t leftovers = 0;
  /// Players that had no removed neighbour and were force-attached to the
  /// nearest seed (only happens when the diameter guess was wrong).
  std::size_t orphans = 0;

  std::size_t min_cluster_size() const;
  std::size_t max_cluster_size() const;
};

/// Greedy peeling per Fig. 2 step 1.d with cluster size floor `min_cluster`
/// (= n/B in the paper). `z` is used only for the orphan fallback (nearest
/// seed by sample distance).
Clustering cluster_players(const NeighborGraph& graph, std::size_t min_cluster,
                           std::span<const BitVector> z);

}  // namespace colscore
