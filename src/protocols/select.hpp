// RSelect and Select (Fig. 1 of the paper; Theorem 3 / [2] Thm 6.1).
//
// Given candidate vectors w_1..w_k over an object subset, player p probes a
// few positions where pairs differ and eliminates the pairwise losers; with
// Θ(log n) probes per pair the surviving vector is within a constant factor
// of the best candidate's distance to v(p), using O(k² log n) probes.
//
// Select is the deterministic variant used inside SmallRadius: probing
// positions are derived from a stable key instead of the player's local
// randomness, and pairs closer than `skip_below` positions are not probed at
// all (they cannot change the O(D) guarantee, and skipping them keeps the
// probe bill inside Theorem 5's budget).
//
// Every entry point has two forms: the primary one takes
// std::span<const ConstBitRow> (zero-copy views — BitMatrix rows or
// BitVectors alike), and a convenience overload takes
// std::span<const BitVector> and wraps it in views.
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/protocols/env.hpp"

namespace colscore {

struct SelectOutcome {
  std::size_t chosen = 0;      // index into the candidate span
  std::size_t probes = 0;      // own-probes performed by the player
  std::size_t pairs_probed = 0;
};

/// Randomized candidate selection for player `p`.
/// `objects[i]` is the global object id of coordinate i of every candidate.
/// `probes_per_pair` is the Θ(log n) sample size.
SelectOutcome rselect(PlayerId p, std::span<const ConstBitRow> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair);
SelectOutcome rselect(PlayerId p, std::span<const BitVector> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair);

/// Deterministic variant. `skip_below`: pairs differing in at most this many
/// positions are treated as equivalent (no probes). Pass 0 to probe all
/// differing pairs.
SelectOutcome select_deterministic(PlayerId p, std::span<const ConstBitRow> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below);
SelectOutcome select_deterministic(PlayerId p, std::span<const BitVector> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below);

/// Select for large candidate sets (|Ui| can reach 5B inside SmallRadius).
/// The player first probes `prefilter_probes` shared coordinates once (a
/// single batched ProbeOracle round-trip), ranks all candidates by agreement
/// on them, keeps the best `max_finalists`, and runs the deterministic
/// tournament on the finalists only. Probe cost is
/// O(prefilter_probes + max_finalists^2 * probes_per_pair) instead of
/// O(k^2 * probes_per_pair); a candidate within O(D) of the best survives the
/// prefilter whp (an engineering refinement documented in DESIGN.md §3).
SelectOutcome select_prefiltered(PlayerId p, std::span<const ConstBitRow> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below);
SelectOutcome select_prefiltered(PlayerId p, std::span<const BitVector> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below);

}  // namespace colscore
