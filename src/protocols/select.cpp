#include "src/protocols/select.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

std::vector<ConstBitRow> as_views(std::span<const BitVector> candidates) {
  return std::vector<ConstBitRow>(candidates.begin(), candidates.end());
}

/// Shared implementation of the pairwise elimination tournament.
/// `deterministic` switches the probe-position sampling stream.
///
/// Scratch discipline: one diff buffer is reused across all pairs, and the
/// per-coordinate probe memo is a two-plane bit cache (probed?/value) instead
/// of a hash map — the tournament runs once per player per phase, so the
/// per-pair allocations were the dominant cost at scale.
SelectOutcome run_tournament(PlayerId p, std::span<const ConstBitRow> candidates,
                             std::span<const ObjectId> objects, ProtocolEnv& env,
                             std::uint64_t phase_key, std::size_t probes_per_pair,
                             std::size_t skip_below, bool deterministic) {
  CS_ASSERT(!candidates.empty(), "select: no candidates");
  for (const ConstBitRow& c : candidates)
    CS_ASSERT(c.size() == objects.size(), "select: candidate/universe size mismatch");

  SelectOutcome out;
  const std::size_t k = candidates.size();
  if (k == 1) return out;

  std::vector<bool> alive(k, true);
  std::vector<std::size_t> wins(k, 0);
  // Players remember their own probe results within a protocol step, so each
  // distinct coordinate is charged at most once.
  BitVector probed(objects.size());
  BitVector probe_value(objects.size());
  std::vector<std::size_t> diff;

  auto own_bit = [&](std::size_t coord) {
    if (probed.get(coord)) return probe_value.get(coord);
    const bool bit = env.own_probe(p, objects[coord]);
    ++out.probes;
    probed.set(coord, true);
    probe_value.set(coord, bit);
    return bit;
  };

  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (!alive[i]) break;
      if (!alive[j]) continue;
      diff.clear();
      candidates[i].diff_positions_into(candidates[j], diff);
      if (diff.empty() || diff.size() <= skip_below) continue;

      Rng stream = deterministic
                       ? Rng(mix_keys(phase_key, candidates[i].content_hash(),
                                      candidates[j].content_hash()))
                       : env.local_rng(p, mix_keys(phase_key, i * 1315423911ULL + j));

      const std::size_t t = std::min(probes_per_pair, diff.size());
      std::size_t agree_i = 0;
      for (std::size_t s = 0; s < t; ++s) {
        const std::size_t coord = diff[stream.below(diff.size())];
        if (own_bit(coord) == candidates[i].get(coord)) ++agree_i;
      }
      ++out.pairs_probed;
      const std::size_t agree_j = t - agree_i;
      // Fig. 1: eliminate the candidate that loses a 2/3 supermajority.
      if (3 * agree_i >= 2 * t) {
        alive[j] = false;
        ++wins[i];
      } else if (3 * agree_j >= 2 * t) {
        alive[i] = false;
        ++wins[j];
      } else {
        // Close race: both survive (they are near-equidistant from v(p)).
        ++wins[agree_i >= agree_j ? i : j];
      }
    }
  }

  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    if (!found || wins[i] > wins[best]) {
      best = i;
      found = true;
    }
  }
  CS_ASSERT(found, "select: tournament eliminated every candidate");
  out.chosen = best;
  return out;
}

}  // namespace

SelectOutcome rselect(PlayerId p, std::span<const ConstBitRow> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair) {
  return run_tournament(p, candidates, objects, env, phase_key, probes_per_pair,
                        /*skip_below=*/0, /*deterministic=*/false);
}

SelectOutcome rselect(PlayerId p, std::span<const BitVector> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair) {
  return rselect(p, as_views(candidates), objects, env, phase_key, probes_per_pair);
}

SelectOutcome select_deterministic(PlayerId p, std::span<const ConstBitRow> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below) {
  return run_tournament(p, candidates, objects, env, phase_key, probes_per_pair,
                        skip_below, /*deterministic=*/true);
}

SelectOutcome select_deterministic(PlayerId p, std::span<const BitVector> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below) {
  return select_deterministic(p, as_views(candidates), objects, env, phase_key,
                              probes_per_pair, skip_below);
}

SelectOutcome select_prefiltered(PlayerId p, std::span<const ConstBitRow> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below) {
  CS_ASSERT(!candidates.empty(), "select_prefiltered: no candidates");
  CS_ASSERT(max_finalists >= 1, "select_prefiltered: need at least one finalist");
  if (candidates.size() <= max_finalists) {
    return select_deterministic(p, candidates, objects, env, phase_key,
                                probes_per_pair, skip_below);
  }

  SelectOutcome out;
  // Shared prefilter coordinates: identical for every player so adversaries
  // gain nothing by tailoring per-player lies to them. The t probes go
  // through one batched charge instead of t counter round-trips; the charge
  // total is unchanged (duplicate coordinates still pay, as before).
  Rng coords_rng(mix_keys(phase_key, 0x9ef1a7e4ULL));
  const std::size_t t = std::min(prefilter_probes, objects.size());
  std::vector<std::size_t> coords(t);
  std::vector<ObjectId> probe_objects(t);
  for (std::size_t s = 0; s < t; ++s) {
    coords[s] = coords_rng.below(objects.size());
    probe_objects[s] = objects[coords[s]];
  }
  std::vector<std::uint8_t> own_bits(t);
  env.own_probe_many(p, probe_objects, own_bits);
  out.probes += t;

  std::vector<std::pair<std::size_t, std::size_t>> scored;  // (disagreements, idx)
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::size_t miss = 0;
    for (std::size_t s = 0; s < t; ++s)
      if (candidates[i].get(coords[s]) != (own_bits[s] != 0)) ++miss;
    scored.emplace_back(miss, i);
  }
  std::stable_sort(scored.begin(), scored.end());

  std::vector<ConstBitRow> finalists;
  std::vector<std::size_t> finalist_ids;
  finalists.reserve(max_finalists);
  for (std::size_t i = 0; i < max_finalists; ++i) {
    finalists.push_back(candidates[scored[i].second]);
    finalist_ids.push_back(scored[i].second);
  }

  SelectOutcome inner = select_deterministic(p, finalists, objects, env,
                                             mix_keys(phase_key, 0xf1a1ULL),
                                             probes_per_pair, skip_below);
  out.chosen = finalist_ids[inner.chosen];
  out.probes += inner.probes;
  out.pairs_probed = inner.pairs_probed;
  return out;
}

SelectOutcome select_prefiltered(PlayerId p, std::span<const BitVector> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below) {
  return select_prefiltered(p, as_views(candidates), objects, env, phase_key,
                            probes_per_pair, prefilter_probes, max_finalists,
                            skip_below);
}

}  // namespace colscore
