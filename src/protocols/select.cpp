#include "src/protocols/select.hpp"

#include <algorithm>
#include <unordered_map>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

/// Shared implementation of the pairwise elimination tournament.
/// `deterministic` switches the probe-position sampling stream.
SelectOutcome run_tournament(PlayerId p, std::span<const BitVector> candidates,
                             std::span<const ObjectId> objects, ProtocolEnv& env,
                             std::uint64_t phase_key, std::size_t probes_per_pair,
                             std::size_t skip_below, bool deterministic) {
  CS_ASSERT(!candidates.empty(), "select: no candidates");
  for (const BitVector& c : candidates)
    CS_ASSERT(c.size() == objects.size(), "select: candidate/universe size mismatch");

  SelectOutcome out;
  const std::size_t k = candidates.size();
  if (k == 1) return out;

  std::vector<bool> alive(k, true);
  std::vector<std::size_t> wins(k, 0);
  // Players remember their own probe results within a protocol step, so each
  // distinct coordinate is charged at most once.
  std::unordered_map<std::size_t, bool> probed;

  auto own_bit = [&](std::size_t coord) {
    auto it = probed.find(coord);
    if (it != probed.end()) return it->second;
    const bool bit = env.own_probe(p, objects[coord]);
    ++out.probes;
    probed.emplace(coord, bit);
    return bit;
  };

  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (!alive[i]) break;
      if (!alive[j]) continue;
      const std::vector<std::size_t> diff = candidates[i].diff_positions(candidates[j]);
      if (diff.empty() || diff.size() <= skip_below) continue;

      Rng stream = deterministic
                       ? Rng(mix_keys(phase_key, candidates[i].content_hash(),
                                      candidates[j].content_hash()))
                       : env.local_rng(p, mix_keys(phase_key, i * 1315423911ULL + j));

      const std::size_t t = std::min(probes_per_pair, diff.size());
      std::size_t agree_i = 0;
      for (std::size_t s = 0; s < t; ++s) {
        const std::size_t coord = diff[stream.below(diff.size())];
        if (own_bit(coord) == candidates[i].get(coord)) ++agree_i;
      }
      ++out.pairs_probed;
      const std::size_t agree_j = t - agree_i;
      // Fig. 1: eliminate the candidate that loses a 2/3 supermajority.
      if (3 * agree_i >= 2 * t) {
        alive[j] = false;
        ++wins[i];
      } else if (3 * agree_j >= 2 * t) {
        alive[i] = false;
        ++wins[j];
      } else {
        // Close race: both survive (they are near-equidistant from v(p)).
        ++wins[agree_i >= agree_j ? i : j];
      }
    }
  }

  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    if (!found || wins[i] > wins[best]) {
      best = i;
      found = true;
    }
  }
  CS_ASSERT(found, "select: tournament eliminated every candidate");
  out.chosen = best;
  return out;
}

}  // namespace

SelectOutcome rselect(PlayerId p, std::span<const BitVector> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair) {
  return run_tournament(p, candidates, objects, env, phase_key, probes_per_pair,
                        /*skip_below=*/0, /*deterministic=*/false);
}

SelectOutcome select_deterministic(PlayerId p, std::span<const BitVector> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below) {
  return run_tournament(p, candidates, objects, env, phase_key, probes_per_pair,
                        skip_below, /*deterministic=*/true);
}

SelectOutcome select_prefiltered(PlayerId p, std::span<const BitVector> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below) {
  CS_ASSERT(!candidates.empty(), "select_prefiltered: no candidates");
  CS_ASSERT(max_finalists >= 1, "select_prefiltered: need at least one finalist");
  if (candidates.size() <= max_finalists) {
    return select_deterministic(p, candidates, objects, env, phase_key,
                                probes_per_pair, skip_below);
  }

  SelectOutcome out;
  // Shared prefilter coordinates: identical for every player so adversaries
  // gain nothing by tailoring per-player lies to them.
  Rng coords_rng(mix_keys(phase_key, 0x9ef1a7e4ULL));
  const std::size_t t = std::min(prefilter_probes, objects.size());
  std::vector<std::size_t> coords(t);
  std::vector<bool> own_bits(t);
  for (std::size_t s = 0; s < t; ++s) {
    coords[s] = coords_rng.below(objects.size());
    own_bits[s] = env.own_probe(p, objects[coords[s]]);
    ++out.probes;
  }

  std::vector<std::pair<std::size_t, std::size_t>> scored;  // (disagreements, idx)
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::size_t miss = 0;
    for (std::size_t s = 0; s < t; ++s)
      if (candidates[i].get(coords[s]) != own_bits[s]) ++miss;
    scored.emplace_back(miss, i);
  }
  std::stable_sort(scored.begin(), scored.end());

  std::vector<BitVector> finalists;
  std::vector<std::size_t> finalist_ids;
  finalists.reserve(max_finalists);
  for (std::size_t i = 0; i < max_finalists; ++i) {
    finalists.push_back(candidates[scored[i].second]);
    finalist_ids.push_back(scored[i].second);
  }

  SelectOutcome inner = select_deterministic(p, finalists, objects, env,
                                             mix_keys(phase_key, 0xf1a1ULL),
                                             probes_per_pair, skip_below);
  out.chosen = finalist_ids[inner.chosen];
  out.probes += inner.probes;
  out.pairs_probed = inner.pairs_probed;
  return out;
}

}  // namespace colscore
