#include "src/protocols/select.hpp"

#include <algorithm>
#include <bit>

#include "src/common/assert.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

namespace {

std::vector<ConstBitRow> as_views(std::span<const BitVector> candidates) {
  return std::vector<ConstBitRow>(candidates.begin(), candidates.end());
}

/// Stack-only tournament for one-word universes. SmallRadius runs millions
/// of selects over subsets of a handful of objects (the measured average is
/// ~3 bits, k ~ 3); at that size the workspace buffers of the general path
/// are pure overhead, so the probe memo is two uint64 planes in registers
/// and every per-pair list is a fixed stack array. Draw streams, probe
/// charges, and elimination order are identical to the general path.
constexpr std::size_t kSmallTournamentK = 16;

SelectOutcome run_tournament_small(PlayerId p, std::span<const ConstBitRow> candidates,
                                   std::span<const ObjectId> objects,
                                   ProtocolEnv& env, std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below, bool deterministic) {
  const std::size_t k = candidates.size();
  const std::size_t nbits = objects.size();
  SelectOutcome out;
  if (nbits == 0) return out;  // every pair identical: first candidate wins

  std::uint64_t probed = 0;  // coord memo planes (one word covers the universe)
  std::uint64_t value = 0;
  std::uint64_t cw[kSmallTournamentK];
  std::uint64_t hashes[kSmallTournamentK];
  std::uint8_t alive[kSmallTournamentK];
  std::uint32_t wins[kSmallTournamentK];
  for (std::size_t i = 0; i < k; ++i) {
    cw[i] = candidates[i].words()[0];
    alive[i] = 1;
    wins[i] = 0;
    if (deterministic) hashes[i] = candidates[i].content_hash();
  }

  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (!alive[i]) break;
      if (!alive[j]) continue;
      const std::uint64_t diffw = cw[i] ^ cw[j];
      // colscore-lint: allow(CL011) single-word universe: one popcount on a
      // register beats any kernel call (see kSmallTournamentK gate above)
      const auto cnt = static_cast<std::size_t>(std::popcount(diffw));
      if (cnt == 0 || cnt <= skip_below) continue;

      Rng stream = deterministic
                       ? Rng(mix_keys(phase_key, hashes[i], hashes[j]))
                       : env.local_rng(p, mix_keys(phase_key, i * 1315423911ULL + j));

      std::uint8_t pos[64];
      std::uint64_t rest = diffw;
      for (std::size_t d = 0; d < cnt; ++d) {
        pos[d] = static_cast<std::uint8_t>(std::countr_zero(rest));
        rest &= rest - 1;
      }

      const std::size_t t = std::min(probes_per_pair, cnt);
      std::uint8_t drawn[64];
      std::uint8_t batch_coords[64];
      ObjectId batch_objects[64];
      std::size_t batch = 0;
      for (std::size_t s = 0; s < t; ++s) {
        const std::uint8_t coord = pos[stream.below(cnt)];
        drawn[s] = coord;
        if (((probed >> coord) & 1) == 0) {
          probed |= 1ULL << coord;
          batch_coords[batch] = coord;
          batch_objects[batch++] = objects[coord];
        }
      }
      if (batch != 0) {
        std::uint64_t got = 0;
        env.own_probe_bits(p, {batch_objects, batch}, BitRow(&got, batch));
        out.probes += batch;
        for (std::size_t b = 0; b < batch; ++b)
          value |= ((got >> b) & 1ULL) << batch_coords[b];
      }

      std::size_t agree_i = 0;
      for (std::size_t s = 0; s < t; ++s)
        if (((value >> drawn[s]) & 1) == ((cw[i] >> drawn[s]) & 1)) ++agree_i;
      ++out.pairs_probed;
      const std::size_t agree_j = t - agree_i;
      if (3 * agree_i >= 2 * t) {
        alive[j] = 0;
        ++wins[i];
      } else if (3 * agree_j >= 2 * t) {
        alive[i] = 0;
        ++wins[j];
      } else {
        ++wins[agree_i >= agree_j ? i : j];
      }
    }
  }

  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    if (!found || wins[i] > wins[best]) {
      best = i;
      found = true;
    }
  }
  CS_ASSERT(found, "select: tournament eliminated every candidate");
  out.chosen = best;
  return out;
}

/// Shared implementation of the pairwise elimination tournament.
/// `deterministic` switches the probe-position sampling stream.
///
/// Scratch discipline: all buffers live in the per-thread RunWorkspace
/// (sel_* group) — the tournament runs millions of times per suite, so
/// per-call allocations were the dominant cost at scale. The per-coordinate
/// probe memo is a two-plane bit cache (probed?/value).
///
/// Probe batching: a pair's t coordinates are all drawn before any probe
/// (the draw stream never depends on probe results), so the uncached ones —
/// first occurrence each, exactly the coords the serial formulation charged
/// — go through one batched own_probe_bits charge instead of t round-trips.
SelectOutcome run_tournament(PlayerId p, std::span<const ConstBitRow> candidates,
                             std::span<const ObjectId> objects, ProtocolEnv& env,
                             std::uint64_t phase_key, std::size_t probes_per_pair,
                             std::size_t skip_below, bool deterministic) {
  CS_ASSERT(!candidates.empty(), "select: no candidates");
  for (const ConstBitRow& c : candidates)
    CS_ASSERT(c.size() == objects.size(), "select: candidate/universe size mismatch");

  SelectOutcome out;
  const std::size_t k = candidates.size();
  if (k == 1) return out;

  if (objects.size() <= 64 && k <= kSmallTournamentK)
    return run_tournament_small(p, candidates, objects, env, phase_key,
                                probes_per_pair, skip_below, deterministic);

  RunWorkspace& ws = env.workspace();
  const std::size_t words = bitkernel::word_count(objects.size());
  ws.sel_probed_words.assign(words, 0);
  ws.sel_value_words.assign(words, 0);
  BitRow probed(ws.sel_probed_words.data(), objects.size());
  BitRow value(ws.sel_value_words.data(), objects.size());
  ws.sel_alive.assign(k, 1);
  ws.sel_wins.assign(k, 0);
  auto& alive = ws.sel_alive;
  auto& wins = ws.sel_wins;
  auto& hashes = ws.sel_hashes;
  if (deterministic) {
    // Per-pair streams are keyed on candidate content hashes; hash each
    // candidate once instead of twice per pair.
    hashes.resize(k);
    for (std::size_t i = 0; i < k; ++i) hashes[i] = candidates[i].content_hash();
  }
  auto& diff = ws.sel_diff;
  auto& coords = ws.sel_coords;
  auto& batch_coords = ws.sel_batch_coords;
  auto& batch_objects = ws.sel_batch_objects;

  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (!alive[i]) break;
      if (!alive[j]) continue;
      // Word-parallel distance first: identical or skip_below-close pairs
      // (the common case once candidates converge) never materialize their
      // difference positions.
      if (!candidates[i].hamming_exceeds(candidates[j], skip_below)) continue;
      diff.clear();
      candidates[i].diff_positions_into(candidates[j], diff);

      Rng stream = deterministic
                       ? Rng(mix_keys(phase_key, hashes[i], hashes[j]))
                       : env.local_rng(p, mix_keys(phase_key, i * 1315423911ULL + j));

      const std::size_t t = std::min(probes_per_pair, diff.size());
      coords.resize(t);
      batch_coords.clear();
      batch_objects.clear();
      for (std::size_t s = 0; s < t; ++s) {
        const std::size_t coord = diff[stream.below(diff.size())];
        coords[s] = coord;
        if (!probed.get(coord)) {
          // Players remember their own probe results within a protocol step,
          // so each distinct coordinate is charged at most once.
          probed.set(coord, true);
          batch_coords.push_back(coord);
          batch_objects.push_back(objects[coord]);
        }
      }
      if (!batch_coords.empty()) {
        ws.sel_batch_words.assign(bitkernel::word_count(batch_coords.size()), 0);
        BitRow got(ws.sel_batch_words.data(), batch_coords.size());
        env.own_probe_bits(p, batch_objects, got);
        out.probes += batch_coords.size();
        for (std::size_t b = 0; b < batch_coords.size(); ++b)
          value.set(batch_coords[b], got.get(b));
      }

      std::size_t agree_i = 0;
      for (std::size_t s = 0; s < t; ++s)
        if (value.get(coords[s]) == candidates[i].get(coords[s])) ++agree_i;
      ++out.pairs_probed;
      const std::size_t agree_j = t - agree_i;
      // Fig. 1: eliminate the candidate that loses a 2/3 supermajority.
      if (3 * agree_i >= 2 * t) {
        alive[j] = 0;
        ++wins[i];
      } else if (3 * agree_j >= 2 * t) {
        alive[i] = 0;
        ++wins[j];
      } else {
        // Close race: both survive (they are near-equidistant from v(p)).
        ++wins[agree_i >= agree_j ? i : j];
      }
    }
  }

  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (!alive[i]) continue;
    if (!found || wins[i] > wins[best]) {
      best = i;
      found = true;
    }
  }
  CS_ASSERT(found, "select: tournament eliminated every candidate");
  out.chosen = best;
  return out;
}

}  // namespace

SelectOutcome rselect(PlayerId p, std::span<const ConstBitRow> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair) {
  return run_tournament(p, candidates, objects, env, phase_key, probes_per_pair,
                        /*skip_below=*/0, /*deterministic=*/false);
}

SelectOutcome rselect(PlayerId p, std::span<const BitVector> candidates,
                      std::span<const ObjectId> objects, ProtocolEnv& env,
                      std::uint64_t phase_key, std::size_t probes_per_pair) {
  return rselect(p, as_views(candidates), objects, env, phase_key, probes_per_pair);
}

SelectOutcome select_deterministic(PlayerId p, std::span<const ConstBitRow> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below) {
  return run_tournament(p, candidates, objects, env, phase_key, probes_per_pair,
                        skip_below, /*deterministic=*/true);
}

SelectOutcome select_deterministic(PlayerId p, std::span<const BitVector> candidates,
                                   std::span<const ObjectId> objects, ProtocolEnv& env,
                                   std::uint64_t phase_key,
                                   std::size_t probes_per_pair,
                                   std::size_t skip_below) {
  return select_deterministic(p, as_views(candidates), objects, env, phase_key,
                              probes_per_pair, skip_below);
}

SelectOutcome select_prefiltered(PlayerId p, std::span<const ConstBitRow> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below) {
  CS_ASSERT(!candidates.empty(), "select_prefiltered: no candidates");
  CS_ASSERT(max_finalists >= 1, "select_prefiltered: need at least one finalist");
  if (candidates.size() <= max_finalists) {
    return select_deterministic(p, candidates, objects, env, phase_key,
                                probes_per_pair, skip_below);
  }

  SelectOutcome out;
  // Shared prefilter coordinates: identical for every player so adversaries
  // gain nothing by tailoring per-player lies to them. The t probes go
  // through one batched charge instead of t counter round-trips; the charge
  // total is unchanged (duplicate coordinates still pay, as before).
  //
  // Scratch comes from the pf_* workspace group — disjoint from the sel_*
  // buffers the inner tournament uses, because the finalist list must stay
  // alive across that call.
  RunWorkspace& ws = env.workspace();
  Rng coords_rng(mix_keys(phase_key, 0x9ef1a7e4ULL));
  const std::size_t t = std::min(prefilter_probes, objects.size());
  auto& pf_coords = ws.pf_coords;
  auto& pf_objects = ws.pf_objects;
  pf_coords.resize(t);
  pf_objects.resize(t);
  for (std::size_t s = 0; s < t; ++s) {
    pf_coords[s] = coords_rng.below(objects.size());
    pf_objects[s] = objects[pf_coords[s]];
  }
  ws.pf_own_words.assign(bitkernel::word_count(t), 0);
  BitRow own_bits(ws.pf_own_words.data(), t);
  env.own_probe_bits(p, pf_objects, own_bits);
  out.probes += t;

  auto& scored = ws.pf_scored;  // (disagreements, idx)
  scored.clear();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::size_t miss = 0;
    for (std::size_t s = 0; s < t; ++s)
      if (candidates[i].get(pf_coords[s]) != own_bits.get(s)) ++miss;
    scored.emplace_back(miss, i);
  }
  std::stable_sort(scored.begin(), scored.end());

  auto& finalists = ws.pf_finalists;
  auto& finalist_ids = ws.pf_finalist_ids;
  finalists.clear();
  finalist_ids.clear();
  for (std::size_t i = 0; i < max_finalists; ++i) {
    finalists.push_back(candidates[scored[i].second]);
    finalist_ids.push_back(scored[i].second);
  }

  SelectOutcome inner = select_deterministic(p, finalists, objects, env,
                                             mix_keys(phase_key, 0xf1a1ULL),
                                             probes_per_pair, skip_below);
  out.chosen = finalist_ids[inner.chosen];
  out.probes += inner.probes;
  out.pairs_probed = inner.pairs_probed;
  return out;
}

SelectOutcome select_prefiltered(PlayerId p, std::span<const BitVector> candidates,
                                 std::span<const ObjectId> objects, ProtocolEnv& env,
                                 std::uint64_t phase_key, std::size_t probes_per_pair,
                                 std::size_t prefilter_probes,
                                 std::size_t max_finalists, std::size_t skip_below) {
  return select_prefiltered(p, as_views(candidates), objects, env, phase_key,
                            probes_per_pair, prefilter_probes, max_finalists,
                            skip_below);
}

}  // namespace colscore
