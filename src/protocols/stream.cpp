#include "src/protocols/stream.hpp"

namespace colscore {

StreamSession::StreamSession(std::span<const ConstBitRow> z,
                             std::size_t threshold, std::size_t min_cluster,
                             GraphBackend backend, const ExecPolicy& policy)
    : z_(z.begin(), z.end()),
      min_cluster_(min_cluster),
      graph_(z_, threshold, backend, policy) {
  clustering_ = cluster_players(graph_, min_cluster_);
}

StreamEpochStats StreamSession::apply_epoch(std::span<const RowUpdate> updates,
                                            const ExecPolicy& policy) {
  for (const RowUpdate& u : updates) {
    switch (u.kind) {
      case UpdateKind::kFlip: ++totals_.flips; break;
      case UpdateKind::kArrive: ++totals_.arrivals; break;
      case UpdateKind::kDepart: ++totals_.departures; break;
    }
  }

  const GraphDelta delta = graph_.apply_updates(updates, z_, policy);

  StreamEpochStats stats;
  stats.edges_added = delta.edges_added;
  stats.edges_removed = delta.edges_removed;
  stats.rebuilt = delta.rebuilt;
  // Epoch-amortized re-clustering: the peel is a pure function of the edge
  // set, so an epoch that changed no edge (flips too small to cross the
  // threshold, churn among already-isolated players) reuses the previous
  // clustering verbatim — provably identical to re-peeling. Any edge churn
  // (or a rebuild, whose churn counters are approximate) re-runs the peel,
  // seeded from the graph's incrementally-maintained degree cache.
  stats.reclustered = delta.dirty();
  if (stats.reclustered) {
    clustering_ = cluster_players(graph_, min_cluster_);
    ++totals_.reclusters;
  }

  ++totals_.epochs;
  totals_.edges_changed += delta.edges_changed();
  if (delta.rebuilt) ++totals_.rebuilds;
  return stats;
}

}  // namespace colscore
