#include "src/ext/scored.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace colscore {

ScoreMatrix::ScoreMatrix(std::size_t n_players, std::size_t n_objects,
                         std::uint8_t levels)
    : n_objects_(n_objects), rows_(n_players * n_objects), levels_(levels),
      scores_(rows_, 0) {
  CS_ASSERT(levels >= 2, "ScoreMatrix: need at least 2 levels");
}

std::uint8_t ScoreMatrix::score(PlayerId p, ObjectId o) const {
  CS_ASSERT(p * n_objects_ + o < scores_.size(), "score: out of range");
  return scores_[p * n_objects_ + o];
}

void ScoreMatrix::set_score(PlayerId p, ObjectId o, std::uint8_t s) {
  CS_ASSERT(s < levels_, "set_score: score exceeds levels");
  scores_[p * n_objects_ + o] = s;
}

std::size_t ScoreMatrix::l1_distance(PlayerId p, PlayerId q) const {
  std::size_t total = 0;
  for (ObjectId o = 0; o < n_objects_; ++o) {
    const int a = score(p, o);
    const int b = score(q, o);
    total += static_cast<std::size_t>(a > b ? a - b : b - a);
  }
  return total;
}

PreferenceMatrix ScoreMatrix::layer(std::uint8_t t) const {
  CS_ASSERT(t >= 1 && t < levels_, "layer: threshold out of range");
  PreferenceMatrix m(n_players(), n_objects_);
  for (PlayerId p = 0; p < n_players(); ++p)
    for (ObjectId o = 0; o < n_objects_; ++o)
      if (score(p, o) >= t) m.set(p, o, true);
  return m;
}

ScoredWorld planted_scored_clusters(std::size_t n_players, std::size_t n_objects,
                                    std::size_t n_clusters, std::uint8_t levels,
                                    std::size_t l1_diameter, Rng rng) {
  ScoredWorld w;
  w.scores = ScoreMatrix(n_players, n_objects, levels);
  w.cluster_of.assign(n_players, kNoCluster);
  w.planted_l1_diameter = l1_diameter;

  const std::size_t per_cluster = n_players / n_clusters;
  PlayerId next = 0;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    std::vector<std::uint8_t> center(n_objects);
    for (auto& s : center) s = static_cast<std::uint8_t>(rng.below(levels));
    const std::size_t size =
        c + 1 == n_clusters ? n_players - next : per_cluster;
    for (std::size_t i = 0; i < size; ++i, ++next) {
      w.cluster_of[next] = static_cast<std::uint32_t>(c);
      std::vector<std::uint8_t> row = center;
      // Spend up to l1_diameter/2 mass on +/-1 perturbations.
      std::size_t mass = rng.below(l1_diameter / 2 + 1);
      while (mass > 0) {
        const auto o = static_cast<ObjectId>(rng.below(n_objects));
        const bool up = rng.chance(0.5);
        if (up && row[o] + 1 < levels) {
          ++row[o];
          --mass;
        } else if (!up && row[o] > 0) {
          --row[o];
          --mass;
        } else {
          --mass;  // saturated direction: forfeit the unit to stay bounded
        }
      }
      for (ObjectId o = 0; o < n_objects; ++o) w.scores.set_score(next, o, row[o]);
    }
  }
  return w;
}

ScoredResult scored_calculate_preferences(const ScoredWorld& world,
                                          const Population& population,
                                          const Params& params, std::uint64_t seed,
                                          const ExecPolicy& policy) {
  const std::size_t n = world.scores.n_players();
  const std::size_t n_objects = world.scores.n_objects();
  const std::uint8_t levels = world.scores.levels();

  ScoredResult result;
  result.outputs.assign(n, std::vector<std::uint8_t>(n_objects, 0));
  std::vector<std::uint64_t> probes(n, 0);

  for (std::uint8_t t = 1; t < levels; ++t) {
    const PreferenceMatrix layer = world.scores.layer(t);
    ProbeOracle oracle(layer);
    oracle.bind_policy(policy);
    BulletinBoard board;
    HonestBeacon beacon(mix_keys(seed, 0xbeacULL, t));
    ProtocolEnv env(oracle, board, population, beacon, mix_keys(seed, 0x10ca1ULL),
                    policy);
    const ProtocolResult layer_result =
        calculate_preferences(env, params, mix_keys(seed, 0x1a4e8ULL, t));
    for (PlayerId p = 0; p < n; ++p) {
      for (ObjectId o = 0; o < n_objects; ++o)
        if (layer_result.outputs[p].get(o))
          ++result.outputs[p][o];  // layers sum back to the score
      probes[p] += layer_result.probes_by_player[p];
    }
  }

  for (PlayerId p = 0; p < n; ++p) {
    result.total_probes += probes[p];
    result.max_probes = std::max(result.max_probes, probes[p]);
  }
  return result;
}

std::size_t scored_max_error(const ScoredWorld& world, const Population& population,
                             const ScoredResult& result) {
  std::size_t worst = 0;
  for (PlayerId p = 0; p < world.scores.n_players(); ++p) {
    if (!population.is_honest(p)) continue;
    std::size_t err = 0;
    for (ObjectId o = 0; o < world.scores.n_objects(); ++o) {
      const int a = world.scores.score(p, o);
      const int b = result.outputs[p][o];
      err += static_cast<std::size_t>(a > b ? a - b : b - a);
    }
    worst = std::max(worst, err);
  }
  return worst;
}

}  // namespace colscore
