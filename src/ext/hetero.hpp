// §8 extension: heterogeneous budgets.
//
// Some players accept a large probing budget B_big, others only B_small. The
// paper sketches the fix: clusters must contain enough *aggregate* budget
// rather than enough members. We implement the two changed pieces:
//   * budget-weighted vote assignment — a member is chosen to probe an
//     object with probability proportional to its budget, so each player's
//     expected probe load is proportional to what it signed up for;
//   * an aggregate-budget check for clusters (callers form clusters with the
//     standard pipeline and verify coverage with cluster_budget_ok).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/protocols/env.hpp"
#include "src/protocols/work_share.hpp"

namespace colscore {

/// Budget-weighted voting phase. `budgets[i]` is the budget of members[i]
/// (relative weights only; scale does not matter).
BitVector weighted_cluster_votes(std::span<const PlayerId> members,
                                 std::span<const std::size_t> budgets,
                                 ProtocolEnv& env, std::uint64_t phase_key,
                                 const WorkShareParams& params,
                                 WorkShareStats* stats = nullptr);

/// §8 criterion: the cluster can cover all objects with `votes_per_object`
/// redundancy iff the aggregate budget (sum of member budgets) is at least
/// n_objects * votes_per_object.
bool cluster_budget_ok(std::span<const std::size_t> budgets, std::size_t n_objects,
                       std::size_t votes_per_object);

}  // namespace colscore
