#include "src/ext/hetero.hpp"

#include <atomic>
#include <numeric>

#include "src/common/assert.hpp"

namespace colscore {

BitVector weighted_cluster_votes(std::span<const PlayerId> members,
                                 std::span<const std::size_t> budgets,
                                 ProtocolEnv& env, std::uint64_t phase_key,
                                 const WorkShareParams& params,
                                 WorkShareStats* stats) {
  CS_ASSERT(!members.empty(), "weighted_cluster_votes: empty cluster");
  CS_ASSERT(members.size() == budgets.size(), "weighted_cluster_votes: size mismatch");
  const std::size_t n_objects = env.n_objects();

  // Prefix sums for weighted sampling.
  std::vector<std::uint64_t> prefix(budgets.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    total += std::max<std::size_t>(budgets[i], 1);
    prefix[i] = total;
  }

  std::vector<std::uint8_t> verdicts(n_objects, 0);
  std::atomic<std::uint64_t> reports{0};
  std::atomic<std::uint64_t> ties{0};

  env.par_for(0, n_objects, [&](std::size_t o) {
    const auto object = static_cast<ObjectId>(o);
    Rng assign = env.shared_rng(mix_keys(phase_key, 0x3e1ULL, object));
    const ReportContext ctx{Phase::kVote, phase_key};
    std::size_t ones = 0;
    for (std::size_t v = 0; v < params.votes_per_object; ++v) {
      const std::uint64_t pick = assign.below(total);
      const std::size_t idx = static_cast<std::size_t>(
          std::upper_bound(prefix.begin(), prefix.end(), pick) - prefix.begin());
      const PlayerId voter = members[idx];
      Rng vote_rng = env.local_rng(voter, mix_keys(phase_key, object, v));
      const bool report =
          env.population.report_of(voter, object, env.oracle, ctx, vote_rng);
      env.board.post_report(phase_key, voter, object, report);
      if (report) ++ones;
    }
    reports.fetch_add(params.votes_per_object, std::memory_order_relaxed);
    const std::size_t zeros = params.votes_per_object - ones;
    bool verdict;
    if (ones > zeros) {
      verdict = true;
    } else if (zeros > ones) {
      verdict = false;
    } else {
      verdict = (assign() & 1) != 0;
      ties.fetch_add(1, std::memory_order_relaxed);
    }
    verdicts[o] = verdict ? 1 : 0;
  });

  BitVector prediction(n_objects);
  for (std::size_t o = 0; o < n_objects; ++o) prediction.set(o, verdicts[o] != 0);
  if (stats != nullptr) {
    stats->reports += reports.load();
    stats->ties += ties.load();
  }
  return prediction;
}

bool cluster_budget_ok(std::span<const std::size_t> budgets, std::size_t n_objects,
                       std::size_t votes_per_object) {
  const std::uint64_t total =
      std::accumulate(budgets.begin(), budgets.end(), std::uint64_t{0});
  return total >= static_cast<std::uint64_t>(n_objects) * votes_per_object;
}

}  // namespace colscore
