// §8 extension: non-binary preferences.
//
// Players rate objects on a scale 0..R-1 and similarity is L1 distance. We
// use the classic threshold decomposition: score s decomposes into R-1
// binary layers (layer t = [s >= t]); the L1 distance between two score
// vectors equals the sum of layer-wise Hamming distances, so running the
// binary protocol per layer and re-summing the layers preserves the O(D)
// error guarantee with a factor (R-1) budget overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/calculate_preferences.hpp"
#include "src/model/generators.hpp"

namespace colscore {

/// Dense matrix of scores in [0, levels).
class ScoreMatrix {
 public:
  ScoreMatrix() = default;
  ScoreMatrix(std::size_t n_players, std::size_t n_objects, std::uint8_t levels);

  std::size_t n_players() const { return rows_ / std::max<std::size_t>(1, n_objects_); }
  std::size_t n_objects() const { return n_objects_; }
  std::uint8_t levels() const { return levels_; }

  std::uint8_t score(PlayerId p, ObjectId o) const;
  void set_score(PlayerId p, ObjectId o, std::uint8_t score);

  /// L1 distance between two players' score vectors.
  std::size_t l1_distance(PlayerId p, PlayerId q) const;

  /// Binary layer t (1 <= t < levels): bit = [score >= t].
  PreferenceMatrix layer(std::uint8_t t) const;

 private:
  std::size_t n_objects_ = 0;
  std::size_t rows_ = 0;  // n_players * n_objects
  std::uint8_t levels_ = 2;
  std::vector<std::uint8_t> scores_;
};

struct ScoredWorld {
  ScoreMatrix scores;
  std::vector<std::uint32_t> cluster_of;
  std::size_t planted_l1_diameter = 0;
};

/// Clustered score matrix: members of a cluster deviate from the center by
/// at most `l1_diameter/2` total L1 mass.
ScoredWorld planted_scored_clusters(std::size_t n_players, std::size_t n_objects,
                                    std::size_t n_clusters, std::uint8_t levels,
                                    std::size_t l1_diameter, Rng rng);

struct ScoredResult {
  /// outputs[p][o] = predicted score.
  std::vector<std::vector<std::uint8_t>> outputs;
  std::uint64_t total_probes = 0;
  std::uint64_t max_probes = 0;
};

/// Runs the binary protocol once per threshold layer and re-sums. Each
/// binary probe of layer t reveals [v(p)_o >= t]; we charge one probe per
/// layer query, matching the decomposition's (R-1)x budget overhead.
/// Every per-layer ProtocolEnv runs under `policy`.
ScoredResult scored_calculate_preferences(
    const ScoredWorld& world, const Population& population, const Params& params,
    std::uint64_t seed, const ExecPolicy& policy = ExecPolicy::process_default());

/// Max L1 error over the honest players.
std::size_t scored_max_error(const ScoredWorld& world, const Population& population,
                             const ScoredResult& result);

}  // namespace colscore
