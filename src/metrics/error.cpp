#include "src/metrics/error.hpp"

#include "src/common/assert.hpp"

namespace colscore {

std::vector<std::size_t> hamming_errors(const PreferenceMatrix& truth,
                                        std::span<const BitVector> outputs,
                                        std::span<const PlayerId> players,
                                        const ExecPolicy& policy) {
  std::vector<std::size_t> errors(players.size(), 0);
  policy.par_for(0, players.size(), [&](std::size_t i) {
    const PlayerId p = players[i];
    CS_ASSERT(p < outputs.size(), "hamming_errors: missing output");
    errors[i] = truth.row(p).hamming(outputs[p]);
  });
  return errors;
}

ErrorStats error_stats(const PreferenceMatrix& truth,
                       std::span<const BitVector> outputs,
                       std::span<const PlayerId> players,
                       const ExecPolicy& policy) {
  const auto errors = hamming_errors(truth, outputs, players, policy);
  ErrorStats stats;
  stats.summary = summarize(std::span<const std::size_t>(errors));
  stats.max_error = static_cast<std::size_t>(stats.summary.max);
  stats.mean_error = stats.summary.mean;
  return stats;
}

}  // namespace colscore
