// Empirical estimate of the Definition 1 optimum.
//
// For player p, D_opt(p) = min diameter over sets of >= n/B players
// containing p. Computing it exactly is infeasible, but the radius
//   r(p) = distance from p to its (n/B - 1)-th nearest player
// brackets it:  r(p) <= D_opt(p) <= 2 r(p)   (triangle inequality in the
// Hamming metric). Experiments report error / max(1, r(p)) ratios against
// this bracket.
#pragma once

#include <vector>

#include "src/common/exec_policy.hpp"
#include "src/common/stats.hpp"
#include "src/model/preference_matrix.hpp"

namespace colscore {

struct OptEstimate {
  /// radius[p] = (group_size - 1)-th smallest distance from p to others.
  std::vector<std::size_t> radius;
  std::size_t max_radius = 0;
  double mean_radius = 0.0;
};

/// O(n^2) distance computation, parallelized under `policy`. `group_size` = n/B.
OptEstimate opt_radius(const PreferenceMatrix& truth, std::size_t group_size,
                       const ExecPolicy& policy = ExecPolicy::process_default());

/// Max over players of error[p] / max(1, radius[p]); the constant-factor
/// optimality claim (Theorem 14) predicts this stays bounded.
double worst_approx_ratio(const std::vector<std::size_t>& errors,
                          const std::vector<PlayerId>& players,
                          const OptEstimate& opt);

}  // namespace colscore
