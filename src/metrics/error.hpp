// Error accounting: Hamming distance between predicted and true preference
// vectors, reported over honest players only (§3: the rate of error is the
// maximum such distance; dishonest players' outputs are meaningless).
#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/stats.hpp"
#include "src/model/preference_matrix.hpp"

namespace colscore {

/// errors[i] = |w(players[i]) - v(players[i])|.
std::vector<std::size_t> hamming_errors(
    const PreferenceMatrix& truth, std::span<const BitVector> outputs,
    std::span<const PlayerId> players,
    const ExecPolicy& policy = ExecPolicy::process_default());

struct ErrorStats {
  std::size_t max_error = 0;
  double mean_error = 0.0;
  Summary summary;
};

ErrorStats error_stats(
    const PreferenceMatrix& truth, std::span<const BitVector> outputs,
    std::span<const PlayerId> players,
    const ExecPolicy& policy = ExecPolicy::process_default());

}  // namespace colscore
