#include "src/metrics/optimal.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace colscore {

OptEstimate opt_radius(const PreferenceMatrix& truth, std::size_t group_size,
                       const ExecPolicy& policy) {
  const std::size_t n = truth.n_players();
  CS_ASSERT(group_size >= 1 && group_size <= n, "opt_radius: bad group size");
  OptEstimate est;
  est.radius.assign(n, 0);

  policy.par_for(0, n, [&](std::size_t p) {
    std::vector<std::size_t> dists;
    dists.reserve(n - 1);
    for (PlayerId q = 0; q < n; ++q) {
      if (q == p) continue;
      dists.push_back(truth.distance(static_cast<PlayerId>(p), q));
    }
    const std::size_t k = group_size >= 2 ? group_size - 2 : 0;  // index of the
    // (group_size-1)-th nearest other player
    std::nth_element(dists.begin(), dists.begin() + static_cast<long>(k), dists.end());
    est.radius[p] = dists[k];
  });

  double total = 0;
  for (std::size_t r : est.radius) {
    est.max_radius = std::max(est.max_radius, r);
    total += static_cast<double>(r);
  }
  est.mean_radius = total / static_cast<double>(n);
  return est;
}

double worst_approx_ratio(const std::vector<std::size_t>& errors,
                          const std::vector<PlayerId>& players,
                          const OptEstimate& opt) {
  CS_ASSERT(errors.size() == players.size(), "worst_approx_ratio: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    const double denom =
        std::max<double>(1.0, static_cast<double>(opt.radius[players[i]]));
    worst = std::max(worst, static_cast<double>(errors[i]) / denom);
  }
  return worst;
}

}  // namespace colscore
