// Comparators for the evaluation (DESIGN §4, experiments T1/T2).
//
//  * probe_all       — the trivial B = n algorithm: every player probes
//                      every object. Zero error, maximal probes.
//  * random_guess    — zero probes, ~n/2 error; the other degenerate corner.
//  * oracle_clusters — a genie that knows the planted clusters and only runs
//                      the redundant-voting phase inside them. This is the
//                      OPT reference: no real algorithm can beat its shape.
//  * sample_and_share— reconstruction of Alon-Awerbuch-Azar-Patt-Shamir
//                      [2,3] as characterized by the paper: Θ(B² polylog n)
//                      probes, B-factor (not constant) approximation, no
//                      Byzantine tolerance. Every player probes one public
//                      sample of size ~B² log n, picks the n/B sample-nearest
//                      players (a *star* neighbourhood, diameter up to
//                      B·OPT on chained preference structures), then adopts
//                      majority votes from that group's published random
//                      slices of the universe.
#pragma once

#include "src/core/result.hpp"
#include "src/model/generators.hpp"
#include "src/protocols/env.hpp"

namespace colscore {

/// Every player probes every object (honest players pay n probes).
ProtocolResult probe_all(ProtocolEnv& env);

/// No probes; uniform random outputs.
ProtocolResult random_guess(ProtocolEnv& env, std::uint64_t seed);

struct OracleClustersParams {
  std::size_t votes_per_object = 8;
};

/// Genie baseline: shares work inside the *true* planted clusters.
/// Background (cluster-less) players probe everything themselves.
ProtocolResult oracle_clusters(ProtocolEnv& env, const World& world,
                               const OracleClustersParams& params = {});

struct SampleShareParams {
  std::size_t budget = 8;          // B
  /// Public sample size = min(n_objects, sample_c * B^2 * log2 n).
  double sample_c = 1.0;
  /// Per-player random slice size = slice_c * B * log2 n.
  double slice_c = 1.0;
  /// Group size = n / B (the star neighbourhood).
  std::uint64_t seed = 0x5a3b1eULL;  // public coins (assumed honest-random)
};

struct SampleShareResult {
  ProtocolResult result;
  std::size_t uncovered_objects = 0;  // object-player pairs with no report
};

/// The [2,3]-style baseline. Not Byzantine-tolerant by design.
SampleShareResult sample_and_share(ProtocolEnv& env, const SampleShareParams& params);

}  // namespace colscore
