#include "src/baseline/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/assert.hpp"
#include "src/common/mathutil.hpp"
#include "src/protocols/work_share.hpp"

namespace colscore {

namespace {

std::vector<std::uint64_t> probe_snapshot(const ProbeOracle& oracle) {
  std::vector<std::uint64_t> counts(oracle.n_players());
  for (PlayerId p = 0; p < counts.size(); ++p) counts[p] = oracle.probes_by(p);
  return counts;
}

void fill_probe_deltas(ProtocolResult& result, const ProbeOracle& oracle,
                       const std::vector<std::uint64_t>& before) {
  result.probes_by_player.assign(before.size(), 0);
  result.total_probes = 0;
  result.max_probes = 0;
  for (PlayerId p = 0; p < before.size(); ++p) {
    const std::uint64_t delta = oracle.probes_by(p) - before[p];
    result.probes_by_player[p] = delta;
    result.total_probes += delta;
    result.max_probes = std::max(result.max_probes, delta);
  }
}

}  // namespace

ProtocolResult probe_all(ProtocolEnv& env) {
  const std::size_t n = env.n_players();
  const std::size_t n_objects = env.n_objects();
  ProtocolResult result;
  const auto before = probe_snapshot(env.oracle);
  result.outputs.assign(n, BitVector(n_objects));
  env.par_for(0, n, [&](std::size_t p) {
    env.own_probe_row(static_cast<PlayerId>(p), 0, n_objects, result.outputs[p]);
  });
  fill_probe_deltas(result, env.oracle, before);
  return result;
}

ProtocolResult random_guess(ProtocolEnv& env, std::uint64_t seed) {
  const std::size_t n = env.n_players();
  ProtocolResult result;
  result.outputs.reserve(n);
  for (PlayerId p = 0; p < n; ++p) {
    Rng rng(mix_keys(seed, p));
    result.outputs.push_back(random_bitvector(env.n_objects(), rng));
  }
  result.probes_by_player.assign(n, 0);
  return result;
}

ProtocolResult oracle_clusters(ProtocolEnv& env, const World& world,
                               const OracleClustersParams& params) {
  const std::size_t n = env.n_players();
  const std::size_t n_objects = env.n_objects();
  CS_ASSERT(world.n_players() == n, "oracle_clusters: world/oracle mismatch");
  ProtocolResult result;
  const auto before = probe_snapshot(env.oracle);
  result.outputs.assign(n, BitVector(n_objects));

  WorkShareParams ws;
  ws.votes_per_object = params.votes_per_object;
  for (std::uint32_t c = 0; c < world.n_clusters; ++c) {
    const std::vector<PlayerId> members = world.cluster_members(c);
    if (members.empty()) continue;
    const BitVector prediction =
        cluster_votes(members, env, mix_keys(0x09ac1eULL, c), ws);
    for (PlayerId p : members) result.outputs[p] = prediction;
  }
  // Background players get no collaboration: they probe everything.
  env.par_for(0, n, [&](std::size_t p) {
    if (world.cluster_of[p] != kNoCluster) return;
    env.own_probe_row(static_cast<PlayerId>(p), 0, n_objects, result.outputs[p]);
  });

  fill_probe_deltas(result, env.oracle, before);
  return result;
}

SampleShareResult sample_and_share(ProtocolEnv& env, const SampleShareParams& params) {
  const std::size_t n = env.n_players();
  const std::size_t n_objects = env.n_objects();
  const std::size_t log2n = log2_ceil(n);
  CS_ASSERT(params.budget >= 1, "sample_and_share: budget >= 1");

  SampleShareResult out;
  ProtocolResult& result = out.result;
  const auto before = probe_snapshot(env.oracle);

  // ---- public sample T (size ~ B^2 log n) --------------------------------
  const std::size_t t_size = std::min<std::size_t>(
      n_objects, ceil_size(params.sample_c *
                           static_cast<double>(params.budget * params.budget) *
                           static_cast<double>(log2n)));
  Rng coins(params.seed);
  std::vector<ObjectId> universe(n_objects);
  std::iota(universe.begin(), universe.end(), 0);
  for (std::size_t i = 0; i < t_size; ++i) {
    const std::size_t j = i + coins.below(n_objects - i);
    std::swap(universe[i], universe[j]);
  }
  const std::span<const ObjectId> sample(universe.data(), t_size);

  // ---- phase 1: everyone answers the sample ------------------------------
  const std::uint64_t sample_channel = mix_keys(params.seed, 0x5a3ULL);
  std::vector<BitVector> answers(n, BitVector(t_size));
  for (PlayerId p = 0; p < n; ++p) {
    const ReportContext ctx{Phase::kSample, sample_channel};
    if (env.population.is_honest(p)) {
      // The sample slate is known up front: one batched charge of t_size
      // probes, bit-identical to probing sample[i] one at a time.
      env.oracle.probe_gather(p, sample, answers[p]);
    } else {
      Rng prng = env.local_rng(p, sample_channel);
      for (std::size_t i = 0; i < t_size; ++i)
        answers[p].set(i, env.population.behavior(p).report(
                              p, sample[i],
                              env.oracle.adversary_peek(p, sample[i]), ctx, prng));
    }
    env.board.post_vector(sample_channel, p, answers[p]);
  }

  // ---- phase 2: everyone publishes a random slice of the universe --------
  const std::size_t slice = std::min<std::size_t>(
      n_objects, ceil_size(params.slice_c * static_cast<double>(params.budget) *
                           static_cast<double>(log2n)));
  const std::uint64_t slice_channel = mix_keys(params.seed, 0x51cULL);
  struct SliceReport {
    PlayerId author;
    bool value;
  };
  std::vector<std::vector<SliceReport>> by_object(n_objects);
  for (PlayerId p = 0; p < n; ++p) {
    Rng assign(mix_keys(params.seed, 0xa551ULL, p));
    const ReportContext ctx{Phase::kVote, slice_channel};
    Rng prng = env.local_rng(p, slice_channel);
    for (std::size_t i = 0; i < slice; ++i) {
      const auto o = static_cast<ObjectId>(assign.below(n_objects));
      const bool bit = env.population.report_of(p, o, env.oracle, ctx, prng);
      env.board.post_report(slice_channel, p, o, bit);
      by_object[o].push_back(SliceReport{p, bit});
    }
  }

  // ---- per-player adoption: n/B sample-nearest star, object majority ------
  const std::size_t group_size = std::max<std::size_t>(2, n / params.budget);
  result.outputs.assign(n, BitVector(n_objects));
  std::vector<std::size_t> uncovered(n, 0);
  env.par_for(0, n, [&](std::size_t p) {
    // Rank everyone by sample distance to p's own answers.
    std::vector<std::pair<std::size_t, PlayerId>> ranked;
    ranked.reserve(n);
    for (PlayerId q = 0; q < n; ++q)
      ranked.emplace_back(answers[p].hamming(answers[q]), q);
    std::nth_element(ranked.begin(), ranked.begin() + static_cast<long>(group_size - 1),
                     ranked.end());
    BitVector member(n);
    for (std::size_t i = 0; i < group_size; ++i) member.set(ranked[i].second, true);

    BitVector& row = result.outputs[p];
    for (ObjectId o = 0; o < n_objects; ++o) {
      std::size_t ones = 0, zeros = 0;
      for (const SliceReport& r : by_object[o])
        if (member.get(r.author)) (r.value ? ones : zeros)++;
      if (ones + zeros == 0) {
        ++uncovered[p];
        // Fall back to the global majority; failing that, 0.
        for (const SliceReport& r : by_object[o]) (r.value ? ones : zeros)++;
      }
      row.set(o, ones > zeros);
    }
  });
  for (std::size_t u : uncovered) out.uncovered_objects += u;

  fill_probe_deltas(result, env.oracle, before);
  return out;
}

}  // namespace colscore
