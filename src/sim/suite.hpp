// SuiteRunner: grid expansion + parallel, deterministic scenario execution.
//
// A grid like "n=256,512 x adversary=hijacker,sleeper" expands (cartesian
// product, last axis fastest) into a list of ScenarioSpecs over a base spec.
// The runner resolves every spec up front, derives a per-run seed from the
// run *index* (mix_keys-style — never from thread identity or completion
// order), and executes the runs on a thread pool. Results stream through an
// optional callback in run-index order, so a parallel suite produces output
// byte-identical to a serial one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/registry.hpp"

namespace colscore {

// ---- grid sweeps ------------------------------------------------------------

/// One sweep axis: an override key (or workload/adversary/algorithm) and the
/// values it takes.
struct GridAxis {
  std::string key;
  std::vector<std::string> values;

  bool operator==(const GridAxis&) const = default;
};

/// Parses "n=256,512 x adversary=hijacker,sleeper" — whitespace-separated
/// `key=v1,v2,...` tokens, optionally separated by a literal `x`. Throws
/// ScenarioError on malformed tokens, empty value lists, or repeated keys.
std::vector<GridAxis> parse_grid(std::string_view text);

/// Cartesian product of the axes over `base` (later axes vary fastest).
/// An empty axis list yields just `base`.
std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<GridAxis>& axes);

/// Removes a `reps=K` replication axis from `axes` if present and returns K
/// (1 when absent). `reps` in a grid is a suite-level axis — every expanded
/// cell runs K times with distinct mix_keys-derived seeds and rep ids
/// 0..K-1 — not a scenario override (the robust algorithm's outer
/// repetitions stay reachable as a base-spec override: --reps / --set
/// reps=R). Throws ScenarioError unless K is a single positive integer.
std::size_t take_reps_axis(std::vector<GridAxis>& axes);

// ---- the runner -------------------------------------------------------------

struct SuiteRun {
  std::size_t index = 0;   // position in the expanded run list (rep-fastest)
  std::size_t rep = 0;     // replication id, 0..reps-1
  ScenarioSpec spec;       // as expanded (before seed derivation)
  Scenario scenario;       // resolved config the run actually executed
  ExperimentOutcome outcome;
};

struct SuiteOptions {
  /// Worker threads for the suite loop. 0 = the global pool (one thread per
  /// hardware thread); 1 = fully serial in the calling thread.
  std::size_t threads = 0;
  /// Multi-seed replication: every spec expands into `reps` runs (rep ids
  /// vary fastest) whose seeds derive from the distinct flat run indices.
  /// Grid sweeps set this with a `reps=K` axis. Requires derive_seeds —
  /// with raw seeds the k replicas would be identical runs.
  std::size_t reps = 1;
  /// Per-run seeds are mix_keys(seed_salt, index, spec seed): deterministic,
  /// schedule-independent, and distinct across grid cells even when the
  /// cells' specs share a seed. Set derive_seeds=false to run each spec's
  /// seed untouched (single runs, reproduction of a specific cell).
  std::uint64_t seed_salt = 0x5c3a01u;
  bool derive_seeds = true;
  /// Invoked once per completed run, always in run-index order (a run's
  /// callback fires as soon as it and every earlier run have finished).
  std::function<void(const SuiteRun&)> on_result;
};

class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteOptions options = {});

  /// Runs every spec; returns results indexed like `specs`. Resolution
  /// errors (unknown names/keys) throw before any run starts.
  std::vector<SuiteRun> run(const std::vector<ScenarioSpec>& specs) const;

  /// Convenience: parse_grid + expand_grid + run.
  std::vector<SuiteRun> run_grid(const ScenarioSpec& base,
                                 std::string_view grid) const;

 private:
  SuiteOptions options_;
};

// ---- CSV --------------------------------------------------------------------

/// The default (historical) column selection — a shim over
/// default_columns() in src/sim/record.hpp, kept for the CSV-shaped callers.
/// Wall time is excluded by default so suite outputs are bit-for-bit
/// reproducible; the `rep` column (after `seed`) is opt-in so single-run
/// CSVs keep their historical shape.
std::vector<std::string> suite_csv_columns(bool include_wall = false,
                                           bool include_rep = false);

/// The default-column cells for `run`, rendered through the typed schema
/// layer (make_run_record + RunRecord::cell_text — the one formatting path
/// every text sink shares). Byte-identical to the historical stringly
/// output; the determinism goldens pin it.
std::vector<std::string> suite_row_cells(const SuiteRun& run,
                                         bool include_wall = false,
                                         bool include_rep = false);

/// Appends one row for `run` (column order matches suite_csv_columns).
void suite_csv_row(CsvWriter& writer, const SuiteRun& run,
                   bool include_wall = false, bool include_rep = false);

}  // namespace colscore
