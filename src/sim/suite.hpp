// SuiteRunner: grid expansion + parallel, deterministic scenario execution.
//
// A grid like "n=256,512 x adversary=hijacker,sleeper" expands (cartesian
// product, last axis fastest) into a list of ScenarioSpecs over a base spec.
// The runner resolves every spec up front, derives a per-run seed from the
// run *index* (mix_keys-style — never from thread identity or completion
// order), and executes the runs on a thread pool. Results stream through an
// optional callback in run-index order, so a parallel suite produces output
// byte-identical to a serial one.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/registry.hpp"

namespace colscore {

class FaultPlan;  // fault.hpp

// ---- grid sweeps ------------------------------------------------------------

/// One sweep axis: an override key (or workload/adversary/algorithm) and the
/// values it takes.
struct GridAxis {
  std::string key;
  std::vector<std::string> values;

  bool operator==(const GridAxis&) const = default;
};

/// Parses "n=256,512 x adversary=hijacker,sleeper" — whitespace-separated
/// `key=v1,v2,...` tokens, optionally separated by a literal `x`. Throws
/// ScenarioError on malformed tokens, empty value lists, or repeated keys.
std::vector<GridAxis> parse_grid(std::string_view text);

/// Cartesian product of the axes over `base` (later axes vary fastest).
/// An empty axis list yields just `base`.
std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<GridAxis>& axes);

/// Removes a `reps=K` replication axis from `axes` if present and returns K
/// (1 when absent). `reps` in a grid is a suite-level axis — every expanded
/// cell runs K times with distinct mix_keys-derived seeds and rep ids
/// 0..K-1 — not a scenario override (the robust algorithm's outer
/// repetitions stay reachable as a base-spec override: --reps / --set
/// reps=R). Throws ScenarioError unless K is a single positive integer.
std::size_t take_reps_axis(std::vector<GridAxis>& axes);

// ---- the runner -------------------------------------------------------------

/// How a run ended. kOk rows carry the full outcome; kFailed/kTimeout rows
/// carry only identity columns plus the error text (graceful degradation —
/// the suite keeps going and the exit path reports the failure count);
/// kSkipped marks runs this invocation never executed (outside the shard, or
/// already complete in a resumed artifact).
enum class RunStatus { kOk, kFailed, kTimeout, kSkipped };

/// "ok", "failed", "timeout", "skipped" — the status column's cell text.
const char* run_status_name(RunStatus status);

struct SuiteRun {
  std::size_t index = 0;   // position in the expanded run list (rep-fastest)
  std::size_t rep = 0;     // replication id, 0..reps-1
  ScenarioSpec spec;       // as expanded (before seed derivation)
  Scenario scenario;       // resolved config the run actually executed
  ExperimentOutcome outcome;
  RunStatus status = RunStatus::kOk;
  /// Last attempt's error for kFailed/kTimeout (empty otherwise). May embed
  /// wall-clock text; failure rows are for triage/resume, not goldens.
  std::string error;
  /// Attempts executed (1 = first try succeeded; 0 = never ran).
  std::size_t attempts = 0;
};

struct SuiteOptions {
  /// Worker threads for the suite loop. 0 = the process-default policy (the
  /// global pool, one thread per hardware thread); 1 = fully serial in the
  /// calling thread. Ignored when `policy` is set.
  std::size_t threads = 0;
  /// Explicit execution policy for the suite loop and every run under it
  /// (overrides `threads`). Not owned; must outlive execute(). This is the
  /// seam concurrent suites plug into: two runners on disjoint
  /// ExecPolicy::pool(...) instances share no pool and no workspace arena,
  /// so they can run side by side in one process.
  const ExecPolicy* policy = nullptr;
  /// Multi-seed replication: every spec expands into `reps` runs (rep ids
  /// vary fastest) whose seeds derive from the distinct flat run indices.
  /// Grid sweeps set this with a `reps=K` axis. Requires derive_seeds —
  /// with raw seeds the k replicas would be identical runs.
  std::size_t reps = 1;
  /// Per-run seeds are mix_keys(seed_salt, index, spec seed): deterministic,
  /// schedule-independent, and distinct across grid cells even when the
  /// cells' specs share a seed. Set derive_seeds=false to run each spec's
  /// seed untouched (single runs, reproduction of a specific cell).
  std::uint64_t seed_salt = 0x5c3a01u;
  bool derive_seeds = true;
  /// Invoked once per completed run, always in run-index order (a run's
  /// callback fires as soon as it and every earlier run have finished).
  /// Runs pre-marked kSkipped (resume) also flow through, in order, so the
  /// caller can substitute the prior artifact's row; runs outside the shard
  /// never do. If the callback throws, the suite aborts (no further claims,
  /// no re-delivery of already-streamed runs) and the exception propagates.
  std::function<void(const SuiteRun&)> on_result;

  // ---- run isolation (fault tolerance) --------------------------------------
  /// Extra attempts after a failed/timed-out first try. The run's seed and
  /// scenario are identical on every attempt; only transient faults
  /// (injected or environmental) can change the result.
  std::size_t retries = 0;
  /// Per-run wall-clock budget in seconds; 0 disables. Classification is
  /// post-hoc (the run is not preempted): an attempt whose wall time exceeds
  /// the budget counts as kTimeout, its outcome is discarded, and it is
  /// retried like a throw.
  double timeout_s = 0.0;
  /// Delay before retry attempt k (1-based): backoff_s * 2^(k-1) seconds.
  double backoff_s = 0.05;
  /// Shard shard_index of shard_count: only the contiguous index block
  /// shard_range(total, i, k) executes and streams; everything else is
  /// marked kSkipped and never emitted. Seeds derive from the *global* flat
  /// index, so k shard outputs concatenate to exactly the unsharded rows.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Deterministic fault injection (tests / CI chaos leg). Not owned; must
  /// outlive the run.
  const FaultPlan* faults = nullptr;
};

/// The contiguous flat-index block [total*i/k, total*(i+1)/k) that shard i
/// of k executes. Blocks cover [0, total) exactly once and concatenate in
/// shard order. Throws ScenarioError unless i < k.
std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t index,
                                                std::size_t count);

/// Parses "i/k" (e.g. "0/2"); throws ScenarioError on malformed text or
/// i >= k.
std::pair<std::size_t, std::size_t> parse_shard(std::string_view text);

/// Runs that exhausted their retries (status kFailed or kTimeout) — the
/// suite exit code's input.
std::size_t suite_failure_count(std::span<const SuiteRun> runs);

class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteOptions options = {});

  /// Expansion without execution: resolves every spec and derives every seed
  /// (index/rep/spec/scenario filled; outcome empty, attempts 0). Resume
  /// planning matches a prior artifact's rows against this, marks completed
  /// runs kSkipped, and hands the vector to execute().
  std::vector<SuiteRun> plan(const std::vector<ScenarioSpec>& specs) const;

  /// Executes a plan() vector in place: retry/timeout/fault handling per
  /// run, ordered streaming through on_result, shard selection. Runs
  /// pre-marked kSkipped are not executed but still stream (resume
  /// substitution); sharding trims which indices participate at all.
  void execute(std::vector<SuiteRun>& runs) const;

  /// plan() + execute(). Resolution errors (unknown names/keys) throw
  /// before any run starts.
  std::vector<SuiteRun> run(const std::vector<ScenarioSpec>& specs) const;

  /// Convenience: parse_grid + expand_grid + run.
  std::vector<SuiteRun> run_grid(const ScenarioSpec& base,
                                 std::string_view grid) const;

 private:
  SuiteOptions options_;
};

// ---- CSV --------------------------------------------------------------------

/// The default (historical) column selection — a shim over
/// default_columns() in src/sim/record.hpp, kept for the CSV-shaped callers.
/// Wall time is excluded by default so suite outputs are bit-for-bit
/// reproducible; the `rep` column (after `seed`) is opt-in so single-run
/// CSVs keep their historical shape.
std::vector<std::string> suite_csv_columns(bool include_wall = false,
                                           bool include_rep = false);

/// The default-column cells for `run`, rendered through the typed schema
/// layer (make_run_record + RunRecord::cell_text — the one formatting path
/// every text sink shares). Byte-identical to the historical stringly
/// output; the determinism goldens pin it.
std::vector<std::string> suite_row_cells(const SuiteRun& run,
                                         bool include_wall = false,
                                         bool include_rep = false);

/// Appends one row for `run` (column order matches suite_csv_columns).
void suite_csv_row(CsvWriter& writer, const SuiteRun& run,
                   bool include_wall = false, bool include_rep = false);

}  // namespace colscore
