// Typed metric schema + structured run records: the one place run results
// become columns.
//
// A `MetricSchema` is an ordered list of `MetricSpec`s — key, value type
// (u64/f64/size/string/bool), description, and the origin that declared it
// ("core", "diagnostic", or a registry entry like "adversary 'sleeper'").
// A `RunRecord` holds one run's typed values against a schema; every sink
// (CSV, JSONL, sqlite) consumes the schema + record directly, so numeric
// columns stay numeric end-to-end (sqlite INTEGER/REAL affinities, native
// JSON numbers) and text rendering happens in exactly one place
// (`RunRecord::cell_text` / `format_metric_double`).
//
// The core columns — the historical 15-column CSV shape plus `rep` and
// `wall_s` — are built-ins; run diagnostics the old string pipeline dropped
// (board_vectors, honest_players, planted_diameter, per-iteration cluster
// stats, ...) are declared optional metrics; and registry entries declare
// their own metrics at registration and publish values through an emit hook
// (see registry.hpp). Column selection (`--columns` / a suite file's
// "columns") and per-cell summary aggregation over reps are expressed here
// once and inherited by every sink (see RecordStream in sink.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace colscore {

struct Scenario;      // registry.hpp
struct ScenarioSpec;  // registry.hpp
struct SuiteRun;      // suite.hpp

/// Thrown for unknown names, malformed specs, bad override values, and
/// schema/column errors. The message always names the offending token and
/// lists the accepted ones. (Defined here, at the bottom of the sim layer,
/// so the schema machinery and the registries share one error type.)
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---- metric specs -----------------------------------------------------------

/// Value type of a metric column.
enum class MetricType { kU64, kF64, kSize, kString, kBool };

/// "u64", "f64", "size", "string", "bool" — for --list-columns and errors.
const char* metric_type_name(MetricType type);

/// Float -> text policy. The golden CSV columns (mean_err, err_over_opt,
/// wall_s) pin the seed CLI's default-precision ostream formatting so the
/// determinism goldens stay byte-identical; everything new uses the shortest
/// round-trip spelling so a value survives a text round-trip exactly.
enum class F64Format { kRoundTrip, kHistorical };

/// The single float->text path for every sink and column (satellite: no more
/// per-call-site default-precision ostringstreams).
std::string format_metric_double(double v,
                                 F64Format format = F64Format::kRoundTrip);

/// One declared metric column.
struct MetricSpec {
  std::string key;
  MetricType type = MetricType::kString;
  std::string description;
  /// Who declared it: "core", "diagnostic", or "<kind> '<entry>'".
  std::string origin = "core";
  /// Text rendering for kF64 columns (ignored otherwise).
  F64Format f64_format = F64Format::kRoundTrip;
  /// Identifies a single run (seed, rep): a summary row aggregates a cell's
  /// runs, so these stay absent there — a mean of seeds names no run.
  bool run_identity = false;
};

// ---- metric values ----------------------------------------------------------

/// One typed metric value. Default-constructed = absent (the run never
/// produced the metric): sinks render absence as an empty CSV cell, JSON
/// null, or SQL NULL. kSize values are stored as u64.
class MetricValue {
 public:
  MetricValue() = default;

  static MetricValue of_u64(std::uint64_t v);
  static MetricValue of_f64(double v);
  static MetricValue of_bool(bool v);
  static MetricValue of_string(std::string v);

  bool has_value() const { return !std::holds_alternative<std::monostate>(v_); }
  bool is_u64() const { return std::holds_alternative<std::uint64_t>(v_); }
  bool is_f64() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  /// u64 or f64 — the kinds summary aggregation applies to.
  bool is_numeric() const { return is_u64() || is_f64(); }

  std::uint64_t as_u64() const;
  double as_f64() const;
  bool as_bool() const;
  const std::string& as_string() const;
  /// Numeric view for aggregation (u64 widens to double).
  double as_number() const;

  /// True when this value's kind is storable under `type` (absent values
  /// match every type).
  bool matches(MetricType type) const;

 private:
  std::variant<std::monostate, std::uint64_t, double, bool, std::string> v_;
};

// ---- the schema -------------------------------------------------------------

/// Ordered, key-unique list of metric specs. Copyable; lookups are O(log n)
/// through a side index.
class MetricSchema {
 public:
  MetricSchema() = default;

  /// Appends a spec; throws ScenarioError on an empty or duplicate key.
  void add(MetricSpec spec);

  std::size_t size() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }
  const MetricSpec& spec(std::size_t i) const { return specs_[i]; }
  std::span<const MetricSpec> specs() const { return specs_; }

  /// Spec for `key`, nullptr when absent.
  const MetricSpec* find(std::string_view key) const;

  /// Column index of `key`; throws ScenarioError("unknown column 'key';
  /// available: ...") listing every schema key.
  std::size_t index_of(std::string_view key) const;

  /// Keys in column order.
  std::vector<std::string> keys() const;

  /// Projection: the sub-schema holding `keys` in the given order. Unknown
  /// keys throw the index_of error; a repeated key throws naming it.
  MetricSchema select(std::span<const std::string> keys) const;

 private:
  std::vector<MetricSpec> specs_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

// ---- run records ------------------------------------------------------------

/// One run's typed values against a schema. The schema must outlive the
/// record (records are cheap rows; schemas are the long-lived shape).
class RunRecord {
 public:
  explicit RunRecord(const MetricSchema* schema);

  const MetricSchema& schema() const { return *schema_; }
  std::size_t size() const { return values_.size(); }

  /// Setters type-check against the spec and throw ScenarioError on
  /// mismatch (e.g. a string stored under a u64 column).
  void set_value(std::size_t i, MetricValue value);
  void set(std::string_view key, MetricValue value);
  void set_u64(std::string_view key, std::uint64_t v);
  void set_size(std::string_view key, std::size_t v);
  void set_f64(std::string_view key, double v);
  void set_bool(std::string_view key, bool v);
  void set_string(std::string_view key, std::string v);

  const MetricValue& value(std::size_t i) const { return values_[i]; }
  const MetricValue& value(std::string_view key) const;

  /// Canonical text for column i: strings verbatim, u64/size in decimal,
  /// bools as "1"/"0", f64 via format_metric_double with the spec's policy,
  /// absent as "". Every text sink renders through this one path.
  std::string cell_text(std::size_t i) const;
  std::vector<std::string> cells() const;

 private:
  const MetricSchema* schema_;
  std::vector<MetricValue> values_;
};

// ---- entry-published metrics ------------------------------------------------

/// Collects the values a registry entry's emit hook publishes, validating
/// each key against the entry's declared metric specs. `label` names the
/// entry in errors ("adversary 'sleeper'").
class MetricEmitter {
 public:
  MetricEmitter(std::span<const MetricSpec> declared, std::string label);

  void u64(std::string_view key, std::uint64_t v);
  void size(std::string_view key, std::size_t v);
  void f64(std::string_view key, double v);
  void boolean(std::string_view key, bool v);
  void string(std::string_view key, std::string v);

  /// The emitted (key, value) pairs, in emit order.
  std::vector<std::pair<std::string, MetricValue>> take();

 private:
  void put(std::string_view key, MetricValue value);

  std::span<const MetricSpec> declared_;
  std::string label_;
  std::vector<std::pair<std::string, MetricValue>> out_;
};

// ---- summary aggregation ----------------------------------------------------

/// Per-cell aggregation over a cell's `reps` adjacent runs: numeric columns
/// (u64/size/f64) aggregate; string/bool columns keep the first run's value
/// (for the spec-derived columns they are identical across a cell anyway);
/// run-identity columns (seed, rep) stay absent — they name single runs.
enum class SummaryStat { kNone, kMean, kMin, kMax };

/// Parses "none"/"mean"/"min"/"max"; throws ScenarioError listing them.
SummaryStat parse_summary_stat(std::string_view text);
const char* summary_stat_name(SummaryStat stat);

/// The schema of summarized rows: kMean widens u64/size columns to f64
/// (round-trip formatted); kMin/kMax keep every type.
MetricSchema summarized_schema(const MetricSchema& schema, SummaryStat stat);

/// Aggregates one cell's records (all on the pre-summary schema) into one
/// record on `out_schema` (= summarized_schema of theirs). Columns absent in
/// every input stay absent.
RunRecord summarize_records(const MetricSchema& out_schema,
                            std::span<const RunRecord> cell, SummaryStat stat);

// ---- schema building / record filling ---------------------------------------

/// True for the built-in core + diagnostic column keys. Registry entries may
/// not shadow these in their metric declarations.
bool is_reserved_metric_key(const std::string& key);

/// Splits "a,b,c" into column keys; throws ScenarioError on empty items.
std::vector<std::string> parse_column_list(std::string_view text);

/// The historical CSV column selection: the 15 golden columns plus
/// `status`/`error` (fault tolerance made run failure a first-class row),
/// `rep` after `seed` when replication is in play, `wall_s` last when
/// requested.
std::vector<std::string> default_columns(bool include_wall = false,
                                         bool include_rep = false);

/// Core + diagnostic columns plus the metrics declared by the resolved
/// entries of `scenario` (origins name the declaring entries).
MetricSchema scenario_metric_schema(const Scenario& scenario);

/// Schema for a whole suite: core + diagnostics + the union of every
/// scenario's entry-declared metrics, in first-seen order. Two entries may
/// declare the same key with the same type (the first declaration's spec
/// wins); conflicting types throw.
MetricSchema suite_metric_schema(std::span<const Scenario> scenarios);

/// Same union built straight from specs: the schema depends only on the
/// (workload, adversary, algorithm) triples, so this resolves one
/// representative per distinct triple — O(distinct triples), not O(cells),
/// for big grids. Resolution errors surface like Scenario::resolve.
MetricSchema suite_metric_schema(std::span<const ScenarioSpec> specs);

/// Fills a typed record for `run`: built-ins and diagnostics from the
/// scenario/outcome, then the run's entry-emitted metrics. Schema keys the
/// run does not produce stay absent (e.g. another cell's entry metrics, or
/// opt_* when OPT was skipped). Runs that did not complete ok carry only
/// the identity columns plus `status`/`error` — every result cell stays
/// absent so a failure row can never be mistaken for a perfect score.
RunRecord make_run_record(const SuiteRun& run, const MetricSchema& schema);

}  // namespace colscore
