#include "src/sim/registry.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <unordered_set>

#include "src/baseline/baselines.hpp"
#include "src/common/assert.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/timer.hpp"
#include "src/core/calculate_preferences.hpp"
#include "src/protocols/env.hpp"
#include "src/sim/churn.hpp"

namespace colscore {

namespace {

// ---- override-value parsing -------------------------------------------------

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* want) {
  throw ScenarioError("override '" + key + "=" + value + "': expected " + want);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    // stoull silently wraps negatives ("-1" -> 2^64-1); reject them up front.
    if (value.empty() || value[0] == '-')
      bad_value(key, value, "an unsigned integer");
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) bad_value(key, value, "an unsigned integer");
    return v;
  } catch (const ScenarioError&) {
    throw;
  } catch (...) {
    bad_value(key, value, "an unsigned integer");
  }
}

std::size_t parse_size(const std::string& key, const std::string& value) {
  return static_cast<std::size_t>(parse_u64(key, value));
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) bad_value(key, value, "a number");
    return v;
  } catch (const ScenarioError&) {
    throw;
  } catch (...) {
    bad_value(key, value, "a number");
  }
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  bad_value(key, value, "a boolean (0/1/true/false)");
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// ---- override keys ----------------------------------------------------------

struct ParamsDoubleField {
  const char* key;
  double Params::*member;
};
struct ParamsSizeField {
  const char* key;
  std::size_t Params::*member;
};

constexpr ParamsDoubleField kParamsDoubleFields[] = {
    {"sample_rate_c", &Params::sample_rate_c},
    {"sr_diameter_c", &Params::sr_diameter_c},
    {"sr_subset_scale", &Params::sr_subset_scale},
    {"sr_subset_exponent", &Params::sr_subset_exponent},
    {"sr_support_divisor", &Params::sr_support_divisor},
    {"graph_tau_c", &Params::graph_tau_c},
    {"graph_tau_sample_frac", &Params::graph_tau_sample_frac},
    {"cluster_slack", &Params::cluster_slack},
    {"vote_c", &Params::vote_c},
    {"rselect_c", &Params::rselect_c},
    {"easy_case_factor", &Params::easy_case_factor},
};

constexpr ParamsSizeField kParamsSizeFields[] = {
    {"sr_repeats", &Params::sr_repeats},
    {"sr_probes_per_pair", &Params::sr_probes_per_pair},
    {"sr_prefilter_probes", &Params::sr_prefilter_probes},
    {"sr_max_finalists", &Params::sr_max_finalists},
    {"vote_min", &Params::vote_min},
};

constexpr const char* kCoreKeys[] = {
    "n",    "budget",    "seed", "diameter", "clusters",
    "reps", "dishonest", "zipf", "opt",      "paper_params",
};

/// Applies a core (non-Params) override. Returns false if the key is not a
/// core key.
bool apply_core_override(Scenario& sc, const std::string& key,
                         const std::string& value) {
  if (key == "n") sc.n = parse_size(key, value);
  else if (key == "budget") sc.budget = parse_size(key, value);
  else if (key == "seed") sc.seed = parse_u64(key, value);
  else if (key == "diameter") sc.diameter = parse_size(key, value);
  else if (key == "clusters") sc.n_clusters = parse_size(key, value);
  else if (key == "dishonest") sc.dishonest = parse_size(key, value);
  else if (key == "reps") sc.robust_outer_reps = parse_size(key, value);
  else if (key == "zipf") sc.zipf_sizes = parse_bool(key, value);
  else if (key == "opt") sc.compute_opt = parse_bool(key, value);
  else if (key == "paper_params") sc.paper_params = parse_bool(key, value);
  else return false;
  return true;
}

/// Applies a Params-field override. Returns false if the key is unknown.
bool apply_params_override(Params& params, const std::string& key,
                           const std::string& value) {
  for (const auto& f : kParamsDoubleFields)
    if (key == f.key) {
      params.*(f.member) = parse_double(key, value);
      return true;
    }
  for (const auto& f : kParamsSizeFields)
    if (key == f.key) {
      params.*(f.member) = parse_size(key, value);
      return true;
    }
  return false;
}

bool is_params_key(const std::string& key) {
  for (const auto& f : kParamsDoubleFields)
    if (key == f.key) return true;
  for (const auto& f : kParamsSizeFields)
    if (key == f.key) return true;
  return false;
}

/// One schema-declared key in scope for a resolve(): which registry kind and
/// entry declared it, and its spec.
struct SchemaKey {
  const char* kind;
  const std::string* entry;
  const ParamSpec* spec;
};

[[noreturn]] void unknown_key(const std::string& key,
                              const std::vector<SchemaKey>& schema_keys) {
  std::string msg = "unknown override key '" + key + "'; accepted: ";
  bool first = true;
  for (const std::string& k : scenario_override_keys()) {
    if (!first) msg += ", ";
    msg += k;
    first = false;
  }
  // Group the advertised schema keys by declaring entry, preserving their
  // workload < adversary < algorithm order.
  for (std::size_t i = 0; i < schema_keys.size(); ++i) {
    const SchemaKey& sk = schema_keys[i];
    if (i > 0 && *schema_keys[i - 1].entry == *sk.entry &&
        schema_keys[i - 1].kind == sk.kind) {
      msg += ", " + sk.spec->key;
    } else {
      msg += std::string("; ") + sk.kind + " '" + *sk.entry +
             "' also accepts: " + sk.spec->key;
    }
  }
  throw ScenarioError(msg);
}

// ---- built-in registration --------------------------------------------------

std::size_t derived_clusters(const Scenario& sc) {
  return sc.n_clusters != 0 ? sc.n_clusters : std::max<std::size_t>(1, sc.budget);
}

/// The `churn` workload's streaming knobs, resolved from the scenario's
/// schema-validated extras (defaults live in the extra_* fallbacks so a bare
/// "workload=churn" runs a sensible drift).
ChurnConfig churn_config_for(const Scenario& sc) {
  ChurnConfig cfg;
  cfg.epochs = sc.extra_size("epochs", 16);
  cfg.flip_rate = sc.extra_double("flip_rate", 0.01);
  cfg.flip_bits = sc.extra_size("flip_bits", 2);
  cfg.arrive = sc.extra_double("arrive", 0.25);
  cfg.depart = sc.extra_double("depart", 0.0);
  // Edge threshold for the streamed graph: twice the planted diameter (two
  // members of one cluster sit <= diameter apart; drift can push them a bit
  // past it before re-clustering should separate them). Override with
  // stream_tau for threshold studies.
  cfg.threshold = sc.extra_size("stream_tau",
                                std::max<std::size_t>(1, 2 * sc.diameter));
  cfg.min_cluster = std::max<std::size_t>(
      2, sc.n / std::max<std::size_t>(1, derived_clusters(sc)) * 2 / 3);
  const std::string backend = sc.extra_string("stream_backend", "auto");
  if (backend == "dense") cfg.backend = GraphBackend::kDense;
  else if (backend == "csr") cfg.backend = GraphBackend::kCsr;
  else if (backend == "auto") cfg.backend = GraphBackend::kAuto;
  else
    throw ScenarioError("override 'stream_backend=" + backend +
                        "': expected auto, dense or csr");
  return cfg;
}

void register_builtin_workloads(WorkloadRegistry& reg) {
  reg.add("planted",
          {"planted clusters: random centers, members flip <= diameter/2 bits",
           [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
             return planted_clusters(sc.n, sc.n, derived_clusters(sc), sc.diameter,
                                     rng, sc.zipf_sizes);
           },
           {}});
  reg.add("identical",
          {"identical preferences inside each cluster (ZeroRadius assumption)",
           [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
             return identical_clusters(sc.n, sc.n, derived_clusters(sc), rng);
           },
           {}});
  reg.add("lower_bound",
          {"Claim 2 lower-bound instance: pivot + twin set, random on S",
           [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
             return lower_bound_instance(sc.n, sc.budget, sc.diameter, rng);
           },
           {}});
  reg.add("chained",
          {"chain of groups, consecutive centers `diameter` bits apart",
           [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
             const std::size_t links =
                 sc.n_clusters != 0 ? sc.n_clusters
                                    : std::max<std::size_t>(2, 2 * sc.budget);
             return chained_clusters(sc.n, sc.n, links, sc.diameter, rng);
           },
           {}});
  reg.add("uniform",
          {"no structure: every preference an independent fair coin",
           [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
             return uniform_random(sc.n, sc.n, rng);
           },
           {}});
  reg.add("two_blocks",
          {"two taste camps disagreeing on every object",
           [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
             return two_blocks(sc.n, sc.n, rng);
           },
           {}});
  reg.add(
      "churn",
      {"planted clusters drifted by epoch churn (streaming maintenance): "
       "epochs (default 16) epochs of per-player fates — depart w.p. "
       "`depart` (default 0), else drift w.p. `flip_rate` (default 0.01, "
       "flipping `flip_bits`=2 positions), departed players return w.p. "
       "`arrive` (default 0.25); stream_tau (default 2*diameter) and "
       "stream_backend (auto|dense|csr) shape the streamed neighbor graph",
       [](const Scenario& sc, Rng& rng, const ExecPolicy& policy) {
         World w = planted_clusters(sc.n, sc.n, derived_clusters(sc),
                                    sc.diameter, rng, sc.zipf_sizes);
         w.churn = run_churn(w.matrix, churn_config_for(sc), rng, policy);
         w.description += " + churn drift";
         return w;
       },
       {},
       {{"epochs", ParamType::kSize, "churn epochs to simulate"},
        {"flip_rate", ParamType::kDouble,
         "per-epoch drift probability per alive player"},
        {"flip_bits", ParamType::kSize, "positions flipped per drifting row"},
        {"arrive", ParamType::kDouble,
         "per-epoch return probability per departed player"},
        {"depart", ParamType::kDouble,
         "per-epoch departure probability per alive player"},
        {"stream_tau", ParamType::kSize,
         "edge threshold of the streamed graph (0 keeps 2*diameter)"},
        {"stream_backend", ParamType::kString,
         "streamed graph backend: auto, dense or csr"}},
       {{"epochs", MetricType::kU64, "churn epochs simulated"},
        {"edges_changed", MetricType::kU64,
         "graph edges added+removed across all epochs"},
        {"rebuild_fraction", MetricType::kF64,
         "fraction of epochs that fell back to a full graph rebuild"},
        {"stream_arrivals", MetricType::kU64,
         "players re-admitted over the run"},
        {"stream_departures", MetricType::kU64,
         "players retired over the run"},
        {"recluster_fraction", MetricType::kF64,
         "fraction of epochs whose edge delta forced a re-peel"}},
       [](const MetricContext& ctx, MetricEmitter& emit) {
         const ChurnStats& churn = ctx.world.churn;
         emit.u64("epochs", churn.epochs);
         emit.u64("edges_changed", churn.edges_changed);
         emit.u64("stream_arrivals", churn.arrivals);
         emit.u64("stream_departures", churn.departures);
         const double epochs = churn.epochs == 0
                                   ? 1.0
                                   : static_cast<double>(churn.epochs);
         emit.f64("rebuild_fraction",
                  static_cast<double>(churn.rebuilds) / epochs);
         emit.f64("recluster_fraction",
                  static_cast<double>(churn.reclusters) / epochs);
       }});
}

void register_builtin_adversaries(AdversaryRegistry& reg) {
  reg.add("none", {"all players honest", nullptr, {}});
  reg.add("random_liar",
          {"reports a coin flip regardless of truth",
           [](const Scenario&, const World&, PlayerId) {
             return std::make_unique<RandomLiar>();
           },
           {}});
  reg.add("inverter",
          {"always reports the opposite of the truth",
           [](const Scenario&, const World&, PlayerId) {
             return std::make_unique<Inverter>();
           },
           {}});
  reg.add("constant_one",
          {"ballot stuffing: claims to like every object",
           [](const Scenario&, const World&, PlayerId) {
             return std::make_unique<ConstantReporter>(true);
           },
           {}});
  reg.add("targeted_bias",
          {"truthful except the first 5% of objects, which it promotes",
           [](const Scenario&, const World& world, PlayerId) {
             std::unordered_set<ObjectId> targets;
             for (ObjectId o = 0;
                  o < std::max<std::size_t>(1, world.n_objects() / 20); ++o)
               targets.insert(o);
             return std::make_unique<TargetedBias>(std::move(targets), true);
           },
           {}});
  reg.add("hijacker",
          {"mimics the victim during clustering, then inverts its votes",
           [](const Scenario&, const World& world, PlayerId victim) {
             return std::make_unique<ClusterHijacker>(world.matrix, victim);
           },
           {}});
  reg.add("sleeper",
          {"honest until the voting phase, then lies",
           [](const Scenario&, const World&, PlayerId) {
             return std::make_unique<Sleeper>();
           },
           {}});
  reg.add("strange_colluder",
          {"Lemma 13's optimal voting attack on strange objects",
           [](const Scenario& sc, const World& world, PlayerId) {
             return std::make_unique<StrangeObjectColluder>(world.matrix,
                                                            sc.diameter);
           },
           {}});
}

AlgorithmOutput run_with_honest_beacon(
    const AlgorithmContext& ctx,
    const std::function<ProtocolResult(ProtocolEnv&)>& body) {
  HonestBeacon beacon(mix_keys(ctx.scenario.seed, 0xbeacULL));
  ProtocolEnv env(ctx.oracle, ctx.board, ctx.population, beacon,
                  mix_keys(ctx.scenario.seed, 0x10ca1ULL), ctx.policy);
  AlgorithmOutput out;
  out.result = body(env);
  return out;
}

void register_builtin_algorithms(AlgorithmRegistry& reg) {
  reg.add("calculate_preferences",
          {"Fig. 2 protocol under honest shared randomness (§6)",
           [](const AlgorithmContext& ctx) {
             return run_with_honest_beacon(ctx, [&](ProtocolEnv& env) {
               return calculate_preferences(
                   env, ctx.params, mix_keys(ctx.scenario.seed, 0xca1cULL));
             });
           },
           {}});
  reg.add("robust",
          {"§7 wrapper: leader election + repeated Fig. 2 + final RSelect",
           [](const AlgorithmContext& ctx) {
             RobustParams rp;
             rp.inner = ctx.params;
             rp.outer_reps = ctx.scenario.robust_outer_reps;
             RobustResult rr = robust_calculate_preferences(
                 ctx.oracle, ctx.board, ctx.population, rp,
                 mix_keys(ctx.scenario.seed, 0x0b57ULL),
                 mix_keys(ctx.scenario.seed, 0x10ca1ULL), ctx.policy);
             return AlgorithmOutput{std::move(rr.result), rr.honest_leader_reps,
                                    /*reports_leader_reps=*/true};
           },
           {}});
  // err/opt is identically 0 for probe_all, so its registered default skips
  // the O(n^2) empirical OPT computation; spell opt=1 to force it.
  reg.add("probe_all",
          {"trivial B = n comparator: every player probes every object",
           [](const AlgorithmContext& ctx) {
             return run_with_honest_beacon(
                 ctx, [&](ProtocolEnv& env) { return probe_all(env); });
           },
           {{"opt", "0"}}});
  reg.add("random_guess",
          {"zero probes, coin-flip outputs (degenerate comparator)",
           [](const AlgorithmContext& ctx) {
             return run_with_honest_beacon(ctx, [&](ProtocolEnv& env) {
               return random_guess(env, mix_keys(ctx.scenario.seed, 0x99e55ULL));
             });
           },
           {}});
  reg.add("oracle_clusters",
          {"genie comparator: work-shares inside the true planted clusters",
           [](const AlgorithmContext& ctx) {
             return run_with_honest_beacon(ctx, [&](ProtocolEnv& env) {
               return oracle_clusters(env, ctx.world);
             });
           },
           {}});
  reg.add("sample_and_share",
          {"Alon et al. [2,3] star-neighbourhood baseline (not Byzantine-safe)",
           [](const AlgorithmContext& ctx) {
             return run_with_honest_beacon(ctx, [&](ProtocolEnv& env) {
               SampleShareParams sp;
               sp.budget = ctx.scenario.budget;
               sp.seed = mix_keys(ctx.scenario.seed, 0x5a3b1eULL);
               return sample_and_share(env, sp).result;
             });
           },
           {}});
  // Historical CLI spellings.
  reg.alias("calc", "calculate_preferences");
  reg.alias("oracle", "oracle_clusters");
  reg.alias("baseline", "sample_and_share");
}

}  // namespace

// ---- ScenarioSpec -----------------------------------------------------------

ScenarioSpec& ScenarioSpec::set(std::string key, std::string value) {
  if (key == "workload") workload = std::move(value);
  else if (key == "adversary") adversary = std::move(value);
  else if (key == "algorithm") algorithm = std::move(value);
  else overrides[std::move(key)] = std::move(value);
  return *this;
}

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  std::istringstream in{std::string(text)};
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
      throw ScenarioError("malformed scenario token '" + token +
                          "'; expected key=value");
    spec.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return spec;
}

std::string ScenarioSpec::to_string() const {
  std::string out = "workload=" + workload + " adversary=" + adversary +
                    " algorithm=" + algorithm;
  for (const auto& [key, value] : overrides) out += " " + key + "=" + value;
  return out;
}

std::vector<std::string> scenario_override_keys() {
  std::vector<std::string> keys;
  for (const char* k : kCoreKeys) keys.emplace_back(k);
  for (const auto& f : kParamsDoubleFields) keys.emplace_back(f.key);
  for (const auto& f : kParamsSizeFields) keys.emplace_back(f.key);
  return keys;
}

bool is_reserved_override_key(const std::string& key) {
  for (const char* k : kCoreKeys)
    if (key == k) return true;
  return is_params_key(key);
}

void validate_reserved_override(const std::string& key,
                                const std::string& value) {
  Scenario scratch;
  if (apply_core_override(scratch, key, value)) return;
  Params params;
  if (apply_params_override(params, key, value)) return;
  throw ScenarioError("'" + key + "' is not a built-in override key");
}

// ---- param schemas ----------------------------------------------------------

const char* param_type_name(ParamType type) {
  switch (type) {
    case ParamType::kSize:
    case ParamType::kU64: return "an unsigned integer";
    case ParamType::kDouble: return "a number";
    case ParamType::kBool: return "a boolean (0/1/true/false)";
    case ParamType::kString: return "a string";
  }
  return "?";
}

void validate_param_value(const ParamSpec& spec, const std::string& value) {
  // Route the message through param_type_name so the documented error
  // strings have a single source.
  try {
    switch (spec.type) {
      case ParamType::kSize:
      case ParamType::kU64: (void)parse_u64(spec.key, value); break;
      case ParamType::kDouble: (void)parse_double(spec.key, value); break;
      case ParamType::kBool: (void)parse_bool(spec.key, value); break;
      case ParamType::kString: break;  // any text
    }
  } catch (const ScenarioError&) {
    throw ScenarioError("override '" + spec.key + "=" + value +
                        "': expected " + param_type_name(spec.type));
  }
}

// ---- Scenario ---------------------------------------------------------------

Scenario Scenario::resolve(const ScenarioSpec& spec) {
  Scenario sc;
  sc.workload = WorkloadRegistry::instance().canonical(spec.workload);
  sc.adversary = AdversaryRegistry::instance().canonical(spec.adversary);
  sc.algorithm = AlgorithmRegistry::instance().canonical(spec.algorithm);

  const WorkloadEntry& workload = WorkloadRegistry::instance().at(sc.workload);
  const AdversaryEntry& adversary =
      AdversaryRegistry::instance().at(sc.adversary);
  const AlgorithmEntry& algorithm =
      AlgorithmRegistry::instance().at(sc.algorithm);

  // Entry-declared override keys in scope for this scenario. First
  // declaration wins on (unlikely) cross-entry collisions, in the same
  // workload < adversary < algorithm order the defaults merge in.
  std::vector<SchemaKey> schema_keys;
  for (const ParamSpec& s : workload.schema)
    schema_keys.push_back({"workload", &sc.workload, &s});
  for (const ParamSpec& s : adversary.schema)
    schema_keys.push_back({"adversary", &sc.adversary, &s});
  for (const ParamSpec& s : algorithm.schema)
    schema_keys.push_back({"algorithm", &sc.algorithm, &s});
  auto find_schema_key = [&](const std::string& key) -> const SchemaKey* {
    for (const SchemaKey& sk : schema_keys)
      if (sk.spec->key == key) return &sk;
    return nullptr;
  };

  // Registered defaults first (workload, adversary, algorithm), user last.
  std::vector<std::pair<std::string, std::string>> merged;
  for (const auto& kv : workload.defaults) merged.push_back(kv);
  for (const auto& kv : adversary.defaults) merged.push_back(kv);
  for (const auto& kv : algorithm.defaults) merged.push_back(kv);
  for (const auto& kv : spec.overrides) merged.push_back(kv);

  // Pass 1: core keys (so `budget` is known before paper_params expands).
  std::vector<const std::pair<std::string, std::string>*> params_overrides;
  for (const auto& kv : merged) {
    if (apply_core_override(sc, kv.first, kv.second)) continue;
    if (is_params_key(kv.first)) {
      params_overrides.push_back(&kv);
      continue;
    }
    if (const SchemaKey* sk = find_schema_key(kv.first)) {
      // Typed validation with the documented attribution: the error names
      // the declaring entry and the offending key=value.
      try {
        validate_param_value(*sk->spec, kv.second);
      } catch (const ScenarioError& e) {
        throw ScenarioError(std::string(sk->kind) + " '" + *sk->entry + "' " +
                            e.what());
      }
      sc.extra[kv.first] = kv.second;
      continue;
    }
    unknown_key(kv.first, schema_keys);
  }
  if (sc.paper_params) sc.params = Params::paper(sc.budget);
  // Pass 2: Params fields refine whichever preset is active.
  for (const auto* kv : params_overrides)
    apply_params_override(sc.params, kv->first, kv->second);
  return sc;
}

ScenarioSpec Scenario::to_spec() const {
  static const Scenario defaults;
  ScenarioSpec spec;
  spec.workload = workload;
  spec.adversary = adversary;
  spec.algorithm = algorithm;
  auto set_size = [&](const char* key, std::size_t v, std::size_t dflt) {
    if (v != dflt) spec.overrides[key] = std::to_string(v);
  };
  set_size("n", n, defaults.n);
  set_size("budget", budget, defaults.budget);
  if (seed != defaults.seed) spec.overrides["seed"] = std::to_string(seed);
  set_size("diameter", diameter, defaults.diameter);
  set_size("clusters", n_clusters, defaults.n_clusters);
  set_size("dishonest", dishonest, defaults.dishonest);
  set_size("reps", robust_outer_reps, defaults.robust_outer_reps);
  if (zipf_sizes != defaults.zipf_sizes) spec.overrides["zipf"] = "1";
  if (compute_opt != defaults.compute_opt) spec.overrides["opt"] = "0";
  if (paper_params != defaults.paper_params) spec.overrides["paper_params"] = "1";

  const Params base = paper_params ? Params::paper(budget) : Params{};
  for (const auto& f : kParamsDoubleFields)
    if (params.*(f.member) != base.*(f.member))
      spec.overrides[f.key] = format_double(params.*(f.member));
  for (const auto& f : kParamsSizeFields)
    if (params.*(f.member) != base.*(f.member))
      spec.overrides[f.key] = std::to_string(params.*(f.member));
  for (const auto& [key, value] : extra) spec.overrides[key] = value;
  return spec;
}

// Extra-override getters: values were validated against the declaring entry's
// schema at resolve() time, so these parses only fail for scenarios built by
// hand with malformed extras — and then they fail loudly, not silently.
std::size_t Scenario::extra_size(std::string_view key, std::size_t dflt) const {
  const auto it = extra.find(key);
  return it == extra.end() ? dflt : parse_size(it->first, it->second);
}

std::uint64_t Scenario::extra_u64(std::string_view key,
                                  std::uint64_t dflt) const {
  const auto it = extra.find(key);
  return it == extra.end() ? dflt : parse_u64(it->first, it->second);
}

double Scenario::extra_double(std::string_view key, double dflt) const {
  const auto it = extra.find(key);
  return it == extra.end() ? dflt : parse_double(it->first, it->second);
}

bool Scenario::extra_bool(std::string_view key, bool dflt) const {
  const auto it = extra.find(key);
  return it == extra.end() ? dflt : parse_bool(it->first, it->second);
}

std::string Scenario::extra_string(std::string_view key,
                                   std::string dflt) const {
  const auto it = extra.find(key);
  return it == extra.end() ? std::move(dflt) : it->second;
}

// ---- registries -------------------------------------------------------------

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry& reg = *[] {
    auto* r = new WorkloadRegistry();
    register_builtin_workloads(*r);
    return r;
  }();
  return reg;
}

AdversaryRegistry& AdversaryRegistry::instance() {
  static AdversaryRegistry& reg = *[] {
    auto* r = new AdversaryRegistry();
    register_builtin_adversaries(*r);
    return r;
  }();
  return reg;
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry& reg = *[] {
    auto* r = new AlgorithmRegistry();
    register_builtin_algorithms(*r);
    return r;
  }();
  return reg;
}

// ---- execution --------------------------------------------------------------

World build_scenario_world(const Scenario& scenario,
                           const ExecPolicy& policy) {
  Rng rng(mix_keys(scenario.seed, 0x0a71dULL));
  return WorkloadRegistry::instance().at(scenario.workload).make(scenario, rng,
                                                                 policy);
}

World build_scenario_world(const Scenario& scenario) {
  return build_scenario_world(scenario, ExecPolicy::process_default());
}

Population build_scenario_population(const Scenario& scenario, const World& world) {
  Population pop(scenario.n);
  const AdversaryEntry& entry =
      AdversaryRegistry::instance().at(scenario.adversary);
  if (scenario.dishonest == 0 || !entry.make) return pop;
  Rng rng(mix_keys(scenario.seed, 0xad7e85a47ULL));

  // Hijacker-style attacks need a victim: player 0 is always protected from
  // corruption so it stays a meaningful target.
  const PlayerId victim = 0;
  pop.corrupt_random(
      std::min(scenario.dishonest, scenario.n - 1), rng,
      [&]() { return entry.make(scenario, world, victim); }, victim);
  return pop;
}

ExperimentOutcome run_scenario(const Scenario& scenario) {
  return run_scenario(scenario, ExecPolicy::process_default());
}

ExperimentOutcome run_scenario(const Scenario& scenario,
                               const ExecPolicy& policy) {
  Timer timer;
  // Bind the calling thread to one of the policy's workspace slots for the
  // whole run; nested protocol frames (and pool workers, via their own
  // scopes) share or acquire slots from the same arena, so two scenarios on
  // disjoint policies can never alias scratch.
  WorkerScope worker(policy);
  const World world = build_scenario_world(scenario, policy);
  const Population pop = build_scenario_population(scenario, world);
  ProbeOracle oracle(world.matrix);
  // With a single-worker policy every protocol loop runs inline, so counter
  // charges can skip the atomic RMW (see ProbeOracle::bind_policy).
  oracle.bind_policy(policy);
  BulletinBoard board;

  Params params = scenario.params;
  params.budget = scenario.budget;

  const AlgorithmContext ctx{scenario, world, oracle, board, pop, params,
                             policy};
  AlgorithmOutput algo =
      AlgorithmRegistry::instance().at(scenario.algorithm).run(ctx);
  ProtocolResult& result = algo.result;

  ExperimentOutcome outcome;
  const std::vector<PlayerId> honest = pop.honest_players();
  outcome.honest_players = honest.size();
  outcome.error = error_stats(world.matrix, result.outputs, honest, policy);
  outcome.planted_diameter = world.planted_diameter;
  outcome.total_probes = result.total_probes;
  outcome.max_probes = result.max_probes;
  for (PlayerId p : honest)
    outcome.honest_max_probes =
        std::max(outcome.honest_max_probes, result.probes_by_player[p]);
  outcome.iterations = result.iterations;
  outcome.easy_case = result.easy_case;
  outcome.honest_leader_reps = algo.honest_leader_reps;
  outcome.has_leader_reps = algo.reports_leader_reps;
  outcome.board_reports = board.report_count();
  outcome.board_vectors = board.vector_count();

  if (scenario.compute_opt) {
    const std::size_t group =
        std::max<std::size_t>(2, scenario.n / scenario.budget);
    outcome.opt = opt_radius(world.matrix, group, policy);
    const auto errors =
        hamming_errors(world.matrix, result.outputs, honest, policy);
    outcome.approx_ratio = worst_approx_ratio(errors, honest, outcome.opt);
  }

  // Entry-published metrics: each resolved entry may declare result metrics
  // and publish values here, while the run's world/board/oracle are still
  // alive. They ride on the outcome into the schema layer (make_run_record).
  const MetricContext mctx{scenario, world, pop, oracle, board, result, outcome};
  std::vector<std::pair<std::string, std::string>> emitted_by;  // key -> label
  const auto emit_entry = [&](const char* kind, const std::string& name,
                              const auto& entry) {
    if (!entry.emit_metrics) return;
    const std::string label = std::string(kind) + " '" + name + "'";
    MetricEmitter emitter(entry.metrics, label);
    entry.emit_metrics(mctx, emitter);
    for (auto& kv : emitter.take()) {
      // Two entries may *declare* the same key (same type), but one run
      // publishing it twice is ambiguous — fail loudly instead of letting
      // the later emitter silently overwrite the earlier one.
      for (const auto& [key, owner] : emitted_by)
        if (key == kv.first)
          throw ScenarioError(owner + " and " + label +
                              " both emitted metric '" + kv.first + "'");
      emitted_by.emplace_back(kv.first, label);
      outcome.entry_metrics.push_back(std::move(kv));
    }
  };
  emit_entry("workload", scenario.workload,
             WorkloadRegistry::instance().at(scenario.workload));
  emit_entry("adversary", scenario.adversary,
             AdversaryRegistry::instance().at(scenario.adversary));
  emit_entry("algorithm", scenario.algorithm,
             AlgorithmRegistry::instance().at(scenario.algorithm));

  outcome.wall_seconds = timer.seconds();
  return outcome;
}

}  // namespace colscore
