// Pluggable result sinks: where suite rows land.
//
// SuiteRunner streams completed runs in run-index order; a ResultSink turns
// that stream into a persistent artifact. Every sink consumes the same
// column list (suite_csv_columns) and the same cell strings
// (suite_row_cells), so the *row contents* of a fixed-seed suite are
// identical across sinks by construction — CSV for eyeballs and spreadsheets,
// JSONL for jq/pandas pipelines, sqlite for million-run sweeps you want to
// query without parsing anything.
//
// Sinks are a registry like workloads/adversaries/algorithms: registering a
// name and a factory is the whole integration (`colscore_cli --sink NAME`
// and suite files' "sink" key look names up here). The sqlite sink links the
// system sqlite3 library and is compiled out — absent from the registry, not
// stubbed — when the toolchain lacks it (COLSCORE_HAVE_SQLITE).
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/registry.hpp"

extern "C" {
struct sqlite3;
struct sqlite3_stmt;
}

namespace colscore {

/// Streaming consumer of suite rows. Lifecycle: begin(columns) once, then
/// write_row per run (in run-index order — SuiteRunner guarantees it), then
/// finish() once. finish() is where buffered sinks flush/commit; destructors
/// call it defensively, but call it explicitly to observe errors.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void begin(const std::vector<std::string>& columns) = 0;
  virtual void write_row(const std::vector<std::string>& cells) = 0;
  virtual void finish() {}

  std::size_t rows_written() const noexcept { return rows_; }

 protected:
  std::size_t rows_ = 0;
};

/// How a sink factory gets its destination. `stream` (when set) wins over
/// `path`; an empty path means stdout for text sinks and is an error for
/// file-only sinks (sqlite).
struct SinkConfig {
  std::string path;
  std::ostream* stream = nullptr;
};

// ---- built-in sinks ---------------------------------------------------------

/// The historical CSV output (CsvWriter underneath): header row, then one
/// comma-separated row per run.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(const SinkConfig& config);

  void begin(const std::vector<std::string>& columns) override;
  void write_row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::optional<CsvWriter> writer_;
};

/// JSON Lines: one object per run, keys = column names, values = the exact
/// cell strings (kept as JSON strings so every sink's row contents are
/// byte-comparable). No header line.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(const SinkConfig& config);

  void begin(const std::vector<std::string>& columns) override;
  void write_row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::vector<std::string> columns_;
};

#if defined(COLSCORE_HAVE_SQLITE)
/// Sqlite database with a single `runs` table whose columns mirror
/// suite_csv_columns (all TEXT, same cell strings as the CSV). The whole
/// suite inserts inside one transaction; finish() commits. An existing
/// `runs` table is dropped first so a re-run reproduces the file.
class SqliteSink : public ResultSink {
 public:
  explicit SqliteSink(const SinkConfig& config);
  ~SqliteSink() override;

  void begin(const std::vector<std::string>& columns) override;
  void write_row(const std::vector<std::string>& cells) override;
  void finish() override;

 private:
  void exec(const std::string& sql);

  sqlite3* db_ = nullptr;
  sqlite3_stmt* insert_ = nullptr;
  bool in_transaction_ = false;
};
#endif  // COLSCORE_HAVE_SQLITE

// ---- sink registry ----------------------------------------------------------

struct SinkEntry {
  std::string description;
  std::function<std::unique_ptr<ResultSink>(const SinkConfig&)> make;
};

/// Name -> sink factory. Built-ins: "csv", "jsonl", and "sqlite" when
/// compiled in. Downstream code registers new sinks exactly like workloads.
class SinkRegistry : public Registry<SinkEntry> {
 public:
  static SinkRegistry& instance();

 private:
  SinkRegistry() : Registry("sink") {}
};

/// Factory shorthand: looks `name` up (ScenarioError with the registered
/// alternatives if unknown) and builds the sink for `config`.
std::unique_ptr<ResultSink> make_sink(std::string_view name,
                                      const SinkConfig& config);

}  // namespace colscore
