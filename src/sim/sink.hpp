// Pluggable result sinks: where suite rows land.
//
// SuiteRunner streams completed runs in run-index order; a ResultSink turns
// that stream into a persistent artifact. Since PR 5 the stream is *typed*:
// begin() receives the MetricSchema and write() a RunRecord, so numeric
// columns stay numeric end-to-end — the sqlite `runs` table gets
// INTEGER/REAL column affinities, JSONL emits native JSON numbers, and all
// text rendering goes through the one shared path
// (RunRecord::cell_text / format_metric_double), never per sink. A
// fixed-seed suite therefore lands the same *values* in every sink by
// construction, and the same bytes wherever the representation is text.
//
// Sinks are a registry like workloads/adversaries/algorithms: registering a
// name and a factory is the whole integration (`colscore_cli --sink NAME`
// and suite files' "sink" key look names up here). The sqlite sink links the
// system sqlite3 library and is compiled out — absent from the registry, not
// stubbed — when the toolchain lacks it (COLSCORE_HAVE_SQLITE).
//
// Column selection (--columns / a suite file's "columns") and per-cell
// summary aggregation over reps are applied *in front of* the sink by
// RecordStream, so every sink inherits them for free.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/record.hpp"
#include "src/sim/registry.hpp"

extern "C" {
struct sqlite3;
struct sqlite3_stmt;
}

namespace colscore {

/// Streaming consumer of suite rows. Lifecycle: begin(schema) once, then
/// write() per row (in run-index order — SuiteRunner guarantees it), then
/// finish() once. Rows' records must be shaped like the begin() schema
/// (RecordStream guarantees it).
///
/// Durability / partial-output contract (crash tolerance):
///  - A file sink in fresh mode writes to `PATH.tmp` and atomically renames
///    it to PATH in finish(). PATH therefore only ever holds a *complete*
///    artifact; a crashed or aborted suite leaves PATH.tmp behind instead.
///  - Rows become durable on a batch cadence (SinkConfig::batch_rows): text
///    sinks flush the stream every batch (default: every row), sqlite
///    commits a transaction every batch (default: 64 rows). After a crash,
///    PATH.tmp holds every row durable at the last cadence point — in run
///    order with no gaps — and `--resume` accepts PATH or PATH.tmp.
///  - finish() is the explicit success path; call it to observe errors.
///    Destructors without finish() are the *abort* path: they release
///    resources but do not rename, so a failed suite never clobbers a
///    previous complete artifact.
/// Append mode (SinkConfig::append) writes into PATH directly (no .tmp, no
/// rename) so cooperating writers — shards — can extend one artifact.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void begin(const MetricSchema& schema) = 0;
  virtual void write(const RunRecord& record) = 0;
  virtual void finish() {}

  std::size_t rows_written() const noexcept { return rows_; }

 protected:
  std::size_t rows_ = 0;
};

/// How a sink factory gets its destination. `stream` (when set) wins over
/// `path`; an empty path means stdout for text sinks and is an error for
/// file-only sinks (sqlite).
struct SinkConfig {
  std::string path;
  std::ostream* stream = nullptr;
  /// Extend an existing artifact at `path` instead of replacing it: no
  /// .tmp/rename, csv suppresses its header when the file already has rows,
  /// sqlite keeps (and validates) an existing `runs` table. Ignored for
  /// stream/stdout destinations.
  bool append = false;
  /// Rows per durability batch (see the ResultSink contract). 0 picks the
  /// sink's default: 1 for text sinks, 64 for sqlite.
  std::size_t batch_rows = 0;
};

// ---- selection + summary ----------------------------------------------------

/// The schema-driven plumbing every sink inherits: projects each full
/// RunRecord onto the selected columns, optionally aggregates each grid
/// cell's `reps` adjacent rows into one summary row (mean/min/max of the
/// numeric metrics; first value for strings/bools), and streams the result
/// into the sink. Construction validates the selection against the schema
/// and calls sink.begin() with the output schema; finish() forwards to
/// sink.finish().
class RecordStream {
 public:
  struct Options {
    SummaryStat summary = SummaryStat::kNone;
    /// Rows per summary cell (the suite's reps). Ignored without a summary
    /// stat; the run count must be a multiple of it.
    std::size_t reps = 1;
  };

  RecordStream(ResultSink& sink, const MetricSchema& schema,
               std::span<const std::string> columns, Options options);
  RecordStream(ResultSink& sink, const MetricSchema& schema,
               std::span<const std::string> columns)
      : RecordStream(sink, schema, columns, Options{}) {}

  /// `record` must be on (or shaped like) the full schema passed to the
  /// constructor.
  void write(const RunRecord& record);
  void finish();

 private:
  ResultSink& sink_;
  MetricSchema selected_;  // projection of the full schema, column order
  MetricSchema out_;       // selected_, summarized when a stat is chosen
  std::vector<std::size_t> map_;  // selected index -> full-schema index
  SummaryStat summary_;
  std::size_t reps_;
  std::vector<RunRecord> cell_;  // rows buffered toward one summary row
};

// ---- built-in sinks ---------------------------------------------------------

/// The historical CSV output (CsvWriter underneath): header row, then one
/// comma-separated row per run, cells via RunRecord::cell_text.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(const SinkConfig& config);

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::string tmp_path_;    // rename tmp_path_ -> final_path_ in finish()
  std::string final_path_;  // empty: stream/stdout/append, nothing to rename
  bool suppress_header_ = false;  // appending to a file that already has one
  std::size_t batch_rows_ = 1;
  std::optional<CsvWriter> writer_;
};

/// JSON Lines: one object per run, keys = column names, values typed —
/// native JSON numbers for u64/size and finite f64 (spelled exactly like
/// the CSV cell), true/false for bools, strings quoted, absent metrics
/// null. Non-finite doubles have no JSON number spelling and are emitted as
/// quoted strings ("nan", "inf", "-inf"). No header line.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(const SinkConfig& config);

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::string tmp_path_;
  std::string final_path_;
  std::size_t batch_rows_ = 1;
  MetricSchema schema_;
};

#if defined(COLSCORE_HAVE_SQLITE)
/// Sqlite database with a single `runs` table whose columns mirror the
/// schema with real affinities: INTEGER for u64/size/bool, REAL for f64,
/// TEXT for strings; absent metrics are NULL. u64 values are stored as
/// sqlite's signed 64-bit integers (two's-complement bit pattern), so a
/// value >= 2^63 reads back exactly via a cast of sqlite3_column_int64 but
/// *prints* negative in raw SQL.
///
/// Fresh mode builds the database at PATH.tmp (replacing a stale one) and
/// renames it over PATH in finish(), so a re-run reproduces the file and a
/// crash never leaves PATH half-written. Append mode opens PATH itself and
/// keeps an existing `runs` table — after validating that its columns match
/// the suite schema exactly (a mismatch throws a ScenarioError naming the
/// first divergence rather than failing on insert). Inserts run in batched
/// transactions (SinkConfig::batch_rows, default 64): each commit is a
/// durability point for resume. A 5s busy timeout tolerates concurrent
/// shard writers appending to one database. The destructor without
/// finish() rolls the open transaction back and does not rename (the abort
/// path of the partial-output contract).
class SqliteSink : public ResultSink {
 public:
  explicit SqliteSink(const SinkConfig& config);
  ~SqliteSink() override;

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  void exec(const std::string& sql);
  void create_or_validate_table(const MetricSchema& schema,
                                const std::string& create_sql);

  sqlite3* db_ = nullptr;
  sqlite3_stmt* insert_ = nullptr;
  std::vector<MetricType> types_;
  std::string tmp_path_;
  std::string final_path_;  // empty in append mode: nothing to rename
  bool append_ = false;
  std::size_t batch_rows_ = 64;
  bool in_transaction_ = false;
};
#endif  // COLSCORE_HAVE_SQLITE

// ---- sink registry ----------------------------------------------------------

struct SinkEntry {
  std::string description;
  std::function<std::unique_ptr<ResultSink>(const SinkConfig&)> make;
};

/// Name -> sink factory. Built-ins: "csv", "jsonl", and "sqlite" when
/// compiled in. Downstream code registers new sinks exactly like workloads.
class SinkRegistry : public Registry<SinkEntry> {
 public:
  static SinkRegistry& instance();

 private:
  SinkRegistry() : Registry("sink") {}
};

/// Factory shorthand: looks `name` up (ScenarioError with the registered
/// alternatives if unknown) and builds the sink for `config`.
std::unique_ptr<ResultSink> make_sink(std::string_view name,
                                      const SinkConfig& config);

}  // namespace colscore
