// Pluggable result sinks: where suite rows land.
//
// SuiteRunner streams completed runs in run-index order; a ResultSink turns
// that stream into a persistent artifact. Since PR 5 the stream is *typed*:
// begin() receives the MetricSchema and write() a RunRecord, so numeric
// columns stay numeric end-to-end — the sqlite `runs` table gets
// INTEGER/REAL column affinities, JSONL emits native JSON numbers, and all
// text rendering goes through the one shared path
// (RunRecord::cell_text / format_metric_double), never per sink. A
// fixed-seed suite therefore lands the same *values* in every sink by
// construction, and the same bytes wherever the representation is text.
//
// Sinks are a registry like workloads/adversaries/algorithms: registering a
// name and a factory is the whole integration (`colscore_cli --sink NAME`
// and suite files' "sink" key look names up here). The sqlite sink links the
// system sqlite3 library and is compiled out — absent from the registry, not
// stubbed — when the toolchain lacks it (COLSCORE_HAVE_SQLITE).
//
// Column selection (--columns / a suite file's "columns") and per-cell
// summary aggregation over reps are applied *in front of* the sink by
// RecordStream, so every sink inherits them for free.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/record.hpp"
#include "src/sim/registry.hpp"

extern "C" {
struct sqlite3;
struct sqlite3_stmt;
}

namespace colscore {

/// Streaming consumer of suite rows. Lifecycle: begin(schema) once, then
/// write() per row (in run-index order — SuiteRunner guarantees it), then
/// finish() once. finish() is where buffered sinks flush/commit; destructors
/// call it defensively, but call it explicitly to observe errors. Rows'
/// records must be shaped like the begin() schema (RecordStream guarantees
/// it).
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void begin(const MetricSchema& schema) = 0;
  virtual void write(const RunRecord& record) = 0;
  virtual void finish() {}

  std::size_t rows_written() const noexcept { return rows_; }

 protected:
  std::size_t rows_ = 0;
};

/// How a sink factory gets its destination. `stream` (when set) wins over
/// `path`; an empty path means stdout for text sinks and is an error for
/// file-only sinks (sqlite).
struct SinkConfig {
  std::string path;
  std::ostream* stream = nullptr;
};

// ---- selection + summary ----------------------------------------------------

/// The schema-driven plumbing every sink inherits: projects each full
/// RunRecord onto the selected columns, optionally aggregates each grid
/// cell's `reps` adjacent rows into one summary row (mean/min/max of the
/// numeric metrics; first value for strings/bools), and streams the result
/// into the sink. Construction validates the selection against the schema
/// and calls sink.begin() with the output schema; finish() forwards to
/// sink.finish().
class RecordStream {
 public:
  struct Options {
    SummaryStat summary = SummaryStat::kNone;
    /// Rows per summary cell (the suite's reps). Ignored without a summary
    /// stat; the run count must be a multiple of it.
    std::size_t reps = 1;
  };

  RecordStream(ResultSink& sink, const MetricSchema& schema,
               std::span<const std::string> columns, Options options);
  RecordStream(ResultSink& sink, const MetricSchema& schema,
               std::span<const std::string> columns)
      : RecordStream(sink, schema, columns, Options{}) {}

  /// `record` must be on (or shaped like) the full schema passed to the
  /// constructor.
  void write(const RunRecord& record);
  void finish();

 private:
  ResultSink& sink_;
  MetricSchema selected_;  // projection of the full schema, column order
  MetricSchema out_;       // selected_, summarized when a stat is chosen
  std::vector<std::size_t> map_;  // selected index -> full-schema index
  SummaryStat summary_;
  std::size_t reps_;
  std::vector<RunRecord> cell_;  // rows buffered toward one summary row
};

// ---- built-in sinks ---------------------------------------------------------

/// The historical CSV output (CsvWriter underneath): header row, then one
/// comma-separated row per run, cells via RunRecord::cell_text.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(const SinkConfig& config);

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::optional<CsvWriter> writer_;
};

/// JSON Lines: one object per run, keys = column names, values typed —
/// native JSON numbers for u64/size and finite f64 (spelled exactly like
/// the CSV cell), true/false for bools, strings quoted, absent metrics
/// null. Non-finite doubles have no JSON number spelling and are emitted as
/// quoted strings ("nan", "inf", "-inf"). No header line.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(const SinkConfig& config);

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  MetricSchema schema_;
};

#if defined(COLSCORE_HAVE_SQLITE)
/// Sqlite database with a single `runs` table whose columns mirror the
/// schema with real affinities: INTEGER for u64/size/bool, REAL for f64,
/// TEXT for strings; absent metrics are NULL. u64 values are stored as
/// sqlite's signed 64-bit integers (two's-complement bit pattern), so a
/// value >= 2^63 reads back exactly via a cast of sqlite3_column_int64 but
/// *prints* negative in raw SQL. The whole suite inserts inside one
/// transaction; finish() commits. An existing `runs` table is dropped first
/// so a re-run reproduces the file.
class SqliteSink : public ResultSink {
 public:
  explicit SqliteSink(const SinkConfig& config);
  ~SqliteSink() override;

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  void exec(const std::string& sql);

  sqlite3* db_ = nullptr;
  sqlite3_stmt* insert_ = nullptr;
  std::vector<MetricType> types_;
  bool in_transaction_ = false;
};
#endif  // COLSCORE_HAVE_SQLITE

// ---- sink registry ----------------------------------------------------------

struct SinkEntry {
  std::string description;
  std::function<std::unique_ptr<ResultSink>(const SinkConfig&)> make;
};

/// Name -> sink factory. Built-ins: "csv", "jsonl", and "sqlite" when
/// compiled in. Downstream code registers new sinks exactly like workloads.
class SinkRegistry : public Registry<SinkEntry> {
 public:
  static SinkRegistry& instance();

 private:
  SinkRegistry() : Registry("sink") {}
};

/// Factory shorthand: looks `name` up (ScenarioError with the registered
/// alternatives if unknown) and builds the sink for `config`.
std::unique_ptr<ResultSink> make_sink(std::string_view name,
                                      const SinkConfig& config);

}  // namespace colscore
