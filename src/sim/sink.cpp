#include "src/sim/sink.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/common/assert.hpp"
#include "src/common/json.hpp"
#include "src/common/log.hpp"

#if defined(COLSCORE_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace colscore {

namespace {

/// Opens `config` for a text sink: the explicit stream if set, stdout for an
/// empty path, otherwise a file (ScenarioError on failure). Fresh mode opens
/// `PATH.tmp` truncated and records the rename for finish(); append mode
/// opens PATH itself and records nothing.
std::ostream* open_text_destination(const char* sink_name,
                                    const SinkConfig& config,
                                    std::ofstream& file, std::string& tmp_path,
                                    std::string& final_path) {
  if (config.stream != nullptr) return config.stream;
  if (config.path.empty()) return &std::cout;
  std::string open_path = config.path;
  if (config.append) {
    file.open(open_path, std::ios::out | std::ios::app);
  } else {
    tmp_path = config.path + ".tmp";
    final_path = config.path;
    open_path = tmp_path;
    file.open(open_path, std::ios::out | std::ios::trunc);
  }
  if (!file)
    throw ScenarioError(std::string("sink '") + sink_name +
                        "': cannot open '" + open_path + "' for writing");
  return &file;
}

/// finish() tail for text sinks: close the file and, in fresh mode, rename
/// the temp artifact into place. Clears `final_path` so a second finish()
/// is a no-op.
void finalize_text(const char* sink_name, std::ofstream& file,
                   const std::string& tmp_path, std::string& final_path) {
  if (file.is_open()) {
    const bool healthy = static_cast<bool>(file);
    file.close();
    if (!healthy)
      throw ScenarioError(std::string("sink '") + sink_name +
                          "': write failed (disk full or device error); the "
                          "partial artifact was kept");
  }
  if (final_path.empty()) return;
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    throw ScenarioError(std::string("sink '") + sink_name +
                        "': cannot rename '" + tmp_path + "' to '" +
                        final_path + "'");
  final_path.clear();
}

/// Whether PATH already holds bytes (csv append: suppress the header).
bool file_has_content(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good() && in.peek() != std::ifstream::traits_type::eof();
}

}  // namespace

// ---- RecordStream -----------------------------------------------------------

RecordStream::RecordStream(ResultSink& sink, const MetricSchema& schema,
                           std::span<const std::string> columns,
                           Options options)
    : sink_(sink),
      summary_(options.summary),
      reps_(std::max<std::size_t>(1, options.reps)) {
  // MetricSchema::select is the one authoritative validation/projection
  // (unknown-column and selected-twice errors live there); the index map
  // then reuses the already-validated keys.
  selected_ = schema.select(columns);
  map_.reserve(columns.size());
  for (const std::string& key : columns) map_.push_back(schema.index_of(key));
  out_ = summarized_schema(selected_, summary_);
  sink_.begin(out_);
}

void RecordStream::write(const RunRecord& record) {
  RunRecord row(&selected_);
  for (std::size_t j = 0; j < map_.size(); ++j)
    row.set_value(j, record.value(map_[j]));
  if (summary_ == SummaryStat::kNone) {
    sink_.write(row);
    return;
  }
  cell_.push_back(std::move(row));
  if (cell_.size() == reps_) {
    sink_.write(summarize_records(out_, cell_, summary_));
    cell_.clear();
  }
}

void RecordStream::finish() {
  CS_ASSERT(cell_.empty(),
            "record stream: partial summary cell at finish (row count is "
            "not a multiple of reps)");
  sink_.finish();
}

// ---- CsvSink ----------------------------------------------------------------

CsvSink::CsvSink(const SinkConfig& config)
    : batch_rows_(config.batch_rows == 0 ? 1 : config.batch_rows) {
  suppress_header_ = config.append && config.stream == nullptr &&
                     !config.path.empty() && file_has_content(config.path);
  out_ = open_text_destination("csv", config, file_, tmp_path_, final_path_);
}

void CsvSink::begin(const MetricSchema& schema) {
  CS_ASSERT(!writer_.has_value(), "sink: begin() called twice");
  writer_.emplace(*out_, schema.keys(), /*emit_header=*/!suppress_header_);
}

void CsvSink::write(const RunRecord& record) {
  CS_ASSERT(writer_.has_value(), "sink: write() before begin()");
  writer_->row(record.cells());
  ++rows_;
  if (rows_ % batch_rows_ == 0) out_->flush();  // durability cadence
}

void CsvSink::finish() {
  out_->flush();
  finalize_text("csv", file_, tmp_path_, final_path_);
}

// ---- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(const SinkConfig& config)
    : batch_rows_(config.batch_rows == 0 ? 1 : config.batch_rows) {
  out_ = open_text_destination("jsonl", config, file_, tmp_path_, final_path_);
}

void JsonlSink::begin(const MetricSchema& schema) {
  CS_ASSERT(schema_.empty(), "sink: begin() called twice");
  CS_ASSERT(!schema.empty(), "sink: empty schema");
  schema_ = schema;
}

void JsonlSink::write(const RunRecord& record) {
  CS_ASSERT(record.size() == schema_.size(), "sink: row width mismatch");
  std::string line = "{";
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (i != 0) line += ',';
    line += json_quote(schema_.spec(i).key);
    line += ':';
    const MetricValue& v = record.value(i);
    if (!v.has_value()) {
      line += "null";
      continue;
    }
    switch (schema_.spec(i).type) {
      case MetricType::kString:
        line += json_quote(v.as_string());
        break;
      case MetricType::kBool:
        line += v.as_bool() ? "true" : "false";
        break;
      case MetricType::kU64:
      case MetricType::kSize:
        // Native JSON number, spelled exactly like the CSV cell (the shared
        // formatting path). JSON numbers are arbitrary-precision decimal, so
        // u64 values above 2^53 survive verbatim in the text.
        line += record.cell_text(i);
        break;
      case MetricType::kF64: {
        const double d = v.as_f64();
        // JSON has no nan/inf literals; quote the non-finite spellings.
        if (std::isfinite(d)) line += record.cell_text(i);
        else line += json_quote(record.cell_text(i));
        break;
      }
    }
  }
  line += "}\n";
  *out_ << line;
  ++rows_;
  if (rows_ % batch_rows_ == 0) out_->flush();  // durability cadence
}

void JsonlSink::finish() {
  out_->flush();
  finalize_text("jsonl", file_, tmp_path_, final_path_);
}

// ---- SqliteSink -------------------------------------------------------------

#if defined(COLSCORE_HAVE_SQLITE)

namespace {

[[noreturn]] void sqlite_fail(sqlite3* db, const std::string& what) {
  std::string msg = "sink 'sqlite': " + what;
  if (db != nullptr) msg += std::string(": ") + sqlite3_errmsg(db);
  throw ScenarioError(msg);
}

/// Double-quote a column name for DDL ("" escapes embedded quotes).
std::string quote_ident(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

const char* column_affinity(MetricType type) {
  switch (type) {
    case MetricType::kU64:
    case MetricType::kSize:
    case MetricType::kBool: return "INTEGER";
    case MetricType::kF64: return "REAL";
    case MetricType::kString: return "TEXT";
  }
  return "TEXT";
}

}  // namespace

SqliteSink::SqliteSink(const SinkConfig& config)
    : append_(config.append),
      batch_rows_(config.batch_rows == 0 ? 64 : config.batch_rows) {
  if (config.stream != nullptr || config.path.empty())
    throw ScenarioError(
        "sink 'sqlite' writes a database file; pass an output path (--out "
        "PATH or the suite file's \"output\" key)");
  std::string open_path = config.path;
  if (!append_) {
    tmp_path_ = config.path + ".tmp";
    final_path_ = config.path;
    open_path = tmp_path_;
    // A stale temp database from a crashed run would make CREATE TABLE
    // collide; the committed rows it holds belong to --resume, which reads
    // it *before* the new sink is constructed.
    std::remove(tmp_path_.c_str());
  }
  if (sqlite3_open(open_path.c_str(), &db_) != SQLITE_OK) {
    const std::string detail =
        db_ != nullptr ? sqlite3_errmsg(db_) : "out of memory";
    sqlite3_close(db_);
    db_ = nullptr;
    throw ScenarioError("sink 'sqlite': cannot open '" + open_path +
                        "': " + detail);
  }
  // Concurrent shard writers appending to one database contend for the
  // write lock; wait out the other writer's commit instead of failing.
  sqlite3_busy_timeout(db_, 5000);
}

SqliteSink::~SqliteSink() {
  if (db_ == nullptr) return;  // finish() already succeeded
  // The abort path of the partial-output contract: roll back the open
  // transaction (keeping every previously committed batch), release the
  // handle, and do NOT rename — PATH keeps its last complete artifact and
  // PATH.tmp holds the durable prefix for --resume.
  if (insert_ != nullptr) {
    sqlite3_finalize(insert_);
    insert_ = nullptr;
  }
  if (in_transaction_) {
    in_transaction_ = false;
    char* err = nullptr;
    if (sqlite3_exec(db_, "ROLLBACK", nullptr, nullptr, &err) != SQLITE_OK)
      log_error("sqlite sink teardown: rollback failed: ",
                err != nullptr ? err : "unknown error");
    sqlite3_free(err);
  }
  sqlite3_close(db_);
  db_ = nullptr;
}

void SqliteSink::exec(const std::string& sql) {
  char* err = nullptr;
  if (sqlite3_exec(db_, sql.c_str(), nullptr, nullptr, &err) != SQLITE_OK) {
    const std::string detail = err != nullptr ? err : "unknown error";
    sqlite3_free(err);
    throw ScenarioError("sink 'sqlite': " + sql.substr(0, 32) + "...: " +
                        detail);
  }
}

void SqliteSink::begin(const MetricSchema& schema) {
  CS_ASSERT(insert_ == nullptr, "sink: begin() called twice");
  CS_ASSERT(!schema.empty(), "sink: empty schema");
  std::string create = "CREATE TABLE runs (";
  std::string insert = "INSERT INTO runs VALUES (";
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const MetricSpec& spec = schema.spec(i);
    if (i != 0) {
      create += ", ";
      insert += ",";
    }
    create += quote_ident(spec.key) + " " + column_affinity(spec.type);
    insert += "?";
    types_.push_back(spec.type);
  }
  create += ")";
  insert += ")";
  if (append_) {
    create_or_validate_table(schema, create);
  } else {
    // The temp database is fresh, but DROP keeps a re-used handle honest.
    exec("DROP TABLE IF EXISTS runs");
    exec(create);
  }
  // Batched transactions: per-row commits would fsync every run and
  // dominate large sweeps, while one suite-wide transaction would leave
  // nothing durable after a crash. Every batch_rows_ rows, write() commits
  // and reopens (a durability point for --resume).
  exec("BEGIN TRANSACTION");
  in_transaction_ = true;
  if (sqlite3_prepare_v2(db_, insert.c_str(), -1, &insert_, nullptr) !=
      SQLITE_OK)
    sqlite_fail(db_, "cannot prepare row insert");
}

void SqliteSink::create_or_validate_table(const MetricSchema& schema,
                                          const std::string& create_sql) {
  sqlite3_stmt* info = nullptr;
  if (sqlite3_prepare_v2(db_, "PRAGMA table_info(runs)", -1, &info, nullptr) !=
      SQLITE_OK)
    sqlite_fail(db_, "cannot inspect the existing 'runs' table");
  std::vector<std::pair<std::string, std::string>> existing;  // (name, type)
  while (sqlite3_step(info) == SQLITE_ROW) {
    const unsigned char* name = sqlite3_column_text(info, 1);
    const unsigned char* type = sqlite3_column_text(info, 2);
    existing.emplace_back(
        name != nullptr ? reinterpret_cast<const char*>(name) : "",
        type != nullptr ? reinterpret_cast<const char*>(type) : "");
  }
  sqlite3_finalize(info);
  if (existing.empty()) {  // no table yet — the first writer creates it
    exec(create_sql);
    return;
  }
  const auto mismatch = [](const std::string& what) {
    throw ScenarioError(
        "sink 'sqlite': existing 'runs' table does not match the suite "
        "schema (" + what +
        "); appending would interleave incompatible rows — point the output "
        "at a fresh database or drop the table");
  };
  if (existing.size() != schema.size())
    mismatch("it has " + std::to_string(existing.size()) +
             " columns where the schema has " + std::to_string(schema.size()));
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const MetricSpec& spec = schema.spec(i);
    if (existing[i].first != spec.key)
      mismatch("column " + std::to_string(i) + " is '" + existing[i].first +
               "' where the schema has '" + spec.key + "'");
    if (existing[i].second != column_affinity(spec.type))
      mismatch("column '" + spec.key + "' is " + existing[i].second +
               " where the schema needs " + column_affinity(spec.type));
  }
}

void SqliteSink::write(const RunRecord& record) {
  CS_ASSERT(insert_ != nullptr, "sink: write() before begin()");
  CS_ASSERT(record.size() == types_.size(), "sink: row width mismatch");
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const int slot = static_cast<int>(i + 1);
    const MetricValue& v = record.value(i);
    int rc = SQLITE_OK;
    if (!v.has_value()) {
      rc = sqlite3_bind_null(insert_, slot);
    } else {
      switch (types_[i]) {
        case MetricType::kU64:
        case MetricType::kSize:
          // Two's-complement bind: values >= 2^63 keep their bit pattern
          // (cast sqlite3_column_int64 back to uint64_t for an exact read).
          rc = sqlite3_bind_int64(
              insert_, slot, static_cast<sqlite3_int64>(v.as_u64()));
          break;
        case MetricType::kBool:
          rc = sqlite3_bind_int(insert_, slot, v.as_bool() ? 1 : 0);
          break;
        case MetricType::kF64:
          rc = sqlite3_bind_double(insert_, slot, v.as_f64());
          break;
        case MetricType::kString: {
          const std::string& s = v.as_string();
          rc = sqlite3_bind_text(insert_, slot, s.data(),
                                 static_cast<int>(s.size()), SQLITE_TRANSIENT);
          break;
        }
      }
    }
    if (rc != SQLITE_OK) sqlite_fail(db_, "cannot bind row cell");
  }
  if (sqlite3_step(insert_) != SQLITE_DONE)
    sqlite_fail(db_, "cannot insert row");
  sqlite3_reset(insert_);
  ++rows_;
  if (rows_ % batch_rows_ == 0) {  // durability point
    exec("COMMIT");
    exec("BEGIN TRANSACTION");
  }
}

void SqliteSink::finish() {
  if (db_ == nullptr) return;
  if (insert_ != nullptr) {
    sqlite3_finalize(insert_);
    insert_ = nullptr;
  }
  if (in_transaction_) {
    in_transaction_ = false;
    exec("COMMIT");
  }
  sqlite3_close(db_);
  db_ = nullptr;
  if (!final_path_.empty()) {
    if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0)
      throw ScenarioError("sink 'sqlite': cannot rename '" + tmp_path_ +
                          "' to '" + final_path_ + "'");
    final_path_.clear();
  }
}

#endif  // COLSCORE_HAVE_SQLITE

// ---- sink registry ----------------------------------------------------------

SinkRegistry& SinkRegistry::instance() {
  static SinkRegistry& reg = *[] {
    auto* r = new SinkRegistry();
    r->add("csv", {"comma-separated rows with a header line (the historical "
                   "output)",
                   [](const SinkConfig& config) -> std::unique_ptr<ResultSink> {
                     return std::make_unique<CsvSink>(config);
                   }});
    r->add("jsonl",
           {"JSON Lines: one object per run, native numbers, keys = columns",
            [](const SinkConfig& config) -> std::unique_ptr<ResultSink> {
              return std::make_unique<JsonlSink>(config);
            }});
#if defined(COLSCORE_HAVE_SQLITE)
    r->add("sqlite",
           {"sqlite database with a typed `runs` table (INTEGER/REAL "
            "affinities; query sweeps without parsing)",
            [](const SinkConfig& config) -> std::unique_ptr<ResultSink> {
              return std::make_unique<SqliteSink>(config);
            }});
#endif
    return r;
  }();
  return reg;
}

std::unique_ptr<ResultSink> make_sink(std::string_view name,
                                      const SinkConfig& config) {
  return SinkRegistry::instance().at(name).make(config);
}

}  // namespace colscore
