#include "src/sim/sink.hpp"

#include <iostream>

#include "src/common/assert.hpp"
#include "src/common/json.hpp"
#include "src/common/log.hpp"

#if defined(COLSCORE_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace colscore {

namespace {

/// Opens `config` for a text sink: the explicit stream if set, stdout for an
/// empty path, otherwise a truncated file (ScenarioError on failure).
std::ostream* open_text_destination(const char* sink_name,
                                    const SinkConfig& config,
                                    std::ofstream& file) {
  if (config.stream != nullptr) return config.stream;
  if (config.path.empty()) return &std::cout;
  file.open(config.path, std::ios::out | std::ios::trunc);
  if (!file)
    throw ScenarioError(std::string("sink '") + sink_name +
                        "': cannot open '" + config.path + "' for writing");
  return &file;
}

}  // namespace

// ---- CsvSink ----------------------------------------------------------------

CsvSink::CsvSink(const SinkConfig& config)
    : out_(open_text_destination("csv", config, file_)) {}

void CsvSink::begin(const std::vector<std::string>& columns) {
  CS_ASSERT(!writer_.has_value(), "sink: begin() called twice");
  writer_.emplace(*out_, columns);
}

void CsvSink::write_row(const std::vector<std::string>& cells) {
  CS_ASSERT(writer_.has_value(), "sink: write_row() before begin()");
  writer_->row(cells);
  ++rows_;
}

void CsvSink::finish() { out_->flush(); }

// ---- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(const SinkConfig& config)
    : out_(open_text_destination("jsonl", config, file_)) {}

void JsonlSink::begin(const std::vector<std::string>& columns) {
  CS_ASSERT(columns_.empty(), "sink: begin() called twice");
  CS_ASSERT(!columns.empty(), "sink: empty column list");
  columns_ = columns;
}

void JsonlSink::write_row(const std::vector<std::string>& cells) {
  CS_ASSERT(cells.size() == columns_.size(), "sink: row width mismatch");
  std::string line = "{";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ',';
    line += json_quote(columns_[i]);
    line += ':';
    line += json_quote(cells[i]);
  }
  line += "}\n";
  *out_ << line;
  ++rows_;
}

void JsonlSink::finish() { out_->flush(); }

// ---- SqliteSink -------------------------------------------------------------

#if defined(COLSCORE_HAVE_SQLITE)

namespace {

[[noreturn]] void sqlite_fail(sqlite3* db, const std::string& what) {
  std::string msg = "sink 'sqlite': " + what;
  if (db != nullptr) msg += std::string(": ") + sqlite3_errmsg(db);
  throw ScenarioError(msg);
}

/// Double-quote a column name for DDL ("" escapes embedded quotes).
std::string quote_ident(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

SqliteSink::SqliteSink(const SinkConfig& config) {
  if (config.stream != nullptr || config.path.empty())
    throw ScenarioError(
        "sink 'sqlite' writes a database file; pass an output path (--out "
        "PATH or the suite file's \"output\" key)");
  if (sqlite3_open(config.path.c_str(), &db_) != SQLITE_OK) {
    const std::string detail =
        db_ != nullptr ? sqlite3_errmsg(db_) : "out of memory";
    sqlite3_close(db_);
    db_ = nullptr;
    throw ScenarioError("sink 'sqlite': cannot open '" + config.path +
                        "': " + detail);
  }
}

SqliteSink::~SqliteSink() {
  try {
    finish();
  } catch (const ScenarioError& e) {
    log_error("sqlite sink teardown: ", e.what());
  }
}

void SqliteSink::exec(const std::string& sql) {
  char* err = nullptr;
  if (sqlite3_exec(db_, sql.c_str(), nullptr, nullptr, &err) != SQLITE_OK) {
    const std::string detail = err != nullptr ? err : "unknown error";
    sqlite3_free(err);
    throw ScenarioError("sink 'sqlite': " + sql.substr(0, 32) + "...: " +
                        detail);
  }
}

void SqliteSink::begin(const std::vector<std::string>& columns) {
  CS_ASSERT(insert_ == nullptr, "sink: begin() called twice");
  CS_ASSERT(!columns.empty(), "sink: empty column list");
  std::string create = "CREATE TABLE runs (";
  std::string insert = "INSERT INTO runs VALUES (";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) {
      create += ", ";
      insert += ",";
    }
    create += quote_ident(columns[i]) + " TEXT";
    insert += "?";
  }
  create += ")";
  insert += ")";
  exec("DROP TABLE IF EXISTS runs");
  exec(create);
  // One transaction for the whole suite: per-row commits would fsync every
  // run and dominate large sweeps.
  exec("BEGIN TRANSACTION");
  in_transaction_ = true;
  if (sqlite3_prepare_v2(db_, insert.c_str(), -1, &insert_, nullptr) !=
      SQLITE_OK)
    sqlite_fail(db_, "cannot prepare row insert");
}

void SqliteSink::write_row(const std::vector<std::string>& cells) {
  CS_ASSERT(insert_ != nullptr, "sink: write_row() before begin()");
  CS_ASSERT(static_cast<int>(cells.size()) ==
                sqlite3_bind_parameter_count(insert_),
            "sink: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (sqlite3_bind_text(insert_, static_cast<int>(i + 1), cells[i].data(),
                          static_cast<int>(cells[i].size()),
                          SQLITE_TRANSIENT) != SQLITE_OK)
      sqlite_fail(db_, "cannot bind row cell");
  if (sqlite3_step(insert_) != SQLITE_DONE)
    sqlite_fail(db_, "cannot insert row");
  sqlite3_reset(insert_);
  ++rows_;
}

void SqliteSink::finish() {
  if (db_ == nullptr) return;
  if (insert_ != nullptr) {
    sqlite3_finalize(insert_);
    insert_ = nullptr;
  }
  if (in_transaction_) {
    in_transaction_ = false;
    exec("COMMIT");
  }
  sqlite3_close(db_);
  db_ = nullptr;
}

#endif  // COLSCORE_HAVE_SQLITE

// ---- sink registry ----------------------------------------------------------

SinkRegistry& SinkRegistry::instance() {
  static SinkRegistry& reg = *[] {
    auto* r = new SinkRegistry();
    r->add("csv", {"comma-separated rows with a header line (the historical "
                   "output)",
                   [](const SinkConfig& config) -> std::unique_ptr<ResultSink> {
                     return std::make_unique<CsvSink>(config);
                   }});
    r->add("jsonl",
           {"JSON Lines: one object per run, keys = column names",
            [](const SinkConfig& config) -> std::unique_ptr<ResultSink> {
              return std::make_unique<JsonlSink>(config);
            }});
#if defined(COLSCORE_HAVE_SQLITE)
    r->add("sqlite",
           {"sqlite database with a `runs` table (query sweeps without "
            "parsing)",
            [](const SinkConfig& config) -> std::unique_ptr<ResultSink> {
              return std::make_unique<SqliteSink>(config);
            }});
#endif
    return r;
  }();
  return reg;
}

std::unique_ptr<ResultSink> make_sink(std::string_view name,
                                      const SinkConfig& config) {
  return SinkRegistry::instance().at(name).make(config);
}

}  // namespace colscore
