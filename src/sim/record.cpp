#include "src/sim/record.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <set>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/sim/registry.hpp"
#include "src/sim/suite.hpp"

namespace colscore {

// ---- metric specs -----------------------------------------------------------

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kU64: return "u64";
    case MetricType::kF64: return "f64";
    case MetricType::kSize: return "size";
    case MetricType::kString: return "string";
    case MetricType::kBool: return "bool";
  }
  return "?";
}

std::string format_metric_double(double v, F64Format format) {
  if (format == F64Format::kHistorical) {
    // The seed CLI's formatting: default-precision ostream (%g, 6 significant
    // digits). The determinism goldens pin these bytes.
    std::ostringstream os;
    os << v;
    return os.str();
  }
  // Shortest spelling that parses back to exactly `v` (also how non-finite
  // values render: "nan", "inf", "-inf").
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  CS_ASSERT(ec == std::errc(), "format_metric_double: to_chars failed");
  return std::string(buf, end);
}

// ---- metric values ----------------------------------------------------------

MetricValue MetricValue::of_u64(std::uint64_t v) {
  MetricValue m;
  m.v_ = v;
  return m;
}

MetricValue MetricValue::of_f64(double v) {
  MetricValue m;
  m.v_ = v;
  return m;
}

MetricValue MetricValue::of_bool(bool v) {
  MetricValue m;
  m.v_ = v;
  return m;
}

MetricValue MetricValue::of_string(std::string v) {
  MetricValue m;
  m.v_ = std::move(v);
  return m;
}

std::uint64_t MetricValue::as_u64() const {
  CS_ASSERT(is_u64(), "MetricValue: not a u64");
  return std::get<std::uint64_t>(v_);
}

double MetricValue::as_f64() const {
  CS_ASSERT(is_f64(), "MetricValue: not an f64");
  return std::get<double>(v_);
}

bool MetricValue::as_bool() const {
  CS_ASSERT(is_bool(), "MetricValue: not a bool");
  return std::get<bool>(v_);
}

const std::string& MetricValue::as_string() const {
  CS_ASSERT(is_string(), "MetricValue: not a string");
  return std::get<std::string>(v_);
}

double MetricValue::as_number() const {
  if (is_u64()) return static_cast<double>(as_u64());
  return as_f64();
}

bool MetricValue::matches(MetricType type) const {
  if (!has_value()) return true;
  switch (type) {
    case MetricType::kU64:
    case MetricType::kSize: return is_u64();
    case MetricType::kF64: return is_f64();
    case MetricType::kString: return is_string();
    case MetricType::kBool: return is_bool();
  }
  return false;
}

// ---- the schema -------------------------------------------------------------

void MetricSchema::add(MetricSpec spec) {
  if (spec.key.empty())
    throw ScenarioError("metric key must not be empty");
  if (index_.contains(spec.key))
    throw ScenarioError("duplicate metric key '" + spec.key + "'");
  index_[spec.key] = specs_.size();
  specs_.push_back(std::move(spec));
}

const MetricSpec* MetricSchema::find(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &specs_[it->second];
}

std::size_t MetricSchema::index_of(std::string_view key) const {
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  std::string msg = "unknown column '" + std::string(key) + "'; available: ";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (i != 0) msg += ", ";
    msg += specs_[i].key;
  }
  throw ScenarioError(msg);
}

std::vector<std::string> MetricSchema::keys() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const MetricSpec& spec : specs_) out.push_back(spec.key);
  return out;
}

MetricSchema MetricSchema::select(std::span<const std::string> keys) const {
  MetricSchema out;
  for (const std::string& key : keys) {
    if (out.find(key) != nullptr)
      throw ScenarioError("column '" + key + "' selected twice");
    out.add(specs_[index_of(key)]);
  }
  return out;
}

// ---- run records ------------------------------------------------------------

RunRecord::RunRecord(const MetricSchema* schema)
    : schema_(schema), values_(schema->size()) {
  CS_ASSERT(schema != nullptr, "RunRecord: null schema");
}

void RunRecord::set_value(std::size_t i, MetricValue value) {
  CS_ASSERT(i < values_.size(), "RunRecord: column index out of range");
  const MetricSpec& spec = schema_->spec(i);
  if (!value.matches(spec.type))
    throw ScenarioError("metric '" + spec.key + "' is declared " +
                        metric_type_name(spec.type) +
                        "; a value of a different kind was stored");
  values_[i] = std::move(value);
}

void RunRecord::set(std::string_view key, MetricValue value) {
  set_value(schema_->index_of(key), std::move(value));
}

void RunRecord::set_u64(std::string_view key, std::uint64_t v) {
  set(key, MetricValue::of_u64(v));
}

void RunRecord::set_size(std::string_view key, std::size_t v) {
  set(key, MetricValue::of_u64(v));
}

void RunRecord::set_f64(std::string_view key, double v) {
  set(key, MetricValue::of_f64(v));
}

void RunRecord::set_bool(std::string_view key, bool v) {
  set(key, MetricValue::of_bool(v));
}

void RunRecord::set_string(std::string_view key, std::string v) {
  set(key, MetricValue::of_string(std::move(v)));
}

const MetricValue& RunRecord::value(std::string_view key) const {
  return values_[schema_->index_of(key)];
}

std::string RunRecord::cell_text(std::size_t i) const {
  CS_ASSERT(i < values_.size(), "RunRecord: column index out of range");
  const MetricValue& v = values_[i];
  if (!v.has_value()) return "";
  const MetricSpec& spec = schema_->spec(i);
  switch (spec.type) {
    case MetricType::kU64:
    case MetricType::kSize: return std::to_string(v.as_u64());
    case MetricType::kF64: return format_metric_double(v.as_f64(), spec.f64_format);
    case MetricType::kString: return v.as_string();
    case MetricType::kBool: return v.as_bool() ? "1" : "0";
  }
  return "";
}

std::vector<std::string> RunRecord::cells() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) out.push_back(cell_text(i));
  return out;
}

// ---- entry-published metrics ------------------------------------------------

MetricEmitter::MetricEmitter(std::span<const MetricSpec> declared,
                             std::string label)
    : declared_(declared), label_(std::move(label)) {}

void MetricEmitter::put(std::string_view key, MetricValue value) {
  const MetricSpec* spec = nullptr;
  for (const MetricSpec& s : declared_)
    if (s.key == key) { spec = &s; break; }
  if (spec == nullptr) {
    std::string msg = label_ + " emitted undeclared metric '" +
                      std::string(key) + "'; declared: ";
    if (declared_.empty()) msg += "(none)";
    for (std::size_t i = 0; i < declared_.size(); ++i) {
      if (i != 0) msg += ", ";
      msg += declared_[i].key;
    }
    throw ScenarioError(msg);
  }
  if (!value.matches(spec->type))
    throw ScenarioError(label_ + " emitted metric '" + std::string(key) +
                        "' with the wrong kind (declared " +
                        metric_type_name(spec->type) + ")");
  for (const auto& [seen, unused] : out_)
    if (seen == key)
      throw ScenarioError(label_ + " emitted metric '" + std::string(key) +
                          "' twice");
  out_.emplace_back(std::string(key), std::move(value));
}

void MetricEmitter::u64(std::string_view key, std::uint64_t v) {
  put(key, MetricValue::of_u64(v));
}
void MetricEmitter::size(std::string_view key, std::size_t v) {
  put(key, MetricValue::of_u64(v));
}
void MetricEmitter::f64(std::string_view key, double v) {
  put(key, MetricValue::of_f64(v));
}
void MetricEmitter::boolean(std::string_view key, bool v) {
  put(key, MetricValue::of_bool(v));
}
void MetricEmitter::string(std::string_view key, std::string v) {
  put(key, MetricValue::of_string(std::move(v)));
}

std::vector<std::pair<std::string, MetricValue>> MetricEmitter::take() {
  return std::move(out_);
}

// ---- summary aggregation ----------------------------------------------------

SummaryStat parse_summary_stat(std::string_view text) {
  if (text == "none") return SummaryStat::kNone;
  if (text == "mean") return SummaryStat::kMean;
  if (text == "min") return SummaryStat::kMin;
  if (text == "max") return SummaryStat::kMax;
  throw ScenarioError("unknown summary '" + std::string(text) +
                      "'; accepted: none, mean, min, max");
}

const char* summary_stat_name(SummaryStat stat) {
  switch (stat) {
    case SummaryStat::kNone: return "none";
    case SummaryStat::kMean: return "mean";
    case SummaryStat::kMin: return "min";
    case SummaryStat::kMax: return "max";
  }
  return "?";
}

MetricSchema summarized_schema(const MetricSchema& schema, SummaryStat stat) {
  if (stat != SummaryStat::kMean) return schema;
  MetricSchema out;
  for (const MetricSpec& spec : schema.specs()) {
    MetricSpec s = spec;
    if (!s.run_identity &&
        (s.type == MetricType::kU64 || s.type == MetricType::kSize)) {
      // A mean of integers is fractional; keep it exact in text form.
      s.type = MetricType::kF64;
      s.f64_format = F64Format::kRoundTrip;
    }
    out.add(std::move(s));
  }
  return out;
}

RunRecord summarize_records(const MetricSchema& out_schema,
                            std::span<const RunRecord> cell, SummaryStat stat) {
  CS_ASSERT(!cell.empty(), "summarize_records: empty cell");
  CS_ASSERT(stat != SummaryStat::kNone, "summarize_records: no stat chosen");
  RunRecord agg(&out_schema);
  for (std::size_t i = 0; i < out_schema.size(); ++i) {
    // Run-identity columns (seed, rep) name single runs; an aggregated row
    // has none, so they stay absent rather than carrying a fake "mean seed".
    if (out_schema.spec(i).run_identity) continue;
    std::vector<const MetricValue*> present;
    for (const RunRecord& record : cell) {
      CS_ASSERT(record.size() == out_schema.size(),
                "summarize_records: record width mismatch");
      if (record.value(i).has_value()) present.push_back(&record.value(i));
    }
    if (present.empty()) continue;
    const bool numeric =
        std::all_of(present.begin(), present.end(),
                    [](const MetricValue* v) { return v->is_numeric(); });
    if (!numeric) {  // strings/bools: the cell's first value
      agg.set_value(i, *present.front());
      continue;
    }
    if (stat == SummaryStat::kMean) {
      double sum = 0.0;
      for (const MetricValue* v : present) sum += v->as_number();
      agg.set_value(i, MetricValue::of_f64(sum / present.size()));
      continue;
    }
    const bool all_u64 =
        std::all_of(present.begin(), present.end(),
                    [](const MetricValue* v) { return v->is_u64(); });
    if (all_u64) {
      std::uint64_t best = present.front()->as_u64();
      for (const MetricValue* v : present)
        best = stat == SummaryStat::kMin ? std::min(best, v->as_u64())
                                         : std::max(best, v->as_u64());
      agg.set_value(i, MetricValue::of_u64(best));
    } else {
      double best = present.front()->as_number();
      for (const MetricValue* v : present)
        best = stat == SummaryStat::kMin ? std::min(best, v->as_number())
                                         : std::max(best, v->as_number());
      agg.set_value(i, MetricValue::of_f64(best));
    }
  }
  return agg;
}

// ---- schema building / record filling ---------------------------------------

namespace {

/// The built-in columns: the historical CSV shape ("core") plus the run
/// diagnostics the stringly pipeline used to drop ("diagnostic").
const MetricSchema& builtin_schema() {
  static const MetricSchema& schema = *[] {
    auto* s = new MetricSchema();
    const auto core = [&](const char* key, MetricType type, const char* desc,
                          F64Format fmt = F64Format::kRoundTrip) {
      s->add({key, type, desc, "core", fmt});
    };
    const auto diag = [&](const char* key, MetricType type, const char* desc,
                          F64Format fmt = F64Format::kRoundTrip) {
      s->add({key, type, desc, "diagnostic", fmt});
    };
    core("workload", MetricType::kString,
         "workload entry that generated the hidden world");
    core("algorithm", MetricType::kString, "algorithm entry that ran");
    core("adversary", MetricType::kString,
         "adversary entry corrupting the dishonest players");
    core("n", MetricType::kSize, "players (== objects)");
    core("budget", MetricType::kSize, "reference probe budget B");
    core("diameter", MetricType::kSize,
         "planted cluster diameter / chain step");
    core("dishonest", MetricType::kSize, "number of dishonest players");
    s->add({"seed", MetricType::kU64,
            "per-run RNG seed (derived from the run index in suites)", "core",
            F64Format::kRoundTrip, /*run_identity=*/true});
    s->add({"rep", MetricType::kSize,
            "replication id within the grid cell (reps axis)", "core",
            F64Format::kRoundTrip, /*run_identity=*/true});
    core("max_err", MetricType::kSize,
         "maximum Hamming error over honest players");
    core("mean_err", MetricType::kF64,
         "mean Hamming error over honest players", F64Format::kHistorical);
    core("max_probes", MetricType::kU64,
         "most probes charged to any player");
    core("honest_max_probes", MetricType::kU64,
         "most probes charged to any honest player");
    core("total_probes", MetricType::kU64,
         "probes charged across all players");
    core("board_reports", MetricType::kU64,
         "bulletin-board report messages (communication cost)");
    core("err_over_opt", MetricType::kF64,
         "worst error over the empirical OPT radius (0 when OPT is skipped)",
         F64Format::kHistorical);
    core("status", MetricType::kString,
         "run completion status: ok, failed, timeout, or skipped");
    core("error", MetricType::kString,
         "error that exhausted the run's retries (absent for ok runs)");
    core("wall_s", MetricType::kF64,
         "wall-clock seconds for the run (non-deterministic)",
         F64Format::kHistorical);

    diag("honest_players", MetricType::kSize,
         "honest players scored by the error metrics");
    diag("board_vectors", MetricType::kU64,
         "preference vectors published to the bulletin board");
    diag("planted_diameter", MetricType::kSize,
         "true intra-cluster diameter of the generated world");
    diag("honest_leader_reps", MetricType::kSize,
         "robust runs: outer repetitions led by an honest leader (absent "
         "for algorithms without elections)");
    diag("easy_case", MetricType::kBool,
         "whether the easy-case direct-probing path ran");
    diag("iterations", MetricType::kSize,
         "protocol iterations (diameter guesses) executed");
    diag("clusters_last", MetricType::kSize,
         "clusters found by the final iteration");
    diag("min_cluster", MetricType::kSize,
         "smallest nonempty cluster observed across iterations (0: none)");
    diag("cluster_leftovers", MetricType::kSize,
         "players left unclustered, summed over iterations");
    diag("cluster_orphans", MetricType::kSize,
         "orphaned players reassigned after peeling, summed over iterations");
    diag("sr_overflow", MetricType::kSize,
         "SmallRadius candidate-set overflows, summed over iterations");
    diag("opt_max_radius", MetricType::kSize,
         "empirical OPT bracket: max radius (absent when OPT is skipped)");
    diag("opt_mean_radius", MetricType::kF64,
         "empirical OPT bracket: mean radius (absent when OPT is skipped)");
    return s;
  }();
  return schema;
}

/// Appends one entry's declared metrics to `schema`, stamping the origin.
/// Across entries the same key may be re-declared with the same type (the
/// first declaration's spec wins); a type conflict throws.
void add_entry_metrics(MetricSchema& schema, const char* kind,
                       const std::string& name,
                       std::span<const MetricSpec> metrics) {
  for (const MetricSpec& spec : metrics) {
    if (const MetricSpec* existing = schema.find(spec.key)) {
      if (existing->type != spec.type)
        throw ScenarioError("metric '" + spec.key + "' is declared " +
                            metric_type_name(existing->type) + " by " +
                            existing->origin + " but " +
                            metric_type_name(spec.type) + " by " + kind + " '" +
                            name + "'");
      continue;
    }
    MetricSpec stamped = spec;
    stamped.origin = std::string(kind) + " '" + name + "'";
    schema.add(std::move(stamped));
  }
}

void add_scenario_entry_metrics(MetricSchema& schema, const Scenario& sc) {
  add_entry_metrics(schema, "workload", sc.workload,
                    WorkloadRegistry::instance().at(sc.workload).metrics);
  add_entry_metrics(schema, "adversary", sc.adversary,
                    AdversaryRegistry::instance().at(sc.adversary).metrics);
  add_entry_metrics(schema, "algorithm", sc.algorithm,
                    AlgorithmRegistry::instance().at(sc.algorithm).metrics);
}

}  // namespace

bool is_reserved_metric_key(const std::string& key) {
  return builtin_schema().find(key) != nullptr;
}

std::vector<std::string> parse_column_list(std::string_view text) {
  std::vector<std::string> out;
  std::string item;
  // getline never yields the segment after a trailing delimiter, so catch
  // that empty item up front like the interior ones.
  if (!text.empty() && text.back() == ',')
    throw ScenarioError("column list '" + std::string(text) +
                        "' has an empty item");
  std::stringstream in{std::string(text)};
  while (std::getline(in, item, ',')) {
    const std::size_t first = item.find_first_not_of(" \t");
    const std::size_t last = item.find_last_not_of(" \t");
    if (first == std::string::npos)
      throw ScenarioError("column list '" + std::string(text) +
                          "' has an empty item");
    out.push_back(item.substr(first, last - first + 1));
  }
  if (out.empty())
    throw ScenarioError("column list '" + std::string(text) + "' is empty");
  return out;
}

std::vector<std::string> default_columns(bool include_wall, bool include_rep) {
  std::vector<std::string> columns{
      "workload",   "algorithm",  "adversary",    "n",
      "budget",     "diameter",   "dishonest",    "seed",
      "max_err",    "mean_err",   "max_probes",   "honest_max_probes",
      "total_probes", "board_reports", "err_over_opt", "status", "error"};
  if (include_rep) columns.insert(columns.begin() + 8, "rep");
  if (include_wall) columns.push_back("wall_s");
  return columns;
}

MetricSchema scenario_metric_schema(const Scenario& scenario) {
  MetricSchema schema = builtin_schema();
  add_scenario_entry_metrics(schema, scenario);
  return schema;
}

MetricSchema suite_metric_schema(std::span<const Scenario> scenarios) {
  MetricSchema schema = builtin_schema();
  for (const Scenario& sc : scenarios) add_scenario_entry_metrics(schema, sc);
  return schema;
}

MetricSchema suite_metric_schema(std::span<const ScenarioSpec> specs) {
  MetricSchema schema = builtin_schema();
  // Dedupe on the spelled names (aliases may resolve a representative
  // twice — harmless; add_scenario_entry_metrics unions idempotently).
  std::set<std::array<std::string_view, 3>> seen;
  for (const ScenarioSpec& spec : specs)
    if (seen.insert({spec.workload, spec.adversary, spec.algorithm}).second)
      add_scenario_entry_metrics(schema, Scenario::resolve(spec));
  return schema;
}

RunRecord make_run_record(const SuiteRun& run, const MetricSchema& schema) {
  const Scenario& sc = run.scenario;
  const ExperimentOutcome& out = run.outcome;
  RunRecord record(&schema);

  record.set_string("workload", sc.workload);
  record.set_string("algorithm", sc.algorithm);
  record.set_string("adversary", sc.adversary);
  record.set_size("n", sc.n);
  record.set_size("budget", sc.budget);
  record.set_size("diameter", sc.diameter);
  record.set_size("dishonest", sc.dishonest);
  record.set_u64("seed", sc.seed);
  record.set_size("rep", run.rep);
  record.set_string("status", run_status_name(run.status));
  if (!run.error.empty()) record.set_string("error", run.error);
  // Failure rows carry identity + status/error only: a kFailed/kTimeout run
  // has no outcome, and all-absent result cells are unambiguous in every
  // sink (empty CSV cells, JSON null, SQL NULL) where zeros would read as
  // a perfectly-scored run.
  if (run.status != RunStatus::kOk) return record;
  record.set_size("max_err", out.error.max_error);
  record.set_f64("mean_err", out.error.mean_error);
  record.set_u64("max_probes", out.max_probes);
  record.set_u64("honest_max_probes", out.honest_max_probes);
  record.set_u64("total_probes", out.total_probes);
  record.set_u64("board_reports", out.board_reports);
  record.set_f64("err_over_opt", out.approx_ratio);
  record.set_f64("wall_s", out.wall_seconds);

  record.set_size("honest_players", out.honest_players);
  record.set_u64("board_vectors", out.board_vectors);
  record.set_size("planted_diameter", out.planted_diameter);
  // Absent (not 0) for algorithms that elect no leaders, so summaries over
  // mixed sweeps don't dilute the statistic with not-applicable zeros.
  if (out.has_leader_reps)
    record.set_size("honest_leader_reps", out.honest_leader_reps);
  record.set_bool("easy_case", out.easy_case);
  record.set_size("iterations", out.iterations.size());
  std::size_t min_cluster = 0;
  std::size_t leftovers = 0;
  std::size_t orphans = 0;
  std::size_t sr_overflow = 0;
  for (const IterationInfo& info : out.iterations) {
    // An iteration that formed no clusters reports min_cluster 0; skip those
    // consistently (0 stays the "never observed a cluster" sentinel) so the
    // minimum does not depend on iteration order.
    if (info.min_cluster != 0)
      min_cluster = min_cluster == 0 ? info.min_cluster
                                     : std::min(min_cluster, info.min_cluster);
    leftovers += info.leftovers;
    orphans += info.orphans;
    sr_overflow += info.sr_candidate_overflow;
  }
  record.set_size("clusters_last",
                  out.iterations.empty() ? 0 : out.iterations.back().clusters);
  record.set_size("min_cluster", min_cluster);
  record.set_size("cluster_leftovers", leftovers);
  record.set_size("cluster_orphans", orphans);
  record.set_size("sr_overflow", sr_overflow);
  if (!out.opt.radius.empty()) {
    record.set_size("opt_max_radius", out.opt.max_radius);
    record.set_f64("opt_mean_radius", out.opt.mean_radius);
  }

  // Entry-published values last. A suite schema is the union over its cells'
  // entries, so keys another cell declared simply stay absent here.
  for (const auto& [key, value] : out.entry_metrics)
    if (schema.find(key) != nullptr) record.set(key, value);
  return record;
}

}  // namespace colscore
