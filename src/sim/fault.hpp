// Deterministic fault injection for the fault-tolerance machinery.
//
// Every recovery path in the suite runner — retry-after-throw, timeout
// classification, graceful degradation to status/error rows, crash-durable
// sinks, resume — is exercised by *injected* faults rather than trusted: a
// FaultPlan names exact run indices (and optionally attempts) at which to
// throw, delay, kill the process, or fail a sink write. Plans are parsed
// from a spec string (`--faults` / a suite file's "faults" key / the
// COLSCORE_FAULTS environment variable), so the same chaos scenario is
// reproducible byte-for-byte in tests, CI, and a shell.
//
// Spec grammar (comma-separated tokens):
//   throw@I      every attempt of run index I throws FaultInjected
//   throw@IxA    only the first A attempts throw (retries then succeed)
//   delay@I=S    every attempt of run I sleeps S seconds first (pair with
//                timeout_s to manufacture a deterministic timeout)
//   delay@I=SxA  only the first A attempts are delayed
//   sink@W       the W-th sink write (0-based, across the sink's lifetime)
//                throws FaultInjected — simulates a dying output device
//   kill@I       the process raises SIGKILL when run I starts (subprocess
//                crash tests; no cleanup runs, so the partial-output
//                contract is what survives)
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/sink.hpp"

namespace colscore {

/// Thrown by injected throw/sink faults. A distinct type so tests and logs
/// can tell an injected failure from a real one; the retry machinery treats
/// both identically (any exception fails the attempt).
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind { kThrow, kDelay, kSinkFail, kKill };

struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  /// Run index (throw/delay/kill) or 0-based sink write index (sink).
  std::size_t index = 0;
  /// Attempts affected: 0 = every attempt; A = attempts 0..A-1 only (so
  /// throw@3x1 fails the first attempt and a retry succeeds).
  std::size_t attempts = 0;
  /// Injected sleep for kDelay.
  double seconds = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the spec grammar above; throws ScenarioError naming the bad
  /// token. An empty/whitespace spec yields an empty plan.
  static FaultPlan parse(std::string_view text);

  /// Plan from COLSCORE_FAULTS (empty plan when unset or empty).
  static FaultPlan from_env();

  bool empty() const { return specs_.empty(); }
  bool has_sink_faults() const;
  std::span<const FaultSpec> specs() const { return specs_; }

  /// Runner hook, called before attempt `attempt` (0-based) of run `index`:
  /// applies matching delays, then kill faults, then throws FaultInjected
  /// for matching throw faults.
  void before_attempt(std::size_t index, std::size_t attempt) const;

  /// Sink hook: throws FaultInjected when `write_index` is targeted by a
  /// sink@ fault.
  void before_sink_write(std::size_t write_index) const;

 private:
  std::vector<FaultSpec> specs_;
};

/// ResultSink decorator injecting the plan's sink@ faults in front of a real
/// sink — the harness for proving sink-failure recovery (the suite aborts,
/// the durable partial artifact survives, --resume completes it).
class FaultInjectingSink : public ResultSink {
 public:
  FaultInjectingSink(FaultPlan plan, std::unique_ptr<ResultSink> inner);

  void begin(const MetricSchema& schema) override;
  void write(const RunRecord& record) override;
  void finish() override;

 private:
  FaultPlan plan_;
  std::unique_ptr<ResultSink> inner_;
  std::size_t writes_ = 0;
};

}  // namespace colscore
