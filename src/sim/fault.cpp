#include "src/sim/fault.hpp"

#include <csignal>
#include <cstdlib>

#include "src/common/thread_pool.hpp"

namespace colscore {

namespace {

[[noreturn]] void bad_token(const std::string& token, const std::string& why) {
  throw ScenarioError("fault spec token '" + token + "': " + why +
                      "; expected throw@I[xA], delay@I=S[xA], sink@W, or "
                      "kill@I");
}

/// Strict non-negative integer ("3"; not "", "-1", "3.5").
std::size_t parse_index(const std::string& token, const std::string& text) {
  std::size_t used = 0;
  std::size_t out = 0;
  try {
    if (text.empty() || text[0] == '-') throw ScenarioError("");
    out = std::stoull(text, &used);
  } catch (...) {
    used = 0;
  }
  if (used != text.size())
    bad_token(token, "'" + text + "' is not a non-negative integer");
  return out;
}

/// Strict non-negative seconds ("0.5", "2").
double parse_seconds(const std::string& token, const std::string& text) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(text, &used);
  } catch (...) {
    used = 0;
  }
  if (text.empty() || used != text.size() || out < 0)
    bad_token(token, "'" + text + "' is not a non-negative duration");
  return out;
}

/// Splits a trailing xA attempt count off `text` ("5x2" -> ("5", 2)).
std::size_t take_attempts(const std::string& token, std::string& text) {
  const std::size_t x = text.rfind('x');
  if (x == std::string::npos) return 0;
  const std::size_t attempts = parse_index(token, text.substr(x + 1));
  if (attempts == 0) bad_token(token, "xA attempt count must be positive");
  text = text.substr(0, x);
  return attempts;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string token(text.substr(pos, comma - pos));
    pos = comma + 1;
    const std::size_t first = token.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // empty segment / whitespace
    const std::size_t last = token.find_last_not_of(" \t");
    token = token.substr(first, last - first + 1);

    const std::size_t at = token.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= token.size())
      bad_token(token, "missing '@INDEX'");
    const std::string kind = token.substr(0, at);
    std::string rest = token.substr(at + 1);

    FaultSpec spec;
    if (kind == "throw") {
      spec.kind = FaultKind::kThrow;
      spec.attempts = take_attempts(token, rest);
      spec.index = parse_index(token, rest);
    } else if (kind == "delay") {
      spec.kind = FaultKind::kDelay;
      const std::size_t eq = rest.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= rest.size())
        bad_token(token, "delay needs '=SECONDS'");
      std::string secs = rest.substr(eq + 1);
      spec.attempts = take_attempts(token, secs);
      spec.seconds = parse_seconds(token, secs);
      spec.index = parse_index(token, rest.substr(0, eq));
    } else if (kind == "sink") {
      spec.kind = FaultKind::kSinkFail;
      spec.index = parse_index(token, rest);
    } else if (kind == "kill") {
      spec.kind = FaultKind::kKill;
      spec.index = parse_index(token, rest);
    } else {
      bad_token(token, "unknown fault kind '" + kind + "'");
    }
    plan.specs_.push_back(spec);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* text = std::getenv("COLSCORE_FAULTS");
  if (text == nullptr) return {};
  return parse(text);
}

bool FaultPlan::has_sink_faults() const {
  for (const FaultSpec& spec : specs_)
    if (spec.kind == FaultKind::kSinkFail) return true;
  return false;
}

void FaultPlan::before_attempt(std::size_t index, std::size_t attempt) const {
  const auto applies = [&](const FaultSpec& spec) {
    return spec.index == index &&
           (spec.attempts == 0 || attempt < spec.attempts);
  };
  // Delays first (a delayed run can still throw), then the unrecoverable
  // kinds: kill never returns, throw reports an injected failure.
  for (const FaultSpec& spec : specs_)
    if (spec.kind == FaultKind::kDelay && applies(spec))
      sleep_for_seconds(spec.seconds);
  for (const FaultSpec& spec : specs_)
    if (spec.kind == FaultKind::kKill && spec.index == index)
      std::raise(SIGKILL);
  for (const FaultSpec& spec : specs_)
    if (spec.kind == FaultKind::kThrow && applies(spec))
      throw FaultInjected("injected fault: throw at run " +
                          std::to_string(index) + " attempt " +
                          std::to_string(attempt));
}

void FaultPlan::before_sink_write(std::size_t write_index) const {
  for (const FaultSpec& spec : specs_)
    if (spec.kind == FaultKind::kSinkFail && spec.index == write_index)
      throw FaultInjected("injected fault: sink failure at write " +
                          std::to_string(write_index));
}

// ---- FaultInjectingSink -----------------------------------------------------

FaultInjectingSink::FaultInjectingSink(FaultPlan plan,
                                       std::unique_ptr<ResultSink> inner)
    : plan_(std::move(plan)), inner_(std::move(inner)) {}

void FaultInjectingSink::begin(const MetricSchema& schema) {
  inner_->begin(schema);
}

void FaultInjectingSink::write(const RunRecord& record) {
  // The fault fires before the row reaches the inner sink: the row is lost
  // exactly as if the device died mid-write, and resume must re-run it.
  plan_.before_sink_write(writes_++);
  inner_->write(record);
  ++rows_;
}

void FaultInjectingSink::finish() { inner_->finish(); }

}  // namespace colscore
