// Resumable sweeps: rebuild what a prior (possibly crashed) suite already
// computed and re-run only the rest.
//
// A resumed suite reads the prior artifact — the finished PATH or, after a
// crash, the durable partial PATH.tmp (see the ResultSink partial-output
// contract in sink.hpp) — back into typed rows on the suite's *output*
// schema, matches each row against the freshly planned run list by the
// identity columns (workload/algorithm/adversary/n/budget/diameter/
// dishonest/seed/rep — whichever of those the column selection kept; `seed`
// is required), and marks every planned run with a complete ("ok") prior row
// kSkipped. SuiteRunner::execute streams skipped runs through on_result
// without executing them, where the caller substitutes the prior row
// (widen_prior_row + RecordStream). Because per-run seeds derive from the
// global flat index and all text rendering is idempotent under a parse →
// reformat round trip, the merged artifact is byte-identical to what an
// uninterrupted run would have produced (modulo wall_s, which re-runs
// honestly re-measure).
//
// Failure rows (status failed/timeout) and a truncated text tail (a final
// line without its newline — the one write a crash can cut mid-row) are
// treated as not-computed and re-run with their original seeds.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/record.hpp"
#include "src/sim/suite.hpp"

namespace colscore {

/// A prior artifact's rows, decoded onto the output schema they were
/// written with (the suite schema projected onto the column selection).
struct PriorOutput {
  /// What was actually read: PATH.tmp when a crashed run left one
  /// (preferred — it is the interrupted run being resumed), else PATH.
  std::string source_path;
  std::vector<RunRecord> rows;
  /// Partial trailing rows discarded (text sinks; 0 or 1). Sqlite
  /// transactions never expose a torn row.
  std::size_t truncated_rows = 0;
};

/// Reads PATH (or PATH.tmp) back through the sink-specific decoder named by
/// `sink_name` ("csv", "jsonl", "sqlite"). The returned rows hold a pointer
/// to `out_schema`, which must outlive them. Throws ScenarioError prefixed
/// "resume 'SOURCE':" on malformed interior rows, a csv header or sqlite
/// `runs` table that does not match `out_schema`, or a missing artifact.
PriorOutput load_prior_output(std::string_view sink_name,
                              const std::string& path,
                              const MetricSchema& out_schema);

/// Which planned runs are already done. Indices (not pointers) into
/// PriorOutput::rows keep the plan valid across moves.
struct ResumePlan {
  /// planned index -> index of its complete prior row, -1 = must (re)run.
  std::vector<std::ptrdiff_t> prior_row;
  /// Planned runs with a complete prior row.
  std::size_t completed = 0;
};

/// Matches prior rows against the planned runs by the identity columns.
/// Rows whose status is not "ok" are ignored (re-run); a row matching no
/// planned run throws (the artifact belongs to a different suite).
ResumePlan plan_resume(const PriorOutput& prior,
                       std::span<const SuiteRun> planned,
                       const MetricSchema& out_schema);

/// Everything a resumed invocation carries: the output schema the prior
/// rows live on (owned; stable address across moves), the rows, the plan.
struct ResumeContext {
  std::unique_ptr<MetricSchema> out_schema;
  PriorOutput prior;
  ResumePlan plan;
};

/// The one-call resume front end shared by run_suite_file and the CLI grid
/// path: projects `schema` onto `columns`, loads the prior artifact, plans,
/// and marks completed planned runs kSkipped in place. Throws when
/// `summary` is not kNone — aggregated rows do not identify runs, so a
/// summarized artifact cannot be resumed.
ResumeContext prepare_resume(std::string_view sink_name,
                             const std::string& path,
                             std::vector<SuiteRun>& planned,
                             const MetricSchema& schema,
                             std::span<const std::string> columns,
                             SummaryStat summary);

/// Lifts a prior row (on the resume output schema) back onto the full suite
/// schema by key, so RecordStream can re-project it exactly like a fresh
/// record. Columns outside the selection stay absent — the stream never
/// touches them.
RunRecord widen_prior_row(const RunRecord& row,
                          const MetricSchema& full_schema);

}  // namespace colscore
