#include "src/sim/churn.hpp"

#include <utility>

#include "src/common/assert.hpp"

namespace colscore {

namespace {

/// One Bernoulli draw from the churn stream. p <= 0 consumes no draw (the
/// common all-default case where depart/arrive stay 0 costs nothing).
bool chance(Rng& rng, double p) {
  if (p <= 0.0) return false;
  return static_cast<double>(rng() >> 11) * 0x1p-53 < p;
}

}  // namespace

std::vector<RowUpdate> draw_churn_epoch(PreferenceMatrix& matrix,
                                        const BitVector& alive,
                                        const ChurnConfig& config, Rng& rng) {
  const std::size_t n = matrix.n_players();
  CS_ASSERT(alive.size() == n, "draw_churn_epoch: alive mask size mismatch");
  std::vector<RowUpdate> batch;
  // Fates first, flips second, both in ascending player order: the flip
  // draw count depends on the fates, so interleaving them would make a
  // player's flip positions depend on later players' fates.
  for (PlayerId p = 0; p < n; ++p) {
    if (alive.get(p)) {
      if (chance(rng, config.depart)) {
        batch.push_back({p, UpdateKind::kDepart});
        continue;
      }
      if (chance(rng, config.flip_rate))
        batch.push_back({p, UpdateKind::kFlip});
    } else if (chance(rng, config.arrive)) {
      // Re-arrival keeps the row as it was at departure: a returning player
      // resumes its old preferences; only drift changes row content.
      batch.push_back({p, UpdateKind::kArrive});
    }
  }
  for (const RowUpdate& u : batch)
    if (u.kind == UpdateKind::kFlip)
      matrix.row(u.player).flip_random(rng, config.flip_bits);
  return batch;
}

ChurnStats run_churn(PreferenceMatrix& matrix, const ChurnConfig& config,
                     Rng& rng, const ExecPolicy& policy) {
  const std::size_t n = matrix.n_players();
  std::vector<ConstBitRow> views;
  views.reserve(n);
  for (PlayerId p = 0; p < n; ++p)
    views.push_back(std::as_const(matrix).row(p));

  StreamSession session(views, config.threshold, config.min_cluster,
                        config.backend, policy);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    const std::vector<RowUpdate> batch =
        draw_churn_epoch(matrix, session.graph().alive(), config, rng);
    session.apply_epoch(batch, policy);
  }

  const StreamTotals& totals = session.totals();
  ChurnStats stats;
  stats.epochs = totals.epochs;
  stats.flips = totals.flips;
  stats.arrivals = totals.arrivals;
  stats.departures = totals.departures;
  stats.edges_changed = totals.edges_changed;
  stats.rebuilds = totals.rebuilds;
  stats.reclusters = totals.reclusters;
  stats.final_alive = session.graph().alive_count();
  stats.final_clusters = session.clustering().clusters.size();
  return stats;
}

}  // namespace colscore
