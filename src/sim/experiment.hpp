// End-to-end experiment runner: one call builds the world, corrupts the
// population, runs the chosen algorithm, and measures error/probe metrics.
// Benches, examples and integration tests all go through this entry point so
// every reported number is produced the same way.
#pragma once

#include <string>

#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "src/metrics/optimal.hpp"
#include "src/model/generators.hpp"

namespace colscore {

enum class WorkloadKind {
  kPlantedClusters,
  kIdenticalClusters,
  kLowerBound,
  kChained,
  kUniformRandom,
  kTwoBlocks,
};

enum class AdversaryKind {
  kNone,
  kRandomLiar,
  kInverter,
  kConstantOne,
  kTargetedBias,
  kHijacker,
  kSleeper,
  kStrangeColluder,  // Lemma 13's optimal voting attack
};

enum class AlgorithmKind {
  kCalculatePreferences,  // Fig. 2, honest shared randomness (§6)
  kRobust,                // §7 wrapper with leader election
  kProbeAll,
  kRandomGuess,
  kOracleClusters,
  kSampleAndShare,  // Alon et al. [2,3] reconstruction
};

struct ExperimentConfig {
  std::size_t n = 256;
  std::size_t budget = 8;
  std::uint64_t seed = 1;

  WorkloadKind workload = WorkloadKind::kPlantedClusters;
  /// Planted intra-cluster diameter (or chain step for kChained).
  std::size_t diameter = 16;
  /// 0 = derive: budget clusters of size ~n/budget (kChained: 2*budget links).
  std::size_t n_clusters = 0;
  bool zipf_sizes = false;

  AdversaryKind adversary = AdversaryKind::kNone;
  /// Number of dishonest players (paper tolerance: n/(3B)).
  std::size_t dishonest = 0;

  AlgorithmKind algorithm = AlgorithmKind::kCalculatePreferences;
  Params params;                 // derived from `budget` unless customized
  std::size_t robust_outer_reps = 3;
  /// Compute the O(n^2) empirical OPT radius (skip for large sweeps).
  bool compute_opt = true;

  static std::string workload_name(WorkloadKind w);
  static std::string adversary_name(AdversaryKind a);
  static std::string algorithm_name(AlgorithmKind a);
};

struct ExperimentOutcome {
  ErrorStats error;          // over honest players
  OptEstimate opt;           // empirical Definition-1 bracket (if computed)
  double approx_ratio = 0.0; // worst error / opt radius (if computed)
  std::uint64_t max_probes = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t honest_max_probes = 0;
  std::size_t honest_players = 0;
  /// Bulletin-board traffic (§8 communication-cost accounting).
  std::uint64_t board_reports = 0;
  std::uint64_t board_vectors = 0;
  std::size_t planted_diameter = 0;
  std::size_t honest_leader_reps = 0;  // robust runs only
  double wall_seconds = 0.0;
  std::vector<IterationInfo> iterations;
};

/// Builds the world described by `config` (deterministic in config.seed).
World build_world(const ExperimentConfig& config);

/// Installs the configured adversaries into a fresh population.
Population build_population(const ExperimentConfig& config, const World& world);

/// Runs the full experiment.
ExperimentOutcome run_experiment(const ExperimentConfig& config);

}  // namespace colscore
