// Legacy enum-based experiment API, kept as a thin compatibility shim over
// the scenario registry (src/sim/registry.hpp). Each enum value maps to a
// registered entry by name; run_experiment converts the config to a Scenario
// and delegates to run_scenario. New code — and anything that wants to add
// workloads, adversaries, or algorithms — should use the registry directly:
// enums are closed, registries grow by registration.
#pragma once

#include <string>

#include "src/sim/registry.hpp"

namespace colscore {

enum class WorkloadKind {
  kPlantedClusters,
  kIdenticalClusters,
  kLowerBound,
  kChained,
  kUniformRandom,
  kTwoBlocks,
};

enum class AdversaryKind {
  kNone,
  kRandomLiar,
  kInverter,
  kConstantOne,
  kTargetedBias,
  kHijacker,
  kSleeper,
  kStrangeColluder,  // Lemma 13's optimal voting attack
};

enum class AlgorithmKind {
  kCalculatePreferences,  // Fig. 2, honest shared randomness (§6)
  kRobust,                // §7 wrapper with leader election
  kProbeAll,
  kRandomGuess,
  kOracleClusters,
  kSampleAndShare,  // Alon et al. [2,3] reconstruction
};

struct ExperimentConfig {
  std::size_t n = 256;
  std::size_t budget = 8;
  std::uint64_t seed = 1;

  WorkloadKind workload = WorkloadKind::kPlantedClusters;
  /// Planted intra-cluster diameter (or chain step for kChained).
  std::size_t diameter = 16;
  /// 0 = derive: budget clusters of size ~n/budget (kChained: 2*budget links).
  std::size_t n_clusters = 0;
  bool zipf_sizes = false;

  AdversaryKind adversary = AdversaryKind::kNone;
  /// Number of dishonest players (paper tolerance: n/(3B)).
  std::size_t dishonest = 0;

  AlgorithmKind algorithm = AlgorithmKind::kCalculatePreferences;
  Params params;                 // derived from `budget` unless customized
  std::size_t robust_outer_reps = 3;
  /// Compute the O(n^2) empirical OPT radius (skip for large sweeps).
  bool compute_opt = true;

  /// Registered scenario name of each enum value.
  static std::string workload_name(WorkloadKind w);
  static std::string adversary_name(AdversaryKind a);
  static std::string algorithm_name(AlgorithmKind a);

  /// The equivalent registry-level scenario (field-for-field; registered
  /// defaults are NOT applied, so behaviour matches the historical enums).
  Scenario to_scenario() const;
};

/// Builds the world described by `config` (deterministic in config.seed).
World build_world(const ExperimentConfig& config);

/// Installs the configured adversaries into a fresh population.
Population build_population(const ExperimentConfig& config, const World& world);

/// Runs the full experiment.
ExperimentOutcome run_experiment(const ExperimentConfig& config);

}  // namespace colscore
