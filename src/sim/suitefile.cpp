#include "src/sim/suitefile.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/json.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/resume.hpp"

namespace colscore {

namespace {

constexpr const char* kAcceptedKeys[] = {
    "name",    "description", "base",    "grids",        "reps",
    "threads", "sink",        "output",  "wall",         "derive_seeds",
    "seed_salt", "columns",   "summary", "retries",      "timeout_s",
    "backoff_s", "faults",
};

[[noreturn]] void fail(const std::string& origin, const std::string& what) {
  throw ScenarioError("suite file '" + origin + "': " + what);
}

[[noreturn]] void wrong_type(const std::string& origin, const char* key,
                             const char* want, const JsonValue& got) {
  fail(origin, std::string("\"") + key + "\" must be " + want + " (got " +
                   got.kind_name() + ")");
}

std::string require_string(const std::string& origin, const char* key,
                           const JsonValue& v) {
  if (!v.is_string()) wrong_type(origin, key, "a string", v);
  return v.text;
}

bool require_bool(const std::string& origin, const char* key,
                  const JsonValue& v) {
  if (!v.is_bool()) wrong_type(origin, key, "a boolean", v);
  return v.boolean;
}

/// A non-negative integer-valued number ("3", not "3.5" or "-1"). Parses the
/// source spelling so large seed salts survive without a double round-trip.
std::uint64_t require_integer(const std::string& origin, const char* key,
                              const JsonValue& v) {
  if (!v.is_number()) wrong_type(origin, key, "an integer", v);
  std::size_t used = 0;
  std::uint64_t out = 0;
  try {
    if (!v.text.empty() && v.text[0] != '-') out = std::stoull(v.text, &used);
  } catch (...) {
    used = 0;
  }
  if (used != v.text.size())
    fail(origin, std::string("\"") + key + "\" must be a non-negative "
                     "integer (got " + v.text + ")");
  return out;
}

/// A non-negative number ("0.25", "3"); doubles are fine here (durations),
/// unlike require_integer's count-valued keys.
double require_number(const std::string& origin, const char* key,
                      const JsonValue& v) {
  if (!v.is_number()) wrong_type(origin, key, "a number", v);
  if (v.number < 0)
    fail(origin, std::string("\"") + key + "\" must be non-negative (got " +
                     v.text + ")");
  return v.number;
}

/// One base-spec value: strings verbatim, numbers by source spelling,
/// booleans as the "1"/"0" the override parser accepts.
std::string override_text(const std::string& origin, const std::string& key,
                          const JsonValue& v) {
  if (v.is_string()) return v.text;
  if (v.is_number()) return v.text;
  if (v.is_bool()) return v.boolean ? "1" : "0";
  fail(origin, "base key \"" + key + "\" must be a string, number, or "
                   "boolean (got " + v.kind_name() + ")");
}

void parse_base(const std::string& origin, const JsonValue& v,
                ScenarioSpec& base) {
  if (v.is_string()) {
    base = ScenarioSpec::parse(v.text);
    return;
  }
  if (!v.is_object())
    wrong_type(origin, "base", "an object or a spec string", v);
  for (const auto& [key, value] : v.members)
    base.set(key, override_text(origin, key, value));
}

std::vector<GridAxis> parse_one_grid(const std::string& origin,
                                     std::size_t index,
                                     const JsonValue& v) {
  if (!v.is_string())
    fail(origin, "\"grids\" entries must be axis strings (entry " +
                     std::to_string(index + 1) + " is " + v.kind_name() + ")");
  std::vector<GridAxis> axes = parse_grid(v.text);
  for (const GridAxis& axis : axes)
    if (axis.key == "reps")
      fail(origin, "grid " + std::to_string(index + 1) +
                       " sweeps 'reps'; replication in a suite file is the "
                       "top-level \"reps\" key");
  return axes;
}

}  // namespace

std::vector<ScenarioSpec> SuiteFile::expand() const {
  if (grids.empty()) return {base};
  std::vector<ScenarioSpec> specs;
  for (const std::vector<GridAxis>& axes : grids) {
    std::vector<ScenarioSpec> expanded = expand_grid(base, axes);
    specs.insert(specs.end(), std::make_move_iterator(expanded.begin()),
                 std::make_move_iterator(expanded.end()));
  }
  return specs;
}

SuiteOptions SuiteFile::options() const {
  SuiteOptions out;
  out.threads = threads;
  out.reps = reps;
  out.derive_seeds = derive_seeds;
  if (seed_salt.has_value()) out.seed_salt = *seed_salt;
  out.retries = retries;
  out.timeout_s = timeout_s;
  out.backoff_s = backoff_s;
  return out;
}

SuiteFile parse_suite_file(std::string_view json_text, std::string origin) {
  SuiteFile file;
  file.origin = std::move(origin);

  JsonValue root;
  try {
    root = json_parse(json_text);
  } catch (const JsonError& e) {
    fail(file.origin, e.what());
  }
  if (!root.is_object())
    fail(file.origin, std::string("the document must be an object (got ") +
                          root.kind_name() + ")");

  for (const auto& [key, value] : root.members) {
    bool accepted = false;
    for (const char* k : kAcceptedKeys)
      if (key == k) { accepted = true; break; }
    if (!accepted) {
      std::string msg = "unknown key \"" + key + "\"; accepted: ";
      bool first = true;
      for (const char* k : kAcceptedKeys) {
        if (!first) msg += ", ";
        msg += k;
        first = false;
      }
      fail(file.origin, msg);
    }

    if (key == "name") file.name = require_string(file.origin, "name", value);
    else if (key == "description")
      file.description = require_string(file.origin, "description", value);
    else if (key == "base") parse_base(file.origin, value, file.base);
    else if (key == "grids") {
      if (value.is_string()) {
        file.grids.push_back(parse_one_grid(file.origin, 0, value));
      } else if (value.is_array()) {
        for (std::size_t i = 0; i < value.items.size(); ++i)
          file.grids.push_back(
              parse_one_grid(file.origin, i, value.items[i]));
      } else {
        wrong_type(file.origin, "grids", "an axis string or an array of them",
                   value);
      }
    } else if (key == "reps") {
      file.reps = static_cast<std::size_t>(
          require_integer(file.origin, "reps", value));
      if (file.reps == 0)
        fail(file.origin, "\"reps\" must be a positive integer (got 0)");
    } else if (key == "threads") {
      file.threads = static_cast<std::size_t>(
          require_integer(file.origin, "threads", value));
    } else if (key == "sink") {
      file.sink = require_string(file.origin, "sink", value);
    } else if (key == "output") {
      file.output = require_string(file.origin, "output", value);
    } else if (key == "wall") {
      file.include_wall = require_bool(file.origin, "wall", value);
    } else if (key == "derive_seeds") {
      file.derive_seeds = require_bool(file.origin, "derive_seeds", value);
    } else if (key == "seed_salt") {
      file.seed_salt = require_integer(file.origin, "seed_salt", value);
    } else if (key == "columns") {
      if (value.is_string()) {
        try {
          file.columns = parse_column_list(value.text);
        } catch (const ScenarioError& e) {
          fail(file.origin, e.what());
        }
      } else if (value.is_array()) {
        for (std::size_t i = 0; i < value.items.size(); ++i) {
          if (!value.items[i].is_string())
            fail(file.origin, "\"columns\" entries must be metric keys "
                              "(entry " + std::to_string(i + 1) + " is " +
                                  value.items[i].kind_name() + ")");
          file.columns.push_back(value.items[i].text);
        }
        if (file.columns.empty())
          fail(file.origin, "\"columns\" must not be an empty array");
      } else {
        wrong_type(file.origin, "columns",
                   "an array of metric keys or one comma-separated string",
                   value);
      }
    } else if (key == "summary") {
      try {
        file.summary =
            parse_summary_stat(require_string(file.origin, "summary", value));
      } catch (const ScenarioError& e) {
        fail(file.origin, e.what());
      }
    } else if (key == "retries") {
      file.retries = static_cast<std::size_t>(
          require_integer(file.origin, "retries", value));
    } else if (key == "timeout_s") {
      file.timeout_s = require_number(file.origin, "timeout_s", value);
    } else if (key == "backoff_s") {
      file.backoff_s = require_number(file.origin, "backoff_s", value);
    } else if (key == "faults") {
      file.faults = require_string(file.origin, "faults", value);
      try {
        (void)FaultPlan::parse(file.faults);
      } catch (const ScenarioError& e) {
        fail(file.origin, e.what());
      }
    }
  }

  // Surface spec/grid/column errors at parse time with the file named, not
  // when the suite starts: a reviewable artifact should fail its review
  // early. Resolutions are validate-and-discard (nothing retained per cell);
  // the schema union resolves one representative per distinct entry triple.
  try {
    const std::vector<ScenarioSpec> specs = file.expand();
    for (const ScenarioSpec& spec : specs) (void)Scenario::resolve(spec);
    if (!file.columns.empty())
      (void)suite_metric_schema(specs).select(file.columns);
  } catch (const ScenarioError& e) {
    fail(file.origin, e.what());
  }
  return file;
}

SuiteFile load_suite_file(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) throw ScenarioError("suite file '" + path + "': cannot open");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_suite_file(text.str(), path);
}

std::vector<SuiteRun> run_suite_file(const SuiteFile& file,
                                     const SuiteFileOverrides& overrides) {
  SuiteOptions options = file.options();
  if (overrides.threads.has_value()) options.threads = *overrides.threads;
  if (overrides.retries.has_value()) options.retries = *overrides.retries;
  if (overrides.timeout_s.has_value()) options.timeout_s = *overrides.timeout_s;
  if (overrides.backoff_s.has_value()) options.backoff_s = *overrides.backoff_s;
  if (overrides.shard.has_value()) {
    options.shard_index = overrides.shard->first;
    options.shard_count = overrides.shard->second;
  }
  const FaultPlan faults = FaultPlan::parse(
      overrides.faults.has_value() ? *overrides.faults : file.faults);
  if (!faults.empty()) options.faults = &faults;

  SinkConfig config;
  config.path = overrides.output.has_value() ? *overrides.output : file.output;
  config.stream = overrides.stream;
  const std::string sink_name =
      overrides.sink.has_value() ? *overrides.sink : file.sink;

  // The suite's schema (built-ins + every cell's entry metrics, resolved
  // once per distinct entry triple) and the selected columns; selection and
  // per-cell summary run in RecordStream, in front of whichever sink was
  // chosen.
  const std::vector<ScenarioSpec> specs = file.expand();
  const MetricSchema schema = suite_metric_schema(specs);
  const bool include_rep = options.reps > 1;
  std::vector<std::string> columns =
      file.columns.empty() ? default_columns(file.include_wall, include_rep)
                           : file.columns;
  // "wall": true is an explicit request; honor it alongside an explicit
  // "columns" selection (same rule as the CLI's --wall + --columns).
  if (file.include_wall && !file.columns.empty() &&
      std::find(columns.begin(), columns.end(), "wall_s") == columns.end())
    columns.push_back("wall_s");

  // Plan before the sink exists: resume must read the prior artifact before
  // a fresh-mode sink truncates PATH.tmp (resuming onto the same path is
  // the common case).
  std::vector<SuiteRun> runs = SuiteRunner(options).plan(specs);
  std::optional<ResumeContext> resume;
  if (overrides.resume.has_value())
    resume = prepare_resume(sink_name, *overrides.resume, runs, schema,
                            columns, file.summary);

  std::unique_ptr<ResultSink> sink = make_sink(sink_name, config);
  if (faults.has_sink_faults())
    sink = std::make_unique<FaultInjectingSink>(faults, std::move(sink));

  RecordStream stream(*sink, schema, columns,
                      {file.summary, options.reps});
  options.on_result = [&](const SuiteRun& run) {
    // A kSkipped run inside the shard is a resume substitution: replay the
    // prior artifact's row byte-for-byte instead of fabricating one.
    if (run.status == RunStatus::kSkipped && resume.has_value()) {
      const std::ptrdiff_t ri = resume->plan.prior_row[run.index];
      if (ri >= 0) {
        stream.write(widen_prior_row(
            resume->prior.rows[static_cast<std::size_t>(ri)], schema));
        return;
      }
    }
    stream.write(make_run_record(run, schema));
  };
  SuiteRunner(options).execute(runs);
  stream.finish();
  return runs;
}

}  // namespace colscore
