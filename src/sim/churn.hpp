// Epoch-based churn/drift engine (PR 10): the dynamic-population half of the
// `churn` workload family.
//
// Each epoch, in deterministic ascending player order, one Rng stream draws
// the epoch's fate for every player — depart (alive players), drift (alive
// players that stayed: BitRow::flip_random over flip_bits positions), or
// re-arrive (departed players, row intact). The resulting batch feeds a
// StreamSession, which maintains the neighbor graph and clustering
// incrementally (src/protocols/stream.hpp). The same plan-drawing code backs
// bench_stream_throughput, so the bench measures exactly the workload path.
//
// Determinism: fates and flip positions come only from the caller's Rng (one
// stream, fixed draw order), and the session's maintenance is
// schedule-independent — the drifted matrix and the stats are identical for
// every thread count and backend.
#pragma once

#include <span>
#include <vector>

#include "src/common/exec_policy.hpp"
#include "src/common/rng.hpp"
#include "src/model/generators.hpp"
#include "src/model/preference_matrix.hpp"
#include "src/protocols/stream.hpp"

namespace colscore {

struct ChurnConfig {
  std::size_t epochs = 16;
  /// Per-epoch drift probability per alive (non-departing) player.
  double flip_rate = 0.01;
  /// Positions flipped per drifting row.
  std::size_t flip_bits = 2;
  /// Per-epoch re-arrival probability per departed player.
  double arrive = 0.25;
  /// Per-epoch departure probability per alive player.
  double depart = 0.0;
  /// Edge threshold for the streamed neighbor graph.
  std::size_t threshold = 32;
  /// Peel floor for the streamed clustering (paper's n/B).
  std::size_t min_cluster = 2;
  GraphBackend backend = GraphBackend::kAuto;
};

/// Draws one epoch's update batch against `alive` (ascending player order,
/// at most one update per player) and applies the drift flips to `matrix` in
/// place. The caller then feeds the batch to StreamSession::apply_epoch.
std::vector<RowUpdate> draw_churn_epoch(PreferenceMatrix& matrix,
                                        const BitVector& alive,
                                        const ChurnConfig& config, Rng& rng);

/// Runs the full churn simulation over `matrix`: builds a StreamSession,
/// applies `config.epochs` epochs of drift/arrive/depart, and returns the
/// aggregate stats. The matrix is mutated in place (the drifted end state is
/// what downstream algorithms score).
ChurnStats run_churn(PreferenceMatrix& matrix, const ChurnConfig& config,
                     Rng& rng, const ExecPolicy& policy);

}  // namespace colscore
