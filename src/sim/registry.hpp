// The scenario registry: the open, string-keyed experiment surface.
//
// Every experiment is a (workload, adversary, algorithm) triple plus numeric
// knobs. Each of the three dimensions is a registry mapping a name to a
// factory, a one-line description, and optional default overrides — so a new
// workload, attack, or algorithm is added by *registration*, never by editing
// an enum or a switch statement:
//
//   WorkloadRegistry::instance().add("ring", {
//       "ring of overlapping taste groups",
//       [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
//         return make_ring(sc.n, rng);
//       }});
//
// A `ScenarioSpec` is the declarative form ("workload=planted n=512
// dishonest=20"): three names plus key=value overrides, round-trippable
// through parse()/to_string(). `Scenario::resolve()` validates the names,
// applies registered defaults then user overrides, and yields the numeric
// config that `run_scenario()` executes. The legacy enum API in
// src/sim/experiment.hpp is a thin compatibility shim over these entry
// points.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/board/bulletin_board.hpp"
#include "src/board/probe_oracle.hpp"
#include "src/common/exec_policy.hpp"
#include "src/core/params.hpp"
#include "src/core/result.hpp"
#include "src/metrics/error.hpp"
#include "src/metrics/optimal.hpp"
#include "src/model/generators.hpp"
#include "src/model/population.hpp"
#include "src/sim/record.hpp"  // MetricSpec/MetricValue/MetricEmitter + ScenarioError

namespace colscore {

struct Scenario;

/// Declarative scenario description: registry names plus key=value overrides.
/// `parse(to_string(spec)) == spec` for every spec.
struct ScenarioSpec {
  std::string workload = "planted";
  std::string adversary = "none";
  std::string algorithm = "calculate_preferences";
  /// Override keys are validated at resolve() time (see Scenario) so specs
  /// can carry keys for entries registered later.
  std::map<std::string, std::string, std::less<>> overrides;

  ScenarioSpec& set(std::string key, std::string value);

  /// Parses "workload=planted adversary=sleeper n=512 dishonest=20"
  /// (whitespace-separated key=value tokens, in any order). Throws
  /// ScenarioError on malformed tokens.
  static ScenarioSpec parse(std::string_view text);
  std::string to_string() const;

  bool operator==(const ScenarioSpec&) const = default;
};

/// Resolved, ready-to-run scenario: the numeric configuration after registry
/// defaults and spec overrides are applied. Field defaults mirror the legacy
/// ExperimentConfig so directly-constructed scenarios behave identically.
struct Scenario {
  std::string workload = "planted";
  std::string adversary = "none";
  std::string algorithm = "calculate_preferences";

  std::size_t n = 256;
  std::size_t budget = 8;
  std::uint64_t seed = 1;
  /// Planted intra-cluster diameter (or chain step for chained workloads).
  std::size_t diameter = 16;
  /// 0 = derive: budget clusters of size ~n/budget (chained: 2*budget links).
  std::size_t n_clusters = 0;
  bool zipf_sizes = false;
  /// Number of dishonest players (paper tolerance: n/(3B)).
  std::size_t dishonest = 0;
  std::size_t robust_outer_reps = 3;
  /// Compute the O(n^2) empirical OPT radius (skip for large sweeps).
  bool compute_opt = true;
  bool paper_params = false;
  Params params;  // params.budget is synced to `budget` at run time

  /// Entry-specific overrides (keys declared in the resolved entries' param
  /// schemas), validated and stored verbatim at resolve time. Factories read
  /// them through the typed getters below.
  std::map<std::string, std::string, std::less<>> extra;

  std::size_t extra_size(std::string_view key, std::size_t dflt) const;
  std::uint64_t extra_u64(std::string_view key, std::uint64_t dflt) const;
  double extra_double(std::string_view key, double dflt) const;
  bool extra_bool(std::string_view key, bool dflt) const;
  std::string extra_string(std::string_view key, std::string dflt) const;

  /// Validates the three names against the registries (aliases accepted,
  /// stored canonically) and applies, in order: workload defaults, adversary
  /// defaults, algorithm defaults, then spec.overrides. Override keys must be
  /// built-in (scenario_override_keys) or declared in one of the resolved
  /// entries' param schemas; schema-typed values are validated here, and the
  /// error names the owning entry and the offending key. Unknown names or
  /// override keys throw ScenarioError listing the accepted ones.
  static Scenario resolve(const ScenarioSpec& spec);

  /// The spec that resolves back to this scenario (canonical names, every
  /// non-default knob spelled out).
  ScenarioSpec to_spec() const;
};

/// The override keys accepted by Scenario::resolve, for error messages and
/// docs: n, budget, seed, diameter, clusters, dishonest, reps, zipf, opt,
/// paper_params, plus the Params fields (sample_rate_c, vote_c, ...).
std::vector<std::string> scenario_override_keys();

/// True for the built-in override keys above (core scenario knobs + Params
/// fields). Registry entries may not shadow these in their schemas.
bool is_reserved_override_key(const std::string& key);

/// Validates `value` for a reserved override key (same typed parsing that
/// Scenario::resolve performs). Throws ScenarioError on mismatch.
void validate_reserved_override(const std::string& key, const std::string& value);

// ---- param schemas ----------------------------------------------------------

/// Value type of a schema-declared override.
enum class ParamType { kSize, kU64, kDouble, kBool, kString };

/// One entry-specific override key, declared at registration time. Values are
/// type-checked during Scenario::resolve and land in Scenario::extra; the
/// factory reads them back through the typed Scenario::extra_* getters.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kString;
  std::string description;
};

/// Human name for `type` ("an unsigned integer", "a number", ...) — used in
/// the documented validation error strings.
const char* param_type_name(ParamType type);

/// Throws ScenarioError("override 'key=value': expected <type>") unless
/// `value` parses as `spec.type`.
void validate_param_value(const ParamSpec& spec, const std::string& value);

// ---- registry entries -------------------------------------------------------

struct ExperimentOutcome;

/// Everything an entry's metric emit hook can read when publishing values
/// after a run. Valid only for the duration of the hook call; `outcome` is
/// fully built except for `entry_metrics` (being collected) and
/// `wall_seconds` (stamped last).
struct MetricContext {
  const Scenario& scenario;
  const World& world;
  const Population& population;
  const ProbeOracle& oracle;
  const BulletinBoard& board;
  const ProtocolResult& result;
  const ExperimentOutcome& outcome;
};

/// Called once per completed run; values land in
/// ExperimentOutcome::entry_metrics and flow to every sink through the
/// metric schema (src/sim/record.hpp). Keys must be declared in the entry's
/// `metrics` list.
using MetricEmitFn = std::function<void(const MetricContext&, MetricEmitter&)>;

struct WorkloadEntry {
  std::string description;
  /// Builds the hidden world. `rng` is pre-seeded from the scenario seed;
  /// `policy` is the run's execution policy — generators whose construction
  /// itself runs parallel maintenance loops (the churn family's epoch
  /// streaming) spell them policy.par_for, everything else ignores it.
  std::function<World(const Scenario&, Rng&, const ExecPolicy&)> make;
  /// Default spec overrides applied before the user's (user wins).
  std::vector<std::pair<std::string, std::string>> defaults = {};
  /// Entry-specific override keys (typed; validated at resolve time).
  std::vector<ParamSpec> schema = {};
  /// Entry-specific result metrics (declared here; reserved keys — the
  /// built-in/diagnostic columns — are rejected at registration).
  std::vector<MetricSpec> metrics = {};
  /// Publishes the declared metrics after a run; null = nothing to publish.
  MetricEmitFn emit_metrics = nullptr;
};

struct AdversaryEntry {
  std::string description;
  /// Creates one dishonest player's behaviour. `victim` is the stable honest
  /// target (player 0, protected from corruption). Null = no corruption
  /// (the "none" entry).
  std::function<std::unique_ptr<Behavior>(const Scenario&, const World&,
                                          PlayerId victim)>
      make;
  std::vector<std::pair<std::string, std::string>> defaults = {};
  std::vector<ParamSpec> schema = {};
  std::vector<MetricSpec> metrics = {};
  MetricEmitFn emit_metrics = nullptr;
};

/// Everything an algorithm needs to run one scenario.
struct AlgorithmContext {
  const Scenario& scenario;
  const World& world;
  ProbeOracle& oracle;
  BulletinBoard& board;
  const Population& population;
  /// scenario.params with params.budget synced to scenario.budget.
  const Params& params;
  /// Execution policy for the run's parallel loops (run_scenario's).
  const ExecPolicy& policy;
};

struct AlgorithmOutput {
  ProtocolResult result;
  std::size_t honest_leader_reps = 0;  // robust-style algorithms only
  /// True when the algorithm actually elects leaders — lets the
  /// honest_leader_reps column stay absent (not a misleading 0) for
  /// algorithms the statistic does not apply to.
  bool reports_leader_reps = false;
};

struct AlgorithmEntry {
  std::string description;
  std::function<AlgorithmOutput(const AlgorithmContext&)> run;
  std::vector<std::pair<std::string, std::string>> defaults = {};
  std::vector<ParamSpec> schema = {};
  std::vector<MetricSpec> metrics = {};
  MetricEmitFn emit_metrics = nullptr;
};

// ---- registries -------------------------------------------------------------

/// Name -> entry map with alias support. Thread-safe for concurrent lookup;
/// registration is expected at startup (static init or main) but is also
/// guarded. `at()` returns a stable reference (node-based storage).
template <typename Entry>
class Registry {
 public:
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers a new entry. Names are lowercase identifiers. Throws
  /// ScenarioError if `name` (or an alias spelled `name`) is already
  /// registered — accidental double registration silently dropping an entry
  /// is the failure mode this guards against; use replace() to overwrite on
  /// purpose. Entries with defaults/schemas are validated here so a bad
  /// registration fails at startup, not mid-sweep.
  void add(std::string name, Entry entry) {
    validate_name(name);
    validate_entry(name, entry);
    std::lock_guard lock(mutex_);
    if (entries_.contains(name) || aliases_.contains(name))
      throw ScenarioError(kind_ + " '" + name +
                          "' is already registered (use replace() to "
                          "overwrite an existing entry)");
    entries_[std::move(name)] = std::move(entry);
  }

  /// Registers `entry` under `name`, overwriting any existing entry.
  void replace(std::string name, Entry entry) {
    validate_name(name);
    validate_entry(name, entry);
    std::lock_guard lock(mutex_);
    aliases_.erase(name);
    entries_[std::move(name)] = std::move(entry);
  }

  /// Registers `name` as an alternative spelling of `target`.
  void alias(std::string name, std::string target) {
    validate_name(name);
    std::lock_guard lock(mutex_);
    if (!entries_.contains(target))
      throw ScenarioError(kind_ + " alias '" + name + "' targets unknown '" +
                          target + "'");
    aliases_[std::move(name)] = std::move(target);
  }

  bool contains(std::string_view name) const {
    std::lock_guard lock(mutex_);
    return entries_.find(name) != entries_.end() ||
           aliases_.find(name) != aliases_.end();
  }

  /// Canonical name for `name` (resolving aliases); throws if unknown.
  std::string canonical(std::string_view name) const {
    std::lock_guard lock(mutex_);
    if (auto a = aliases_.find(name); a != aliases_.end()) return a->second;
    if (entries_.find(name) != entries_.end()) return std::string(name);
    throw unknown(name);
  }

  /// Entry for `name` (aliases resolved); throws a ScenarioError naming the
  /// registered alternatives if unknown.
  const Entry& at(std::string_view name) const {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      if (auto a = aliases_.find(name); a != aliases_.end())
        it = entries_.find(a->second);
    }
    if (it == entries_.end()) throw unknown(name);
    return it->second;
  }

  /// Canonical names, sorted.
  std::vector<std::string> names() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
    return out;
  }

  /// (name, description) pairs, sorted by name — for --list-* output.
  std::vector<std::pair<std::string, std::string>> descriptions() const {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_)
      out.emplace_back(name, entry.description);
    return out;
  }

 private:
  ScenarioError unknown(std::string_view name) const {
    std::string msg = "unknown " + kind_ + " '" + std::string(name) +
                      "'; registered: ";
    bool first = true;
    for (const auto& [known, entry] : entries_) {
      if (!first) msg += ", ";
      msg += known;
      first = false;
    }
    return ScenarioError(msg);
  }

  void validate_name(const std::string& name) const {
    if (name.empty()) throw ScenarioError(kind_ + " name must not be empty");
    for (char c : name)
      if (c == '=' || c == ',' || c == ' ' || c == '\t' || c == '\n')
        throw ScenarioError(kind_ + " name '" + name +
                            "' must not contain '=', ',' or whitespace");
  }

  /// Registration-time checks for entries that declare schemas/defaults:
  /// schema keys must not shadow built-in override keys or repeat, and every
  /// default must be a built-in key or a schema key with a value that parses
  /// as its declared type. Metric declarations get the analogous checks
  /// against the built-in columns. Entry types without those members (e.g.
  /// sinks) skip this.
  void validate_entry(const std::string& name, const Entry& entry) const {
    if constexpr (requires { entry.metrics; }) {
      for (std::size_t i = 0; i < entry.metrics.size(); ++i) {
        const MetricSpec& spec = entry.metrics[i];
        if (spec.key.empty())
          throw ScenarioError(kind_ + " '" + name +
                              "': metric key must not be empty");
        if (is_reserved_metric_key(spec.key))
          throw ScenarioError(kind_ + " '" + name + "': metric key '" +
                              spec.key +
                              "' shadows a built-in result column");
        for (std::size_t j = 0; j < i; ++j)
          if (entry.metrics[j].key == spec.key)
            throw ScenarioError(kind_ + " '" + name +
                                "': metric '" + spec.key +
                                "' is declared twice");
      }
      if (entry.emit_metrics && entry.metrics.empty())
        throw ScenarioError(kind_ + " '" + name +
                            "': emit_metrics set but no metrics declared");
    }
    if constexpr (requires { entry.schema; entry.defaults; }) {
      for (std::size_t i = 0; i < entry.schema.size(); ++i) {
        const ParamSpec& spec = entry.schema[i];
        if (spec.key.empty())
          throw ScenarioError(kind_ + " '" + name +
                              "': schema key must not be empty");
        if (is_reserved_override_key(spec.key))
          throw ScenarioError(kind_ + " '" + name + "': schema key '" +
                              spec.key +
                              "' shadows a built-in override key");
        for (std::size_t j = 0; j < i; ++j)
          if (entry.schema[j].key == spec.key)
            throw ScenarioError(kind_ + " '" + name +
                                "': schema declares key '" + spec.key +
                                "' twice");
      }
      for (const auto& [key, value] : entry.defaults) {
        const ParamSpec* spec = nullptr;
        for (const ParamSpec& s : entry.schema)
          if (s.key == key) { spec = &s; break; }
        try {
          if (spec != nullptr) validate_param_value(*spec, value);
          else if (is_reserved_override_key(key))
            validate_reserved_override(key, value);
          else
            throw ScenarioError("default override '" + key +
                                "' is neither a built-in override key nor "
                                "declared in the entry's schema");
        } catch (const ScenarioError& e) {
          throw ScenarioError(kind_ + " '" + name + "': " + e.what());
        }
      }
    }
  }

  std::string kind_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::map<std::string, std::string, std::less<>> aliases_;
};

/// The three singleton registries. First use registers the built-in entries
/// (every legacy enum value plus its historical CLI aliases).
class WorkloadRegistry : public Registry<WorkloadEntry> {
 public:
  static WorkloadRegistry& instance();

 private:
  WorkloadRegistry() : Registry("workload") {}
};

class AdversaryRegistry : public Registry<AdversaryEntry> {
 public:
  static AdversaryRegistry& instance();

 private:
  AdversaryRegistry() : Registry("adversary") {}
};

class AlgorithmRegistry : public Registry<AlgorithmEntry> {
 public:
  static AlgorithmRegistry& instance();

 private:
  AlgorithmRegistry() : Registry("algorithm") {}
};

// ---- execution --------------------------------------------------------------

struct ExperimentOutcome {
  ErrorStats error;          // over honest players
  OptEstimate opt;           // empirical Definition-1 bracket (if computed)
  double approx_ratio = 0.0; // worst error / opt radius (if computed)
  std::uint64_t max_probes = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t honest_max_probes = 0;
  std::size_t honest_players = 0;
  /// Bulletin-board traffic (§8 communication-cost accounting).
  std::uint64_t board_reports = 0;
  std::uint64_t board_vectors = 0;
  std::size_t planted_diameter = 0;
  std::size_t honest_leader_reps = 0;  // robust runs only
  bool has_leader_reps = false;        // honest_leader_reps applies
  bool easy_case = false;              // direct-probing path ran
  double wall_seconds = 0.0;
  std::vector<IterationInfo> iterations;
  /// Values published by the run's entries' emit hooks (declared keys only);
  /// the schema layer (make_run_record) routes them into every sink.
  std::vector<std::pair<std::string, MetricValue>> entry_metrics;
};

/// Builds the world for `scenario` (deterministic in scenario.seed — also
/// across policies: workload factories are schedule-independent). The
/// one-argument form runs under the process-default policy.
World build_scenario_world(const Scenario& scenario, const ExecPolicy& policy);
World build_scenario_world(const Scenario& scenario);

/// Installs the scenario's adversaries into a fresh population.
Population build_scenario_population(const Scenario& scenario, const World& world);

/// Runs one scenario end-to-end: world, population, algorithm, metrics.
/// Every parallel loop in the run (protocols, metrics) executes under
/// `policy`, and the calling thread is bound to one of the policy's
/// workspace slots for the duration. The one-argument form runs under the
/// process-default policy.
ExperimentOutcome run_scenario(const Scenario& scenario,
                               const ExecPolicy& policy);
ExperimentOutcome run_scenario(const Scenario& scenario);

}  // namespace colscore
