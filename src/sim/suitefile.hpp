// Suite files: checked-in JSON descriptions of whole experiment sweeps.
//
// The ROADMAP's experiment space (workloads x adversaries x algorithms x n x
// dishonest x reps) outgrows shell one-liners fast; a suite file makes the
// sweep a reviewable artifact. One JSON object describes the base spec, any
// number of grids over it, the replication count, and where the rows go:
//
//   {
//     "name": "smoke",
//     "description": "tiny CI sweep",
//     "base": {"workload": "planted", "budget": 4, "dishonest": 4,
//              "opt": false},
//     "grids": ["n=48,64 x adversary=none,sleeper"],
//     "reps": 2,
//     "sink": "jsonl",
//     "output": "smoke.jsonl"
//   }
//
// `base` maps override keys (plus workload/adversary/algorithm) to strings,
// numbers, or booleans — or is a single spec string ("workload=planted
// n=64"). `grids` reuses the `--grid` axis syntax; several grids concatenate
// in order and share one flat run-index space, so per-run seed derivation is
// identical to running the concatenated spec list directly. Replication is
// the top-level "reps" key (a reps= axis inside a grid is rejected —
// replication is a suite property here, not a sweep axis). Optional knobs:
// "threads" (0 = hardware), "wall" (include the wall_s column; off by
// default so outputs are byte-reproducible), "derive_seeds" (default true;
// false reruns literal seeds), "seed_salt", "columns" (explicit column
// selection — an array of metric keys or one comma-separated string,
// validated against the suite's metric schema at parse time; default: the
// historical column set), and "summary" ("mean"/"min"/"max": one aggregated
// row per grid cell instead of one row per rep).
//
// Fault tolerance knobs (see SuiteOptions in suite.hpp): "retries" (extra
// attempts per failed/timed-out run), "timeout_s" (per-run wall-clock
// budget; post-hoc classification), "backoff_s" (base of the exponential
// retry delay), and "faults" (a deterministic FaultPlan spec string for
// chaos tests — validated at parse time like everything else).
//
// All validation errors are ScenarioErrors prefixed "suite file 'PATH':"
// and name the offending key, so a typo in a checked-in suite fails the CI
// smoke with an actionable message.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/sink.hpp"
#include "src/sim/suite.hpp"

namespace colscore {

struct SuiteFile {
  std::string origin;  // path (or label) used in error messages
  std::string name;
  std::string description;
  ScenarioSpec base;
  /// Parsed grids, in file order. Empty = one run of `base` per rep.
  std::vector<std::vector<GridAxis>> grids;
  std::size_t reps = 1;
  std::size_t threads = 0;
  bool derive_seeds = true;
  std::optional<std::uint64_t> seed_salt;
  bool include_wall = false;
  /// Explicit column selection (schema keys, in order). Empty = the default
  /// column set (plus rep/wall as configured).
  std::vector<std::string> columns;
  /// Per-cell aggregation over reps (kNone = one row per run).
  SummaryStat summary = SummaryStat::kNone;
  std::string sink = "csv";
  std::string output;  // empty = stdout (file-only sinks reject at run time)
  /// Run isolation (SuiteOptions mirrors; see suite.hpp).
  std::size_t retries = 0;
  double timeout_s = 0.0;
  double backoff_s = 0.05;
  /// FaultPlan spec string ("" = no injected faults).
  std::string faults;

  /// Concatenated grid expansions over `base` (file order).
  std::vector<ScenarioSpec> expand() const;

  /// SuiteOptions for this file (threads/reps/derive_seeds/seed_salt;
  /// on_result left empty).
  SuiteOptions options() const;
};

/// Parses a suite-file document. `origin` labels error messages (use the
/// path). Throws ScenarioError on malformed JSON, unknown keys, or
/// wrong-typed values.
SuiteFile parse_suite_file(std::string_view json_text, std::string origin);

/// Reads and parses `path`.
SuiteFile load_suite_file(const std::string& path);

/// Caller adjustments applied on top of the file (CLI flags win over the
/// checked-in defaults). `stream` forces the sink destination (tests,
/// stdout capture) and beats both output paths.
struct SuiteFileOverrides {
  std::optional<std::string> sink;
  std::optional<std::string> output;
  std::optional<std::size_t> threads;
  std::ostream* stream = nullptr;
  std::optional<std::size_t> retries;
  std::optional<double> timeout_s;
  std::optional<double> backoff_s;
  /// FaultPlan spec string; overrides the file's "faults".
  std::optional<std::string> faults;
  /// (shard index, shard count) — run only that contiguous slice of the
  /// flat run-index space (per-run seeds are unchanged).
  std::optional<std::pair<std::size_t, std::size_t>> shard;
  /// Path of a prior artifact (PATH or PATH.tmp is read): completed runs
  /// are not re-executed, their rows are replayed from the artifact, and
  /// the merged output is written to the configured destination.
  std::optional<std::string> resume;
};

/// Expands the file, builds its sink and metric schema, and streams every
/// run through a RecordStream (column selection + summary applied) into the
/// sink in run-index order; returns the runs (failure rows included —
/// check suite_failure_count for the exit code). When resuming, the prior
/// artifact is read *before* the sink opens, so resuming onto the same
/// path is safe.
std::vector<SuiteRun> run_suite_file(const SuiteFile& file,
                                     const SuiteFileOverrides& overrides = {});

}  // namespace colscore
