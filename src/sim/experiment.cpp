#include "src/sim/experiment.hpp"

namespace colscore {

std::string ExperimentConfig::workload_name(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kPlantedClusters: return "planted";
    case WorkloadKind::kIdenticalClusters: return "identical";
    case WorkloadKind::kLowerBound: return "lower_bound";
    case WorkloadKind::kChained: return "chained";
    case WorkloadKind::kUniformRandom: return "uniform";
    case WorkloadKind::kTwoBlocks: return "two_blocks";
  }
  return "?";
}

std::string ExperimentConfig::adversary_name(AdversaryKind a) {
  switch (a) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kRandomLiar: return "random_liar";
    case AdversaryKind::kInverter: return "inverter";
    case AdversaryKind::kConstantOne: return "constant_one";
    case AdversaryKind::kTargetedBias: return "targeted_bias";
    case AdversaryKind::kHijacker: return "hijacker";
    case AdversaryKind::kSleeper: return "sleeper";
    case AdversaryKind::kStrangeColluder: return "strange_colluder";
  }
  return "?";
}

std::string ExperimentConfig::algorithm_name(AlgorithmKind a) {
  switch (a) {
    case AlgorithmKind::kCalculatePreferences: return "calculate_preferences";
    case AlgorithmKind::kRobust: return "robust";
    case AlgorithmKind::kProbeAll: return "probe_all";
    case AlgorithmKind::kRandomGuess: return "random_guess";
    case AlgorithmKind::kOracleClusters: return "oracle_clusters";
    case AlgorithmKind::kSampleAndShare: return "sample_and_share";
  }
  return "?";
}

Scenario ExperimentConfig::to_scenario() const {
  Scenario sc;
  sc.workload = workload_name(workload);
  sc.adversary = adversary_name(adversary);
  sc.algorithm = algorithm_name(algorithm);
  sc.n = n;
  sc.budget = budget;
  sc.seed = seed;
  sc.diameter = diameter;
  sc.n_clusters = n_clusters;
  sc.zipf_sizes = zipf_sizes;
  sc.dishonest = dishonest;
  sc.robust_outer_reps = robust_outer_reps;
  sc.compute_opt = compute_opt;
  sc.params = params;
  return sc;
}

World build_world(const ExperimentConfig& config) {
  return build_scenario_world(config.to_scenario());
}

Population build_population(const ExperimentConfig& config, const World& world) {
  return build_scenario_population(config.to_scenario(), world);
}

ExperimentOutcome run_experiment(const ExperimentConfig& config) {
  return run_scenario(config.to_scenario());
}

}  // namespace colscore
