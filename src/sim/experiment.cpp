#include "src/sim/experiment.hpp"

#include <algorithm>

#include "src/baseline/baselines.hpp"
#include "src/common/assert.hpp"
#include "src/common/timer.hpp"

namespace colscore {

std::string ExperimentConfig::workload_name(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kPlantedClusters: return "planted";
    case WorkloadKind::kIdenticalClusters: return "identical";
    case WorkloadKind::kLowerBound: return "lower_bound";
    case WorkloadKind::kChained: return "chained";
    case WorkloadKind::kUniformRandom: return "uniform";
    case WorkloadKind::kTwoBlocks: return "two_blocks";
  }
  return "?";
}

std::string ExperimentConfig::adversary_name(AdversaryKind a) {
  switch (a) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kRandomLiar: return "random_liar";
    case AdversaryKind::kInverter: return "inverter";
    case AdversaryKind::kConstantOne: return "constant_one";
    case AdversaryKind::kTargetedBias: return "targeted_bias";
    case AdversaryKind::kHijacker: return "hijacker";
    case AdversaryKind::kSleeper: return "sleeper";
    case AdversaryKind::kStrangeColluder: return "strange_colluder";
  }
  return "?";
}

std::string ExperimentConfig::algorithm_name(AlgorithmKind a) {
  switch (a) {
    case AlgorithmKind::kCalculatePreferences: return "calculate_preferences";
    case AlgorithmKind::kRobust: return "robust";
    case AlgorithmKind::kProbeAll: return "probe_all";
    case AlgorithmKind::kRandomGuess: return "random_guess";
    case AlgorithmKind::kOracleClusters: return "oracle_clusters";
    case AlgorithmKind::kSampleAndShare: return "sample_and_share";
  }
  return "?";
}

World build_world(const ExperimentConfig& config) {
  Rng rng(mix_keys(config.seed, 0x0a71dULL));
  const std::size_t clusters =
      config.n_clusters != 0 ? config.n_clusters : std::max<std::size_t>(1, config.budget);
  switch (config.workload) {
    case WorkloadKind::kPlantedClusters:
      return planted_clusters(config.n, config.n, clusters, config.diameter, rng,
                              config.zipf_sizes);
    case WorkloadKind::kIdenticalClusters:
      return identical_clusters(config.n, config.n, clusters, rng);
    case WorkloadKind::kLowerBound:
      return lower_bound_instance(config.n, config.budget, config.diameter, rng);
    case WorkloadKind::kChained: {
      const std::size_t links =
          config.n_clusters != 0 ? config.n_clusters
                                 : std::max<std::size_t>(2, 2 * config.budget);
      return chained_clusters(config.n, config.n, links, config.diameter, rng);
    }
    case WorkloadKind::kUniformRandom:
      return uniform_random(config.n, config.n, rng);
    case WorkloadKind::kTwoBlocks:
      return two_blocks(config.n, config.n, rng);
  }
  CS_ASSERT(false, "build_world: unknown workload");
}

Population build_population(const ExperimentConfig& config, const World& world) {
  Population pop(config.n);
  if (config.dishonest == 0 || config.adversary == AdversaryKind::kNone) return pop;
  Rng rng(mix_keys(config.seed, 0xad7e85a47ULL));

  // Hijackers need victims: pick a fixed honest victim (player 0 is always
  // protected from corruption so it stays a meaningful target).
  const PlayerId victim = 0;

  auto factory = [&]() -> std::unique_ptr<Behavior> {
    switch (config.adversary) {
      case AdversaryKind::kRandomLiar: return std::make_unique<RandomLiar>();
      case AdversaryKind::kInverter: return std::make_unique<Inverter>();
      case AdversaryKind::kConstantOne: return std::make_unique<ConstantReporter>(true);
      case AdversaryKind::kTargetedBias: {
        // Collude to promote the first 5% of objects.
        std::unordered_set<ObjectId> targets;
        for (ObjectId o = 0; o < std::max<std::size_t>(1, world.n_objects() / 20); ++o)
          targets.insert(o);
        return std::make_unique<TargetedBias>(std::move(targets), true);
      }
      case AdversaryKind::kHijacker:
        return std::make_unique<ClusterHijacker>(world.matrix, victim);
      case AdversaryKind::kSleeper: return std::make_unique<Sleeper>();
      case AdversaryKind::kStrangeColluder:
        return std::make_unique<StrangeObjectColluder>(world.matrix,
                                                       config.diameter);
      case AdversaryKind::kNone: break;
    }
    return std::make_unique<HonestBehavior>();
  };
  pop.corrupt_random(std::min(config.dishonest, config.n - 1), rng, factory, victim);
  return pop;
}

ExperimentOutcome run_experiment(const ExperimentConfig& config) {
  Timer timer;
  const World world = build_world(config);
  const Population pop = build_population(config, world);
  ProbeOracle oracle(world.matrix);
  BulletinBoard board;

  Params params = config.params;
  params.budget = config.budget;

  ProtocolResult result;
  std::size_t honest_leader_reps = 0;

  if (config.algorithm == AlgorithmKind::kRobust) {
    RobustParams rp;
    rp.inner = params;
    rp.outer_reps = config.robust_outer_reps;
    RobustResult rr = robust_calculate_preferences(
        oracle, board, pop, rp, mix_keys(config.seed, 0x0b57ULL),
        mix_keys(config.seed, 0x10ca1ULL));
    result = std::move(rr.result);
    honest_leader_reps = rr.honest_leader_reps;
  } else {
    HonestBeacon beacon(mix_keys(config.seed, 0xbeacULL));
    ProtocolEnv env(oracle, board, pop, beacon, mix_keys(config.seed, 0x10ca1ULL));
    switch (config.algorithm) {
      case AlgorithmKind::kCalculatePreferences:
        result = calculate_preferences(env, params, mix_keys(config.seed, 0xca1cULL));
        break;
      case AlgorithmKind::kProbeAll:
        result = probe_all(env);
        break;
      case AlgorithmKind::kRandomGuess:
        result = random_guess(env, mix_keys(config.seed, 0x99e55ULL));
        break;
      case AlgorithmKind::kOracleClusters:
        result = oracle_clusters(env, world);
        break;
      case AlgorithmKind::kSampleAndShare: {
        SampleShareParams sp;
        sp.budget = config.budget;
        sp.seed = mix_keys(config.seed, 0x5a3b1eULL);
        result = sample_and_share(env, sp).result;
        break;
      }
      case AlgorithmKind::kRobust:
        break;  // handled above
    }
  }

  ExperimentOutcome outcome;
  const std::vector<PlayerId> honest = pop.honest_players();
  outcome.honest_players = honest.size();
  outcome.error = error_stats(world.matrix, result.outputs, honest);
  outcome.planted_diameter = world.planted_diameter;
  outcome.total_probes = result.total_probes;
  outcome.max_probes = result.max_probes;
  for (PlayerId p : honest)
    outcome.honest_max_probes =
        std::max(outcome.honest_max_probes, result.probes_by_player[p]);
  outcome.iterations = result.iterations;
  outcome.honest_leader_reps = honest_leader_reps;
  outcome.board_reports = board.report_count();
  outcome.board_vectors = board.vector_count();

  if (config.compute_opt) {
    const std::size_t group = std::max<std::size_t>(2, config.n / config.budget);
    outcome.opt = opt_radius(world.matrix, group);
    const auto errors = hamming_errors(world.matrix, result.outputs, honest);
    outcome.approx_ratio = worst_approx_ratio(errors, honest, outcome.opt);
  }
  outcome.wall_seconds = timer.seconds();
  return outcome;
}

}  // namespace colscore
