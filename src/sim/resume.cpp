#include "src/sim/resume.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/json.hpp"
#include "src/common/log.hpp"

#if defined(COLSCORE_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace colscore {

namespace {

[[noreturn]] void resume_fail(const std::string& source,
                              const std::string& what) {
  throw ScenarioError("resume '" + source + "': " + what);
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// ---- cell decoding ----------------------------------------------------------

/// Strict u64 ("152489"; not "", "-1", "3.5", "1e3").
bool parse_u64_text(const std::string& text, std::uint64_t& out) {
  std::size_t used = 0;
  try {
    if (text.empty() || text[0] == '-') return false;
    out = std::stoull(text, &used);
  } catch (...) {
    return false;
  }
  return used == text.size();
}

/// Strict f64; accepts the non-finite spellings ("nan", "inf", "-inf") the
/// formatter emits.
bool parse_f64_text(const std::string& text, double& out) {
  std::size_t used = 0;
  try {
    out = std::stod(text, &used);
  } catch (...) {
    return false;
  }
  return !text.empty() && used == text.size();
}

// ---- text loading -----------------------------------------------------------

/// Reads `source` into complete lines. A final line without its terminating
/// newline is the one row a crash can cut mid-write (sinks emit whole
/// '\n'-terminated rows); it is dropped and counted, never parsed — a
/// truncated numeric cell could otherwise decode to a plausible wrong value.
std::vector<std::string> read_complete_lines(const std::string& source,
                                             std::size_t& truncated_rows) {
  std::ifstream in(source, std::ios::binary);
  if (!in) resume_fail(source, "cannot open for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = std::move(buffer).str();
  truncated_rows = 0;
  if (!text.empty() && text.back() != '\n') {
    const std::size_t nl = text.find_last_of('\n');
    text.resize(nl == std::string::npos ? 0 : nl + 1);
    truncated_rows = 1;
  }
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// ---- jsonl ------------------------------------------------------------------

RunRecord decode_jsonl_row(const JsonValue& doc, const MetricSchema& schema,
                           const std::string& source,
                           const std::string& where) {
  if (!doc.is_object())
    resume_fail(source, where + ": expected an object, got " +
                            doc.kind_name());
  if (doc.members.size() != schema.size())
    resume_fail(source, where + ": has " + std::to_string(doc.members.size()) +
                            " fields where the schema has " +
                            std::to_string(schema.size()));
  RunRecord row(&schema);
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const auto& [key, v] = doc.members[i];
    const MetricSpec& spec = schema.spec(i);
    if (key != spec.key)
      resume_fail(source, where + ": field " + std::to_string(i) + " is '" +
                              key + "' where the schema has '" + spec.key +
                              "' (different columns?)");
    if (v.is_null()) continue;  // absent metric
    const auto wrong_kind = [&]() {
      resume_fail(source, where + ": field '" + key + "' is " +
                              v.kind_name() + " where the schema declares " +
                              metric_type_name(spec.type));
    };
    switch (spec.type) {
      case MetricType::kU64:
      case MetricType::kSize: {
        std::uint64_t u = 0;
        if (!v.is_number() || !parse_u64_text(v.text, u)) wrong_kind();
        row.set_value(i, MetricValue::of_u64(u));
        break;
      }
      case MetricType::kF64: {
        // Finite values are native numbers; non-finite ones are the quoted
        // spellings JsonlSink emits ("nan", "inf", "-inf").
        double d = 0.0;
        if ((!v.is_number() && !v.is_string()) || !parse_f64_text(v.text, d))
          wrong_kind();
        row.set_value(i, MetricValue::of_f64(d));
        break;
      }
      case MetricType::kString:
        if (!v.is_string()) wrong_kind();
        row.set_value(i, MetricValue::of_string(v.text));
        break;
      case MetricType::kBool:
        if (!v.is_bool()) wrong_kind();
        row.set_value(i, MetricValue::of_bool(v.boolean));
        break;
    }
  }
  return row;
}

void load_jsonl_rows(PriorOutput& out, const MetricSchema& schema) {
  const std::vector<std::string> lines =
      read_complete_lines(out.source_path, out.truncated_rows);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string where = "line " + std::to_string(li + 1);
    if (lines[li].empty()) continue;
    JsonValue doc;
    try {
      doc = json_parse(lines[li]);
    } catch (const JsonError& e) {
      resume_fail(out.source_path, where + ": " + e.what());
    }
    out.rows.push_back(decode_jsonl_row(doc, schema, out.source_path, where));
  }
}

// ---- csv --------------------------------------------------------------------

/// Splits one CSV line into cells, honoring the writer's quoting ('"'-
/// wrapped cells, '""' escapes). Embedded newlines are not supported —
/// nothing in the pipeline emits them. Returns false on a malformed line
/// (unterminated quote, text after a closing quote).
bool split_csv_row(const std::string& line, std::vector<std::string>& cells) {
  cells.clear();
  std::size_t pos = 0;
  for (;;) {
    std::string cell;
    if (pos < line.size() && line[pos] == '"') {
      ++pos;
      for (;;) {
        if (pos >= line.size()) return false;  // unterminated quote
        if (line[pos] == '"') {
          if (pos + 1 < line.size() && line[pos + 1] == '"') {
            cell += '"';
            pos += 2;
            continue;
          }
          ++pos;
          break;
        }
        cell += line[pos++];
      }
      if (pos < line.size() && line[pos] != ',') return false;
    } else {
      const std::size_t comma = line.find(',', pos);
      cell = line.substr(pos, comma - pos);
      pos = comma == std::string::npos ? line.size() : comma;
    }
    cells.push_back(std::move(cell));
    if (pos >= line.size()) return true;
    ++pos;  // the comma
  }
}

void load_csv_rows(PriorOutput& out, const MetricSchema& schema) {
  const std::vector<std::string> lines =
      read_complete_lines(out.source_path, out.truncated_rows);
  if (lines.empty())
    resume_fail(out.source_path, "no header row (empty artifact)");
  std::string header;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (i != 0) header += ',';
    header += schema.spec(i).key;
  }
  if (lines.front() != header)
    resume_fail(out.source_path, "header '" + lines.front() +
                                     "' does not match the suite's columns '" +
                                     header + "'");
  std::vector<std::string> cells;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string where = "line " + std::to_string(li + 1);
    if (!split_csv_row(lines[li], cells))
      resume_fail(out.source_path, where + ": malformed quoting");
    if (cells.size() != schema.size())
      resume_fail(out.source_path,
                  where + ": has " + std::to_string(cells.size()) +
                      " cells where the schema has " +
                      std::to_string(schema.size()));
    RunRecord row(&schema);
    for (std::size_t i = 0; i < schema.size(); ++i) {
      const MetricSpec& spec = schema.spec(i);
      if (cells[i].empty()) continue;  // absent metric
      const auto bad_cell = [&]() {
        resume_fail(out.source_path,
                    where + ": cell '" + cells[i] + "' under column '" +
                        spec.key + "' is not a valid " +
                        metric_type_name(spec.type));
      };
      switch (spec.type) {
        case MetricType::kU64:
        case MetricType::kSize: {
          std::uint64_t u = 0;
          if (!parse_u64_text(cells[i], u)) bad_cell();
          row.set_value(i, MetricValue::of_u64(u));
          break;
        }
        case MetricType::kF64: {
          double d = 0.0;
          if (!parse_f64_text(cells[i], d)) bad_cell();
          row.set_value(i, MetricValue::of_f64(d));
          break;
        }
        case MetricType::kString:
          row.set_value(i, MetricValue::of_string(cells[i]));
          break;
        case MetricType::kBool:
          if (cells[i] != "0" && cells[i] != "1") bad_cell();
          row.set_value(i, MetricValue::of_bool(cells[i] == "1"));
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
}

// ---- sqlite -----------------------------------------------------------------

#if defined(COLSCORE_HAVE_SQLITE)

std::string sqlite_quote_ident(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

const char* sqlite_affinity(MetricType type) {
  switch (type) {
    case MetricType::kU64:
    case MetricType::kSize:
    case MetricType::kBool: return "INTEGER";
    case MetricType::kF64: return "REAL";
    case MetricType::kString: return "TEXT";
  }
  return "TEXT";
}

void load_sqlite_rows(PriorOutput& out, const MetricSchema& schema) {
  sqlite3* db = nullptr;
  if (sqlite3_open_v2(out.source_path.c_str(), &db, SQLITE_OPEN_READONLY,
                      nullptr) != SQLITE_OK) {
    const std::string detail =
        db != nullptr ? sqlite3_errmsg(db) : "out of memory";
    sqlite3_close(db);
    resume_fail(out.source_path, "cannot open database: " + detail);
  }
  sqlite3_busy_timeout(db, 5000);
  const auto fail = [&](const std::string& what) {
    const std::string detail = sqlite3_errmsg(db);
    sqlite3_close(db);
    resume_fail(out.source_path, what + ": " + detail);
  };

  // The `runs` table must mirror the output schema exactly — same names,
  // same order, same affinities — or the decoded rows would be garbage.
  sqlite3_stmt* info = nullptr;
  if (sqlite3_prepare_v2(db, "PRAGMA table_info(runs)", -1, &info, nullptr) !=
      SQLITE_OK)
    fail("cannot inspect the 'runs' table");
  std::vector<std::pair<std::string, std::string>> existing;
  while (sqlite3_step(info) == SQLITE_ROW) {
    const unsigned char* name = sqlite3_column_text(info, 1);
    const unsigned char* type = sqlite3_column_text(info, 2);
    existing.emplace_back(
        name != nullptr ? reinterpret_cast<const char*>(name) : "",
        type != nullptr ? reinterpret_cast<const char*>(type) : "");
  }
  sqlite3_finalize(info);
  const auto table_mismatch = [&](const std::string& what) {
    sqlite3_close(db);
    resume_fail(out.source_path,
                "the 'runs' table does not match the suite schema (" + what +
                    ")");
  };
  if (existing.empty()) table_mismatch("no 'runs' table");
  if (existing.size() != schema.size())
    table_mismatch("it has " + std::to_string(existing.size()) +
                   " columns where the schema has " +
                   std::to_string(schema.size()));
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const MetricSpec& spec = schema.spec(i);
    if (existing[i].first != spec.key)
      table_mismatch("column " + std::to_string(i) + " is '" +
                     existing[i].first + "' where the schema has '" +
                     spec.key + "'");
    if (existing[i].second != sqlite_affinity(spec.type))
      table_mismatch("column '" + spec.key + "' is " + existing[i].second +
                     " where the schema needs " + sqlite_affinity(spec.type));
  }

  std::string sql = "SELECT ";
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (i != 0) sql += ", ";
    sql += sqlite_quote_ident(schema.spec(i).key);
  }
  sql += " FROM runs ORDER BY rowid";
  sqlite3_stmt* select = nullptr;
  if (sqlite3_prepare_v2(db, sql.c_str(), -1, &select, nullptr) != SQLITE_OK)
    fail("cannot read the 'runs' table");
  int rc = 0;
  while ((rc = sqlite3_step(select)) == SQLITE_ROW) {
    RunRecord row(&schema);
    for (std::size_t i = 0; i < schema.size(); ++i) {
      const int col = static_cast<int>(i);
      if (sqlite3_column_type(select, col) == SQLITE_NULL) continue;
      switch (schema.spec(i).type) {
        case MetricType::kU64:
        case MetricType::kSize:
          // The sink binds u64 as the two's-complement int64; cast back.
          row.set_value(i, MetricValue::of_u64(static_cast<std::uint64_t>(
                               sqlite3_column_int64(select, col))));
          break;
        case MetricType::kF64:
          row.set_value(i,
                        MetricValue::of_f64(sqlite3_column_double(select, col)));
          break;
        case MetricType::kBool:
          row.set_value(i, MetricValue::of_bool(
                               sqlite3_column_int(select, col) != 0));
          break;
        case MetricType::kString: {
          const unsigned char* s = sqlite3_column_text(select, col);
          row.set_value(i, MetricValue::of_string(
                               s != nullptr ? reinterpret_cast<const char*>(s)
                                            : ""));
          break;
        }
      }
    }
    out.rows.push_back(std::move(row));
  }
  sqlite3_finalize(select);
  if (rc != SQLITE_DONE) fail("row read failed");
  sqlite3_close(db);
}

#endif  // COLSCORE_HAVE_SQLITE

// ---- identity matching ------------------------------------------------------

const std::set<std::string>& identity_keys() {
  static const std::set<std::string> keys = {
      "workload", "algorithm", "adversary", "n",   "budget",
      "diameter", "dishonest", "seed",      "rep"};
  return keys;
}

/// The planned run's canonical text for an identity column — spelled
/// exactly like RunRecord::cell_text would spell it, so prior-row keys and
/// planned keys compare byte-for-byte.
std::string planned_cell(const SuiteRun& run, const std::string& key) {
  const Scenario& sc = run.scenario;
  if (key == "workload") return sc.workload;
  if (key == "algorithm") return sc.algorithm;
  if (key == "adversary") return sc.adversary;
  if (key == "n") return std::to_string(sc.n);
  if (key == "budget") return std::to_string(sc.budget);
  if (key == "diameter") return std::to_string(sc.diameter);
  if (key == "dishonest") return std::to_string(sc.dishonest);
  if (key == "seed") return std::to_string(sc.seed);
  if (key == "rep") return std::to_string(run.rep);
  CS_ASSERT(false, "planned_cell: not an identity column");
  return "";
}

}  // namespace

// ---- the public surface -----------------------------------------------------

PriorOutput load_prior_output(std::string_view sink_name,
                              const std::string& path,
                              const MetricSchema& out_schema) {
  if (path.empty())
    throw ScenarioError("resume needs a file artifact (an output path)");
  PriorOutput out;
  // Prefer the crashed run's durable partial over an older complete
  // artifact: a PATH.tmp only exists when a fresh-mode run did not reach
  // finish(), and that interrupted run is the one being resumed.
  const std::string tmp = path + ".tmp";
  if (file_exists(tmp)) out.source_path = tmp;
  else if (file_exists(path)) out.source_path = path;
  else
    throw ScenarioError("resume '" + path + "': no prior artifact at '" +
                        path + "' or '" + tmp + "'");
  if (sink_name == "jsonl") {
    load_jsonl_rows(out, out_schema);
  } else if (sink_name == "csv") {
    load_csv_rows(out, out_schema);
  } else if (sink_name == "sqlite") {
#if defined(COLSCORE_HAVE_SQLITE)
    load_sqlite_rows(out, out_schema);
#else
    throw ScenarioError("resume: this build has no sqlite support");
#endif
  } else {
    throw ScenarioError("resume: sink '" + std::string(sink_name) +
                        "' has no artifact reader (supported: csv, jsonl, "
                        "sqlite)");
  }
  if (out.truncated_rows != 0)
    log_warn("resume: discarded ", out.truncated_rows,
             " truncated trailing row in '", out.source_path, "'");
  return out;
}

ResumePlan plan_resume(const PriorOutput& prior,
                       std::span<const SuiteRun> planned,
                       const MetricSchema& out_schema) {
  std::vector<std::size_t> id_cols;
  bool has_seed = false;
  for (std::size_t i = 0; i < out_schema.size(); ++i) {
    const std::string& key = out_schema.spec(i).key;
    if (!identity_keys().contains(key)) continue;
    id_cols.push_back(i);
    has_seed = has_seed || key == "seed";
  }
  if (!has_seed)
    throw ScenarioError(
        "resume requires the 'seed' column in the output — without it rows "
        "cannot be matched to planned runs");
  const MetricSpec* status_spec = out_schema.find("status");
  const std::size_t status_col =
      status_spec != nullptr ? out_schema.index_of("status") : 0;

  // '\x1f' (unit separator) cannot appear in the identity cells (names are
  // registry identifiers, the rest are decimal), so joined keys are unique.
  std::map<std::string, std::size_t> by_key;
  for (std::size_t pi = 0; pi < planned.size(); ++pi) {
    std::string key;
    for (const std::size_t c : id_cols) {
      key += planned_cell(planned[pi], out_schema.spec(c).key);
      key += '\x1f';
    }
    if (!by_key.emplace(std::move(key), pi).second)
      throw ScenarioError(
          "resume: two planned runs share the selected identity columns — "
          "include 'seed' (derived seeds) or 'rep' in the columns to "
          "distinguish replicas");
  }

  ResumePlan plan;
  plan.prior_row.assign(planned.size(), -1);
  for (std::size_t ri = 0; ri < prior.rows.size(); ++ri) {
    const RunRecord& row = prior.rows[ri];
    std::string key;
    for (const std::size_t c : id_cols) {
      key += row.cell_text(c);
      key += '\x1f';
    }
    const auto it = by_key.find(key);
    if (it == by_key.end())
      throw ScenarioError("resume '" + prior.source_path + "': row " +
                          std::to_string(ri + 1) +
                          " does not correspond to any planned run — the "
                          "artifact belongs to a different suite");
    // Only complete rows count; failed/timeout rows are re-run. Artifacts
    // without a status column predate failure rows: every row is complete.
    if (status_spec != nullptr && row.cell_text(status_col) != "ok") continue;
    if (plan.prior_row[it->second] == -1) ++plan.completed;
    plan.prior_row[it->second] = static_cast<std::ptrdiff_t>(ri);
  }
  return plan;
}

ResumeContext prepare_resume(std::string_view sink_name,
                             const std::string& path,
                             std::vector<SuiteRun>& planned,
                             const MetricSchema& schema,
                             std::span<const std::string> columns,
                             SummaryStat summary) {
  if (summary != SummaryStat::kNone)
    throw ScenarioError(
        "resume cannot be combined with a summary (aggregated rows do not "
        "identify individual runs)");
  ResumeContext ctx;
  ctx.out_schema = std::make_unique<MetricSchema>(schema.select(columns));
  ctx.prior = load_prior_output(sink_name, path, *ctx.out_schema);
  ctx.plan = plan_resume(ctx.prior, planned, *ctx.out_schema);
  for (std::size_t i = 0; i < planned.size(); ++i)
    if (ctx.plan.prior_row[i] != -1) planned[i].status = RunStatus::kSkipped;
  return ctx;
}

RunRecord widen_prior_row(const RunRecord& row,
                          const MetricSchema& full_schema) {
  RunRecord out(&full_schema);
  const MetricSchema& row_schema = row.schema();
  for (std::size_t i = 0; i < row_schema.size(); ++i)
    if (row.value(i).has_value())
      out.set(row_schema.spec(i).key, row.value(i));
  return out;
}

}  // namespace colscore
