#include "src/sim/suite.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <sstream>

#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/sim/fault.hpp"

namespace colscore {

// ---- grid sweeps ------------------------------------------------------------

std::vector<GridAxis> parse_grid(std::string_view text) {
  std::vector<GridAxis> axes;
  std::istringstream in{std::string(text)};
  std::string token;
  while (in >> token) {
    if (token == "x" || token == "X") continue;  // axis separator
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
      throw ScenarioError("malformed grid axis '" + token +
                          "'; expected key=v1,v2,...");
    GridAxis axis;
    axis.key = token.substr(0, eq);
    for (const GridAxis& seen : axes)
      if (seen.key == axis.key)
        throw ScenarioError("grid axis '" + axis.key + "' appears twice");
    std::stringstream values(token.substr(eq + 1));
    std::string value;
    while (std::getline(values, value, ','))
      if (!value.empty()) axis.values.push_back(value);
    if (axis.values.empty())
      throw ScenarioError("grid axis '" + axis.key + "' has no values");
    axes.push_back(std::move(axis));
  }
  return axes;
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<GridAxis>& axes) {
  std::vector<ScenarioSpec> specs{base};
  for (const GridAxis& axis : axes) {
    std::vector<ScenarioSpec> next;
    next.reserve(specs.size() * axis.values.size());
    for (const ScenarioSpec& spec : specs)
      for (const std::string& value : axis.values) {
        ScenarioSpec expanded = spec;
        expanded.set(axis.key, value);
        next.push_back(std::move(expanded));
      }
    specs = std::move(next);
  }
  return specs;
}

// ---- the runner -------------------------------------------------------------

SuiteRunner::SuiteRunner(SuiteOptions options) : options_(std::move(options)) {}

std::size_t take_reps_axis(std::vector<GridAxis>& axes) {
  for (auto it = axes.begin(); it != axes.end(); ++it) {
    if (it->key != "reps") continue;
    if (it->values.size() != 1)
      throw ScenarioError(
          "grid axis 'reps' takes a single replication count (to sweep the "
          "robust algorithm's outer repetitions, set them on the base spec: "
          "--set reps=R)");
    const std::string& value = it->values.front();
    // stoull silently wraps negatives ("-2" -> huge), so reject them up
    // front like the registry's override parser does.
    std::size_t used = 0;
    std::size_t reps = 0;
    try {
      if (value.empty() || value[0] == '-') throw ScenarioError("");
      reps = std::stoull(value, &used);
    } catch (...) {
      used = 0;
    }
    if (used != value.size() || reps == 0)
      throw ScenarioError("grid axis 'reps=" + value +
                          "': expected a positive integer");
    axes.erase(it);
    return reps;
  }
  return 1;
}

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t index,
                                                std::size_t count) {
  if (count == 0 || index >= count)
    throw ScenarioError("shard " + std::to_string(index) + "/" +
                        std::to_string(count) +
                        ": the shard index must be below the shard count");
  return {total * index / count, total * (index + 1) / count};
}

std::pair<std::size_t, std::size_t> parse_shard(std::string_view text) {
  const auto malformed = [&]() -> ScenarioError {
    return ScenarioError("malformed shard '" + std::string(text) +
                         "'; expected I/K with 0 <= I < K (e.g. 0/2)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= text.size())
    throw malformed();
  const auto parse_part = [&](std::string_view part) {
    std::size_t used = 0;
    std::size_t out = 0;
    try {
      const std::string s(part);
      if (s.empty() || s[0] == '-') throw ScenarioError("");
      out = std::stoull(s, &used);
    } catch (...) {
      used = 0;
    }
    if (used != part.size()) throw malformed();
    return out;
  };
  const std::size_t index = parse_part(text.substr(0, slash));
  const std::size_t count = parse_part(text.substr(slash + 1));
  if (count == 0 || index >= count) throw malformed();
  return {index, count};
}

std::size_t suite_failure_count(std::span<const SuiteRun> runs) {
  std::size_t failures = 0;
  for (const SuiteRun& run : runs)
    if (run.status == RunStatus::kFailed || run.status == RunStatus::kTimeout)
      ++failures;
  return failures;
}

std::vector<SuiteRun> SuiteRunner::plan(
    const std::vector<ScenarioSpec>& specs) const {
  const std::size_t reps = std::max<std::size_t>(1, options_.reps);
  if (reps > 1 && !options_.derive_seeds)
    throw ScenarioError("reps > 1 requires derived seeds (the k replicas "
                        "would otherwise be identical runs)");
  // Resolve everything first: name/key errors surface before any run starts,
  // and seed derivation depends only on the (deterministic) expansion index.
  // Reps vary fastest, so a cell's replicas stream out adjacent to each
  // other; the flat index feeds seed derivation, which keeps every
  // (cell, rep) seed distinct and schedule-independent — and, because the
  // index is global, identical across shards and resumed re-runs.
  std::vector<SuiteRun> runs(specs.size() * reps);
  for (std::size_t si = 0; si < specs.size(); ++si) {
    const Scenario resolved = Scenario::resolve(specs[si]);
    for (std::size_t r = 0; r < reps; ++r) {
      const std::size_t i = si * reps + r;
      runs[i].index = i;
      runs[i].rep = r;
      runs[i].spec = specs[si];
      runs[i].scenario = resolved;
      if (options_.derive_seeds)
        runs[i].scenario.seed =
            mix_keys(options_.seed_salt, i, runs[i].scenario.seed);
    }
  }
  return runs;
}

void SuiteRunner::execute(std::vector<SuiteRun>& runs) const {
  // Shard selection: only [lo, hi) executes and streams. Out-of-shard runs
  // are another process's rows; marking them kSkipped (rather than leaving
  // a default kOk with no outcome) keeps the returned vector honest.
  const auto [lo, hi] =
      shard_range(runs.size(), options_.shard_index, options_.shard_count);
  for (std::size_t i = 0; i < lo; ++i) runs[i].status = RunStatus::kSkipped;
  for (std::size_t i = hi; i < runs.size(); ++i)
    runs[i].status = RunStatus::kSkipped;

  // Ordered streaming: a completed run is emitted once every earlier run has
  // been emitted, so callback order never depends on scheduling. If the
  // callback itself throws (a dying sink), emission goes dead: later
  // completions still mark themselves done but nothing is re-delivered —
  // without the guard, the next completion would re-invoke on_result for
  // runs at next_emit and duplicate rows in the sink.
  std::mutex emit_mutex;
  std::vector<bool> done(runs.size(), false);
  std::size_t next_emit = lo;
  bool emit_dead = false;
  auto complete = [&](std::size_t i) {
    if (!options_.on_result) return;
    std::lock_guard lock(emit_mutex);
    done[i] = true;
    if (emit_dead) return;
    while (next_emit < hi && done[next_emit]) {
      try {
        options_.on_result(runs[next_emit]);
      } catch (...) {
        emit_dead = true;
        throw;  // propagates out of the body; the pool cancels the rest
      }
      ++next_emit;
    }
  };

  // One policy serves the suite loop and every nested protocol loop of its
  // runs: run_scenario executes on a suite worker already bound to the
  // policy's arena, so its WorkerScope reuses the worker's slot and the
  // protocol's inner par_fors claim chunks from the same pool (the
  // chunk-claiming loop self-completes, so nesting cannot deadlock).
  std::optional<ThreadPool> local_pool;
  ExecPolicy policy = ExecPolicy::serial();
  if (options_.policy != nullptr) {
    policy = *options_.policy;
  } else if (options_.threads == 0) {
    policy = ExecPolicy::process_default();
  } else if (options_.threads > 1) {
    local_pool.emplace(options_.threads);
    policy = ExecPolicy::pool(*local_pool);
  }

  auto body = [&](std::size_t i) {
    SuiteRun& run = runs[i];
    if (run.status == RunStatus::kSkipped) {  // resume: already complete
      complete(i);
      return;
    }
    // Run isolation: each attempt is try/caught and timed; a throw or a
    // blown wall-clock budget fails the attempt, backs off exponentially,
    // and retries with the identical scenario/seed. Exhausted retries leave
    // a kFailed/kTimeout run that still streams — one bad cell no longer
    // aborts a thousand-run sweep.
    for (std::size_t attempt = 0;; ++attempt) {
      if (attempt > 0)
        sleep_for_seconds(options_.backoff_s *
                          static_cast<double>(1ULL << std::min<std::size_t>(
                                                  attempt - 1, 20)));
      run.attempts = attempt + 1;
      Timer timer;
      try {
        if (options_.faults != nullptr)
          options_.faults->before_attempt(i, attempt);
        run.outcome = run_scenario(run.scenario, policy);
        run.status = RunStatus::kOk;
        run.error.clear();
      } catch (const std::exception& e) {
        run.status = RunStatus::kFailed;
        run.error = e.what();
        run.outcome = ExperimentOutcome{};
      } catch (...) {
        run.status = RunStatus::kFailed;
        run.error = "unknown error";
        run.outcome = ExperimentOutcome{};
      }
      if (run.status == RunStatus::kOk && options_.timeout_s > 0 &&
          timer.seconds() > options_.timeout_s) {
        // Post-hoc classification: the work finished but blew its budget;
        // discard the outcome so a timeout row never smuggles in results.
        run.status = RunStatus::kTimeout;
        run.error = "run exceeded timeout_s=" +
                    std::to_string(options_.timeout_s);
        run.outcome = ExperimentOutcome{};
      }
      if (run.status == RunStatus::kOk || attempt >= options_.retries) break;
    }
    complete(i);
  };

  policy.par_for(lo, hi, body, /*grain=*/1);
}

std::vector<SuiteRun> SuiteRunner::run(const std::vector<ScenarioSpec>& specs) const {
  std::vector<SuiteRun> runs = plan(specs);
  execute(runs);
  return runs;
}

std::vector<SuiteRun> SuiteRunner::run_grid(const ScenarioSpec& base,
                                            std::string_view grid) const {
  std::vector<GridAxis> axes = parse_grid(grid);
  const std::size_t grid_reps = take_reps_axis(axes);
  if (grid_reps == 1) return run(expand_grid(base, axes));
  SuiteOptions options = options_;
  options.reps = grid_reps;
  return SuiteRunner(std::move(options)).run(expand_grid(base, axes));
}

// ---- CSV --------------------------------------------------------------------

// Both functions are thin shims over the typed schema layer
// (src/sim/record.hpp): the default column selection and the one shared
// formatting path. The cell bytes are pinned by the determinism goldens.

std::vector<std::string> suite_csv_columns(bool include_wall, bool include_rep) {
  return default_columns(include_wall, include_rep);
}

std::vector<std::string> suite_row_cells(const SuiteRun& run, bool include_wall,
                                         bool include_rep) {
  const MetricSchema schema = scenario_metric_schema(run.scenario);
  const RunRecord record = make_run_record(run, schema);
  std::vector<std::string> cells;
  for (const std::string& key : default_columns(include_wall, include_rep))
    cells.push_back(record.cell_text(schema.index_of(key)));
  return cells;
}

void suite_csv_row(CsvWriter& writer, const SuiteRun& run, bool include_wall,
                   bool include_rep) {
  // CsvWriter asserts the width against its header.
  writer.row(suite_row_cells(run, include_wall, include_rep));
}

}  // namespace colscore
