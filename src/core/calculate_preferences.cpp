#include "src/core/calculate_preferences.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/bitmatrix.hpp"
#include "src/common/mathutil.hpp"
#include "src/common/workspace.hpp"
#include "src/protocols/neighbor_graph.hpp"
#include "src/protocols/select.hpp"
#include "src/protocols/work_share.hpp"

namespace colscore {

namespace {

/// Snapshot of per-player probe counters (for delta accounting).
std::vector<std::uint64_t> probe_snapshot(const ProbeOracle& oracle) {
  std::vector<std::uint64_t> counts(oracle.n_players());
  for (PlayerId p = 0; p < counts.size(); ++p) counts[p] = oracle.probes_by(p);
  return counts;
}

void fill_probe_deltas(ProtocolResult& result, const ProbeOracle& oracle,
                       const std::vector<std::uint64_t>& before) {
  result.probes_by_player.assign(before.size(), 0);
  result.total_probes = 0;
  result.max_probes = 0;
  for (PlayerId p = 0; p < before.size(); ++p) {
    const std::uint64_t delta = oracle.probes_by(p) - before[p];
    result.probes_by_player[p] = delta;
    result.total_probes += delta;
    result.max_probes = std::max(result.max_probes, delta);
  }
}

/// The diameter guesses to iterate. Guesses with sample rate >= 1 are
/// equivalent (S = everything), so they collapse into one full-universe
/// iteration, which also covers the paper's D < log n regime.
std::vector<std::size_t> diameter_guesses(std::size_t n_objects, double sample_rate_c,
                                          double ln_n) {
  std::vector<std::size_t> guesses;
  guesses.push_back(0);  // 0 = full-universe iteration
  const double saturation = sample_rate_c * ln_n;  // rate hits 1 below this D
  for (std::size_t d = 1; (std::size_t{1} << d) <= n_objects; ++d) {
    const std::size_t dd = std::size_t{1} << d;
    if (static_cast<double>(dd) > saturation) guesses.push_back(dd);
  }
  return guesses;
}

}  // namespace

ProtocolResult calculate_preferences(ProtocolEnv& env, const Params& params,
                                     std::uint64_t phase_key) {
  const std::size_t n = env.n_players();
  const std::size_t n_objects = env.n_objects();
  const double ln_n = ln_clamped(n);
  const std::size_t log2n = log2_ceil(n);
  CS_ASSERT(params.budget >= 1, "calculate_preferences: budget >= 1");

  ProtocolResult result;
  const auto before = probe_snapshot(env.oracle);

  std::vector<ObjectId> all_objects(n_objects);
  for (ObjectId o = 0; o < n_objects; ++o) all_objects[o] = o;

  // Easy case (§6.1): B = Ω(n / log n) -> probe everything. One word-level
  // charge per player, written straight into the output row — no uint8
  // staging, no per-bit set.
  if (static_cast<double>(params.budget) * static_cast<double>(log2n) >=
      params.easy_case_factor * static_cast<double>(n)) {
    result.easy_case = true;
    result.outputs.assign(n, BitVector(n_objects));
    env.par_for(0, n, [&](std::size_t p) {
      env.own_probe_row(static_cast<PlayerId>(p), 0, n_objects, result.outputs[p]);
    });
    fill_probe_deltas(result, env.oracle, before);
    return result;
  }

  std::vector<PlayerId> all_players(n);
  for (PlayerId p = 0; p < n; ++p) all_players[p] = p;

  const std::vector<std::size_t> guesses =
      diameter_guesses(n_objects, params.sample_rate_c, ln_n);

  // candidates[g] row p = candidate vector of player p from guess g. Pooled
  // in the per-worker workspace (cp_* group) so grid cells reuse the
  // allocations; live across the whole guess loop, which is why SmallRadius
  // draws its own matrices from the separate sr_* pool.
  std::vector<BitMatrix>& candidates = env.workspace().cp_candidates;
  if (candidates.size() < guesses.size()) candidates.resize(guesses.size());

  const std::size_t min_cluster = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(
             static_cast<double>(n) / static_cast<double>(params.budget) *
             (1.0 - params.cluster_slack))));

  WorkShareParams ws;
  ws.votes_per_object = std::max<std::size_t>(
      params.vote_min,
      static_cast<std::size_t>(params.vote_c * static_cast<double>(log2n)));

  for (std::size_t g = 0; g < guesses.size(); ++g) {
    const std::size_t D = guesses[g];
    const std::uint64_t iter_key = mix_keys(phase_key, 0xd17e8ULL, g);
    IterationInfo info;
    info.diameter_guess = D;

    // Step 1.b: shared-random sample S.
    std::vector<ObjectId> sample;
    if (D == 0) {
      sample = all_objects;  // full-universe iteration (covers D < log n)
    } else {
      const double rate =
          std::min(1.0, params.sample_rate_c * ln_n / static_cast<double>(D));
      Rng srng = env.shared_rng(mix_keys(iter_key, 0x5a3ULL));
      for (ObjectId o = 0; o < n_objects; ++o)
        if (srng.chance(rate)) sample.push_back(o);
      if (sample.empty()) sample.push_back(static_cast<ObjectId>(srng.below(n_objects)));
    }
    info.sample_size = sample.size();

    // Step 1.c: SmallRadius estimates on the sample.
    SmallRadiusParams srp;
    srp.budget = params.budget;
    srp.diameter = ceil_size(params.sr_diameter_c * ln_n);
    srp.repeats = params.sr_repeats;
    srp.subset_scale = params.sr_subset_scale;
    srp.subset_exponent = params.sr_subset_exponent;
    srp.support_divisor = params.sr_support_divisor;
    srp.probes_per_pair = params.sr_probes_per_pair;
    srp.prefilter_probes = params.sr_prefilter_probes;
    srp.max_finalists = params.sr_max_finalists;
    srp.zr = params.zr;
    SmallRadiusResult sr =
        small_radius(all_players, sample, srp, env, mix_keys(iter_key, 1));
    info.sr_candidate_overflow = sr.stats.candidate_overflow;

    // Publication of the z-vectors used for the graph (dishonest players may
    // publish mimicry/garbage here). The family lives in one contiguous
    // BitMatrix so the O(n^2) graph sweep below streams rows through cache.
    // Honest rows are the SmallRadius output verbatim (one word copy, no
    // behaviour call, no RNG — an honest publication never draws from it).
    const std::uint64_t z_channel = mix_keys(iter_key, 0x9a9fULL);
    const ReportContext zctx{Phase::kClusterGraph, z_channel};
    BitMatrix& z = env.workspace().cp_z;
    z.reset(n, sample.size());
    for (PlayerId p = 0; p < n; ++p) {
      if (env.population.is_honest(p)) {
        z.row(p) = sr.outputs[p];
        continue;
      }
      Rng prng = env.local_rng(p, z_channel);
      z.row(p) = env.population.publication(p, sr.outputs[p], sample, zctx, prng);
    }

    // Step 1.d: neighbor graph + clustering. The edge threshold is capped
    // relative to |S| so that at small n it stays below the typical
    // inter-cluster sample distance (see Params::graph_tau_sample_frac).
    const auto tau = static_cast<std::size_t>(
        std::min(params.graph_tau_c * ln_n,
                 params.graph_tau_sample_frac * static_cast<double>(sample.size())));
    const NeighborGraph graph(z, tau, GraphBackend::kAuto, env.policy);
    const Clustering clustering = cluster_players(graph, min_cluster);
    info.clusters = clustering.clusters.size();
    info.min_cluster = clustering.min_cluster_size();
    info.leftovers = clustering.leftovers;
    info.orphans = clustering.orphans;

    // Step 1.e: per-cluster redundant voting over all objects.
    std::vector<BitVector> cluster_prediction(clustering.clusters.size());
    for (std::size_t c = 0; c < clustering.clusters.size(); ++c) {
      cluster_prediction[c] = cluster_votes(clustering.clusters[c], env,
                                            mix_keys(iter_key, 0x707eULL, c), ws);
    }
    candidates[g].reset(n, n_objects);
    env.par_for(0, n, [&](std::size_t p) {
      const std::uint32_t c = clustering.cluster_of[p];
      if (c != Clustering::kNoClusterAssigned)
        candidates[g].row(p) = cluster_prediction[c];
    });

    result.iterations.push_back(info);
  }

  // Step 2: per-player RSelect among the per-guess candidates.
  const std::size_t probes_per_pair = std::max<std::size_t>(
      4, static_cast<std::size_t>(params.rselect_c * static_cast<double>(log2n)));
  result.outputs.assign(n, BitVector(n_objects));
  env.par_for(0, n, [&](std::size_t p) {
    // Zero-copy candidate views into the per-guess matrices: the tournament
    // only reads, so nothing is deep-copied until the winner is extracted.
    std::vector<ConstBitRow> cands;
    cands.reserve(guesses.size());
    for (std::size_t g = 0; g < guesses.size(); ++g)
      cands.push_back(candidates[g].row(p));
    const SelectOutcome sel =
        rselect(static_cast<PlayerId>(p), cands, all_objects, env,
                mix_keys(phase_key, 0xfe1ec7ULL, p), probes_per_pair);
    result.outputs[p] = cands[sel.chosen].to_bitvector();
  });

  fill_probe_deltas(result, env.oracle, before);
  return result;
}

RobustResult robust_calculate_preferences(ProbeOracle& oracle, BulletinBoard& board,
                                          const Population& population,
                                          const RobustParams& params,
                                          std::uint64_t phase_key,
                                          std::uint64_t local_seed,
                                          const ExecPolicy& policy) {
  const std::size_t n = oracle.n_players();
  const std::size_t n_objects = oracle.n_objects();
  RobustResult robust;
  const auto before = probe_snapshot(oracle);

  // candidates[rep][p]
  std::vector<std::vector<BitVector>> candidates;
  candidates.reserve(params.outer_reps);

  for (std::size_t rep = 0; rep < params.outer_reps; ++rep) {
    const std::uint64_t rep_key = mix_keys(phase_key, 0x0b0e5ULL, rep);

    // Elect a leader (beacon-independent: uses only local randomness).
    HonestBeacon election_stub(mix_keys(rep_key, 0x57abULL));
    ProtocolEnv election_env(oracle, board, population, election_stub,
                             local_seed, policy);
    const ElectionResult election =
        feige_election(election_env, mix_keys(rep_key, 0xe1ecULL), params.election);
    robust.elections.push_back(election);

    std::unique_ptr<RandomnessBeacon> beacon;
    if (election.leader_honest) {
      ++robust.honest_leader_reps;
      beacon = std::make_unique<HonestBeacon>(mix_keys(params.beacon_seed, rep_key));
    } else if (params.dishonest_beacon) {
      beacon = params.dishonest_beacon(rep_key, election.leader);
    } else {
      // Predictable bits: the weakest dishonest beacon (no grinding).
      beacon = std::make_unique<GrindingBeacon>(rep_key, 1, nullptr);
    }

    ProtocolEnv env(oracle, board, population, *beacon, local_seed, policy);
    ProtocolResult rep_result =
        calculate_preferences(env, params.inner, mix_keys(rep_key, 0xca1cULL));
    for (const IterationInfo& info : rep_result.iterations)
      robust.result.iterations.push_back(info);
    candidates.push_back(std::move(rep_result.outputs));
  }

  // Final RSelect over the per-repetition candidates (local randomness only,
  // per §7.1 — it must not depend on any possibly-biased beacon).
  std::vector<ObjectId> all_objects(n_objects);
  for (ObjectId o = 0; o < n_objects; ++o) all_objects[o] = o;
  HonestBeacon stub(mix_keys(phase_key, 0xf1a1ULL));
  ProtocolEnv env(oracle, board, population, stub, local_seed, policy);
  const std::size_t probes_per_pair = std::max<std::size_t>(
      4, static_cast<std::size_t>(params.inner.rselect_c *
                                  static_cast<double>(log2_ceil(n))));

  robust.result.outputs.assign(n, BitVector(n_objects));
  policy.par_for(0, n, [&](std::size_t p) {
    std::vector<ConstBitRow> cands;
    cands.reserve(candidates.size());
    for (std::size_t rep = 0; rep < candidates.size(); ++rep)
      cands.push_back(candidates[rep][p]);
    const SelectOutcome sel =
        rselect(static_cast<PlayerId>(p), cands, all_objects, env,
                mix_keys(phase_key, 0x0b57ULL, p), probes_per_pair);
    robust.result.outputs[p] = cands[sel.chosen].to_bitvector();
  });

  fill_probe_deltas(robust.result, oracle, before);
  return robust;
}

}  // namespace colscore
