// All protocol constants in one place.
//
// The paper states constants asymptotically (sample rate 10 ln n / D, edge
// threshold 220 ln n, SmallRadius diameter 20 ln n, ...). At laptop-scale n
// the literal constants saturate (220 ln n can exceed the sample size), so
// the practical preset rescales them while preserving the *relative*
// calibration the lemmas rely on:
//     expected close-pair sample distance  (= sample_rate_c * ln n)
//   < edge threshold                       (= graph_tau_c   * ln n)
//   < expected far-pair sample distance    (>= 3 * sample_rate_c * ln n
//                                             for pairs >= 3D apart).
// `Params::paper()` keeps the literal constants for asymptotic fidelity.
#pragma once

#include <cstddef>

#include "src/protocols/zero_radius.hpp"

namespace colscore {

struct Params {
  /// B: the reference budget the protocol must be asymptotically optimal
  /// against (each player may spend O(B polylog n) probes).
  std::size_t budget = 8;

  // ---- Fig. 2 step 1.b: sample selection -------------------------------
  /// P(object in S) = min(1, sample_rate_c * ln n / D).
  double sample_rate_c = 10.0;

  // ---- Fig. 2 step 1.c: SmallRadius on the sample -----------------------
  /// Diameter bound handed to SmallRadius on the sample:
  /// sr_diameter_c * ln n (paper: 20 ln n, Lemma 6).
  double sr_diameter_c = 20.0;
  std::size_t sr_repeats = 2;
  double sr_subset_scale = 2.0;
  double sr_subset_exponent = 1.0;  // paper: 1.5
  double sr_support_divisor = 5.0;
  std::size_t sr_probes_per_pair = 12;
  std::size_t sr_prefilter_probes = 16;
  std::size_t sr_max_finalists = 8;
  ZeroRadiusParams zr;

  // ---- Fig. 2 step 1.d: neighbor graph + clustering ---------------------
  /// Edge iff sample distance <= min(graph_tau_c * ln n,
  /// graph_tau_sample_frac * |S|). The paper's threshold is 220 ln n
  /// (Lemma 7); at laptop n that can exceed the typical *inter*-cluster
  /// sample distance (~|S|/2 for random centers), so the practical preset
  /// also caps the threshold at a fraction of the sample size.
  double graph_tau_c = 30.0;
  double graph_tau_sample_frac = 0.25;
  /// Cluster formation threshold = (n/B) * (1 - cluster_slack). Up to
  /// n/(3B) players may be dishonest and publish garbage sample vectors, so
  /// an honest player inside a diameter-D set of exactly n/B players may see
  /// only (2/3)(n/B) cooperating neighbours; without this slack such
  /// clusters can never form. The §7.2 domination arithmetic is preserved:
  /// in-cluster dishonest voters are still at most 1/3 of any formed
  /// cluster.
  double cluster_slack = 1.0 / 3.0;

  // ---- Fig. 2 step 1.e: work sharing ------------------------------------
  /// Votes per object = max(vote_min, vote_c * log2 n). The constant sets
  /// the per-object failure probability against a 1/3-dishonest cluster:
  /// with k votes it is ~ P(Bin(k, 1/3) >= k/2) ~ exp(-k/20), so k ~ 3 log2 n
  /// keeps whole-vector error at O(1) objects.
  double vote_c = 3.0;
  std::size_t vote_min = 9;

  // ---- Fig. 2 step 2: final RSelect --------------------------------------
  /// Probes per candidate pair = max(4, rselect_c * log2 n).
  double rselect_c = 1.5;

  /// Easy case (§6.1): if budget >= easy_case_factor * n / log2 n, every
  /// player just probes everything.
  double easy_case_factor = 1.0;

  /// Practical defaults for laptop-scale n (this is also the default-
  /// constructed value, spelled out for readability at call sites).
  static Params practical(std::size_t budget);

  /// The paper's literal constants; probe bills are much larger.
  static Params paper(std::size_t budget);
};

}  // namespace colscore
