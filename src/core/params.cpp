#include "src/core/params.hpp"

namespace colscore {

Params Params::practical(std::size_t budget) {
  Params p;
  p.budget = budget;
  return p;
}

Params Params::paper(std::size_t budget) {
  Params p;
  p.budget = budget;
  p.sample_rate_c = 10.0;
  p.sr_diameter_c = 20.0;
  p.sr_subset_exponent = 1.5;  // s = Θ(D^{3/2})
  p.sr_subset_scale = 1.0;
  p.sr_repeats = 3;
  p.graph_tau_c = 220.0;  // Lemma 7 threshold
  p.graph_tau_sample_frac = 1.0;  // no cap: the literal asymptotic rule
  p.vote_c = 3.0;
  p.rselect_c = 3.0;
  return p;
}

}  // namespace colscore
