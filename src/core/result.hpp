// Output of a protocol run: predicted vectors plus probe/diagnostic
// accounting used by the experiment harness.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/protocols/small_radius.hpp"

namespace colscore {

struct IterationInfo {
  std::size_t diameter_guess = 0;  // D of this iteration (0 = full universe)
  std::size_t sample_size = 0;
  std::size_t clusters = 0;
  std::size_t min_cluster = 0;
  std::size_t leftovers = 0;
  std::size_t orphans = 0;
  std::size_t sr_candidate_overflow = 0;
};

struct ProtocolResult {
  /// outputs[p] = predicted preference vector w(p) over all objects.
  std::vector<BitVector> outputs;

  /// Probe accounting (delta over the run, from the oracle).
  std::uint64_t total_probes = 0;
  std::uint64_t max_probes = 0;
  std::vector<std::uint64_t> probes_by_player;

  std::vector<IterationInfo> iterations;
  bool easy_case = false;
};

}  // namespace colscore
