// CalculatePreferences (Fig. 2) and its Byzantine-tolerant wrapper (§7).
//
// The core loop guesses the correlation diameter D = 2^d, and for each guess:
//   1.b  draws a shared-random sample S with rate ~ 10 ln n / D,
//   1.c  estimates every player's preferences on S via SmallRadius,
//   1.d  builds the neighbor graph on the estimates and clusters players
//        into groups of >= n/B,
//   1.e  splits the probing of all n objects across each cluster with
//        Θ(log n)-redundant majority voting,
//   2    finally each player RSelects among the per-guess candidates.
//
// The robust wrapper repeats the whole protocol under leaders chosen by
// Byzantine leader election; candidates produced under dishonest leaders are
// discarded by a final RSelect (§7.1).
#pragma once

#include <functional>
#include <memory>

#include "src/core/params.hpp"
#include "src/core/result.hpp"
#include "src/protocols/election.hpp"
#include "src/protocols/env.hpp"

namespace colscore {

/// One full execution of Fig. 2 using env.beacon as the shared randomness.
/// In the honest-players setting (§6) this is the complete algorithm.
ProtocolResult calculate_preferences(ProtocolEnv& env, const Params& params,
                                     std::uint64_t phase_key);

struct RobustParams {
  Params inner;
  /// Θ(log n) in the paper; each repetition elects a leader and reruns
  /// CalculatePreferences under that leader's beacon.
  std::size_t outer_reps = 3;
  ElectionParams election;
  /// Beacon used when a dishonest leader wins. Defaults to a predictable
  /// (non-random) beacon; experiments can supply a grinding beacon.
  std::function<std::unique_ptr<RandomnessBeacon>(std::uint64_t rep_key,
                                                  PlayerId leader)>
      dishonest_beacon;
  /// Root seed for honest leaders' published bits.
  std::uint64_t beacon_seed = 0xbea0c5eedULL;
};

struct RobustResult {
  ProtocolResult result;
  std::vector<ElectionResult> elections;
  std::size_t honest_leader_reps = 0;
};

/// §7: leader election + repeated CalculatePreferences + final RSelect.
/// Every inner ProtocolEnv (and so every parallel loop) runs under `policy`.
RobustResult robust_calculate_preferences(
    ProbeOracle& oracle, BulletinBoard& board, const Population& population,
    const RobustParams& params, std::uint64_t phase_key,
    std::uint64_t local_seed = 0x10ca1ULL,
    const ExecPolicy& policy = ExecPolicy::process_default());

}  // namespace colscore
