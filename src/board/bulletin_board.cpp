#include "src/board/bulletin_board.hpp"

#include <algorithm>

#include "src/common/rng.hpp"

namespace colscore {

std::uint64_t BulletinBoard::report_key(std::uint64_t tag, ObjectId object) {
  return mix_keys(tag, 0x5245504fULL, object);
}

void BulletinBoard::post_report(std::uint64_t tag, PlayerId author, ObjectId object,
                                bool value) {
  const std::uint64_t key = report_key(tag, object);
  ReportShard& shard = report_shards_[key % kShards];
  std::lock_guard lock(shard.mutex);
  shard.by_key[key].push_back(ProbeReport{author, object, value});
}

std::vector<ProbeReport> BulletinBoard::reports_for(std::uint64_t tag,
                                                    ObjectId object) const {
  const std::uint64_t key = report_key(tag, object);
  const ReportShard& shard = report_shards_[key % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.by_key.find(key);
  return it == shard.by_key.end() ? std::vector<ProbeReport>{} : it->second;
}

std::vector<ProbeReport> BulletinBoard::all_reports(std::uint64_t tag) const {
  std::vector<ProbeReport> out;
  for (const auto& shard : report_shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, reports] : shard.by_key) {
      // Keys embed the tag; verify membership by recomputing.
      if (!reports.empty() && report_key(tag, reports.front().object) == key) {
        out.insert(out.end(), reports.begin(), reports.end());
      }
    }
  }
  return out;
}

void BulletinBoard::post_vector(std::uint64_t tag, PlayerId author, BitVector vector) {
  VectorShard& shard = vector_shards_[tag % kShards];
  std::lock_guard lock(shard.mutex);
  shard.by_tag[tag].push_back(VectorPost{author, std::move(vector)});
}

std::vector<VectorPost> BulletinBoard::vectors(std::uint64_t tag) const {
  const VectorShard& shard = vector_shards_[tag % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.by_tag.find(tag);
  return it == shard.by_tag.end() ? std::vector<VectorPost>{} : it->second;
}

std::vector<BulletinBoard::SupportedVector> BulletinBoard::vectors_by_support(
    std::uint64_t tag) const {
  const std::vector<VectorPost> posts = vectors(tag);
  std::vector<SupportedVector> out;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  for (const VectorPost& post : posts) {
    const std::uint64_t h = post.vector.content_hash();
    auto& candidates = by_hash[h];
    bool found = false;
    for (std::size_t idx : candidates) {
      if (out[idx].vector == post.vector) {
        ++out[idx].support;
        found = true;
        break;
      }
    }
    if (!found) {
      candidates.push_back(out.size());
      out.push_back(SupportedVector{post.vector, 1});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SupportedVector& a, const SupportedVector& b) {
                     return a.support > b.support;
                   });
  return out;
}

std::uint64_t BulletinBoard::report_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : report_shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, reports] : shard.by_key) total += reports.size();
  }
  return total;
}

std::uint64_t BulletinBoard::vector_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : vector_shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [tag, posts] : shard.by_tag) total += posts.size();
  }
  return total;
}

}  // namespace colscore
