#include "src/board/bulletin_board.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/rng.hpp"

namespace colscore {

std::uint64_t BulletinBoard::report_key(std::uint64_t tag, ObjectId object) {
  return mix_keys(tag, 0x5245504fULL, object);
}

void BulletinBoard::post_report(std::uint64_t tag, PlayerId author, ObjectId object,
                                bool value) {
  const std::uint64_t key = report_key(tag, object);
  ReportShard& shard = report_shards_[key % kShards];
  std::lock_guard lock(shard.mutex);
  shard.by_key[key].push_back(ProbeReport{author, object, value});
  report_count_.fetch_add(1, std::memory_order_relaxed);
}

void BulletinBoard::post_reports(std::uint64_t tag, ObjectId object,
                                 std::span<const PlayerId> authors,
                                 std::span<const std::uint8_t> values) {
  CS_ASSERT(authors.size() == values.size(), "post_reports: size mismatch");
  if (authors.empty()) return;
  const std::uint64_t key = report_key(tag, object);
  ReportShard& shard = report_shards_[key % kShards];
  std::lock_guard lock(shard.mutex);
  auto& bucket = shard.by_key[key];
  bucket.reserve(bucket.size() + authors.size());
  for (std::size_t i = 0; i < authors.size(); ++i)
    bucket.push_back(ProbeReport{authors[i], object, values[i] != 0});
  report_count_.fetch_add(authors.size(), std::memory_order_relaxed);
}

std::vector<ProbeReport> BulletinBoard::reports_for(std::uint64_t tag,
                                                    ObjectId object) const {
  const std::uint64_t key = report_key(tag, object);
  const ReportShard& shard = report_shards_[key % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.by_key.find(key);
  return it == shard.by_key.end() ? std::vector<ProbeReport>{} : it->second;
}

std::vector<ProbeReport> BulletinBoard::all_reports(std::uint64_t tag) const {
  std::vector<ProbeReport> out;
  for (const auto& shard : report_shards_) {
    std::lock_guard lock(shard.mutex);
    // colscore-lint: allow(CL007) buckets are re-sorted by object id below,
    // so the map's hash order cannot reach the caller
    for (const auto& [key, reports] : shard.by_key) {
      // Keys embed the tag; verify membership by recomputing.
      if (!reports.empty() && report_key(tag, reports.front().object) == key) {
        out.insert(out.end(), reports.begin(), reports.end());
      }
    }
  }
  // One object's reports share a bucket, so a stable sort by object id keeps
  // posting order within each object while fixing the cross-object order.
  std::stable_sort(out.begin(), out.end(),
                   [](const ProbeReport& a, const ProbeReport& b) {
                     return a.object < b.object;
                   });
  return out;
}

void BulletinBoard::post_vector(std::uint64_t tag, PlayerId author, BitVector vector) {
  VectorShard& shard = vector_shards_[tag % kShards];
  std::lock_guard lock(shard.mutex);
  shard.by_tag[tag].push_back(VectorPost{author, std::move(vector)});
  vector_count_.fetch_add(1, std::memory_order_relaxed);
}

BulletinBoard::VectorChannelWriter BulletinBoard::vector_channel(std::uint64_t tag) {
  VectorShard& shard = vector_shards_[tag % kShards];
  std::unique_lock lock(shard.mutex);
  std::vector<VectorPost>& bucket = shard.by_tag[tag];
  return VectorChannelWriter(std::move(lock), bucket, vector_count_);
}

std::vector<VectorPost> BulletinBoard::vectors(std::uint64_t tag) const {
  const VectorShard& shard = vector_shards_[tag % kShards];
  std::lock_guard lock(shard.mutex);
  auto it = shard.by_tag.find(tag);
  return it == shard.by_tag.end() ? std::vector<VectorPost>{} : it->second;
}

std::vector<BulletinBoard::SupportedVector> BulletinBoard::vectors_by_support(
    std::uint64_t tag) const {
  // Count support in place under the shard lock: the full post list used to
  // be deep-copied first, which dominated ZeroRadius merges (every posted
  // vector copied once per support query). Only distinct vectors are copied
  // out.
  const VectorShard& shard = vector_shards_[tag % kShards];
  std::lock_guard lock(shard.mutex);
  static const std::vector<VectorPost> kNoPosts;
  auto it = shard.by_tag.find(tag);
  const std::vector<VectorPost>& posts = it == shard.by_tag.end() ? kNoPosts
                                                                  : it->second;
  // Distinct-vector dedup: a flat hash list scanned linearly while the
  // distinct count stays small (the overwhelmingly common case — support
  // channels converge on a handful of vectors), with a hash-map fallback
  // once it grows. The flat path does no per-post allocation.
  constexpr std::size_t kFlatLimit = 48;
  std::vector<SupportedVector> out;
  std::vector<std::uint64_t> hashes;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  bool use_map = false;
  for (const VectorPost& post : posts) {
    const std::uint64_t h = post.vector.content_hash();
    bool found = false;
    if (!use_map) {
      for (std::size_t idx = 0; idx < out.size(); ++idx) {
        if (hashes[idx] == h && out[idx].vector == post.vector) {
          ++out[idx].support;
          found = true;
          break;
        }
      }
    } else {
      for (std::size_t idx : by_hash[h]) {
        if (out[idx].vector == post.vector) {
          ++out[idx].support;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      if (!use_map && out.size() == kFlatLimit) {
        // Too many distinct vectors for linear scans; index what we have.
        use_map = true;
        for (std::size_t idx = 0; idx < out.size(); ++idx)
          by_hash[hashes[idx]].push_back(idx);
      }
      if (use_map) by_hash[h].push_back(out.size());
      hashes.push_back(h);
      out.push_back(SupportedVector{post.vector, 1});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SupportedVector& a, const SupportedVector& b) {
                     return a.support > b.support;
                   });
  return out;
}

std::uint64_t BulletinBoard::report_count() const {
  return report_count_.load(std::memory_order_relaxed);
}

std::uint64_t BulletinBoard::vector_count() const {
  return vector_count_.load(std::memory_order_relaxed);
}

}  // namespace colscore
