#include "src/board/probe_oracle.hpp"

#include "src/common/assert.hpp"
#include "src/common/bitkernels.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

void TruthSource::fill_row_words(PlayerId p, ObjectId first_object, std::size_t n,
                                 std::uint64_t* out) const {
  const std::size_t words = bitkernel::word_count(n);
  for (std::size_t w = 0; w < words; ++w) out[w] = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (preference(p, static_cast<ObjectId>(first_object + i)))
      out[i / bitkernel::kWordBits] |= 1ULL << (i % bitkernel::kWordBits);
}

ProbeOracle::ProbeOracle(const TruthSource& truth, BudgetMode mode, std::uint64_t budget)
    : truth_(&truth), mode_(mode), budget_(budget),
      n_objects_(truth.n_objects()), counts_(truth.n_players()) {
  // Assigned here, not in the init list: packed_rows writes the stride
  // through its out-parameter, which must not race the members' default
  // initializers.
  packed_ = truth.packed_rows(&packed_stride_);
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void ProbeOracle::probe_row(PlayerId p, ObjectId first_object, std::size_t n,
                            BitRow out) {
  CS_ASSERT(p < counts_.size(), "probe_row: bad player id");
  CS_ASSERT(out.size() == n, "probe_row: output size mismatch");
  if (n == 0) return;
  CS_ASSERT(first_object + n <= n_objects_, "probe_row: bad object range");
  charge(p, n);
  if (packed_ != nullptr) {
    bitkernel::extract_bits(packed_ + p * packed_stride_,
                            bitkernel::word_count(n_objects_), first_object, n,
                            out.word_data());
    return;
  }
  truth_->fill_row_words(p, first_object, n, out.word_data());
}

void ProbeOracle::gather_into(PlayerId p, std::span<const ObjectId> objects,
                              BitRow out) const {
  // Packed sources gather straight off the row with inline word math.
  if (packed_ != nullptr) {
    const std::uint64_t* row = packed_ + p * packed_stride_;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      CS_ASSERT(objects[i] < n_objects_, "probe_gather: bad object id");
      out.set(i, (row[objects[i] / 64] >> (objects[i] % 64)) & 1ULL);
    }
    return;
  }
  const std::size_t row_words = bitkernel::word_count(n_objects_);
  // A staged full-row read costs ~row_words word writes once; per-bit reads
  // cost one virtual call each. Stage whenever the slate is at least a
  // quarter of the row's word count; only tiny slates against very wide
  // rows read bit by bit.
  if (objects.size() >= 4 && 4 * objects.size() >= row_words) {
    // Staging scratch comes from the bound policy's per-worker workspace;
    // before bind_policy (standalone oracle in a test/bench) the default
    // policy falls back to the caller's private per-thread workspace.
    const ExecPolicy& policy =
        policy_ != nullptr ? *policy_ : ExecPolicy::process_default();
    auto& staging = policy.workspace().probe_row_words;
    staging.resize(row_words);
    truth_->fill_row_words(p, 0, n_objects_, staging.data());
    const ConstBitRow row(staging.data(), n_objects_);
    for (std::size_t i = 0; i < objects.size(); ++i) {
      CS_ASSERT(objects[i] < n_objects_, "probe_gather: bad object id");
      out.set(i, row.get(objects[i]));
    }
    return;
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    CS_ASSERT(objects[i] < n_objects_, "probe_gather: bad object id");
    out.set(i, truth_->preference(p, objects[i]));
  }
}

void ProbeOracle::probe_gather(PlayerId p, std::span<const ObjectId> objects,
                               BitRow out) {
  CS_ASSERT(p < counts_.size(), "probe_gather: bad player id");
  CS_ASSERT(out.size() >= objects.size(), "probe_gather: output too small");
  if (objects.empty()) return;
  charge(p, objects.size());
  gather_into(p, objects, out);
}

void ProbeOracle::adversary_peek_row(PlayerId p, ObjectId first_object,
                                     std::size_t n, BitRow out) const {
  CS_ASSERT(out.size() == n, "adversary_peek_row: output size mismatch");
  if (n == 0) return;
  CS_ASSERT(first_object + n <= n_objects_, "adversary_peek_row: bad object range");
  if (packed_ != nullptr) {
    bitkernel::extract_bits(packed_ + p * packed_stride_,
                            bitkernel::word_count(n_objects_), first_object, n,
                            out.word_data());
    return;
  }
  truth_->fill_row_words(p, first_object, n, out.word_data());
}

void ProbeOracle::adversary_peek_gather(PlayerId p,
                                        std::span<const ObjectId> objects,
                                        BitRow out) const {
  CS_ASSERT(out.size() >= objects.size(), "adversary_peek_gather: output too small");
  gather_into(p, objects, out);
}

std::uint64_t ProbeOracle::probes_by(PlayerId p) const {
  CS_ASSERT(p < counts_.size(), "probes_by: bad player id");
  return counts_[p].load(std::memory_order_relaxed);
}

std::uint64_t ProbeOracle::total_probes() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t ProbeOracle::max_probes() const {
  std::uint64_t best = 0;
  for (const auto& c : counts_) {
    const std::uint64_t v = c.load(std::memory_order_relaxed);
    if (v > best) best = v;
  }
  return best;
}

void ProbeOracle::reset_counts() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace colscore
