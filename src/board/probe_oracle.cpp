#include "src/board/probe_oracle.hpp"

#include "src/common/assert.hpp"

namespace colscore {

ProbeOracle::ProbeOracle(const TruthSource& truth, BudgetMode mode, std::uint64_t budget)
    : truth_(&truth), mode_(mode), budget_(budget), counts_(truth.n_players()) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

bool ProbeOracle::probe(PlayerId p, ObjectId o) {
  CS_ASSERT(p < counts_.size(), "probe: bad player id");
  CS_ASSERT(o < truth_->n_objects(), "probe: bad object id");
  const std::uint64_t now =
      counts_[p].fetch_add(1, std::memory_order_relaxed) + 1;
  if (mode_ == BudgetMode::kHard) {
    CS_ASSERT(now <= budget_, "probe budget exceeded in kHard mode");
  }
  return truth_->preference(p, o);
}

void ProbeOracle::probe_many(PlayerId p, std::span<const ObjectId> objects,
                             std::span<std::uint8_t> out) {
  CS_ASSERT(p < counts_.size(), "probe_many: bad player id");
  CS_ASSERT(out.size() >= objects.size(), "probe_many: output too small");
  if (objects.empty()) return;
  const std::uint64_t now =
      counts_[p].fetch_add(objects.size(), std::memory_order_relaxed) +
      objects.size();
  if (mode_ == BudgetMode::kHard) {
    CS_ASSERT(now <= budget_, "probe budget exceeded in kHard mode");
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    CS_ASSERT(objects[i] < truth_->n_objects(), "probe_many: bad object id");
    out[i] = truth_->preference(p, objects[i]) ? 1 : 0;
  }
}

bool ProbeOracle::adversary_peek(PlayerId p, ObjectId o) const {
  return truth_->preference(p, o);
}

std::uint64_t ProbeOracle::probes_by(PlayerId p) const {
  CS_ASSERT(p < counts_.size(), "probes_by: bad player id");
  return counts_[p].load(std::memory_order_relaxed);
}

std::uint64_t ProbeOracle::total_probes() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t ProbeOracle::max_probes() const {
  std::uint64_t best = 0;
  for (const auto& c : counts_) {
    const std::uint64_t v = c.load(std::memory_order_relaxed);
    if (v > best) best = v;
  }
  return best;
}

void ProbeOracle::reset_counts() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace colscore
