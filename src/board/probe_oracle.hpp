// The probe model from §2 of the paper: each probe by player p on object o
// reveals p's own preference bit v(p)_o. The oracle owns the interaction with
// ground truth and charges every probe to the prober, so probe-complexity
// claims (Lemmas 10-11) are measured, not estimated.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/bitvector.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/types.hpp"

namespace colscore {

/// Read-only view of the hidden preference matrix. Implemented by
/// model::PreferenceMatrix; protocols only ever see this interface through
/// the oracle.
class TruthSource {
 public:
  virtual ~TruthSource() = default;
  virtual bool preference(PlayerId p, ObjectId o) const = 0;
  virtual std::size_t n_players() const = 0;
  virtual std::size_t n_objects() const = 0;

  /// Packed bulk read: bit i of `out` = preference(p, first_object + i) for
  /// i in [0, n). Writes bitkernel::word_count(n) words; padding bits past n
  /// in the last word are zero. The default walks preference() bit by bit;
  /// bit-packed implementations (PreferenceMatrix) override it with word
  /// copies so a whole row costs a memcpy instead of n virtual calls.
  virtual void fill_row_words(PlayerId p, ObjectId first_object, std::size_t n,
                              std::uint64_t* out) const;

  /// Flat-storage hint: implementations whose rows live as contiguous
  /// 64-bit words (player p's row at base + p * stride, valid as long as
  /// the source) return the base pointer and set `word_stride`; others
  /// return nullptr. The oracle queries this once and then reads truth
  /// bits with inline word math — no virtual dispatch per probe.
  virtual const std::uint64_t* packed_rows(std::size_t* word_stride) const {
    (void)word_stride;
    return nullptr;
  }
};

class ProbeOracle {
 public:
  enum class BudgetMode {
    kTrack,  // count probes; never block
    kHard,   // abort if any player exceeds `budget` probes (failure injection)
  };

  explicit ProbeOracle(const TruthSource& truth, BudgetMode mode = BudgetMode::kTrack,
                       std::uint64_t budget = 0);

  /// Performs one probe: charges player p and returns v(p)_o. Inline, with
  /// a dispatch-free read when the truth source is packed — single probes
  /// from adaptive elimination loops are one of the hottest paths.
  bool probe(PlayerId p, ObjectId o) {
    CS_ASSERT(p < counts_.size(), "probe: bad player id");
    CS_ASSERT(o < n_objects_, "probe: bad object id");
    charge(p, 1);
    return read_bit(p, o);
  }

  /// Word-level probe: fills out with v(p) over the contiguous object range
  /// [first_object, first_object + n), charging all n probes in a single
  /// counter round-trip and moving the bits through TruthSource's packed
  /// bulk read instead of n virtual calls. `out` must view exactly n bits;
  /// its padding stays zero. Semantically identical to probing each object
  /// in order.
  void probe_row(PlayerId p, ObjectId first_object, std::size_t n, BitRow out);

  /// Batched scattered probe: bit i of `out` = v(p)_objects[i], charging
  /// objects.size() probes at once (duplicates pay, like repeated probe()
  /// calls without a memo). For slates big enough to amortize it, the truth
  /// row is staged once through fill_row_words and the bits are extracted
  /// locally; small slates read per bit. `out` must view at least
  /// objects.size() bits.
  void probe_gather(PlayerId p, std::span<const ObjectId> objects, BitRow out);

  /// Uncharged forms of the two bulk reads above, for dishonest players
  /// (same rationale as adversary_peek).
  void adversary_peek_row(PlayerId p, ObjectId first_object, std::size_t n,
                          BitRow out) const;
  void adversary_peek_gather(PlayerId p, std::span<const ObjectId> objects,
                             BitRow out) const;

  /// Reads truth WITHOUT charging. Only adversaries use this (the paper's
  /// Byzantine players are omniscient, see DESIGN §2); honest protocol code
  /// must never call it — tests enforce this by budget accounting.
  bool adversary_peek(PlayerId p, ObjectId o) const { return read_bit(p, o); }

  std::uint64_t probes_by(PlayerId p) const;
  std::uint64_t total_probes() const;
  std::uint64_t max_probes() const;

  /// Resets all counters (between experiment repetitions).
  void reset_counts();

  /// Execution hint: when the caller knows no two threads will ever charge
  /// concurrently (the worker pool is single-threaded, so every protocol
  /// loop runs inline), counters may use plain read-modify-writes instead
  /// of lock-prefixed atomic RMWs — a measurable win at tens of millions
  /// of charges per suite. Leave off in any multi-threaded setting: exact
  /// counting under concurrent probes is part of the oracle contract.
  void set_serial_charging(bool on) { serial_charges_ = on; }

  /// Binds the execution policy this oracle's probes run under. Derives the
  /// serial-charging hint from it (worker_count() <= 1 means every protocol
  /// loop runs inline) and routes gather staging scratch to the policy's
  /// per-worker workspace. The policy must outlive the oracle's use;
  /// run_scenario binds its per-scenario policy right after construction.
  void bind_policy(const ExecPolicy& policy) {
    policy_ = &policy;
    serial_charges_ = policy.worker_count() <= 1;
  }

  std::size_t n_players() const { return truth_->n_players(); }
  std::size_t n_objects() const { return truth_->n_objects(); }

 private:
  /// Adds `amount` probes to p's counter (single round-trip) and enforces
  /// the kHard budget.
  void charge(PlayerId p, std::uint64_t amount) {
    std::uint64_t now;
    if (serial_charges_) {
      now = counts_[p].load(std::memory_order_relaxed) + amount;
      counts_[p].store(now, std::memory_order_relaxed);
    } else {
      now = counts_[p].fetch_add(amount, std::memory_order_relaxed) + amount;
    }
    if (mode_ == BudgetMode::kHard) {
      CS_ASSERT(now <= budget_, "probe budget exceeded in kHard mode");
    }
  }

  /// Uncharged truth read: inline word math for packed sources, virtual
  /// dispatch otherwise.
  bool read_bit(PlayerId p, ObjectId o) const {
    if (packed_ != nullptr)
      return (packed_[p * packed_stride_ + o / 64] >> (o % 64)) & 1ULL;
    return truth_->preference(p, o);
  }

  void gather_into(PlayerId p, std::span<const ObjectId> objects, BitRow out) const;

  const TruthSource* truth_;
  BudgetMode mode_;
  std::uint64_t budget_;
  /// Cached flat-storage hint (see TruthSource::packed_rows) and object
  /// count, so the hot probe paths never touch the vtable.
  const std::uint64_t* packed_ = nullptr;
  std::size_t packed_stride_ = 0;
  std::size_t n_objects_ = 0;
  bool serial_charges_ = false;
  /// Workspace routing for gather staging; null until bind_policy().
  const ExecPolicy* policy_ = nullptr;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

}  // namespace colscore
