// The probe model from §2 of the paper: each probe by player p on object o
// reveals p's own preference bit v(p)_o. The oracle owns the interaction with
// ground truth and charges every probe to the prober, so probe-complexity
// claims (Lemmas 10-11) are measured, not estimated.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace colscore {

/// Read-only view of the hidden preference matrix. Implemented by
/// model::PreferenceMatrix; protocols only ever see this interface through
/// the oracle.
class TruthSource {
 public:
  virtual ~TruthSource() = default;
  virtual bool preference(PlayerId p, ObjectId o) const = 0;
  virtual std::size_t n_players() const = 0;
  virtual std::size_t n_objects() const = 0;
};

class ProbeOracle {
 public:
  enum class BudgetMode {
    kTrack,  // count probes; never block
    kHard,   // abort if any player exceeds `budget` probes (failure injection)
  };

  explicit ProbeOracle(const TruthSource& truth, BudgetMode mode = BudgetMode::kTrack,
                       std::uint64_t budget = 0);

  /// Performs one probe: charges player p and returns v(p)_o.
  bool probe(PlayerId p, ObjectId o);

  /// Batch probe: fills out[i] = v(p)_objects[i], charging all
  /// objects.size() probes to p in a single counter round-trip. Semantically
  /// identical to probing each object in order, but the per-player atomic is
  /// touched once instead of once per object — the difference on hot voting
  /// loops where many threads charge the same shared counter cache lines.
  void probe_many(PlayerId p, std::span<const ObjectId> objects,
                  std::span<std::uint8_t> out);

  /// Reads truth WITHOUT charging. Only adversaries use this (the paper's
  /// Byzantine players are omniscient, see DESIGN §2); honest protocol code
  /// must never call it — tests enforce this by budget accounting.
  bool adversary_peek(PlayerId p, ObjectId o) const;

  std::uint64_t probes_by(PlayerId p) const;
  std::uint64_t total_probes() const;
  std::uint64_t max_probes() const;

  /// Resets all counters (between experiment repetitions).
  void reset_counts();

  std::size_t n_players() const { return truth_->n_players(); }
  std::size_t n_objects() const { return truth_->n_objects(); }

 private:
  const TruthSource* truth_;
  BudgetMode mode_;
  std::uint64_t budget_;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

}  // namespace colscore
