// The public bulletin board from §2 of the paper: an append-only shared
// memory every player can read and write. Records are keyed by their author;
// there is no mutation API, so a dishonest player cannot alter data written
// by honest players — exactly the model assumption.
//
// Two record kinds are enough for every protocol in the paper:
//   * probe reports   — "player a claims its preference for object o is b"
//   * vector posts    — "player a claims its preference vector (for the
//                        object set identified by the channel tag) is w"
// Channels are identified by 64-bit tags derived from protocol phase keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/common/types.hpp"

namespace colscore {

struct ProbeReport {
  PlayerId author = kInvalidPlayer;
  ObjectId object = kInvalidObject;
  bool value = false;
};

struct VectorPost {
  PlayerId author = kInvalidPlayer;
  BitVector vector;
};

class BulletinBoard {
 public:
  BulletinBoard() = default;
  BulletinBoard(const BulletinBoard&) = delete;
  BulletinBoard& operator=(const BulletinBoard&) = delete;

  // ---- probe-report channel -------------------------------------------
  void post_report(std::uint64_t tag, PlayerId author, ObjectId object, bool value);

  /// Posts authors[i] claiming values[i] about `object`, in order — board
  /// state identical to post_report in a loop, but one key derivation, one
  /// lock acquisition, and one bucket lookup for the whole block (the voting
  /// loop posts every object's k votes at once).
  void post_reports(std::uint64_t tag, ObjectId object,
                    std::span<const PlayerId> authors,
                    std::span<const std::uint8_t> values);

  /// All reports about `object` on channel `tag` (posting order).
  std::vector<ProbeReport> reports_for(std::uint64_t tag, ObjectId object) const;

  /// All reports on channel `tag` (ascending object id; posting order
  /// within an object).
  std::vector<ProbeReport> all_reports(std::uint64_t tag) const;

  // ---- vector channel ---------------------------------------------------
  void post_vector(std::uint64_t tag, PlayerId author, BitVector vector);

  /// Locked appender for a serial publication loop: one shard lock and one
  /// bucket lookup amortized over every post to the channel. Board state is
  /// identical to calling post_vector per player in the same order. Holds
  /// the shard lock for its lifetime — keep the scope tight and do not
  /// touch other board channels while it lives.
  class VectorChannelWriter {
   public:
    void post(PlayerId author, BitVector vector) {
      bucket_->push_back(VectorPost{author, std::move(vector)});
      count_->fetch_add(1, std::memory_order_relaxed);
    }

   private:
    friend class BulletinBoard;
    VectorChannelWriter(std::unique_lock<std::mutex> lock,
                        std::vector<VectorPost>& bucket,
                        std::atomic<std::uint64_t>& count)
        : lock_(std::move(lock)), bucket_(&bucket), count_(&count) {}
    std::unique_lock<std::mutex> lock_;
    std::vector<VectorPost>* bucket_;
    std::atomic<std::uint64_t>* count_;
  };
  VectorChannelWriter vector_channel(std::uint64_t tag);

  /// All vector posts on channel `tag` (posting order per shard).
  std::vector<VectorPost> vectors(std::uint64_t tag) const;

  /// Distinct vectors on channel `tag` with their support counts, most
  /// supported first (ties by first appearance). The core voting primitive
  /// of ZeroRadius step 4.
  struct SupportedVector {
    BitVector vector;
    std::size_t support = 0;
  };
  std::vector<SupportedVector> vectors_by_support(std::uint64_t tag) const;

  // ---- accounting ---------------------------------------------------------
  std::uint64_t report_count() const;
  std::uint64_t vector_count() const;

 private:
  static constexpr std::size_t kShards = 64;
  struct ReportShard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<ProbeReport>> by_key;
  };
  struct VectorShard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<VectorPost>> by_tag;
  };

  static std::uint64_t report_key(std::uint64_t tag, ObjectId object);

  ReportShard report_shards_[kShards];
  VectorShard vector_shards_[kShards];
  // Running totals so the per-run accounting reads are O(1) instead of a
  // full walk over every shard bucket.
  std::atomic<std::uint64_t> report_count_{0};
  std::atomic<std::uint64_t> vector_count_{0};
};

}  // namespace colscore
