// Shared randomness (§7.1). The protocol's shared random choices (sample-set
// selection, probe assignments, partitions) are drawn from a beacon. With an
// honest leader the bits are truly random; with a dishonest leader they are
// adversarially chosen. Both are modeled here so experiment T4 can measure
// the damage a biased beacon causes.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/rng.hpp"

namespace colscore {

/// Source of the shared random seed for each protocol phase. `phase_key` is
/// a stable identifier of the phase (so all players derive the same stream).
class RandomnessBeacon {
 public:
  virtual ~RandomnessBeacon() = default;

  /// Seed all players use for the phase. Deterministic per (beacon, phase).
  virtual std::uint64_t seed_for(std::uint64_t phase_key) = 0;

  /// Whether the bits are honestly generated (for metrics only; protocol
  /// code must not branch on this).
  virtual bool honest() const = 0;

  /// Convenience: an Rng seeded for the phase.
  Rng rng_for(std::uint64_t phase_key) { return Rng(seed_for(phase_key)); }
};

/// Truly random beacon (honest leader won the election).
class HonestBeacon final : public RandomnessBeacon {
 public:
  explicit HonestBeacon(std::uint64_t root_seed) : root_(root_seed) {}
  std::uint64_t seed_for(std::uint64_t phase_key) override {
    return mix_keys(root_, phase_key);
  }
  bool honest() const override { return true; }

 private:
  std::uint64_t root_;
};

/// Adversary-controlled beacon. The dishonest leader grinds over
/// `attempts` candidate seeds and publishes the one maximizing the supplied
/// objective (e.g. "number of dishonest players assigned to vote duty").
/// With a null objective it degenerates to a fixed predictable sequence.
class GrindingBeacon final : public RandomnessBeacon {
 public:
  /// Objective: higher is better *for the adversary*.
  using Objective = std::function<double(std::uint64_t seed, std::uint64_t phase_key)>;

  GrindingBeacon(std::uint64_t adversary_seed, std::size_t attempts,
                 Objective objective)
      : root_(adversary_seed), attempts_(attempts), objective_(std::move(objective)) {}

  std::uint64_t seed_for(std::uint64_t phase_key) override {
    if (!objective_ || attempts_ <= 1) return mix_keys(root_, phase_key, 0xbadULL);
    std::uint64_t best_seed = mix_keys(root_, phase_key, 0);
    double best_score = objective_(best_seed, phase_key);
    for (std::size_t i = 1; i < attempts_; ++i) {
      const std::uint64_t cand = mix_keys(root_, phase_key, i);
      const double score = objective_(cand, phase_key);
      if (score > best_score) {
        best_score = score;
        best_seed = cand;
      }
    }
    return best_seed;
  }
  bool honest() const override { return false; }

 private:
  std::uint64_t root_;
  std::size_t attempts_;
  Objective objective_;
};

}  // namespace colscore
