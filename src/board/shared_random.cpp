// Beacon implementations are header-only; this TU anchors the vtables.
#include "src/board/shared_random.hpp"

namespace colscore {
// Intentionally empty.
}  // namespace colscore
