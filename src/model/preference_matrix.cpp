#include "src/model/preference_matrix.hpp"

#include "src/common/assert.hpp"

namespace colscore {

PreferenceMatrix::PreferenceMatrix(std::size_t n_players, std::size_t n_objects)
    : n_objects_(n_objects), rows_(n_players, n_objects) {}

bool PreferenceMatrix::preference(PlayerId p, ObjectId o) const {
  CS_ASSERT(p < rows_.rows(), "preference: bad player");
  CS_ASSERT(o < n_objects_, "preference: bad object");
  return rows_.get(p, o);
}

void PreferenceMatrix::fill_row_words(PlayerId p, ObjectId first_object,
                                      std::size_t n, std::uint64_t* out) const {
  CS_ASSERT(p < rows_.rows(), "fill_row_words: bad player");
  CS_ASSERT(first_object + n <= n_objects_, "fill_row_words: bad object range");
  bitkernel::extract_bits(rows_.row(p).words().data(),
                          bitkernel::word_count(n_objects_), first_object, n, out);
}

ConstBitRow PreferenceMatrix::row(PlayerId p) const {
  CS_ASSERT(p < rows_.rows(), "row: bad player");
  return rows_.row(p);
}

BitRow PreferenceMatrix::row(PlayerId p) {
  CS_ASSERT(p < rows_.rows(), "row: bad player");
  return rows_.row(p);
}

void PreferenceMatrix::set(PlayerId p, ObjectId o, bool value) {
  CS_ASSERT(p < rows_.rows() && o < n_objects_, "set: out of range");
  rows_.set(p, o, value);
}

std::size_t PreferenceMatrix::distance(PlayerId p, PlayerId q) const {
  return row(p).hamming(row(q));
}

std::size_t PreferenceMatrix::diameter(std::span<const PlayerId> members) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < members.size(); ++i)
    for (std::size_t j = i + 1; j < members.size(); ++j)
      best = std::max(best, distance(members[i], members[j]));
  return best;
}

}  // namespace colscore
