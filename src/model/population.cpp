#include "src/model/population.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/assert.hpp"

namespace colscore {

Population::Population(std::size_t n_players)
    : behaviors_(n_players), honest_(n_players, 1) {
  for (auto& b : behaviors_) b = std::make_unique<HonestBehavior>();
}

void Population::set_behavior(PlayerId p, std::unique_ptr<Behavior> behavior) {
  CS_ASSERT(p < behaviors_.size(), "set_behavior: bad player");
  CS_ASSERT(behavior != nullptr, "set_behavior: null behavior");
  behaviors_[p] = std::move(behavior);
  honest_[p] = behaviors_[p]->honest() ? 1 : 0;
}

std::size_t Population::honest_count() const {
  return static_cast<std::size_t>(
      std::count_if(behaviors_.begin(), behaviors_.end(),
                    [](const auto& b) { return b->honest(); }));
}

std::vector<PlayerId> Population::honest_players() const {
  std::vector<PlayerId> out;
  for (PlayerId p = 0; p < behaviors_.size(); ++p)
    if (behaviors_[p]->honest()) out.push_back(p);
  return out;
}

std::vector<PlayerId> Population::dishonest_players() const {
  std::vector<PlayerId> out;
  for (PlayerId p = 0; p < behaviors_.size(); ++p)
    if (!behaviors_[p]->honest()) out.push_back(p);
  return out;
}

Behavior& Population::behavior(PlayerId p) const {
  CS_ASSERT(p < behaviors_.size(), "behavior: bad player");
  return *behaviors_[p];
}

bool Population::report_of(PlayerId p, ObjectId o, ProbeOracle& oracle,
                           const ReportContext& ctx, Rng& rng) const {
  if (is_honest(p)) return oracle.probe(p, o);
  const bool truth = oracle.adversary_peek(p, o);
  return behaviors_[p]->report(p, o, truth, ctx, rng);
}

BitVector Population::publication(PlayerId p, const BitVector& honest_vector,
                                  std::span<const ObjectId> objects,
                                  const ReportContext& ctx, Rng& rng) const {
  if (is_honest(p)) return honest_vector;
  return behaviors_[p]->publish(p, honest_vector, objects, ctx, rng);
}

Population Population::honest(std::size_t n_players) { return Population(n_players); }

void Population::corrupt_random(std::size_t count, Rng& rng,
                                const std::function<std::unique_ptr<Behavior>()>& factory,
                                PlayerId protected_player) {
  CS_ASSERT(count <= size(), "corrupt_random: too many");
  std::vector<PlayerId> ids(size());
  std::iota(ids.begin(), ids.end(), 0);
  if (protected_player != kInvalidPlayer) {
    ids.erase(std::remove(ids.begin(), ids.end(), protected_player), ids.end());
    CS_ASSERT(count <= ids.size(), "corrupt_random: too many after protection");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.below(ids.size() - i);
    std::swap(ids[i], ids[j]);
    set_behavior(ids[i], factory());
  }
}

}  // namespace colscore
