// Ground-truth preference matrix: one binary vector per player (§2).
#pragma once

#include <vector>

#include "src/board/probe_oracle.hpp"
#include "src/common/bitvector.hpp"
#include "src/common/types.hpp"

namespace colscore {

class PreferenceMatrix final : public TruthSource {
 public:
  PreferenceMatrix() = default;
  PreferenceMatrix(std::size_t n_players, std::size_t n_objects);

  bool preference(PlayerId p, ObjectId o) const override;
  std::size_t n_players() const override { return rows_.size(); }
  std::size_t n_objects() const override { return n_objects_; }

  const BitVector& row(PlayerId p) const;
  BitVector& row(PlayerId p);
  void set(PlayerId p, ObjectId o, bool value);

  /// Hamming distance between two players' true vectors.
  std::size_t distance(PlayerId p, PlayerId q) const;

  /// Max pairwise distance within `members`.
  std::size_t diameter(std::span<const PlayerId> members) const;

 private:
  std::size_t n_objects_ = 0;
  std::vector<BitVector> rows_;
};

}  // namespace colscore
