// Ground-truth preference matrix: one binary vector per player (§2).
//
// Rows live in a contiguous BitMatrix (one allocation, cache-line-aligned
// rows) and are exposed as zero-copy BitRow/ConstBitRow views; distance() and
// diameter() run BitVector's word-parallel kernels over the views.
#pragma once

#include "src/board/probe_oracle.hpp"
#include "src/common/bitmatrix.hpp"
#include "src/common/bitvector.hpp"
#include "src/common/types.hpp"

namespace colscore {

class PreferenceMatrix final : public TruthSource {
 public:
  PreferenceMatrix() = default;
  PreferenceMatrix(std::size_t n_players, std::size_t n_objects);

  bool preference(PlayerId p, ObjectId o) const override;
  std::size_t n_players() const override { return rows_.rows(); }
  std::size_t n_objects() const override { return n_objects_; }

  /// Native packed bulk read straight off the BitMatrix row: a word copy
  /// when the range is aligned, a funnel shift otherwise — never a per-bit
  /// virtual call. See TruthSource::fill_row_words for the contract.
  void fill_row_words(PlayerId p, ObjectId first_object, std::size_t n,
                      std::uint64_t* out) const override;

  /// Rows are one flat cache-line-strided allocation, so the oracle can
  /// read bits with no virtual dispatch at all.
  const std::uint64_t* packed_rows(std::size_t* word_stride) const override {
    *word_stride = rows_.word_stride();
    return rows_.words();
  }

  ConstBitRow row(PlayerId p) const;
  BitRow row(PlayerId p);
  void set(PlayerId p, ObjectId o, bool value);

  /// Hamming distance between two players' true vectors.
  std::size_t distance(PlayerId p, PlayerId q) const;

  /// Max pairwise distance within `members`.
  std::size_t diameter(std::span<const PlayerId> members) const;

 private:
  std::size_t n_objects_ = 0;
  BitMatrix rows_;
};

}  // namespace colscore
