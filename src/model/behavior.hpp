// Player behaviours. Honest players follow the protocol; dishonest players
// ("Byzantine", §2/§7) may report and publish anything. Strategies receive
// the *protocol-compliant* value they are expected to produce plus full
// omniscient context (the truth matrix and the protocol phase), making them
// at least as strong as the paper's adversary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>

#include "src/common/bitvector.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace colscore {

class PreferenceMatrix;

/// Which part of the protocol is asking. Lets strategies behave differently
/// while clusters are being formed vs while votes are being cast.
enum class Phase : std::uint8_t {
  kSample,       // sample-set probing (SmallRadius on S)
  kZeroRadius,   // inside ZeroRadius recursion
  kSmallRadius,  // SmallRadius orchestration outside ZeroRadius
  kClusterGraph, // neighbor-graph construction
  kVote,         // work-sharing probe/vote phase (step 1.e)
  kSelect,       // RSelect/Select probing (always the player's own probes)
  kElection,     // leader election
  kOther,
};

struct ReportContext {
  Phase phase = Phase::kOther;
  std::uint64_t tag = 0;  // board channel of the interaction
};

class Behavior {
 public:
  virtual ~Behavior() = default;

  virtual bool honest() const { return true; }

  /// Bit this player reports when the protocol expects `truth`.
  virtual bool report(PlayerId self, ObjectId object, bool truth,
                      const ReportContext& ctx, Rng& rng) {
    (void)self; (void)object; (void)ctx; (void)rng;
    return truth;
  }

  /// Vector this player publishes when the protocol expects `honest_vector`.
  /// `objects[i]` is the global object id of bit i (the published subset).
  virtual BitVector publish(PlayerId self, const BitVector& honest_vector,
                            std::span<const ObjectId> objects,
                            const ReportContext& ctx, Rng& rng) {
    (void)self; (void)objects; (void)ctx; (void)rng;
    return honest_vector;
  }
};

/// Protocol-compliant player.
class HonestBehavior final : public Behavior {};

/// Reports a coin flip regardless of truth: the "too busy to read the paper"
/// reviewer from the introduction.
class RandomLiar final : public Behavior {
 public:
  explicit RandomLiar(double lie_probability = 1.0) : lie_p_(lie_probability) {}
  bool honest() const override { return false; }
  bool report(PlayerId, ObjectId, bool truth, const ReportContext&, Rng& rng) override;
  BitVector publish(PlayerId, const BitVector& honest_vector,
                    std::span<const ObjectId>, const ReportContext&, Rng& rng) override;

 private:
  double lie_p_;
};

/// Always reports the opposite of the truth (maximally anti-correlated).
class Inverter final : public Behavior {
 public:
  bool honest() const override { return false; }
  bool report(PlayerId, ObjectId, bool truth, const ReportContext&, Rng&) override {
    return !truth;
  }
  BitVector publish(PlayerId, const BitVector& honest_vector,
                    std::span<const ObjectId>, const ReportContext&, Rng&) override {
    return ~honest_vector;
  }
};

/// Ballot stuffing: claims to like (or dislike) every object.
class ConstantReporter final : public Behavior {
 public:
  explicit ConstantReporter(bool value) : value_(value) {}
  bool honest() const override { return false; }
  bool report(PlayerId, ObjectId, bool, const ReportContext&, Rng&) override {
    return value_;
  }
  BitVector publish(PlayerId, const BitVector& honest_vector,
                    std::span<const ObjectId>, const ReportContext&, Rng&) override {
    return BitVector(honest_vector.size(), value_);
  }

 private:
  bool value_;
};

/// Collusive promotion: truthful everywhere except a chosen object set, where
/// it always reports `value` (e.g. "our colleagues' papers are great").
/// Stealthy — hard to distinguish from a slightly-different honest player.
class TargetedBias final : public Behavior {
 public:
  TargetedBias(std::unordered_set<ObjectId> targets, bool value)
      : targets_(std::move(targets)), value_(value) {}
  bool honest() const override { return false; }
  bool report(PlayerId, ObjectId object, bool truth, const ReportContext&,
              Rng&) override {
    return targets_.contains(object) ? value_ : truth;
  }
  BitVector publish(PlayerId, const BitVector& honest_vector,
                    std::span<const ObjectId> objects, const ReportContext&,
                    Rng&) override;

 private:
  std::unordered_set<ObjectId> targets_;
  bool value_;
};

/// The cluster-hijack attack §7.2 defends against: mimic a victim player
/// during sampling/clustering so the protocol places the attacker inside the
/// victim's cluster, then report the *inverse* of the victim's preferences
/// during the voting phase.
class ClusterHijacker final : public Behavior {
 public:
  ClusterHijacker(const PreferenceMatrix& truth, PlayerId victim)
      : truth_(&truth), victim_(victim) {}
  bool honest() const override { return false; }
  bool report(PlayerId self, ObjectId object, bool truth, const ReportContext& ctx,
              Rng& rng) override;
  BitVector publish(PlayerId self, const BitVector& honest_vector,
                    std::span<const ObjectId> objects, const ReportContext& ctx,
                    Rng& rng) override;

 private:
  const PreferenceMatrix* truth_;
  PlayerId victim_;
};

/// Behaves honestly until the voting phase, then lies. Defeats naive
/// "evaluate trust during clustering" defenses.
class Sleeper final : public Behavior {
 public:
  bool honest() const override { return false; }
  bool report(PlayerId, ObjectId, bool truth, const ReportContext& ctx, Rng&) override {
    return ctx.phase == Phase::kVote ? !truth : truth;
  }
};

/// The optimal collusive voting attack against Lemma 13.
///
/// The lemma's proof splits objects into "settled" (the honest cluster
/// members agree >5:1 — dishonest votes cannot flip them) and "strange"
/// (the honest side is split) and shows there are only O(D) strange objects
/// per cluster. This strategy spends the adversary's votes exactly where
/// they can matter: it behaves honestly through clustering (so it sits
/// inside its own cluster, like a Sleeper), and during the vote it sides
/// with the honest *minority* on every strange object while staying
/// truthful on settled ones (maximally stealthy). The omniscient setup — it
/// reads the truth matrix to find its D-neighbourhood and the per-object
/// splits — upper-bounds anything a real colluder could do.
class StrangeObjectColluder final : public Behavior {
 public:
  /// `neighborhood_diameter` approximates the cluster: players within this
  /// true distance of the colluder count as cluster peers.
  StrangeObjectColluder(const PreferenceMatrix& truth, std::size_t neighborhood_diameter,
                        double strange_ratio = 5.0);

  bool honest() const override { return false; }
  bool report(PlayerId self, ObjectId object, bool truth, const ReportContext& ctx,
              Rng& rng) override;

  /// Number of objects this colluder classified as strange (diagnostics).
  std::size_t strange_objects(PlayerId self) const;

 private:
  void ensure_plan(PlayerId self);

  const PreferenceMatrix* truth_;
  std::size_t diameter_;
  double ratio_;
  /// Vote phases run object-parallel, so plan construction must be guarded.
  std::mutex plan_mutex_;
  std::atomic<PlayerId> planned_for_{kInvalidPlayer};
  /// Per-object attack plan: 0 = vote truth, 1 = vote 0, 2 = vote 1.
  std::vector<std::uint8_t> plan_;
  std::size_t strange_count_ = 0;
};

}  // namespace colscore
