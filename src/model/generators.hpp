// Workload generators. Each returns the hidden preference matrix plus the
// planted structure metadata that experiments use to compute reference
// optima (planted diameter, cluster membership).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/model/preference_matrix.hpp"

namespace colscore {

/// Summary of a churn/drift simulation that post-processed a generated world
/// (src/sim/churn.hpp). Plain counters so World can carry them from the
/// workload factory to the entry's metric emit hook without the model layer
/// depending on the streaming machinery.
struct ChurnStats {
  std::uint64_t epochs = 0;
  std::uint64_t flips = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  /// Unordered edges added + removed across all epochs.
  std::uint64_t edges_changed = 0;
  /// Epochs where incremental maintenance fell back to a full rebuild.
  std::uint64_t rebuilds = 0;
  /// Epochs where the greedy peel re-ran (the rest reused the clustering).
  std::uint64_t reclusters = 0;
  /// Players alive after the final epoch.
  std::size_t final_alive = 0;
  /// Clusters in the final epoch's clustering (orphan pool included).
  std::size_t final_clusters = 0;
};

struct World {
  PreferenceMatrix matrix;
  /// Planted cluster id per player; kInvalidPlayer-sized value (= no cluster)
  /// for background players.
  std::vector<std::uint32_t> cluster_of;
  /// Upper bound on the diameter of every planted cluster (0 = identical).
  std::size_t planted_diameter = 0;
  /// Number of planted clusters (background players excluded).
  std::size_t n_clusters = 0;
  std::string description;
  /// Set by churn-style workloads that drifted the matrix after generation
  /// (epochs == 0 means the world is static).
  ChurnStats churn;

  std::size_t n_players() const { return matrix.n_players(); }
  std::size_t n_objects() const { return matrix.n_objects(); }

  /// Player ids of cluster `c`.
  std::vector<PlayerId> cluster_members(std::uint32_t c) const;
  /// Smallest planted cluster size (0 if none).
  std::size_t min_cluster_size() const;
};

inline constexpr std::uint32_t kNoCluster = static_cast<std::uint32_t>(-1);

/// Players partitioned into `n_clusters` groups with *identical* preferences
/// inside each group (the ZeroRadius assumption, Theorem 4).
World identical_clusters(std::size_t n_players, std::size_t n_objects,
                         std::size_t n_clusters, Rng rng);

/// Cluster centers are uniform; each member flips at most diameter/2 random
/// positions of its center, so intra-cluster distance <= diameter.
/// `zipf_sizes` skews cluster sizes ~ 1/rank instead of equal split.
World planted_clusters(std::size_t n_players, std::size_t n_objects,
                       std::size_t n_clusters, std::size_t diameter, Rng rng,
                       bool zipf_sizes = false);

/// The Claim 2 lower-bound distribution: a pivot player p (id 0) and a set P
/// of n/budget players agreeing with p everywhere except a special set S of
/// `diameter` objects where members are random; everyone else fully random.
/// No B-budget algorithm can predict p's bits on S better than guessing.
World lower_bound_instance(std::size_t n, std::size_t budget, std::size_t diameter,
                           Rng rng);

/// A chain of `n_links` groups; consecutive group centers differ in `step`
/// positions (cumulative along the chain). Each group is intentionally
/// smaller than n/budget so any n/budget-sized neighbourhood must span
/// ~(n/budget)/group_size consecutive links — the workload on which
/// star-neighbourhood baselines (Alon et al. [2,3] reconstruction) pay a
/// diameter factor ~B while diameter-controlled clustering stays at O(step).
World chained_clusters(std::size_t n_players, std::size_t n_objects,
                       std::size_t n_links, std::size_t step, Rng rng);

/// No structure at all: every bit independent fair coin. Collaboration is
/// provably useless here; used as a degenerate stress input.
World uniform_random(std::size_t n_players, std::size_t n_objects, Rng rng);

/// Two taste camps that disagree on everything (max separation sanity case).
World two_blocks(std::size_t n_players, std::size_t n_objects, Rng rng);

}  // namespace colscore
