#include "src/model/behavior.hpp"

#include "src/model/preference_matrix.hpp"

namespace colscore {

bool RandomLiar::report(PlayerId, ObjectId, bool truth, const ReportContext&,
                        Rng& rng) {
  return rng.chance(lie_p_) ? rng.chance(0.5) : truth;
}

BitVector RandomLiar::publish(PlayerId, const BitVector& honest_vector,
                              std::span<const ObjectId>, const ReportContext&,
                              Rng& rng) {
  BitVector out = honest_vector;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (rng.chance(lie_p_)) out.set(i, rng.chance(0.5));
  return out;
}

BitVector TargetedBias::publish(PlayerId, const BitVector& honest_vector,
                                std::span<const ObjectId> objects,
                                const ReportContext&, Rng&) {
  BitVector out = honest_vector;
  for (std::size_t i = 0; i < objects.size(); ++i)
    if (targets_.contains(objects[i])) out.set(i, value_);
  return out;
}

bool ClusterHijacker::report(PlayerId, ObjectId object, bool, const ReportContext& ctx,
                             Rng&) {
  const bool victim_truth = truth_->preference(victim_, object);
  return ctx.phase == Phase::kVote ? !victim_truth : victim_truth;
}

BitVector ClusterHijacker::publish(PlayerId, const BitVector& honest_vector,
                                   std::span<const ObjectId> objects,
                                   const ReportContext& ctx, Rng&) {
  BitVector out(honest_vector.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const bool victim_truth = truth_->preference(victim_, objects[i]);
    out.set(i, ctx.phase == Phase::kVote ? !victim_truth : victim_truth);
  }
  return out;
}

StrangeObjectColluder::StrangeObjectColluder(const PreferenceMatrix& truth,
                                             std::size_t neighborhood_diameter,
                                             double strange_ratio)
    : truth_(&truth), diameter_(neighborhood_diameter), ratio_(strange_ratio) {}

void StrangeObjectColluder::ensure_plan(PlayerId self) {
  if (planned_for_.load(std::memory_order_acquire) == self) return;
  std::lock_guard lock(plan_mutex_);
  if (planned_for_.load(std::memory_order_relaxed) == self) return;
  const std::size_t n_objects = truth_->n_objects();
  plan_.assign(n_objects, 0);
  strange_count_ = 0;

  // Approximate the cluster as the colluder's true D-neighbourhood.
  std::vector<PlayerId> peers;
  for (PlayerId q = 0; q < truth_->n_players(); ++q)
    if (truth_->distance(self, q) <= diameter_) peers.push_back(q);

  for (ObjectId o = 0; o < n_objects; ++o) {
    std::size_t ones = 0;
    for (PlayerId q : peers)
      if (truth_->preference(q, o)) ++ones;
    const std::size_t zeros = peers.size() - ones;
    const auto hi = static_cast<double>(std::max(ones, zeros));
    const auto lo = static_cast<double>(std::min(ones, zeros));
    if (lo > 0 && hi <= ratio_ * lo) {
      // Strange object: side with the honest minority.
      plan_[o] = ones <= zeros ? 2 : 1;
      ++strange_count_;
    }
  }
  planned_for_.store(self, std::memory_order_release);
}

bool StrangeObjectColluder::report(PlayerId self, ObjectId object, bool truth,
                                   const ReportContext& ctx, Rng&) {
  if (ctx.phase != Phase::kVote) return truth;  // stay in-cluster
  ensure_plan(self);
  if (plan_[object] == 0) return truth;
  return plan_[object] == 2;
}

std::size_t StrangeObjectColluder::strange_objects(PlayerId self) const {
  return planned_for_.load(std::memory_order_acquire) == self ? strange_count_ : 0;
}

}  // namespace colscore
