// Population = behaviour table for all n players, plus the two interaction
// helpers every protocol uses:
//   * report_of:   obtain the bit a player reports about an object
//                  (honest -> charged oracle probe of the truth;
//                   dishonest -> free omniscient lie)
//   * publication: obtain the vector a player publishes for an object subset.
//
// Centralizing these keeps the information-flow rules (DESIGN §2) in one
// place: honest players pay probes and never lie; dishonest players never
// pay and may say anything.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/board/probe_oracle.hpp"
#include "src/model/behavior.hpp"

namespace colscore {

class Population {
 public:
  explicit Population(std::size_t n_players);

  std::size_t size() const noexcept { return behaviors_.size(); }

  /// Replaces player p's behaviour (default-constructed players are honest).
  void set_behavior(PlayerId p, std::unique_ptr<Behavior> behavior);

  /// O(1) cached flag (set_behavior keeps it in sync) — this sits on every
  /// probe-charging decision, so it must not cost a virtual call.
  bool is_honest(PlayerId p) const {
    CS_ASSERT(p < honest_.size(), "is_honest: bad player");
    return honest_[p] != 0;
  }
  std::size_t honest_count() const;
  std::size_t dishonest_count() const { return size() - honest_count(); }
  std::vector<PlayerId> honest_players() const;
  std::vector<PlayerId> dishonest_players() const;

  Behavior& behavior(PlayerId p) const;

  /// The bit player p reports about object o in context ctx. Honest players
  /// probe (charged via oracle) and report truthfully; dishonest players
  /// peek for free and report whatever their strategy says.
  bool report_of(PlayerId p, ObjectId o, ProbeOracle& oracle, const ReportContext& ctx,
                 Rng& rng) const;

  /// The vector player p publishes when protocol-compliant content is
  /// `honest_vector` over the subset `objects`.
  BitVector publication(PlayerId p, const BitVector& honest_vector,
                        std::span<const ObjectId> objects, const ReportContext& ctx,
                        Rng& rng) const;

  // ---- construction helpers ----------------------------------------------

  /// All-honest population.
  static Population honest(std::size_t n_players);

  /// Marks `count` players dishonest, chosen uniformly (excluding
  /// `protected_player` if valid), each getting a behaviour from `factory`.
  void corrupt_random(std::size_t count, Rng& rng,
                      const std::function<std::unique_ptr<Behavior>()>& factory,
                      PlayerId protected_player = kInvalidPlayer);

 private:
  std::vector<std::unique_ptr<Behavior>> behaviors_;
  std::vector<std::uint8_t> honest_;  // behaviors_[p]->honest(), cached
};

}  // namespace colscore
