#include "src/model/generators.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/assert.hpp"

namespace colscore {

std::vector<PlayerId> World::cluster_members(std::uint32_t c) const {
  std::vector<PlayerId> out;
  for (PlayerId p = 0; p < cluster_of.size(); ++p)
    if (cluster_of[p] == c) out.push_back(p);
  return out;
}

std::size_t World::min_cluster_size() const {
  if (n_clusters == 0) return 0;
  std::vector<std::size_t> sizes(n_clusters, 0);
  for (std::uint32_t c : cluster_of)
    if (c != kNoCluster) ++sizes[c];
  return *std::min_element(sizes.begin(), sizes.end());
}

namespace {

/// Splits n players into k group sizes (each >= 1).
std::vector<std::size_t> group_sizes(std::size_t n, std::size_t k, bool zipf, Rng& rng) {
  CS_ASSERT(k >= 1 && n >= k, "group_sizes: need n >= k >= 1");
  std::vector<std::size_t> sizes(k, 0);
  if (!zipf) {
    for (std::size_t i = 0; i < k; ++i) sizes[i] = n / k + (i < n % k ? 1 : 0);
    return sizes;
  }
  // Zipf-ish weights 1/rank, then distribute remainders randomly.
  std::vector<double> weights(k);
  double total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
    total += weights[i];
  }
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    sizes[i] = std::max<std::size_t>(
        1, static_cast<std::size_t>(weights[i] / total * static_cast<double>(n)));
    assigned += sizes[i];
  }
  while (assigned > n) {
    const auto i = static_cast<std::size_t>(rng.below(k));
    if (sizes[i] > 1) {
      --sizes[i];
      --assigned;
    }
  }
  while (assigned < n) {
    ++sizes[rng.below(k)];
    ++assigned;
  }
  return sizes;
}

}  // namespace

World identical_clusters(std::size_t n_players, std::size_t n_objects,
                         std::size_t n_clusters, Rng rng) {
  World w;
  w.matrix = PreferenceMatrix(n_players, n_objects);
  w.cluster_of.assign(n_players, kNoCluster);
  w.n_clusters = n_clusters;
  w.planted_diameter = 0;
  w.description = "identical_clusters";

  const auto sizes = group_sizes(n_players, n_clusters, /*zipf=*/false, rng);
  PlayerId next = 0;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    const BitVector center = random_bitvector(n_objects, rng);
    for (std::size_t i = 0; i < sizes[c]; ++i, ++next) {
      w.matrix.row(next) = center;
      w.cluster_of[next] = static_cast<std::uint32_t>(c);
    }
  }
  return w;
}

World planted_clusters(std::size_t n_players, std::size_t n_objects,
                       std::size_t n_clusters, std::size_t diameter, Rng rng,
                       bool zipf_sizes) {
  CS_ASSERT(diameter <= n_objects, "planted_clusters: diameter > n_objects");
  World w;
  w.matrix = PreferenceMatrix(n_players, n_objects);
  w.cluster_of.assign(n_players, kNoCluster);
  w.n_clusters = n_clusters;
  w.planted_diameter = diameter;
  w.description = "planted_clusters";

  const auto sizes = group_sizes(n_players, n_clusters, zipf_sizes, rng);
  const std::size_t radius = diameter / 2;
  PlayerId next = 0;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    const BitVector center = random_bitvector(n_objects, rng);
    for (std::size_t i = 0; i < sizes[c]; ++i, ++next) {
      // Fill the matrix row in place: copy the center words, flip there.
      // Identical RNG draw order to building a BitVector and copying.
      BitRow row = w.matrix.row(next);
      row = center;
      if (radius > 0) row.flip_random(rng, rng.below(radius + 1));
      w.cluster_of[next] = static_cast<std::uint32_t>(c);
    }
  }
  return w;
}

World lower_bound_instance(std::size_t n, std::size_t budget, std::size_t diameter,
                           Rng rng) {
  CS_ASSERT(budget >= 1 && diameter <= n, "lower_bound_instance: bad params");
  World w;
  w.matrix = PreferenceMatrix(n, n);
  w.cluster_of.assign(n, kNoCluster);
  w.n_clusters = 1;
  w.planted_diameter = diameter;
  w.description = "lower_bound_instance";

  const std::size_t group = std::max<std::size_t>(2, n / budget);

  // Special object set S: `diameter` distinct objects.
  std::vector<ObjectId> all_objects(n);
  std::iota(all_objects.begin(), all_objects.end(), 0);
  for (std::size_t i = 0; i < diameter; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(all_objects[i], all_objects[j]);
  }

  // Pivot p = player 0 gets a random vector (drawn in place).
  w.matrix.row(0).randomize(rng);
  w.cluster_of[0] = 0;
  // Members of P copy the pivot except on S, where their bits are random.
  for (PlayerId q = 1; q < group; ++q) {
    BitRow row = w.matrix.row(q);
    row = w.matrix.row(0);
    for (std::size_t i = 0; i < diameter; ++i) row.set(all_objects[i], rng.chance(0.5));
    w.cluster_of[q] = 0;
  }
  // Everyone else is fully random.
  for (PlayerId q = static_cast<PlayerId>(group); q < n; ++q)
    w.matrix.row(q).randomize(rng);
  return w;
}

World chained_clusters(std::size_t n_players, std::size_t n_objects,
                       std::size_t n_links, std::size_t step, Rng rng) {
  CS_ASSERT(n_links >= 2, "chained_clusters: need >= 2 links");
  CS_ASSERT(n_links * step <= n_objects,
            "chained_clusters: chain longer than object universe");
  World w;
  w.matrix = PreferenceMatrix(n_players, n_objects);
  w.cluster_of.assign(n_players, kNoCluster);
  w.n_clusters = n_links;
  w.planted_diameter = step;  // distance between *adjacent* links
  w.description = "chained_clusters";

  // Link i's center flips objects [i*step, (i+1)*step) relative to link i-1,
  // so dist(center_i, center_j) = |i-j| * step exactly.
  BitVector center = random_bitvector(n_objects, rng);
  const auto sizes = group_sizes(n_players, n_links, /*zipf=*/false, rng);
  PlayerId next = 0;
  for (std::size_t link = 0; link < n_links; ++link) {
    if (link > 0)
      for (std::size_t o = (link - 1) * step; o < link * step; ++o) center.flip(o);
    for (std::size_t i = 0; i < sizes[link]; ++i, ++next) {
      w.matrix.row(next) = center;
      w.cluster_of[next] = static_cast<std::uint32_t>(link);
    }
  }
  return w;
}

World uniform_random(std::size_t n_players, std::size_t n_objects, Rng rng) {
  World w;
  w.matrix = PreferenceMatrix(n_players, n_objects);
  w.cluster_of.assign(n_players, kNoCluster);
  w.n_clusters = 0;
  w.planted_diameter = n_objects;
  w.description = "uniform_random";
  for (PlayerId p = 0; p < n_players; ++p) w.matrix.row(p).randomize(rng);
  return w;
}

World two_blocks(std::size_t n_players, std::size_t n_objects, Rng rng) {
  World w;
  w.matrix = PreferenceMatrix(n_players, n_objects);
  w.cluster_of.assign(n_players, kNoCluster);
  w.n_clusters = 2;
  w.planted_diameter = 0;
  w.description = "two_blocks";
  const BitVector likes = random_bitvector(n_objects, rng);
  const BitVector dislikes = ~likes;
  for (PlayerId p = 0; p < n_players; ++p) {
    const bool first = p < n_players / 2;
    w.matrix.row(p) = first ? likes : dislikes;
    w.cluster_of[p] = first ? 0 : 1;
  }
  return w;
}

}  // namespace colscore
