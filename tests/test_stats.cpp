#include "src/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/histogram.hpp"

namespace colscore {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const std::vector<double> v{3.5};
  const Summary s = summarize(std::span<const double>(v));
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 3.5);
  EXPECT_EQ(s.max, 3.5);
  EXPECT_EQ(s.mean, 3.5);
  EXPECT_EQ(s.p50, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(std::span<const double>(v));
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, SizeTOverload) {
  const std::vector<std::size_t> v{10, 20, 30};
  const Summary s = summarize(std::span<const std::size_t>(v));
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 3.0);
}

TEST(Accumulator, MatchesBatch) {
  Accumulator acc;
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Accumulator, VarianceOfFewPoints) {
  Accumulator acc;
  EXPECT_EQ(acc.variance(), 0.0);
  acc.add(5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  // y = 3 x^2  ->  slope 2.
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double xi : x) y.push_back(3 * xi * xi);
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(LogLogSlope, SkipsNonPositive) {
  std::vector<double> x{0, 1, 2, 4};
  std::vector<double> y{5, 1, 2, 4};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

TEST(LogLogSlope, DegenerateReturnsZero) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(loglog_slope(x, y), 0.0);
  EXPECT_EQ(loglog_slope({}, {}), 0.0);
}

TEST(BinomialTail, Monotone) {
  EXPECT_EQ(binomial_tail_bound(0, 0.1), 1.0);
  EXPECT_GT(binomial_tail_bound(10, 0.1), binomial_tail_bound(100, 0.1));
  EXPECT_GT(binomial_tail_bound(100, 0.1), binomial_tail_bound(100, 0.3));
  EXPECT_LE(binomial_tail_bound(1000, 0.2), 1e-30);
}

TEST(Histogram, BucketsAndCdf) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_DOUBLE_EQ(h.cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0, 10, 5);
  h.add(-100);
  h.add(100);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(10, 20, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 20.0);
}

TEST(Histogram, ToStringShowsNonEmpty) {
  Histogram h(0, 10, 10);
  h.add(1.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace colscore
