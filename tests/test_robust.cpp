#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

struct RobustFixture {
  World world;
  Population population;
  ProbeOracle oracle;
  BulletinBoard board;

  explicit RobustFixture(World w)
      : world(std::move(w)), population(world.n_players()), oracle(world.matrix) {}

  std::size_t max_honest_error(const ProtocolResult& r) const {
    const auto honest = population.honest_players();
    const auto errors = hamming_errors(world.matrix, r.outputs, honest);
    return errors.empty() ? 0 : *std::max_element(errors.begin(), errors.end());
  }
};

TEST(Robust, HonestWorldMatchesPlainProtocol) {
  RobustFixture f(planted_clusters(128, 128, 4, 8, Rng(1)));
  RobustParams params;
  params.inner = Params::practical(4);
  params.outer_reps = 2;
  const RobustResult r =
      robust_calculate_preferences(f.oracle, f.board, f.population, params, 1);
  EXPECT_EQ(r.honest_leader_reps, 2u);  // all players honest
  EXPECT_LE(f.max_honest_error(r.result), 2 * 8u);
  EXPECT_EQ(r.elections.size(), 2u);
}

TEST(Robust, SurvivesDishonestLeadersViaRepetition) {
  // Even when some repetitions run under a dishonest (predictable) beacon,
  // the final RSelect keeps a candidate from an honest-leader repetition.
  const std::size_t n = 256, B = 8, D = 8;
  RobustFixture f(planted_clusters(n, n, B, D, Rng(2)));
  Rng rng(3);
  f.population.corrupt_random(n / (3 * B), rng,
                              [] { return std::make_unique<Sleeper>(); });
  RobustParams params;
  params.inner = Params::practical(B);
  params.outer_reps = 3;
  const RobustResult r =
      robust_calculate_preferences(f.oracle, f.board, f.population, params, 2);
  EXPECT_GE(r.honest_leader_reps, 1u);
  EXPECT_LE(f.max_honest_error(r.result), 4 * D);
}

TEST(Robust, CustomDishonestBeaconFactoryIsUsed) {
  const std::size_t n = 128, B = 4;
  RobustFixture f(planted_clusters(n, n, B, 8, Rng(4)));
  Rng rng(5);
  // Heavy corruption so dishonest leaders actually happen.
  f.population.corrupt_random(n / 3, rng,
                              [] { return std::make_unique<RandomLiar>(); });
  std::size_t factory_calls = 0;
  RobustParams params;
  params.inner = Params::practical(B);
  params.outer_reps = 4;
  params.dishonest_beacon = [&factory_calls](std::uint64_t rep_key, PlayerId) {
    ++factory_calls;
    return std::make_unique<GrindingBeacon>(rep_key, 1, nullptr);
  };
  const RobustResult r =
      robust_calculate_preferences(f.oracle, f.board, f.population, params, 3);
  EXPECT_EQ(factory_calls + r.honest_leader_reps, 4u);
}

TEST(Robust, MoreRepsMoreHonestLeaders) {
  const std::size_t n = 128, B = 4;
  RobustFixture f(planted_clusters(n, n, B, 8, Rng(6)));
  Rng rng(7);
  f.population.corrupt_random(n / (3 * B), rng,
                              [] { return std::make_unique<Inverter>(); });
  RobustParams params;
  params.inner = Params::practical(B);
  params.outer_reps = 5;
  const RobustResult r =
      robust_calculate_preferences(f.oracle, f.board, f.population, params, 4);
  // With ~10% dishonest, most elections go honest.
  EXPECT_GE(r.honest_leader_reps, 3u);
}

TEST(Robust, ProbeAccountingCoversAllReps) {
  RobustFixture f(planted_clusters(64, 64, 2, 4, Rng(8)));
  RobustParams params;
  params.inner = Params::practical(2);
  params.outer_reps = 2;
  const RobustResult r =
      robust_calculate_preferences(f.oracle, f.board, f.population, params, 5);
  EXPECT_EQ(r.result.total_probes, f.oracle.total_probes());
  EXPECT_GT(r.result.max_probes, 0u);
}

TEST(Robust, IterationDiagnosticsAggregated) {
  RobustFixture f(planted_clusters(64, 64, 2, 4, Rng(9)));
  RobustParams params;
  params.inner = Params::practical(2);
  params.outer_reps = 2;
  const RobustResult r =
      robust_calculate_preferences(f.oracle, f.board, f.population, params, 6);
  // Two repetitions, each with >= 1 diameter iteration.
  EXPECT_GE(r.result.iterations.size(), 2u);
}

TEST(Robust, DeterministicForSameSeeds) {
  RobustParams params;
  params.inner = Params::practical(4);
  params.outer_reps = 2;
  RobustFixture f1(planted_clusters(128, 128, 4, 8, Rng(10)));
  RobustFixture f2(planted_clusters(128, 128, 4, 8, Rng(10)));
  const RobustResult a =
      robust_calculate_preferences(f1.oracle, f1.board, f1.population, params, 7);
  const RobustResult b =
      robust_calculate_preferences(f2.oracle, f2.board, f2.population, params, 7);
  for (PlayerId p = 0; p < 128; ++p)
    EXPECT_EQ(a.result.outputs[p], b.result.outputs[p]);
}

}  // namespace
}  // namespace colscore
