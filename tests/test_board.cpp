#include <gtest/gtest.h>

#include <thread>

#include "src/board/bulletin_board.hpp"
#include "src/board/probe_oracle.hpp"
#include "src/board/shared_random.hpp"
#include "src/common/exec_policy.hpp"
#include "src/model/preference_matrix.hpp"

namespace colscore {
namespace {

PreferenceMatrix small_matrix() {
  PreferenceMatrix m(4, 6);
  m.set(0, 0, true);
  m.set(1, 1, true);
  m.set(2, 2, true);
  m.set(3, 3, true);
  return m;
}

TEST(ProbeOracle, ReturnsOwnTruthAndCharges) {
  const PreferenceMatrix m = small_matrix();
  ProbeOracle oracle(m);
  EXPECT_TRUE(oracle.probe(0, 0));
  EXPECT_FALSE(oracle.probe(0, 1));
  EXPECT_TRUE(oracle.probe(1, 1));
  EXPECT_EQ(oracle.probes_by(0), 2u);
  EXPECT_EQ(oracle.probes_by(1), 1u);
  EXPECT_EQ(oracle.probes_by(2), 0u);
  EXPECT_EQ(oracle.total_probes(), 3u);
  EXPECT_EQ(oracle.max_probes(), 2u);
}

TEST(ProbeOracle, AdversaryPeekIsFree) {
  const PreferenceMatrix m = small_matrix();
  ProbeOracle oracle(m);
  EXPECT_TRUE(oracle.adversary_peek(2, 2));
  EXPECT_EQ(oracle.total_probes(), 0u);
}

TEST(ProbeOracle, ResetCounts) {
  const PreferenceMatrix m = small_matrix();
  ProbeOracle oracle(m);
  oracle.probe(0, 0);
  oracle.reset_counts();
  EXPECT_EQ(oracle.total_probes(), 0u);
}

TEST(ProbeOracle, HardBudgetAborts) {
  const PreferenceMatrix m = small_matrix();
  ProbeOracle oracle(m, ProbeOracle::BudgetMode::kHard, 2);
  oracle.probe(0, 0);
  oracle.probe(0, 1);
  EXPECT_DEATH(oracle.probe(0, 2), "budget");
}

TEST(ProbeOracle, ConcurrentProbesCountExactly) {
  const PreferenceMatrix m = small_matrix();
  ProbeOracle oracle(m);
  parallel_for(0, 1000, [&](std::size_t) { oracle.probe(0, 0); });
  EXPECT_EQ(oracle.probes_by(0), 1000u);
}

TEST(BulletinBoard, ReportRoundTrip) {
  BulletinBoard board;
  board.post_report(1, 10, 5, true);
  board.post_report(1, 11, 5, false);
  board.post_report(2, 12, 5, true);  // different channel

  const auto reports = board.reports_for(1, 5);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].author, 10u);
  EXPECT_TRUE(reports[0].value);
  EXPECT_EQ(reports[1].author, 11u);
  EXPECT_FALSE(reports[1].value);

  EXPECT_TRUE(board.reports_for(1, 6).empty());
  EXPECT_EQ(board.reports_for(2, 5).size(), 1u);
  EXPECT_EQ(board.report_count(), 3u);
}

TEST(BulletinBoard, AppendOnlyPreservesHonestRecords) {
  // A dishonest player posting to the same channel/object cannot alter the
  // honest entry — there is no mutation API, and records keep their author.
  BulletinBoard board;
  board.post_report(7, /*author=*/1, /*object=*/3, true);
  board.post_report(7, /*author=*/666, /*object=*/3, false);
  const auto reports = board.reports_for(7, 3);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].author, 1u);
  EXPECT_TRUE(reports[0].value);  // unchanged
}

TEST(BulletinBoard, VectorChannel) {
  BulletinBoard board;
  BitVector v(8);
  v.set(3, true);
  board.post_vector(42, 0, v);
  board.post_vector(42, 1, v);
  BitVector w(8);
  board.post_vector(42, 2, w);

  const auto posts = board.vectors(42);
  ASSERT_EQ(posts.size(), 3u);
  EXPECT_EQ(board.vector_count(), 3u);

  const auto by_support = board.vectors_by_support(42);
  ASSERT_EQ(by_support.size(), 2u);
  EXPECT_EQ(by_support[0].support, 2u);
  EXPECT_EQ(by_support[0].vector, v);
  EXPECT_EQ(by_support[1].support, 1u);
  EXPECT_EQ(by_support[1].vector, w);
}

TEST(BulletinBoard, SupportTieBreaksByFirstAppearance) {
  BulletinBoard board;
  BitVector a(4), b(4);
  b.set(0, true);
  board.post_vector(1, 0, a);
  board.post_vector(1, 1, b);
  const auto by_support = board.vectors_by_support(1);
  ASSERT_EQ(by_support.size(), 2u);
  EXPECT_EQ(by_support[0].vector, a);
}

TEST(BulletinBoard, AllReportsCollectsChannel) {
  BulletinBoard board;
  for (ObjectId o = 0; o < 10; ++o) board.post_report(9, 0, o, o % 2 == 0);
  const auto all = board.all_reports(9);
  EXPECT_EQ(all.size(), 10u);
}

TEST(BulletinBoard, ConcurrentPostsAllLand) {
  BulletinBoard board;
  parallel_for(0, 2000, [&](std::size_t i) {
    board.post_report(3, static_cast<PlayerId>(i), static_cast<ObjectId>(i % 16),
                      true);
  });
  EXPECT_EQ(board.report_count(), 2000u);
  std::size_t total = 0;
  for (ObjectId o = 0; o < 16; ++o) total += board.reports_for(3, o).size();
  EXPECT_EQ(total, 2000u);
}

TEST(HonestBeacon, DeterministicPerPhase) {
  HonestBeacon a(5), b(5);
  EXPECT_EQ(a.seed_for(1), b.seed_for(1));
  EXPECT_NE(a.seed_for(1), a.seed_for(2));
  EXPECT_TRUE(a.honest());
}

TEST(HonestBeacon, DifferentRootsDiffer) {
  HonestBeacon a(5), b(6);
  EXPECT_NE(a.seed_for(1), b.seed_for(1));
}

TEST(GrindingBeacon, NoObjectiveIsPredictable) {
  GrindingBeacon g(7, 1, nullptr);
  EXPECT_FALSE(g.honest());
  EXPECT_EQ(g.seed_for(3), g.seed_for(3));
}

TEST(GrindingBeacon, GrindsTowardObjective) {
  // Objective: prefer seeds whose low byte is large. With enough attempts the
  // beacon should find a seed with a high low-byte.
  GrindingBeacon g(7, 256, [](std::uint64_t seed, std::uint64_t) {
    return static_cast<double>(seed & 0xff);
  });
  const std::uint64_t chosen = g.seed_for(11);
  EXPECT_GE(chosen & 0xff, 200u);
}

TEST(GrindingBeacon, RngForMatchesSeed) {
  HonestBeacon h(9);
  Rng direct(h.seed_for(4));
  Rng via = h.rng_for(4);
  EXPECT_EQ(direct(), via());
}

}  // namespace
}  // namespace colscore
