// PR 9 proof point for the ExecPolicy redesign: execution is fully explicit.
// Two SuiteRunners on disjoint pools run concurrently and still produce
// byte-identical JSONL to a serial run, because no state flows through the
// ambient process pool; and each policy owns its workspace arena, so
// concurrent suites never alias scratch buffers. The whole binary runs under
// the tsan CI leg (COLSCORE_SAN=thread).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/workspace.hpp"
#include "src/sim/sink.hpp"
#include "src/sim/suite.hpp"

namespace colscore {
namespace {

std::vector<ScenarioSpec> small_specs() {
  ScenarioSpec base;
  base.set("n", "48").set("budget", "4").set("diameter", "8")
      .set("dishonest", "4").set("opt", "0");
  return expand_grid(base,
                     parse_grid("adversary=none,sleeper x algorithm=calc,baseline"));
}

/// Runs the pinned grid under `policy` and returns the typed-JSONL bytes.
std::string suite_jsonl(const std::vector<ScenarioSpec>& specs,
                        const ExecPolicy& policy) {
  const MetricSchema schema = [&] {
    std::vector<Scenario> resolved;
    for (const ScenarioSpec& s : specs) resolved.push_back(Scenario::resolve(s));
    return suite_metric_schema(resolved);
  }();
  std::ostringstream out;
  SinkConfig config;
  config.stream = &out;
  JsonlSink sink(config);
  RecordStream stream(sink, schema, default_columns());
  SuiteOptions options;
  options.policy = &policy;
  options.on_result = [&](const SuiteRun& run) {
    stream.write(make_run_record(run, schema));
  };
  SuiteRunner(options).run(specs);
  stream.finish();
  return out.str();
}

TEST(ExecPolicy, SerialParForRunsInOrderInline) {
  const ExecPolicy policy = ExecPolicy::serial();
  EXPECT_EQ(policy.worker_count(), 1u);
  std::vector<std::size_t> order;
  policy.par_for(3, 10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 7u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i + 3);
}

TEST(ExecPolicy, PoolParForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  EXPECT_EQ(policy.worker_count(), 4u);
  std::vector<std::atomic<int>> hits(2048);
  policy.par_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// The tentpole proof point: two suites on disjoint 2-thread pools, driven
// concurrently from an outer pool, emit byte-for-byte the serial rows.
TEST(ExecPolicy, ConcurrentSuitesOnDisjointPoolsMatchSerialBytes) {
  const std::vector<ScenarioSpec> specs = small_specs();
  const std::string serial = suite_jsonl(specs, ExecPolicy::serial());
  ASSERT_FALSE(serial.empty());

  ThreadPool outer(2);
  ThreadPool pool_a(2);
  ThreadPool pool_b(2);
  const ExecPolicy policy_a = ExecPolicy::pool(pool_a);
  const ExecPolicy policy_b = ExecPolicy::pool(pool_b);
  const std::array<const ExecPolicy*, 2> policies = {&policy_a, &policy_b};
  std::array<std::string, 2> outputs;
  ExecPolicy::pool(outer).par_for(
      0, policies.size(),
      [&](std::size_t s) { outputs[s] = suite_jsonl(specs, *policies[s]); },
      /*grain=*/1);

  EXPECT_EQ(outputs[0], serial);
  EXPECT_EQ(outputs[1], serial);
}

// Each policy owns its workspace arena: slots observed under policy A are
// never the slots observed under policy B, even while both run at once.
TEST(ExecPolicy, PoliciesOwnDisjointWorkspaceArenas) {
  ThreadPool outer(2);
  ThreadPool pool_a(2);
  ThreadPool pool_b(2);
  const ExecPolicy policy_a = ExecPolicy::pool(pool_a);
  const ExecPolicy policy_b = ExecPolicy::pool(pool_b);
  const std::array<const ExecPolicy*, 2> policies = {&policy_a, &policy_b};
  std::mutex mu;
  std::array<std::set<const RunWorkspace*>, 2> seen;

  ExecPolicy::pool(outer).par_for(
      0, policies.size(),
      [&](std::size_t s) {
        for (int round = 0; round < 8; ++round) {
          policies[s]->par_for(0, 256, [&](std::size_t) {
            const RunWorkspace* ws = &policies[s]->workspace();
            std::lock_guard<std::mutex> lock(mu);
            seen[s].insert(ws);
          });
        }
      },
      /*grain=*/1);

  ASSERT_FALSE(seen[0].empty());
  ASSERT_FALSE(seen[1].empty());
  for (const RunWorkspace* ws : seen[0]) EXPECT_EQ(seen[1].count(ws), 0u);
}

// CL001 contract: nested frames on one thread share the worker's slot, so a
// nested par_for body on the caller's thread sees the caller's workspace.
TEST(ExecPolicy, NestedLoopsShareTheWorkerSlotPerThread) {
  ThreadPool pool(2);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  std::atomic<int> mismatches{0};
  policy.par_for(0, 8, [&](std::size_t) {
    RunWorkspace* outer_ws = &policy.workspace();
    const std::thread::id me = std::this_thread::get_id();
    policy.par_for(0, 8, [&](std::size_t) {
      if (std::this_thread::get_id() == me && &policy.workspace() != outer_ws)
        mismatches.fetch_add(1);
    });
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ExecPolicy, WorkerScopeBindsAndRestores) {
  ThreadPool pool_a(2);
  ThreadPool pool_b(2);
  const ExecPolicy a = ExecPolicy::pool(pool_a);
  const ExecPolicy b = ExecPolicy::pool(pool_b);
  {
    WorkerScope scope_a(a);
    RunWorkspace* wa = &a.workspace();
    {
      WorkerScope scope_b(b);  // different arena: rebinds to a fresh slot
      EXPECT_NE(&b.workspace(), wa);
    }
    EXPECT_EQ(&a.workspace(), wa);  // previous binding restored
    {
      WorkerScope again(a);  // same arena: nested scope shares the slot
      EXPECT_EQ(&a.workspace(), wa);
    }
    EXPECT_EQ(&a.workspace(), wa);
  }
}

}  // namespace
}  // namespace colscore
