// CSR vs dense neighbor-graph backend equivalence.
//
// The two backends must be interchangeable: identical edge sets, identical
// degrees, and — because cluster_players visits neighbors in ascending id
// order on both — byte-identical clustering output on the same input. The
// auto heuristic must also be deterministic: a pure function of the input
// vectors, never of machine or schedule.

#include "src/protocols/neighbor_csr.hpp"

#include <gtest/gtest.h>

#include "src/common/thread_pool.hpp"
#include "src/model/generators.hpp"
#include "src/protocols/neighbor_graph.hpp"

namespace colscore {
namespace {

/// n players in `groups` tight clusters: members of a group differ in ~2
/// bits, distinct groups differ in ~dim/2. Mirrors the planted workload the
/// suite benches use.
std::vector<BitVector> planted_z(std::size_t n, std::size_t groups,
                                 std::size_t dim, Rng rng) {
  std::vector<BitVector> centers;
  for (std::size_t g = 0; g < groups; ++g)
    centers.push_back(random_bitvector(dim, rng));
  std::vector<BitVector> z;
  for (std::size_t i = 0; i < n; ++i) {
    BitVector v = centers[i % groups];
    v.flip(rng.below(dim));
    v.flip(rng.below(dim));
    z.push_back(std::move(v));
  }
  return z;
}

void expect_same_edges(const NeighborGraph& dense, const NeighborGraph& csr) {
  ASSERT_EQ(dense.size(), csr.size());
  const std::size_t n = dense.size();
  for (PlayerId p = 0; p < n; ++p) {
    EXPECT_EQ(dense.degree(p), csr.degree(p)) << "p=" << p;
    for (PlayerId q = 0; q < n; ++q)
      EXPECT_EQ(dense.has_edge(p, q), csr.has_edge(p, q))
          << "p=" << p << " q=" << q;
  }
}

void expect_same_clustering(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.leftovers, b.leftovers);
  EXPECT_EQ(a.orphans, b.orphans);
}

TEST(NeighborCsr, EdgeSetMatchesDenseOnFixedSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::vector<BitVector> z = planted_z(96, 8, 256, Rng(seed));
    const NeighborGraph dense(z, 40, GraphBackend::kDense);
    const NeighborGraph csr(z, 40, GraphBackend::kCsr);
    EXPECT_EQ(dense.backend(), GraphBackend::kDense);
    EXPECT_EQ(csr.backend(), GraphBackend::kCsr);
    expect_same_edges(dense, csr);
  }
}

TEST(NeighborCsr, AdjacencyListsAreAscending) {
  // The scatter relies on tile-order generation producing sorted rows with
  // no sort call; this is the invariant binary-search has_edge needs.
  const std::vector<BitVector> z = planted_z(150, 10, 192, Rng(7));
  const NeighborGraph csr(z, 36, GraphBackend::kCsr);
  for (PlayerId p = 0; p < csr.size(); ++p) {
    const std::span<const std::uint32_t> nb = csr.neighbors(p);
    for (std::size_t i = 1; i < nb.size(); ++i)
      EXPECT_LT(nb[i - 1], nb[i]) << "p=" << p;
    for (const std::uint32_t q : nb) EXPECT_NE(q, p) << "self loop";
  }
}

TEST(NeighborCsr, ClusteringIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const std::vector<BitVector> z = planted_z(120, 6, 256, Rng(seed));
    const NeighborGraph dense(z, 48, GraphBackend::kDense);
    const NeighborGraph csr(z, 48, GraphBackend::kCsr);
    expect_same_clustering(cluster_players(dense, 120 / 6),
                           cluster_players(csr, 120 / 6));
  }
}

TEST(NeighborCsr, ClusteringIdenticalWithSparseAndDenseGraphs) {
  // Both regimes around the density-heuristic boundary: a tight-threshold
  // (sparse) and a loose-threshold (dense) graph on the same vectors.
  const std::vector<BitVector> z = planted_z(128, 16, 256, Rng(9));
  for (const std::size_t tau : {8ul, 60ul, 140ul}) {
    const NeighborGraph dense(z, tau, GraphBackend::kDense);
    const NeighborGraph csr(z, tau, GraphBackend::kCsr);
    expect_same_edges(dense, csr);
    expect_same_clustering(cluster_players(dense, 8),
                           cluster_players(csr, 8));
  }
}

TEST(NeighborCsr, ClusteringIdenticalUnderThreading) {
  // The parallel tile sweep must not leak schedule into the CSR layout.
  const std::vector<BitVector> z = planted_z(200, 10, 256, Rng(5));
  const NeighborGraph serial(z, 48, GraphBackend::kCsr, ExecPolicy::serial());
  ThreadPool pool(4);
  const NeighborGraph threaded(z, 48, GraphBackend::kCsr, ExecPolicy::pool(pool));
  ASSERT_EQ(serial.size(), threaded.size());
  for (PlayerId p = 0; p < serial.size(); ++p) {
    const std::span<const std::uint32_t> a = serial.neighbors(p);
    const std::span<const std::uint32_t> b = threaded.neighbors(p);
    ASSERT_EQ(a.size(), b.size()) << "p=" << p;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(NeighborCsr, AutoSelectsDenseForSmallN) {
  // Below the n floor the heuristic never picks CSR, whatever the density.
  const std::vector<BitVector> z = planted_z(64, 4, 128, Rng(3));
  const NeighborGraph g(z, 10, GraphBackend::kAuto);
  EXPECT_EQ(g.backend(), GraphBackend::kDense);
}

TEST(NeighborCsr, DensityEstimateIsDeterministicAndOrdered) {
  const std::vector<BitVector> zv = planted_z(256, 16, 128, Rng(21));
  const std::vector<ConstBitRow> z(zv.begin(), zv.end());
  const double tight = estimate_edge_density(z, 4);
  const double loose = estimate_edge_density(z, 120);
  EXPECT_EQ(tight, estimate_edge_density(z, 4));  // pure function of input
  EXPECT_LE(tight, loose);
  EXPECT_GE(tight, 0.0);
  EXPECT_LE(loose, 1.0);
}

TEST(NeighborCsr, DegenerateSizes) {
  const std::vector<BitVector> one{BitVector(64)};
  const NeighborGraph g1(one, 4, GraphBackend::kCsr);
  EXPECT_EQ(g1.size(), 1u);
  EXPECT_EQ(g1.degree(0), 0u);
  EXPECT_TRUE(g1.neighbors(0).empty());

  const std::vector<BitVector> none;
  const NeighborGraph g0(none, 4, GraphBackend::kCsr);
  EXPECT_EQ(g0.size(), 0u);
}

}  // namespace
}  // namespace colscore
