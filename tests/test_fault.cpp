// Fault-tolerance coverage: FaultPlan parsing, retry-after-throw, exhausted
// retries degrading to status/error rows, post-hoc timeout classification,
// injected sink failures, and shard arithmetic + the shard concatenation
// contract (k shard outputs == the unsharded rows, byte for byte).
#include "src/sim/fault.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/sim/record.hpp"
#include "src/sim/suite.hpp"

namespace colscore {
namespace {

constexpr char kBase[] = "workload=planted n=48 budget=4 dishonest=4 opt=0";

/// Expands `grid` over the tiny base spec.
std::vector<ScenarioSpec> tiny_grid(const std::string& grid) {
  return expand_grid(ScenarioSpec::parse(kBase), parse_grid(grid));
}

// ---- FaultPlan parsing ------------------------------------------------------

TEST(FaultPlanParse, AcceptsTheDocumentedGrammar) {
  const FaultPlan plan =
      FaultPlan::parse("throw@3, delay@7=0.5x2, sink@4, kill@1, throw@9x1");
  ASSERT_EQ(plan.specs().size(), 5u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kThrow);
  EXPECT_EQ(plan.specs()[0].index, 3u);
  EXPECT_EQ(plan.specs()[0].attempts, 0u);  // every attempt
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(plan.specs()[1].seconds, 0.5);
  EXPECT_EQ(plan.specs()[1].attempts, 2u);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kSinkFail);
  EXPECT_EQ(plan.specs()[2].index, 4u);
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::kKill);
  EXPECT_EQ(plan.specs()[4].attempts, 1u);
  EXPECT_TRUE(plan.has_sink_faults());
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ").empty());
  EXPECT_FALSE(FaultPlan::parse("throw@0").has_sink_faults());
}

TEST(FaultPlanParse, NamesTheBadToken) {
  for (const char* bad : {"explode@3", "throw", "throw@x", "delay@3",
                          "delay@3=abc", "sink@1x2", "throw@1x0"}) {
    try {
      (void)FaultPlan::parse(bad);
      FAIL() << "expected ScenarioError for: " << bad;
    } catch (const ScenarioError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("fault spec token"), std::string::npos) << msg;
      EXPECT_NE(msg.find("throw@I"), std::string::npos) << msg;
    }
  }
}

// ---- run isolation ----------------------------------------------------------

TEST(RunIsolation, RetryRecoversFromATransientThrow) {
  // throw@1x1: run 1's first attempt throws, the retry succeeds.
  const FaultPlan faults = FaultPlan::parse("throw@1x1");
  SuiteOptions options;
  options.threads = 1;
  options.retries = 1;
  options.backoff_s = 0.0;  // no sleep in tests
  options.faults = &faults;
  const std::vector<SuiteRun> runs =
      SuiteRunner(options).run(tiny_grid("adversary=none,sleeper"));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].status, RunStatus::kOk);
  EXPECT_EQ(runs[0].attempts, 1u);
  EXPECT_EQ(runs[1].status, RunStatus::kOk);
  EXPECT_EQ(runs[1].attempts, 2u);
  EXPECT_TRUE(runs[1].error.empty());
  EXPECT_EQ(suite_failure_count(runs), 0u);
}

TEST(RunIsolation, ExhaustedRetriesDegradeToAFailureRow) {
  const FaultPlan faults = FaultPlan::parse("throw@0");
  SuiteOptions options;
  options.threads = 1;
  options.retries = 2;
  options.backoff_s = 0.0;
  options.faults = &faults;
  std::vector<std::size_t> streamed;
  options.on_result = [&](const SuiteRun& run) {
    streamed.push_back(run.index);
  };
  const std::vector<SuiteRun> runs =
      SuiteRunner(options).run(tiny_grid("adversary=none,sleeper"));
  ASSERT_EQ(runs.size(), 2u);
  // The suite did not abort: the failed run became a row and the healthy
  // run still executed and streamed in order.
  EXPECT_EQ(streamed, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(runs[0].status, RunStatus::kFailed);
  EXPECT_EQ(runs[0].attempts, 3u);  // 1 try + 2 retries
  EXPECT_NE(runs[0].error.find("injected fault"), std::string::npos)
      << runs[0].error;
  EXPECT_EQ(runs[1].status, RunStatus::kOk);
  EXPECT_EQ(suite_failure_count(runs), 1u);

  // The failure row carries identity + status/error; result metrics stay
  // absent (never a misleading 0).
  const MetricSchema schema = scenario_metric_schema(runs[0].scenario);
  const RunRecord record = make_run_record(runs[0], schema);
  EXPECT_EQ(record.cell_text(schema.index_of("status")), "failed");
  EXPECT_FALSE(record.value("error").as_string().empty());
  EXPECT_EQ(record.value("workload").as_string(), "planted");
  EXPECT_TRUE(record.value("seed").has_value());
  EXPECT_FALSE(record.value("max_err").has_value());
  EXPECT_FALSE(record.value("total_probes").has_value());
}

TEST(RunIsolation, SlowRunsClassifyAsTimeoutPostHoc) {
  const FaultPlan faults = FaultPlan::parse("delay@0=0.6");
  SuiteOptions options;
  options.threads = 1;
  options.timeout_s = 0.15;
  options.faults = &faults;
  const std::vector<SuiteRun> runs =
      SuiteRunner(options).run(tiny_grid("adversary=none"));
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].status, RunStatus::kTimeout);
  EXPECT_NE(runs[0].error.find("timeout_s"), std::string::npos)
      << runs[0].error;
  EXPECT_EQ(suite_failure_count(runs), 1u);
}

// ---- sink faults ------------------------------------------------------------

/// Minimal inner sink counting rows (rows_ is inherited).
struct CountingSink : ResultSink {
  void begin(const MetricSchema&) override {}
  void write(const RunRecord&) override { ++rows_; }
};

TEST(SinkFaults, InjectingSinkFailsTheTargetedWrite) {
  auto inner = std::make_unique<CountingSink>();
  CountingSink* counter = inner.get();
  FaultInjectingSink sink(FaultPlan::parse("sink@1"), std::move(inner));
  MetricSchema schema;
  schema.add({"a", MetricType::kString, "", "test"});
  sink.begin(schema);
  RunRecord record(&schema);
  record.set_string("a", "x");
  sink.write(record);  // write 0 passes through
  EXPECT_EQ(counter->rows_written(), 1u);
  EXPECT_THROW(sink.write(record), FaultInjected);  // write 1 fails
  EXPECT_EQ(counter->rows_written(), 1u);  // the fault fires before the write
}

// ---- sharding ---------------------------------------------------------------

TEST(Sharding, RangesPartitionTheIndexSpace) {
  // Blocks cover [0, total) exactly once, in order, for uneven splits too.
  for (std::size_t total : {0u, 1u, 5u, 18u}) {
    for (std::size_t k : {1u, 2u, 3u, 7u}) {
      std::size_t covered = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const auto [lo, hi] = shard_range(total, i, k);
        EXPECT_EQ(lo, covered);
        EXPECT_LE(hi, total);
        covered = hi;
      }
      EXPECT_EQ(covered, total);
    }
  }
  EXPECT_THROW((void)shard_range(10, 2, 2), ScenarioError);
}

TEST(Sharding, ParseShardAcceptsIOverK) {
  EXPECT_EQ(parse_shard("0/2"), (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(parse_shard("3/7"), (std::pair<std::size_t, std::size_t>{3, 7}));
  for (const char* bad : {"", "1", "a/2", "1/b", "2/2", "3/2", "-1/2"})
    EXPECT_THROW((void)parse_shard(bad), ScenarioError) << bad;
}

TEST(Sharding, ShardOutputsConcatenateToTheUnshardedRows) {
  const std::vector<ScenarioSpec> specs =
      tiny_grid("adversary=none,sleeper,random_liar");

  auto rows_for = [&](std::size_t index, std::size_t count) {
    SuiteOptions options;
    options.threads = 1;
    options.reps = 2;
    options.shard_index = index;
    options.shard_count = count;
    std::vector<std::string> rows;
    options.on_result = [&](const SuiteRun& run) {
      // Out-of-shard runs must never stream.
      EXPECT_NE(run.status, RunStatus::kSkipped);
      std::ostringstream cell;
      for (const std::string& c :
           suite_row_cells(run, false, /*include_rep=*/true))
        cell << c << ',';
      rows.push_back(cell.str());
    };
    SuiteRunner(options).run(specs);
    return rows;
  };

  const std::vector<std::string> all = rows_for(0, 1);
  ASSERT_EQ(all.size(), 6u);  // 3 cells x 2 reps
  std::vector<std::string> merged;
  for (std::size_t i = 0; i < 2; ++i) {
    const std::vector<std::string> part = rows_for(i, 2);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Identical rows — same derived seeds, same cells — in the same order.
  EXPECT_EQ(merged, all);
}

}  // namespace
}  // namespace colscore
