// Shared fixtures for protocol tests: bundles world + population + oracle +
// board + beacon into a ready ProtocolEnv.
#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/model/generators.hpp"
#include "src/protocols/env.hpp"

namespace colscore::testutil {

/// Splits one CSV line on commas (no quoting — the golden rows contain
/// none), keeping trailing empty cells (the golden row ends with an empty
/// `error` cell). Shared by the golden-row consumers (test_sinks,
/// test_record).
inline std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

// Fixed-seed golden pinned by test_determinism_csv and reused by the sink
// tests: one scenario, one byte-exact suite row (wall column excluded).
// Captured from the seed CLI before the BitMatrix rewrite; update both
// expectations by updating this one constant.
inline constexpr char kGoldenScenario[] =
    "workload=planted n=128 budget=4 dishonest=8 adversary=sleeper seed=3 "
    "opt=1";
inline constexpr char kGoldenRow[] =
    "planted,calculate_preferences,sleeper,128,4,16,8,3,8,3.94167,1310,1310,"
    "152489,32256,0.533333,ok,";

struct Harness {
  World world;
  Population population;
  ProbeOracle oracle;
  BulletinBoard board;
  HonestBeacon beacon;
  ProtocolEnv env;

  Harness(World w, std::uint64_t seed = 0xbeac0ULL,
          const ExecPolicy& policy = ExecPolicy::process_default())
      : world(std::move(w)),
        population(world.n_players()),
        oracle(world.matrix),
        beacon(seed),
        env(oracle, board, population, beacon, mix_keys(seed, 0x10ca1ULL),
            policy) {
    oracle.bind_policy(env.policy);  // env.policy outlives the oracle binding
  }

  std::vector<PlayerId> all_players() const {
    std::vector<PlayerId> out(world.n_players());
    for (PlayerId p = 0; p < out.size(); ++p) out[p] = p;
    return out;
  }
  std::vector<ObjectId> all_objects() const {
    std::vector<ObjectId> out(world.n_objects());
    for (ObjectId o = 0; o < out.size(); ++o) out[o] = o;
    return out;
  }
};

}  // namespace colscore::testutil
