// Fixed-seed golden outputs for the full protocol pipeline.
//
// These two rows were captured from the seed CLI (`colscore_cli --scenario
// ... --csv`, wall-time column excluded) before the BitMatrix storage /
// tiled-kernel rewrite landed. The whole pipeline — mix_keys seed
// derivations, probe-charging order, tie-break coins, tournament outcomes —
// is observable through them, so any refactor that perturbs per-seed
// behaviour fails here byte-for-byte.
#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/suite.hpp"
#include "test_util.hpp"

namespace colscore {
namespace {

std::string run_to_csv(const std::string& scenario_text) {
  SuiteOptions options;
  options.threads = 1;
  options.derive_seeds = false;  // single runs keep their literal seed
  std::ostringstream out;
  CsvWriter writer(out, suite_csv_columns(/*include_wall=*/false));
  options.on_result = [&](const SuiteRun& run) {
    suite_csv_row(writer, run, /*include_wall=*/false);
  };
  SuiteRunner runner(options);
  runner.run({ScenarioSpec::parse(scenario_text)});
  return out.str();
}

constexpr char kHeader[] =
    "workload,algorithm,adversary,n,budget,diameter,dishonest,seed,max_err,"
    "mean_err,max_probes,honest_max_probes,total_probes,board_reports,"
    "err_over_opt,status,error\n";

TEST(DeterminismCsv, SleeperSeed3ByteIdentical) {
  // Golden shared with the sink tests (tests/test_util.hpp): all sinks must
  // emit these exact cells.
  const std::string csv = run_to_csv(testutil::kGoldenScenario);
  EXPECT_EQ(csv,
            std::string(kHeader) + std::string(testutil::kGoldenRow) + "\n");
}

TEST(DeterminismCsv, RandomLiarSeed11ByteIdentical) {
  const std::string csv = run_to_csv(
      "workload=planted n=192 budget=4 dishonest=12 adversary=random_liar "
      "seed=11 opt=1");
  EXPECT_EQ(csv, std::string(kHeader) +
                     "planted,calculate_preferences,random_liar,192,4,16,12,11,"
                     "8,4.06667,1942,1942,340000,69120,0.5,ok,\n");
}

}  // namespace
}  // namespace colscore
