#include "src/model/behavior.hpp"

#include <gtest/gtest.h>

#include "src/model/generators.hpp"
#include "src/model/population.hpp"

namespace colscore {
namespace {

ReportContext ctx(Phase phase) { return ReportContext{phase, 1}; }

TEST(HonestBehavior, ReportsTruthAndPublishesHonestly) {
  HonestBehavior h;
  Rng rng(1);
  EXPECT_TRUE(h.honest());
  EXPECT_TRUE(h.report(0, 0, true, ctx(Phase::kVote), rng));
  EXPECT_FALSE(h.report(0, 0, false, ctx(Phase::kVote), rng));
  BitVector v(8);
  v.set(2, true);
  EXPECT_EQ(h.publish(0, v, {}, ctx(Phase::kVote), rng), v);
}

TEST(RandomLiar, IgnoresTruth) {
  RandomLiar liar(1.0);
  Rng rng(2);
  int ones = 0;
  for (int i = 0; i < 1000; ++i)
    if (liar.report(0, 0, false, ctx(Phase::kVote), rng)) ++ones;
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
  EXPECT_FALSE(liar.honest());
}

TEST(RandomLiar, PartialLieRate) {
  RandomLiar liar(0.0);  // never lies
  Rng rng(3);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(liar.report(0, 0, true, ctx(Phase::kVote), rng));
}

TEST(Inverter, AlwaysOpposite) {
  Inverter inv;
  Rng rng(4);
  EXPECT_FALSE(inv.report(0, 0, true, ctx(Phase::kVote), rng));
  EXPECT_TRUE(inv.report(0, 0, false, ctx(Phase::kVote), rng));
  BitVector v(4);
  v.set(0, true);
  const BitVector pub = inv.publish(0, v, {}, ctx(Phase::kVote), rng);
  EXPECT_FALSE(pub.get(0));
  EXPECT_TRUE(pub.get(1));
}

TEST(ConstantReporter, StuffsBallots) {
  ConstantReporter yes(true);
  Rng rng(5);
  EXPECT_TRUE(yes.report(0, 0, false, ctx(Phase::kVote), rng));
  BitVector v(6);
  EXPECT_EQ(yes.publish(0, v, {}, ctx(Phase::kVote), rng).popcount(), 6u);

  ConstantReporter no(false);
  EXPECT_FALSE(no.report(0, 0, true, ctx(Phase::kVote), rng));
}

TEST(TargetedBias, OnlyLiesOnTargets) {
  TargetedBias bias({3, 5}, true);
  Rng rng(6);
  EXPECT_TRUE(bias.report(0, 3, false, ctx(Phase::kVote), rng));
  EXPECT_TRUE(bias.report(0, 5, false, ctx(Phase::kVote), rng));
  EXPECT_FALSE(bias.report(0, 4, false, ctx(Phase::kVote), rng));
  EXPECT_TRUE(bias.report(0, 4, true, ctx(Phase::kVote), rng));
}

TEST(TargetedBias, PublishRespectsSubsetMapping) {
  TargetedBias bias({10}, true);
  Rng rng(7);
  BitVector honest(3);  // over objects {9, 10, 11}
  std::vector<ObjectId> objects{9, 10, 11};
  const BitVector pub = bias.publish(0, honest, objects, ctx(Phase::kVote), rng);
  EXPECT_FALSE(pub.get(0));
  EXPECT_TRUE(pub.get(1));  // object 10 promoted
  EXPECT_FALSE(pub.get(2));
}

TEST(ClusterHijacker, MimicsVictimThenBetrays) {
  const World w = identical_clusters(8, 16, 2, Rng(8));
  ClusterHijacker hijacker(w.matrix, /*victim=*/0);
  Rng rng(9);
  for (ObjectId o = 0; o < 16; ++o) {
    const bool victim_truth = w.matrix.preference(0, o);
    // During clustering phases: mimic.
    EXPECT_EQ(hijacker.report(5, o, !victim_truth, ctx(Phase::kSample), rng),
              victim_truth);
    EXPECT_EQ(hijacker.report(5, o, !victim_truth, ctx(Phase::kClusterGraph), rng),
              victim_truth);
    // During the vote: betray.
    EXPECT_EQ(hijacker.report(5, o, victim_truth, ctx(Phase::kVote), rng),
              !victim_truth);
  }
}

TEST(ClusterHijacker, PublishMimicsOverSubsets) {
  const World w = identical_clusters(8, 16, 2, Rng(10));
  ClusterHijacker hijacker(w.matrix, 0);
  Rng rng(11);
  std::vector<ObjectId> subset{1, 7, 13};
  BitVector junk(3);
  const BitVector pub = hijacker.publish(5, junk, subset, ctx(Phase::kSample), rng);
  for (std::size_t i = 0; i < subset.size(); ++i)
    EXPECT_EQ(pub.get(i), w.matrix.preference(0, subset[i]));
}

TEST(Sleeper, HonestUntilVote) {
  Sleeper s;
  Rng rng(12);
  EXPECT_TRUE(s.report(0, 0, true, ctx(Phase::kSample), rng));
  EXPECT_TRUE(s.report(0, 0, true, ctx(Phase::kZeroRadius), rng));
  EXPECT_TRUE(s.report(0, 0, true, ctx(Phase::kClusterGraph), rng));
  EXPECT_FALSE(s.report(0, 0, true, ctx(Phase::kVote), rng));
  EXPECT_TRUE(s.report(0, 0, false, ctx(Phase::kVote), rng));
}

TEST(Population, DefaultAllHonest) {
  Population pop(10);
  EXPECT_EQ(pop.honest_count(), 10u);
  EXPECT_EQ(pop.dishonest_count(), 0u);
  EXPECT_TRUE(pop.is_honest(5));
  EXPECT_EQ(pop.honest_players().size(), 10u);
  EXPECT_TRUE(pop.dishonest_players().empty());
}

TEST(Population, SetBehaviorChangesHonesty) {
  Population pop(4);
  pop.set_behavior(2, std::make_unique<Inverter>());
  EXPECT_FALSE(pop.is_honest(2));
  EXPECT_EQ(pop.honest_count(), 3u);
  EXPECT_EQ(pop.dishonest_players(), std::vector<PlayerId>{2});
}

TEST(Population, CorruptRandomRespectsCountAndProtection) {
  Rng rng(13);
  Population pop(50);
  pop.corrupt_random(10, rng, [] { return std::make_unique<RandomLiar>(); },
                     /*protected_player=*/0);
  EXPECT_EQ(pop.dishonest_count(), 10u);
  EXPECT_TRUE(pop.is_honest(0));
}

TEST(Population, ReportOfChargesHonestOnly) {
  const World w = identical_clusters(4, 8, 1, Rng(14));
  ProbeOracle oracle(w.matrix);
  Population pop(4);
  pop.set_behavior(1, std::make_unique<Inverter>());
  Rng rng(15);
  const ReportContext rctx{Phase::kVote, 0};

  const bool honest_report = pop.report_of(0, 3, oracle, rctx, rng);
  EXPECT_EQ(honest_report, w.matrix.preference(0, 3));
  EXPECT_EQ(oracle.probes_by(0), 1u);

  const bool liar_report = pop.report_of(1, 3, oracle, rctx, rng);
  EXPECT_EQ(liar_report, !w.matrix.preference(1, 3));
  EXPECT_EQ(oracle.probes_by(1), 0u);  // lying is free
}

TEST(Population, PublicationPassthroughForHonest) {
  Population pop(2);
  pop.set_behavior(1, std::make_unique<ConstantReporter>(true));
  Rng rng(16);
  BitVector honest_vec(4);
  const ReportContext rctx{Phase::kSmallRadius, 0};
  EXPECT_EQ(pop.publication(0, honest_vec, {}, rctx, rng), honest_vec);
  EXPECT_EQ(pop.publication(1, honest_vec, {}, rctx, rng).popcount(), 4u);
}

}  // namespace
}  // namespace colscore
