#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include "src/common/exec_policy.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace colscore {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+...+19
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  // Single-threaded execution is in-order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, DeeplyNestedStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) {
      pool.parallel_for(0, 4, [&](std::size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, GrainRespectsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ThreadCountReported) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
}

TEST(ThreadPool, FreeParallelForShimWorks) {
  // The free function survives only as a shim over ExecPolicy::process_default.
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{4950});
}

TEST(ThreadPool, PoolPolicyReportsWorkerCount) {
  ThreadPool pool(2);
  EXPECT_EQ(ExecPolicy::pool(pool).worker_count(), 2u);
  EXPECT_EQ(ExecPolicy::serial().worker_count(), 1u);
  EXPECT_GE(ExecPolicy::process_default().worker_count(), 1u);
}

TEST(ThreadPool, PolicyParForRunsEveryIndex) {
  ThreadPool pool(3);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  std::vector<std::atomic<int>> hits(500);
  policy.par_for(0, 500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManySmallLoops) {
  ThreadPool pool(8);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 10);
  }
}

}  // namespace
}  // namespace colscore
