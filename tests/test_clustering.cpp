#include "src/protocols/neighbor_graph.hpp"

#include <gtest/gtest.h>

#include "src/model/generators.hpp"

namespace colscore {
namespace {

/// z-vectors with k groups of identical vectors, groups pairwise far apart.
std::vector<BitVector> grouped_vectors(std::size_t n, std::size_t groups,
                                       std::size_t dim, Rng rng) {
  std::vector<BitVector> centers;
  for (std::size_t g = 0; g < groups; ++g)
    centers.push_back(random_bitvector(dim, rng));
  std::vector<BitVector> z;
  for (std::size_t i = 0; i < n; ++i) z.push_back(centers[i % groups]);
  return z;
}

TEST(NeighborGraph, EdgesRespectThreshold) {
  std::vector<BitVector> z;
  z.push_back(BitVector(32));
  BitVector close(32);
  close.set(0, true);
  close.set(1, true);
  z.push_back(close);  // distance 2
  BitVector far(32, true);
  z.push_back(far);  // distance 32 / 30
  const NeighborGraph g(z, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));  // no self loops
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(NeighborGraph, SymmetricByConstruction) {
  Rng rng(1);
  std::vector<BitVector> z;
  for (int i = 0; i < 20; ++i) z.push_back(random_bitvector(64, rng));
  const NeighborGraph g(z, 28);
  for (PlayerId p = 0; p < 20; ++p)
    for (PlayerId q = 0; q < 20; ++q)
      EXPECT_EQ(g.has_edge(p, q), g.has_edge(q, p));
}

TEST(NeighborGraph, BitMatrixAndBitVectorFamiliesAgree) {
  // The BitMatrix overload must produce the same edge set as the legacy
  // std::vector<BitVector> one (same early-exit threshold semantics).
  Rng rng(9);
  const std::size_t n = 33, dim = 200;
  std::vector<BitVector> zv;
  BitMatrix zm(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    zv.push_back(random_bitvector(dim, rng));
    zm.row(i) = zv.back();
  }
  for (std::size_t tau : {0UL, 90UL, 100UL, 110UL, dim}) {
    const NeighborGraph a(zv, tau);
    const NeighborGraph b(zm, tau);
    for (PlayerId p = 0; p < n; ++p) {
      for (PlayerId q = 0; q < n; ++q) {
        EXPECT_EQ(a.has_edge(p, q), b.has_edge(p, q));
        const bool expect = p != q && zv[p].hamming(zv[q]) <= tau;
        EXPECT_EQ(a.has_edge(p, q), expect) << p << "," << q << " tau=" << tau;
      }
    }
  }
}

TEST(ClusterPlayers, RecoversCleanGroups) {
  Rng rng(2);
  const auto z = grouped_vectors(60, 3, 128, rng);
  const NeighborGraph g(z, 10);
  const Clustering c = cluster_players(g, /*min_cluster=*/20, z);
  EXPECT_EQ(c.clusters.size(), 3u);
  EXPECT_EQ(c.min_cluster_size(), 20u);
  EXPECT_EQ(c.max_cluster_size(), 20u);
  EXPECT_EQ(c.orphans, 0u);
  // Same-group players share clusters.
  for (PlayerId p = 0; p < 60; ++p)
    EXPECT_EQ(c.cluster_of[p], c.cluster_of[p % 3]);
}

TEST(ClusterPlayers, EveryPlayerAssignedExactlyOnce) {
  Rng rng(3);
  const auto z = grouped_vectors(45, 3, 64, rng);
  const NeighborGraph g(z, 5);
  const Clustering c = cluster_players(g, 15, z);
  std::vector<int> seen(45, 0);
  for (const auto& cluster : c.clusters)
    for (PlayerId p : cluster) ++seen[p];
  for (int count : seen) EXPECT_EQ(count, 1);
  for (PlayerId p = 0; p < 45; ++p)
    EXPECT_NE(c.cluster_of[p], Clustering::kNoClusterAssigned);
}

TEST(ClusterPlayers, LeftoverAttachesToNeighborCluster) {
  // 21 players in one tight group; min_cluster 20 peels one cluster of 21?
  // No: the seed absorbs its 20 neighbours -> everyone lands in cluster 0.
  // Make one extra player adjacent to only a few group members.
  Rng rng(4);
  std::vector<BitVector> z = grouped_vectors(20, 1, 64, rng);
  BitVector nearby = z[0];
  nearby.flip(0);
  nearby.flip(1);
  nearby.flip(2);
  z.push_back(nearby);  // distance 3 from the group
  const NeighborGraph g(z, 2);  // the extra player has NO edges at tau=2
  const Clustering c = cluster_players(g, 20, z);
  // The orphan pools into its own residual cluster — it must NOT pollute the
  // real cluster's votes.
  EXPECT_EQ(c.clusters.size(), 2u);
  EXPECT_EQ(c.orphans, 1u);
  EXPECT_EQ(c.cluster_of[20], 1u);
  EXPECT_EQ(c.clusters[1].size(), 1u);
}

TEST(ClusterPlayers, LeftoverViaRemovedNeighbor) {
  // A path-shaped fringe: player X is adjacent to group members but the
  // group gets peeled first, leaving X to the leftover (V'_j) rule.
  Rng rng(5);
  std::vector<BitVector> z = grouped_vectors(20, 1, 64, rng);
  BitVector fringe = z[0];
  fringe.flip(0);  // distance 1: adjacent at tau=1
  z.push_back(fringe);
  const NeighborGraph g(z, 1);
  const Clustering c = cluster_players(g, 21, z);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.cluster_of[20], 0u);
  EXPECT_EQ(c.clusters[0].size(), 21u);
  EXPECT_EQ(c.orphans, 0u);
}

TEST(ClusterPlayers, NoClustersWhenGraphTooSparse) {
  Rng rng(6);
  std::vector<BitVector> z;
  for (int i = 0; i < 10; ++i) z.push_back(random_bitvector(256, rng));
  const NeighborGraph g(z, 4);  // essentially no edges
  const Clustering c = cluster_players(g, 5, z);
  // Everyone becomes an orphan in one fallback cluster.
  EXPECT_GE(c.orphans, 9u);
  for (PlayerId p = 0; p < 10; ++p)
    EXPECT_NE(c.cluster_of[p], Clustering::kNoClusterAssigned);
}

TEST(ClusterPlayers, DiameterStaysBoundedOnPlanted) {
  // Lemma 9(3): cluster diameter = O(D) in true preference space.
  const std::size_t D = 10;
  const World w = planted_clusters(80, 256, 4, D, Rng(7));
  std::vector<BitVector> z;
  for (PlayerId p = 0; p < 80; ++p) z.push_back(w.matrix.row(p));
  const NeighborGraph g(z, D);  // true distances as the estimate
  const Clustering c = cluster_players(g, 20, z);
  for (const auto& cluster : c.clusters) {
    EXPECT_LE(w.matrix.diameter(cluster), 4 * D);
  }
}

TEST(Clustering, MinClusterSizeOfEmptyClusteringIsZero) {
  // Regression: min_cluster_size() used to start from SIZE_MAX and only map
  // the empty case back to 0 at the end; it now computes the min directly.
  const Clustering empty;
  EXPECT_EQ(empty.min_cluster_size(), 0u);
  EXPECT_EQ(empty.max_cluster_size(), 0u);

  Clustering one;
  one.clusters.push_back({0, 1, 2});
  EXPECT_EQ(one.min_cluster_size(), 3u);
  EXPECT_EQ(one.max_cluster_size(), 3u);
}

TEST(ClusterPlayers, MinClusterOneDegenerates) {
  Rng rng(8);
  std::vector<BitVector> z = grouped_vectors(6, 2, 64, rng);
  const NeighborGraph g(z, 5);
  const Clustering c = cluster_players(g, 1, z);
  for (PlayerId p = 0; p < 6; ++p)
    EXPECT_NE(c.cluster_of[p], Clustering::kNoClusterAssigned);
}

class ClusteringGroupSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ClusteringGroupSweep, RecoversPlantedPartition) {
  const auto [groups, per_group] = GetParam();
  Rng rng(groups * 131 + per_group);
  const auto z = grouped_vectors(groups * per_group, groups, 256, rng);
  const NeighborGraph g(z, 20);
  const Clustering c = cluster_players(g, per_group, z);
  EXPECT_EQ(c.clusters.size(), groups);
  EXPECT_EQ(c.min_cluster_size(), per_group);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusteringGroupSweep,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(8, 16, 32)));

}  // namespace
}  // namespace colscore
