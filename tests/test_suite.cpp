// SuiteRunner coverage: grid parsing/expansion, ordered streaming, and the
// determinism contract — a parallel grid run is byte-identical to the same
// scenarios run serially.
#include "src/sim/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"

namespace colscore {
namespace {

TEST(Grid, ParseAxes) {
  const auto axes = parse_grid("n=256,512 x adversary=hijacker,sleeper");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].key, "n");
  EXPECT_EQ(axes[0].values, (std::vector<std::string>{"256", "512"}));
  EXPECT_EQ(axes[1].key, "adversary");
  EXPECT_EQ(axes[1].values, (std::vector<std::string>{"hijacker", "sleeper"}));
}

TEST(Grid, SeparatorIsOptional) {
  EXPECT_EQ(parse_grid("n=1,2 adversary=a,b"),
            parse_grid("n=1,2 x adversary=a,b"));
  EXPECT_TRUE(parse_grid("").empty());
}

TEST(Grid, ParseRejectsMalformedAxes) {
  EXPECT_THROW(parse_grid("n256,512"), ScenarioError);
  EXPECT_THROW(parse_grid("n="), ScenarioError);
  EXPECT_THROW(parse_grid("n=, ,"), ScenarioError);
  EXPECT_THROW(parse_grid("n=1 x n=2"), ScenarioError);  // repeated axis
}

TEST(Grid, ExpandIsRowMajorWithLastAxisFastest) {
  ScenarioSpec base;
  const auto specs =
      expand_grid(base, parse_grid("n=64,128 x adversary=none,sleeper"));
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].overrides.at("n"), "64");
  EXPECT_EQ(specs[0].adversary, "none");
  EXPECT_EQ(specs[1].overrides.at("n"), "64");
  EXPECT_EQ(specs[1].adversary, "sleeper");
  EXPECT_EQ(specs[2].overrides.at("n"), "128");
  EXPECT_EQ(specs[2].adversary, "none");
  EXPECT_EQ(specs[3].overrides.at("n"), "128");
  EXPECT_EQ(specs[3].adversary, "sleeper");
}

TEST(Grid, WorkloadAndAlgorithmAreSweepable) {
  ScenarioSpec base;
  const auto specs = expand_grid(
      base, parse_grid("workload=planted,chained x algorithm=calc,baseline"));
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].workload, "planted");
  EXPECT_EQ(specs[3].workload, "chained");
  EXPECT_EQ(specs[3].algorithm, "baseline");
}

ScenarioSpec small_base() {
  ScenarioSpec base;
  base.set("n", "48").set("budget", "4").set("diameter", "8")
      .set("dishonest", "4").set("opt", "0");
  return base;
}

std::string grid_csv(const ScenarioSpec& base, const std::string& grid,
                     std::size_t threads) {
  std::ostringstream out;
  CsvWriter writer(out, suite_csv_columns());
  SuiteOptions options;
  options.threads = threads;
  options.on_result = [&](const SuiteRun& run) { suite_csv_row(writer, run); };
  SuiteRunner runner(options);
  runner.run_grid(base, grid);
  return out.str();
}

TEST(SuiteRunner, ParallelGridIsByteIdenticalToSerial) {
  const std::string grid =
      "adversary=none,random_liar,sleeper x algorithm=calc,baseline";
  const std::string serial = grid_csv(small_base(), grid, /*threads=*/1);
  const std::string parallel = grid_csv(small_base(), grid, /*threads=*/4);
  const std::string parallel_again = grid_csv(small_base(), grid, /*threads=*/3);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, parallel_again);
}

TEST(SuiteRunner, ExplicitPolicyMatchesThreadsDispatch) {
  // options.policy is the seam for callers that own their pool; it must
  // produce the same bytes as the threads-based dispatch it overrides.
  const std::string grid = "adversary=none,sleeper x algorithm=calc";
  const std::string serial = grid_csv(small_base(), grid, /*threads=*/1);

  ThreadPool pool(3);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  std::ostringstream out;
  CsvWriter writer(out, suite_csv_columns());
  SuiteOptions options;
  options.policy = &policy;
  options.threads = 7;  // must be ignored in favour of the explicit policy
  options.on_result = [&](const SuiteRun& run) { suite_csv_row(writer, run); };
  SuiteRunner runner(options);
  runner.run_grid(small_base(), grid);
  EXPECT_EQ(serial, out.str());
}

TEST(SuiteRunner, StreamsResultsInIndexOrder) {
  std::vector<std::size_t> seen;
  SuiteOptions options;
  options.threads = 4;
  options.on_result = [&](const SuiteRun& run) { seen.push_back(run.index); };
  SuiteRunner runner(options);
  const auto results =
      runner.run_grid(small_base(), "adversary=none,sleeper x seed=1,2,3");
  ASSERT_EQ(results.size(), 6u);
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].index, i);
}

TEST(SuiteRunner, DerivedSeedsAreDistinctAndScheduleIndependent) {
  // Two identical cells: derived seeds must differ (by index), and the
  // derivation must not depend on the thread count.
  ScenarioSpec base = small_base();
  const std::vector<ScenarioSpec> specs{base, base};

  SuiteOptions serial_options;
  serial_options.threads = 1;
  const auto serial = SuiteRunner(serial_options).run(specs);
  SuiteOptions parallel_options;
  parallel_options.threads = 2;
  const auto parallel = SuiteRunner(parallel_options).run(specs);

  ASSERT_EQ(serial.size(), 2u);
  EXPECT_NE(serial[0].scenario.seed, serial[1].scenario.seed);
  EXPECT_EQ(serial[0].scenario.seed, parallel[0].scenario.seed);
  EXPECT_EQ(serial[1].scenario.seed, parallel[1].scenario.seed);
  EXPECT_EQ(serial[0].outcome.error.max_error, parallel[0].outcome.error.max_error);
}

TEST(SuiteRunner, RawSeedsRunSpecsUntouched) {
  ScenarioSpec base = small_base();
  base.set("seed", "77");
  SuiteOptions options;
  options.threads = 1;
  options.derive_seeds = false;
  const auto runs = SuiteRunner(options).run({base});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].scenario.seed, 77u);
}

TEST(Grid, TakeRepsAxisExtractsAndValidates) {
  auto axes = parse_grid("n=64,128 x reps=3 x adversary=none,sleeper");
  EXPECT_EQ(take_reps_axis(axes), 3u);
  ASSERT_EQ(axes.size(), 2u);  // reps removed, other axes untouched
  EXPECT_EQ(axes[0].key, "n");
  EXPECT_EQ(axes[1].key, "adversary");

  auto no_reps = parse_grid("n=64,128");
  EXPECT_EQ(take_reps_axis(no_reps), 1u);
  ASSERT_EQ(no_reps.size(), 1u);

  auto multi = parse_grid("reps=2,3");
  EXPECT_THROW(take_reps_axis(multi), ScenarioError);
  auto zero = parse_grid("reps=0");
  EXPECT_THROW(take_reps_axis(zero), ScenarioError);
  auto junk = parse_grid("reps=three");
  EXPECT_THROW(take_reps_axis(junk), ScenarioError);
  auto negative = parse_grid("reps=-2");  // stoull would silently wrap this
  EXPECT_THROW(take_reps_axis(negative), ScenarioError);
}

TEST(SuiteRunner, RepsReplicateEveryCellWithDistinctSeeds) {
  const auto runs =
      SuiteRunner(SuiteOptions{.threads = 1})
          .run_grid(small_base(), "adversary=none,sleeper x reps=3");
  ASSERT_EQ(runs.size(), 6u);  // 2 cells x 3 reps, rep fastest
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    EXPECT_EQ(runs[i].rep, i % 3);
    EXPECT_EQ(runs[i].spec.adversary, i < 3 ? "none" : "sleeper");
    seeds.push_back(runs[i].scenario.seed);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(SuiteRunner, RepsCsvColumnAndParallelDeterminism) {
  auto reps_csv = [&](std::size_t threads) {
    std::ostringstream out;
    CsvWriter writer(out, suite_csv_columns(false, /*include_rep=*/true));
    SuiteOptions options;
    options.threads = threads;
    options.on_result = [&](const SuiteRun& run) {
      suite_csv_row(writer, run, false, /*include_rep=*/true);
    };
    return std::make_pair(
        SuiteRunner(options).run_grid(small_base(), "adversary=none x reps=4"),
        out.str());
  };
  const auto [serial_runs, serial] = reps_csv(1);
  const auto [parallel_runs, parallel] = reps_csv(3);
  ASSERT_EQ(serial_runs.size(), 4u);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find(",rep,"), std::string::npos);
}

TEST(SuiteRunner, RepsRequireDerivedSeeds) {
  SuiteOptions options;
  options.reps = 2;
  options.derive_seeds = false;
  EXPECT_THROW(SuiteRunner(options).run({small_base()}), ScenarioError);
}

TEST(SuiteRunner, ResolutionErrorsSurfaceBeforeAnyRun) {
  SuiteOptions options;
  std::size_t calls = 0;
  options.on_result = [&](const SuiteRun&) { ++calls; };
  SuiteRunner runner(options);
  EXPECT_THROW(runner.run_grid(small_base(), "adversary=none,martian"),
               ScenarioError);
  EXPECT_EQ(calls, 0u);
}

TEST(SuiteRunner, RegisteredEntriesAreGridSweepable) {
  // End-to-end acceptance: register a workload, sweep it in a grid next to a
  // builtin, and read both back from the streamed CSV.
  WorkloadRegistry::instance().add(
      "suite_twin_blocks", {"two_blocks twin for suite tests",
                            [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                              return two_blocks(sc.n, sc.n, rng);
                            }});
  std::ostringstream out;
  CsvWriter writer(out, suite_csv_columns());
  SuiteOptions options;
  options.on_result = [&](const SuiteRun& run) { suite_csv_row(writer, run); };
  SuiteRunner runner(options);
  const auto runs =
      runner.run_grid(small_base(), "workload=two_blocks,suite_twin_blocks");
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_NE(out.str().find("suite_twin_blocks"), std::string::npos);
  EXPECT_NE(out.str().find("two_blocks"), std::string::npos);
}

}  // namespace
}  // namespace colscore
