// Pinned concurrency regressions for the shared-state hot spots: exact probe
// accounting under concurrent charging, and bulletin-board completeness under
// concurrent posting. The whole binary runs under the tsan CI leg
// (COLSCORE_SAN=thread), so a data race in ThreadPool, ProbeOracle::charge,
// or the board shards fails CI even when the counts happen to come out right.
// Suite-level byte-identity of parallel vs serial grids is pinned separately
// in test_suite.cpp.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/board/bulletin_board.hpp"
#include "src/common/rng.hpp"
#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/model/preference_matrix.hpp"

namespace colscore {
namespace {

PreferenceMatrix random_matrix(std::size_t players, std::size_t objects,
                               std::uint64_t seed) {
  PreferenceMatrix m(players, objects);
  Rng rng(seed);
  for (PlayerId p = 0; p < players; ++p) m.row(p).randomize(rng);
  return m;
}

TEST(Concurrency, MixedChargePathsStayExactUnderContention) {
  constexpr std::size_t kPlayers = 32;
  constexpr std::size_t kObjects = 256;
  constexpr std::size_t kIndices = 2048;  // 64 indices hit each player
  const PreferenceMatrix m = random_matrix(kPlayers, kObjects, 0xc0c0);
  ProbeOracle oracle(m);
  std::atomic<std::uint64_t> mismatches{0};

  ThreadPool pool(4);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  // Per index: 1 (probe) + 64 (probe_row) + 5 (probe_gather) = 70 charges,
  // with every player's counter shared by indices on different workers.
  policy.par_for(0, kIndices, [&](std::size_t i) {
    const auto p = static_cast<PlayerId>(i % kPlayers);
    const auto o = static_cast<ObjectId>(i % kObjects);
    if (oracle.probe(p, o) != m.preference(p, o)) mismatches.fetch_add(1);

    const auto first = static_cast<ObjectId>((i % 3) * 64);
    BitVector row(64);
    oracle.probe_row(p, first, 64, row);
    for (std::size_t b = 0; b < 64; ++b)
      if (row.get(b) != m.preference(p, static_cast<ObjectId>(first + b)))
        mismatches.fetch_add(1);

    const std::array<ObjectId, 5> slate = {
        static_cast<ObjectId>((i * 7) % kObjects),
        static_cast<ObjectId>((i * 11) % kObjects), ObjectId{3}, o,
        static_cast<ObjectId>((i * 13) % kObjects)};
    BitVector bits(slate.size());
    oracle.probe_gather(p, slate, bits);
    for (std::size_t b = 0; b < slate.size(); ++b)
      if (bits.get(b) != m.preference(p, slate[b])) mismatches.fetch_add(1);
  });

  EXPECT_EQ(mismatches.load(), 0u);
  constexpr std::uint64_t kPerIndex = 1 + 64 + 5;
  for (PlayerId p = 0; p < kPlayers; ++p)
    EXPECT_EQ(oracle.probes_by(p), (kIndices / kPlayers) * kPerIndex);
  EXPECT_EQ(oracle.total_probes(), kIndices * kPerIndex);
  EXPECT_EQ(oracle.max_probes(), (kIndices / kPlayers) * kPerIndex);
}

TEST(Concurrency, BoardReportsSurviveConcurrentPosting) {
  constexpr std::size_t kPlayers = 32;
  constexpr std::size_t kObjects = 16;  // heavy per-object contention
  constexpr std::size_t kPosts = 1024;
  constexpr std::uint64_t kTag = 0x7a6;
  BulletinBoard board;

  ThreadPool pool(4);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  // author cycles fastest, object per block of kPlayers: every
  // (author, object) pair is posted exactly kPosts / (kPlayers * kObjects)
  // times, and parity(i) == parity(author).
  policy.par_for(0, kPosts, [&](std::size_t i) {
    board.post_report(kTag, static_cast<PlayerId>(i % kPlayers),
                      static_cast<ObjectId>((i / kPlayers) % kObjects),
                      (i & 1) != 0);
  });

  EXPECT_EQ(board.report_count(), kPosts);
  const auto all = board.all_reports(kTag);
  ASSERT_EQ(all.size(), kPosts);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LE(all[i - 1].object, all[i].object);  // ascending-object contract

  // Interleaving across workers is schedule-dependent, but the content per
  // object is not: each object must hold exactly its posters' reports.
  for (ObjectId o = 0; o < kObjects; ++o) {
    const auto bucket = board.reports_for(kTag, o);
    ASSERT_EQ(bucket.size(), kPosts / kObjects) << "object " << o;
    std::vector<int> seen(kPlayers, 0);
    for (const ProbeReport& r : bucket) {
      EXPECT_EQ(r.object, o);
      EXPECT_EQ(r.value, (r.author & 1) != 0);  // value = parity of index i,
      seen[r.author] += 1;                      // and i % kPlayers = author
    }
    for (std::size_t p = 0; p < kPlayers; ++p)
      EXPECT_EQ(seen[p], 2) << "player " << p;  // 1024 / (32*16) posts each
  }
}

TEST(Concurrency, VectorSupportCountsSurviveConcurrentPosting) {
  constexpr std::size_t kPlayers = 64;
  constexpr std::uint64_t kTag = 0x5ec;
  BitVector majority(128), minority(128);
  Rng rng(0xbead);
  majority.randomize(rng);
  minority.randomize(rng);
  ASSERT_NE(majority, minority);

  BulletinBoard board;
  ThreadPool pool(4);
  const ExecPolicy policy = ExecPolicy::pool(pool);
  policy.par_for(0, kPlayers, [&](std::size_t p) {
    board.post_vector(kTag, static_cast<PlayerId>(p),
                      (p % 4 == 0) ? minority : majority);
  });

  EXPECT_EQ(board.vector_count(), kPlayers);
  const auto posts = board.vectors(kTag);
  ASSERT_EQ(posts.size(), kPlayers);
  std::vector<int> seen(kPlayers, 0);
  for (const VectorPost& post : posts) {
    seen[post.author] += 1;
    EXPECT_EQ(post.vector, (post.author % 4 == 0) ? minority : majority);
  }
  for (std::size_t p = 0; p < kPlayers; ++p) EXPECT_EQ(seen[p], 1);

  // Distinct support counts make the ranking schedule-independent even
  // though first-appearance tie-breaks would not be.
  const auto ranked = board.vectors_by_support(kTag);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].vector, majority);
  EXPECT_EQ(ranked[0].support, kPlayers - kPlayers / 4);
  EXPECT_EQ(ranked[1].vector, minority);
  EXPECT_EQ(ranked[1].support, kPlayers / 4);
}

}  // namespace
}  // namespace colscore
