// Equivalence guarantees for the word-level probe pipeline (PR 3).
//
// probe_row / probe_gather / own_probe_bits must be indistinguishable from
// the per-bit probe() formulation in both directions the protocol observes:
// the bits returned, and the per-player probe charges. The fixed-seed
// charge-hash tests at the bottom pin the whole pipeline's accounting
// against values captured on the pre-PR tree.
#include <gtest/gtest.h>

#include "src/common/exec_policy.hpp"
#include "src/core/calculate_preferences.hpp"
#include "src/model/generators.hpp"
#include "src/protocols/env.hpp"
#include "src/sim/registry.hpp"

namespace colscore {
namespace {

PreferenceMatrix random_matrix(std::size_t players, std::size_t objects,
                               std::uint64_t seed) {
  PreferenceMatrix m(players, objects);
  Rng rng(seed);
  for (PlayerId p = 0; p < players; ++p) m.row(p).randomize(rng);
  return m;
}

TEST(ProbePipeline, FillRowWordsMatchesPerBitDefault) {
  // The native PreferenceMatrix bulk read must agree with the TruthSource
  // per-bit fallback for every alignment, including cross-word ranges.
  for (const std::size_t objects : {5u, 64u, 65u, 100u, 256u, 300u}) {
    const PreferenceMatrix m = random_matrix(4, objects, 0xf111 + objects);
    for (ObjectId first = 0; first < objects; first += 3) {
      const std::size_t n = std::min<std::size_t>(objects - first, 77);
      std::vector<std::uint64_t> native(bitkernel::word_count(n), ~0ULL);
      std::vector<std::uint64_t> fallback(bitkernel::word_count(n), ~0ULL);
      m.fill_row_words(1, first, n, native.data());
      m.TruthSource::fill_row_words(1, first, n, fallback.data());
      EXPECT_EQ(native, fallback) << "objects=" << objects << " first=" << first;
    }
  }
}

TEST(ProbePipeline, ProbeRowMatchesProbeLoopBitsAndCharges) {
  Rng picks(0x9e11);
  const PreferenceMatrix m = random_matrix(8, 200, 42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = static_cast<PlayerId>(picks.below(8));
    const auto first = static_cast<ObjectId>(picks.below(200));
    const std::size_t n = picks.below(200 - first) + 1;

    ProbeOracle serial(m);
    BitVector expected(n);
    for (std::size_t i = 0; i < n; ++i)
      expected.set(i, serial.probe(p, static_cast<ObjectId>(first + i)));

    ProbeOracle bulk(m);
    BitVector got(n);
    bulk.probe_row(p, first, n, got);

    EXPECT_EQ(got, expected);
    for (PlayerId q = 0; q < 8; ++q)
      EXPECT_EQ(bulk.probes_by(q), serial.probes_by(q));
  }
}

TEST(ProbePipeline, ProbeGatherMatchesProbeLoopWithDuplicates) {
  Rng picks(0x6a7e);
  const PreferenceMatrix m = random_matrix(6, 150, 7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = static_cast<PlayerId>(picks.below(6));
    std::vector<ObjectId> objects(picks.below(40) + 1);
    for (ObjectId& o : objects) o = static_cast<ObjectId>(picks.below(150));

    ProbeOracle serial(m);
    BitVector expected(objects.size());
    for (std::size_t i = 0; i < objects.size(); ++i)
      expected.set(i, serial.probe(p, objects[i]));  // duplicates pay, no memo

    ProbeOracle bulk(m);
    BitVector got(objects.size());
    bulk.probe_gather(p, objects, got);

    EXPECT_EQ(got, expected);
    EXPECT_EQ(bulk.probes_by(p), serial.probes_by(p));
    EXPECT_EQ(bulk.total_probes(), serial.total_probes());
  }
}

TEST(ProbePipeline, HardModeChargesMatchAndEnforceBudget) {
  const PreferenceMatrix m = random_matrix(4, 96, 11);
  // Within budget: kHard behaves exactly like kTrack.
  ProbeOracle serial(m, ProbeOracle::BudgetMode::kHard, 96);
  ProbeOracle bulk(m, ProbeOracle::BudgetMode::kHard, 96);
  BitVector expected(96), got(96);
  for (ObjectId o = 0; o < 96; ++o) expected.set(o, serial.probe(2, o));
  bulk.probe_row(2, 0, 96, got);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(bulk.probes_by(2), serial.probes_by(2));
  EXPECT_EQ(bulk.probes_by(2), 96u);
  // One probe past the budget aborts in both formulations.
  EXPECT_DEATH(bulk.probe(2, 0), "budget");
}

TEST(ProbePipeline, OwnProbeBitsHonestChargesDishonestPeeksFree) {
  const std::size_t n = 32;
  World world = identical_clusters(n, n, 2, Rng(3));
  Population pop(n);
  pop.set_behavior(5, std::make_unique<Inverter>());
  ProbeOracle oracle(world.matrix);
  BulletinBoard board;
  HonestBeacon beacon(1);
  ProtocolEnv env(oracle, board, pop, beacon);

  std::vector<ObjectId> scattered{3, 9, 4, 20};
  std::vector<ObjectId> contiguous{8, 9, 10, 11, 12};
  BitVector out4(4), out5(5);

  env.own_probe_bits(2, scattered, out4);   // honest: charged
  env.own_probe_bits(2, contiguous, out5);  // honest: word path, charged
  EXPECT_EQ(oracle.probes_by(2), 9u);
  for (std::size_t i = 0; i < scattered.size(); ++i)
    EXPECT_EQ(out4.get(i), world.matrix.preference(2, scattered[i]));
  for (std::size_t i = 0; i < contiguous.size(); ++i)
    EXPECT_EQ(out5.get(i), world.matrix.preference(2, contiguous[i]));

  env.own_probe_bits(5, scattered, out4);  // dishonest: free omniscient peek
  EXPECT_EQ(oracle.probes_by(5), 0u);
  for (std::size_t i = 0; i < scattered.size(); ++i)
    EXPECT_EQ(out4.get(i), world.matrix.preference(5, scattered[i]));
}

/// FNV-style hash over the per-player probe counters after a full
/// calculate_preferences run.
std::uint64_t charge_hash(const char* spec_text) {
  const ExecPolicy policy = ExecPolicy::serial();
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(spec_text));
  const World world = build_scenario_world(sc);
  const Population pop = build_scenario_population(sc, world);
  ProbeOracle oracle(world.matrix);
  oracle.bind_policy(policy);
  BulletinBoard board;
  Params params = sc.params;
  params.budget = sc.budget;
  HonestBeacon beacon(mix_keys(sc.seed, 0xbeacULL));
  ProtocolEnv env(oracle, board, pop, beacon, mix_keys(sc.seed, 0x10ca1ULL),
                  policy);
  calculate_preferences(env, params, mix_keys(sc.seed, 0xca1cULL));
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (PlayerId p = 0; p < sc.n; ++p) {
    h ^= oracle.probes_by(p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Golden per-player charge hashes captured on the pre-PR-3 tree: the word
// pipeline, batched tournament charging, and workspace reuse must leave
// every player's probe bill untouched.
TEST(ProbePipeline, FixedSeedPerPlayerChargesUnchanged) {
  EXPECT_EQ(charge_hash("workload=planted n=128 budget=4 dishonest=8 "
                        "adversary=sleeper seed=3"),
            0xbd25859a27ed9f0ULL);
  EXPECT_EQ(charge_hash("workload=planted n=96 budget=4 dishonest=6 "
                        "adversary=hijacker seed=7"),
            0xb0e63b84c0986d83ULL);
}

}  // namespace
}  // namespace colscore
