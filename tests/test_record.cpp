// Metric-schema coverage: schema-driven cells against the pinned determinism
// goldens, typed jsonl/sqlite round-trips (u64 past 2^53, non-finite
// doubles), column selection errors, per-cell summary aggregation, and the
// end-to-end acceptance — a registry entry declaring its own metric surfaces
// it through every sink via column selection.
#include "src/sim/record.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "src/common/json.hpp"
#include "src/model/behavior.hpp"
#include "src/sim/sink.hpp"
#include "src/sim/suite.hpp"
#include "src/sim/suitefile.hpp"
#include "test_util.hpp"

#if defined(COLSCORE_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace colscore {
namespace {

using testutil::kGoldenRow;
using testutil::kGoldenScenario;
using testutil::split_csv_line;

/// Runs `spec_text` serially with its literal seed and returns the SuiteRun.
SuiteRun run_one(const std::string& spec_text) {
  SuiteOptions options;
  options.threads = 1;
  options.derive_seeds = false;
  std::vector<SuiteRun> runs =
      SuiteRunner(options).run({ScenarioSpec::parse(spec_text)});
  return std::move(runs.front());
}

/// Sink that keeps the typed values and rendered cells of every row.
struct CaptureSink : ResultSink {
  MetricSchema schema;
  std::vector<std::vector<MetricValue>> values;
  std::vector<std::vector<std::string>> cells;

  void begin(const MetricSchema& s) override { schema = s; }
  void write(const RunRecord& record) override {
    std::vector<MetricValue> row;
    for (std::size_t i = 0; i < record.size(); ++i)
      row.push_back(record.value(i));
    values.push_back(std::move(row));
    cells.push_back(record.cells());
    ++rows_;
  }
};

// ---- golden compatibility ---------------------------------------------------

TEST(RunRecordTest, DefaultColumnCellsMatchTheDeterminismGolden) {
  const SuiteRun run = run_one(kGoldenScenario);
  const MetricSchema schema = scenario_metric_schema(run.scenario);
  const RunRecord record = make_run_record(run, schema);

  const std::vector<std::string> columns = default_columns();
  EXPECT_EQ(columns, suite_csv_columns());
  const std::vector<std::string> golden = split_csv_line(kGoldenRow);
  ASSERT_EQ(columns.size(), golden.size());
  for (std::size_t i = 0; i < columns.size(); ++i)
    EXPECT_EQ(record.cell_text(schema.index_of(columns[i])), golden[i])
        << columns[i];
}

TEST(RunRecordTest, DiagnosticsThatWereDroppedAreNowDeclared) {
  // The previously invisible ExperimentOutcome fields are schema columns.
  const SuiteRun run = run_one(kGoldenScenario);
  const MetricSchema schema = scenario_metric_schema(run.scenario);
  const RunRecord record = make_run_record(run, schema);

  EXPECT_EQ(record.value("honest_players").as_u64(),
            run.outcome.honest_players);
  EXPECT_EQ(record.value("board_vectors").as_u64(), run.outcome.board_vectors);
  EXPECT_EQ(record.value("planted_diameter").as_u64(),
            run.outcome.planted_diameter);
  EXPECT_EQ(record.value("easy_case").as_bool(), run.outcome.easy_case);
  EXPECT_EQ(record.value("iterations").as_u64(),
            run.outcome.iterations.size());
  // OPT was computed for the golden scenario, so the bracket is present.
  EXPECT_TRUE(record.value("opt_max_radius").has_value());
  EXPECT_EQ(record.value("opt_max_radius").as_u64(),
            run.outcome.opt.max_radius);
  // Not-applicable diagnostics stay absent, never a misleading 0: the
  // golden run elects no leaders; a robust run reports the statistic.
  EXPECT_FALSE(record.value("honest_leader_reps").has_value());
  const SuiteRun robust =
      run_one("algorithm=robust n=48 budget=4 reps=2 opt=0");
  const MetricSchema robust_schema = scenario_metric_schema(robust.scenario);
  const RunRecord robust_record = make_run_record(robust, robust_schema);
  ASSERT_TRUE(robust_record.value("honest_leader_reps").has_value());
  EXPECT_EQ(robust_record.value("honest_leader_reps").as_u64(),
            robust.outcome.honest_leader_reps);

  // Every declared column carries a type/origin/description for
  // --list-columns.
  for (const MetricSpec& spec : schema.specs()) {
    EXPECT_FALSE(spec.origin.empty()) << spec.key;
    EXPECT_FALSE(spec.description.empty()) << spec.key;
  }
}

TEST(FormatMetricDouble, HistoricalAndRoundTrip) {
  // Historical = the seed CLI's default-precision ostream bytes (pinned by
  // the goldens); round-trip = shortest exact spelling.
  EXPECT_EQ(format_metric_double(3.9416666666666667, F64Format::kHistorical),
            "3.94167");
  EXPECT_EQ(format_metric_double(0.0, F64Format::kHistorical), "0");
  EXPECT_EQ(format_metric_double(0.1, F64Format::kRoundTrip), "0.1");
  const double third = 7.0 / 3.0;
  EXPECT_EQ(std::stod(format_metric_double(third, F64Format::kRoundTrip)),
            third);
  EXPECT_EQ(format_metric_double(std::nan(""), F64Format::kRoundTrip), "nan");
}

// ---- typed round-trips ------------------------------------------------------

MetricSchema round_trip_schema() {
  MetricSchema schema;
  schema.add({"big", MetricType::kU64, "u64 past double precision", "test"});
  schema.add({"huge", MetricType::kU64, "u64 past int64 range", "test"});
  schema.add({"weird", MetricType::kF64, "non-finite double", "test"});
  schema.add({"flag", MetricType::kBool, "a boolean", "test"});
  schema.add({"label", MetricType::kString, "a string", "test"});
  schema.add({"gone", MetricType::kF64, "never set", "test"});
  return schema;
}

constexpr std::uint64_t kBig = (1ULL << 53) + 1;       // 9007199254740993
constexpr std::uint64_t kHuge = (1ULL << 63) + 5;      // past int64

RunRecord round_trip_record(const MetricSchema& schema) {
  RunRecord record(&schema);
  record.set_u64("big", kBig);
  record.set_u64("huge", kHuge);
  record.set_f64("weird", std::numeric_limits<double>::quiet_NaN());
  record.set_bool("flag", true);
  record.set_string("label", "planted");
  return record;
}

TEST(TypedRoundTrip, JsonlKeepsU64DigitsAndQuotesNonFinite) {
  const MetricSchema schema = round_trip_schema();
  std::ostringstream out;
  SinkConfig config;
  config.stream = &out;
  JsonlSink sink(config);
  sink.begin(schema);
  sink.write(round_trip_record(schema));
  sink.finish();

  const JsonValue row = json_parse(out.str());
  ASSERT_TRUE(row.is_object());
  // u64 >= 2^53 must not round through a double: the JSON number's source
  // spelling carries every digit.
  ASSERT_TRUE(row.find("big") != nullptr);
  EXPECT_TRUE(row.find("big")->is_number());
  EXPECT_EQ(row.find("big")->text, std::to_string(kBig));
  EXPECT_EQ(row.find("huge")->text, std::to_string(kHuge));
  // JSON has no nan literal; the non-finite double is a quoted spelling.
  EXPECT_TRUE(row.find("weird")->is_string());
  EXPECT_EQ(row.find("weird")->text, "nan");
  EXPECT_TRUE(row.find("flag")->is_bool());
  EXPECT_TRUE(row.find("flag")->boolean);
  EXPECT_EQ(row.find("label")->text, "planted");
  EXPECT_TRUE(row.find("gone")->is_null());
}

#if defined(COLSCORE_HAVE_SQLITE)
TEST(TypedRoundTrip, SqliteStoresExactIntegersAndNonFiniteDoubles) {
  const MetricSchema schema = round_trip_schema();
  const std::string path = testing::TempDir() + "colscore_record_rt.sqlite";
  std::remove(path.c_str());
  {
    SinkConfig config;
    config.path = path;
    SqliteSink sink(config);
    sink.begin(schema);
    sink.write(round_trip_record(schema));
    sink.finish();
  }

  sqlite3* db = nullptr;
  ASSERT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  sqlite3_stmt* stmt = nullptr;
  ASSERT_EQ(sqlite3_prepare_v2(
                db, "SELECT big, huge, weird, flag, label, gone FROM runs",
                -1, &stmt, nullptr),
            SQLITE_OK);
  ASSERT_EQ(sqlite3_step(stmt), SQLITE_ROW);
  // INTEGER storage is exact for the full 64-bit range (two's complement);
  // casting back recovers the u64 bit-for-bit — no text, no double detour.
  EXPECT_EQ(sqlite3_column_type(stmt, 0), SQLITE_INTEGER);
  EXPECT_EQ(static_cast<std::uint64_t>(sqlite3_column_int64(stmt, 0)), kBig);
  EXPECT_EQ(static_cast<std::uint64_t>(sqlite3_column_int64(stmt, 1)), kHuge);
  // sqlite stores NaN as NULL (it has no NaN REAL); accept either a NULL or
  // a NaN read-back, but never a silent 0.0 from a FLOAT column.
  const int weird_type = sqlite3_column_type(stmt, 2);
  EXPECT_TRUE(weird_type == SQLITE_NULL ||
              std::isnan(sqlite3_column_double(stmt, 2)))
      << weird_type;
  EXPECT_EQ(sqlite3_column_int(stmt, 3), 1);
  EXPECT_STREQ(
      reinterpret_cast<const char*>(sqlite3_column_text(stmt, 4)), "planted");
  EXPECT_EQ(sqlite3_column_type(stmt, 5), SQLITE_NULL);  // absent metric
  sqlite3_finalize(stmt);
  sqlite3_close(db);
  std::remove(path.c_str());
}
#endif  // COLSCORE_HAVE_SQLITE

// ---- column selection -------------------------------------------------------

TEST(ColumnSelection, UnknownColumnNamesTheAvailableKeys) {
  const MetricSchema schema =
      scenario_metric_schema(Scenario::resolve(ScenarioSpec{}));
  const std::vector<std::string> wanted{"n", "frobnicate"};
  try {
    (void)schema.select(wanted);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown column 'frobnicate'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("available:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("board_vectors"), std::string::npos) << msg;
  }
  EXPECT_THROW((void)schema.select(std::vector<std::string>{"n", "n"}),
               ScenarioError);
}

TEST(ColumnSelection, ParseColumnListSplitsAndTrims) {
  EXPECT_EQ(parse_column_list("a, b ,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_THROW(parse_column_list("a,,b"), ScenarioError);
  EXPECT_THROW(parse_column_list("a,b,"), ScenarioError);  // trailing comma
  EXPECT_THROW(parse_column_list(""), ScenarioError);
}

TEST(ColumnSelection, SuiteFileValidatesColumnsAtParseTime) {
  try {
    (void)parse_suite_file(
        R"({"base": {"n": 48, "opt": false}, "columns": ["n", "bogus"]})",
        "cols.json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("suite file 'cols.json'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown column 'bogus'"), std::string::npos) << msg;
  }
  EXPECT_THROW((void)parse_suite_file(R"({"summary": "median"})", "s.json"),
               ScenarioError);
  // A comma string is accepted and split like --columns.
  const SuiteFile file = parse_suite_file(
      R"({"base": {"n": 48, "opt": false}, "columns": "n,seed,max_err",
          "summary": "mean"})",
      "ok.json");
  EXPECT_EQ(file.columns, (std::vector<std::string>{"n", "seed", "max_err"}));
  EXPECT_EQ(file.summary, SummaryStat::kMean);
}

// ---- summary aggregation ----------------------------------------------------

TEST(SummaryAggregation, MeanMinMaxOverSyntheticRecords) {
  MetricSchema schema;
  schema.add({"u", MetricType::kU64, "", "test"});
  schema.add({"d", MetricType::kF64, "", "test"});
  schema.add({"s", MetricType::kString, "", "test"});
  std::vector<RunRecord> cell;
  const std::uint64_t us[] = {1, 2, 4};
  const double ds[] = {0.5, 1.5, 2.5};
  for (int i = 0; i < 3; ++i) {
    RunRecord r(&schema);
    r.set_u64("u", us[i]);
    r.set_f64("d", ds[i]);
    r.set_string("s", "same");
    cell.push_back(std::move(r));
  }

  const MetricSchema mean_schema = summarized_schema(schema, SummaryStat::kMean);
  EXPECT_EQ(mean_schema.spec(0).type, MetricType::kF64);  // u64 widens
  const RunRecord mean =
      summarize_records(mean_schema, cell, SummaryStat::kMean);
  EXPECT_DOUBLE_EQ(mean.value("u").as_f64(), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(mean.value("d").as_f64(), 1.5);
  EXPECT_EQ(mean.value("s").as_string(), "same");  // non-numeric: first value

  const MetricSchema mm_schema = summarized_schema(schema, SummaryStat::kMin);
  EXPECT_EQ(mm_schema.spec(0).type, MetricType::kU64);  // min/max keep types
  const RunRecord min = summarize_records(mm_schema, cell, SummaryStat::kMin);
  EXPECT_EQ(min.value("u").as_u64(), 1u);
  EXPECT_DOUBLE_EQ(min.value("d").as_f64(), 0.5);
  const RunRecord max = summarize_records(mm_schema, cell, SummaryStat::kMax);
  EXPECT_EQ(max.value("u").as_u64(), 4u);
  EXPECT_DOUBLE_EQ(max.value("d").as_f64(), 2.5);
}

TEST(SummaryAggregation, OneRowPerCellOverARealRepsSuite) {
  // reps=3 over two cells: the stream emits 2 summary rows whose means match
  // the per-run outcomes.
  SuiteOptions options;
  options.threads = 1;
  options.reps = 3;
  const std::vector<ScenarioSpec> specs = expand_grid(
      ScenarioSpec::parse("n=48 budget=4 dishonest=4 opt=0"),
      parse_grid("adversary=none,sleeper"));
  std::vector<Scenario> resolved;
  for (const ScenarioSpec& spec : specs)
    resolved.push_back(Scenario::resolve(spec));
  const MetricSchema schema = suite_metric_schema(resolved);
  const std::vector<std::string> columns{"adversary", "max_err",
                                         "total_probes", "mean_err", "seed"};

  CaptureSink sink;
  RecordStream stream(sink, schema, columns,
                      RecordStream::Options{SummaryStat::kMean, options.reps});
  options.on_result = [&](const SuiteRun& run) {
    stream.write(make_run_record(run, schema));
  };
  const std::vector<SuiteRun> runs = SuiteRunner(options).run(specs);
  stream.finish();

  ASSERT_EQ(runs.size(), 6u);
  ASSERT_EQ(sink.rows_written(), 2u);  // one row per cell, not per rep
  ASSERT_EQ(sink.schema.size(), columns.size());
  EXPECT_EQ(sink.schema.spec(1).type, MetricType::kF64);  // max_err widened
  for (std::size_t cell = 0; cell < 2; ++cell) {
    double err_sum = 0.0;
    double probe_sum = 0.0;
    for (std::size_t r = 0; r < 3; ++r) {
      err_sum += static_cast<double>(runs[cell * 3 + r].outcome.error.max_error);
      probe_sum +=
          static_cast<double>(runs[cell * 3 + r].outcome.total_probes);
    }
    EXPECT_EQ(sink.values[cell][0].as_string(),
              cell == 0 ? "none" : "sleeper");
    EXPECT_DOUBLE_EQ(sink.values[cell][1].as_f64(), err_sum / 3.0);
    EXPECT_DOUBLE_EQ(sink.values[cell][2].as_f64(), probe_sum / 3.0);
    // Run-identity columns stay absent in a summary row: a "mean seed"
    // names no run anyone could reproduce.
    EXPECT_FALSE(sink.values[cell][4].has_value());
    EXPECT_EQ(sink.schema.spec(4).type, MetricType::kU64);  // not widened
  }
}

// ---- entry-declared metrics (the acceptance) --------------------------------

/// Registers (once) a test adversary that declares two metrics and publishes
/// them from the run context: the probes charged to dishonest players and a
/// free-form label.
const char* ensure_metric_adversary() {
  static const char* name = [] {
    AdversaryRegistry::instance().add(
        "record_probe_counter",
        {"sleeper twin that publishes custom metrics (test entry)",
         [](const Scenario&, const World&, PlayerId) {
           return std::make_unique<Sleeper>();
         },
         /*defaults=*/{},
         /*schema=*/{},
         /*metrics=*/
         {{"corrupted_probes", MetricType::kU64,
           "probes charged to dishonest players"},
          {"attack_label", MetricType::kString, "free-form attack tag"}},
         /*emit_metrics=*/
         [](const MetricContext& ctx, MetricEmitter& emit) {
           std::uint64_t corrupted = 0;
           for (PlayerId p = 0; p < ctx.scenario.n; ++p)
             if (!ctx.population.is_honest(p))
               corrupted += ctx.oracle.probes_by(p);
           emit.u64("corrupted_probes", corrupted);
           emit.string("attack_label", "sleeper-twin");
         }});
    return "record_probe_counter";
  }();
  return name;
}

TEST(EntryMetrics, SurfaceThroughEverySinkViaColumnSelection) {
  ensure_metric_adversary();
  const std::string spec_text =
      "n=48 budget=4 dishonest=4 adversary=record_probe_counter opt=0 seed=9";
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(spec_text));
  const MetricSchema schema = scenario_metric_schema(sc);

  // The entry's metrics are in the schema with the declaring origin.
  ASSERT_NE(schema.find("corrupted_probes"), nullptr);
  EXPECT_EQ(schema.find("corrupted_probes")->origin,
            "adversary 'record_probe_counter'");

  // The spec-level suite schema sees entries a grid axis sweeps in (what
  // --list-columns and grid runs build from), deduped per entry triple.
  const MetricSchema swept = suite_metric_schema(expand_grid(
      ScenarioSpec::parse("n=48 budget=4 dishonest=4 opt=0"),
      parse_grid("adversary=none,record_probe_counter")));
  EXPECT_NE(swept.find("corrupted_probes"), nullptr);

  const std::vector<std::string> columns{"adversary", "corrupted_probes",
                                         "attack_label"};
  auto run_through = [&](ResultSink& sink) {
    SuiteOptions options;
    options.threads = 1;
    options.derive_seeds = false;
    RecordStream stream(sink, schema, columns);
    options.on_result = [&](const SuiteRun& run) {
      stream.write(make_run_record(run, schema));
    };
    SuiteRunner(options).run({ScenarioSpec::parse(spec_text)});
    stream.finish();
  };

  // The typed value itself (honest-pays: dishonest Sleepers peek for free
  // during their own reads but are charged for protocol-driven probes).
  CaptureSink capture;
  run_through(capture);
  ASSERT_EQ(capture.rows_written(), 1u);
  ASSERT_TRUE(capture.values[0][1].has_value());
  const std::uint64_t corrupted = capture.values[0][1].as_u64();
  const std::string corrupted_text = std::to_string(corrupted);
  EXPECT_EQ(capture.values[0][2].as_string(), "sleeper-twin");

  // CSV.
  std::ostringstream csv_out;
  SinkConfig csv_config;
  csv_config.stream = &csv_out;
  CsvSink csv(csv_config);
  run_through(csv);
  EXPECT_EQ(csv_out.str(),
            "adversary,corrupted_probes,attack_label\n"
            "record_probe_counter," + corrupted_text + ",sleeper-twin\n");

  // JSONL (native number for the u64 metric).
  std::ostringstream jsonl_out;
  SinkConfig jsonl_config;
  jsonl_config.stream = &jsonl_out;
  JsonlSink jsonl(jsonl_config);
  run_through(jsonl);
  const JsonValue row = json_parse(jsonl_out.str());
  ASSERT_NE(row.find("corrupted_probes"), nullptr);
  EXPECT_TRUE(row.find("corrupted_probes")->is_number());
  EXPECT_EQ(row.find("corrupted_probes")->text, corrupted_text);

#if defined(COLSCORE_HAVE_SQLITE)
  const std::string path = testing::TempDir() + "colscore_record_entry.sqlite";
  std::remove(path.c_str());
  {
    SinkConfig config;
    config.path = path;
    SqliteSink sqlite_sink(config);
    run_through(sqlite_sink);
  }
  sqlite3* db = nullptr;
  ASSERT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  sqlite3_stmt* stmt = nullptr;
  ASSERT_EQ(sqlite3_prepare_v2(db, "SELECT corrupted_probes FROM runs", -1,
                               &stmt, nullptr),
            SQLITE_OK);
  ASSERT_EQ(sqlite3_step(stmt), SQLITE_ROW);
  EXPECT_EQ(sqlite3_column_type(stmt, 0), SQLITE_INTEGER);
  EXPECT_EQ(static_cast<std::uint64_t>(sqlite3_column_int64(stmt, 0)),
            corrupted);
  sqlite3_finalize(stmt);
  sqlite3_close(db);
  std::remove(path.c_str());
#endif
}

TEST(EntryMetrics, RegistrationRejectsReservedAndDuplicateKeys) {
  EXPECT_TRUE(is_reserved_metric_key("seed"));
  EXPECT_TRUE(is_reserved_metric_key("board_vectors"));
  EXPECT_FALSE(is_reserved_metric_key("corrupted_probes"));

  AdversaryEntry shadowing{"shadows a builtin column", nullptr};
  shadowing.metrics = {{"seed", MetricType::kU64, ""}};
  try {
    AdversaryRegistry::instance().add("record_bad_shadow", shadowing);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("shadows a built-in result column"),
              std::string::npos)
        << e.what();
  }

  AdversaryEntry twice{"declares a metric twice", nullptr};
  twice.metrics = {{"x", MetricType::kU64, ""}, {"x", MetricType::kU64, ""}};
  EXPECT_THROW(AdversaryRegistry::instance().add("record_bad_twice", twice),
               ScenarioError);

  AdversaryEntry hook_only{"emit hook without declarations", nullptr};
  hook_only.emit_metrics = [](const MetricContext&, MetricEmitter&) {};
  EXPECT_THROW(
      AdversaryRegistry::instance().add("record_bad_hook", hook_only),
      ScenarioError);
}

TEST(EntryMetrics, TwoEntriesEmittingTheSameKeyFailLoudly) {
  // Declaring the same key with the same type is legal across entries (a
  // suite schema is the union), but one run publishing it from two hooks is
  // ambiguous — run_scenario must refuse instead of overwriting.
  const std::vector<MetricSpec> dup{{"dup_m", MetricType::kU64, "shared key"}};
  const auto emit_dup = [](const MetricContext&, MetricEmitter& emit) {
    emit.u64("dup_m", 1);
  };
  WorkloadRegistry::instance().add(
      "record_dup_wl", {"uniform twin emitting dup_m (test entry)",
                        [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                          return uniform_random(sc.n, sc.n, rng);
                        },
                        {}, {}, dup, emit_dup});
  AdversaryRegistry::instance().add(
      "record_dup_adv", {"sleeper twin emitting dup_m (test entry)",
                         [](const Scenario&, const World&, PlayerId) {
                           return std::make_unique<Sleeper>();
                         },
                         {}, {}, dup, emit_dup});
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(
      "workload=record_dup_wl adversary=record_dup_adv n=48 budget=4 "
      "dishonest=4 opt=0"));
  try {
    (void)run_scenario(sc);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("workload 'record_dup_wl'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("adversary 'record_dup_adv'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("both emitted metric 'dup_m'"), std::string::npos) << msg;
  }
}

TEST(EntryMetrics, EmitterRejectsUndeclaredKeysAndWrongKinds) {
  const std::vector<MetricSpec> declared{
      {"a", MetricType::kU64, "declared metric"}};
  MetricEmitter emitter(declared, "adversary 'x'");
  try {
    emitter.u64("b", 1);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("adversary 'x' emitted undeclared metric 'b'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("declared: a"), std::string::npos) << msg;
  }
  EXPECT_THROW(emitter.string("a", "nope"), ScenarioError);  // wrong kind
  emitter.u64("a", 7);
  EXPECT_THROW(emitter.u64("a", 8), ScenarioError);  // emitted twice
}

}  // namespace
}  // namespace colscore
