#include "src/common/bitvector.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace colscore {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ConstructAllZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, ConstructAllOne) {
  BitVector v(100, true);
  EXPECT_EQ(v.popcount(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVector, PaddingBitsDoNotLeak) {
  // Sizes straddling word boundaries must not count padding in popcount.
  for (std::size_t size : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    BitVector v(size, true);
    EXPECT_EQ(v.popcount(), size) << "size=" << size;
    BitVector inv = ~BitVector(size);
    EXPECT_EQ(inv.popcount(), size) << "size=" << size;
  }
}

TEST(BitVector, SetGetFlip) {
  BitVector v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.set(0, false);
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVector, HammingBasics) {
  BitVector a(200), b(200);
  EXPECT_EQ(a.hamming(b), 0u);
  b.set(3, true);
  b.set(100, true);
  b.set(199, true);
  EXPECT_EQ(a.hamming(b), 3u);
  EXPECT_EQ(b.hamming(a), 3u);
  EXPECT_EQ(a.hamming(a), 0u);
}

TEST(BitVector, HammingPrefix) {
  BitVector a(200), b(200);
  b.set(10, true);
  b.set(100, true);
  EXPECT_EQ(a.hamming_prefix(b, 5), 0u);
  EXPECT_EQ(a.hamming_prefix(b, 11), 1u);
  EXPECT_EQ(a.hamming_prefix(b, 100), 1u);
  EXPECT_EQ(a.hamming_prefix(b, 101), 2u);
  EXPECT_EQ(a.hamming_prefix(b, 200), 2u);
}

TEST(BitVector, DiffPositions) {
  BitVector a(150), b(150);
  b.set(0, true);
  b.set(77, true);
  b.set(149, true);
  const auto diff = a.diff_positions(b);
  ASSERT_EQ(diff.size(), 3u);
  EXPECT_EQ(diff[0], 0u);
  EXPECT_EQ(diff[1], 77u);
  EXPECT_EQ(diff[2], 149u);
}

TEST(BitVector, GatherScatterRoundTrip) {
  Rng rng(7);
  BitVector v = random_bitvector(300, rng);
  std::vector<std::size_t> positions = {5, 64, 128, 200, 299};
  const BitVector g = v.gather(std::span<const std::size_t>(positions));
  ASSERT_EQ(g.size(), positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    EXPECT_EQ(g.get(i), v.get(positions[i]));

  BitVector target(300);
  target.scatter(std::span<const std::size_t>(positions), g);
  for (std::size_t i = 0; i < positions.size(); ++i)
    EXPECT_EQ(target.get(positions[i]), v.get(positions[i]));
}

TEST(BitVector, GatherObjectIds) {
  Rng rng(9);
  BitVector v = random_bitvector(100, rng);
  std::vector<ObjectId> ids = {0, 50, 99};
  const BitVector g = v.gather(std::span<const ObjectId>(ids));
  EXPECT_EQ(g.get(0), v.get(0));
  EXPECT_EQ(g.get(1), v.get(50));
  EXPECT_EQ(g.get(2), v.get(99));
}

TEST(BitVector, XorAndOrNot) {
  BitVector a(70), b(70);
  a.set(1, true);
  a.set(65, true);
  b.set(1, true);
  b.set(2, true);
  BitVector x = a;
  x ^= b;
  EXPECT_FALSE(x.get(1));
  EXPECT_TRUE(x.get(2));
  EXPECT_TRUE(x.get(65));

  BitVector n = ~a;
  EXPECT_FALSE(n.get(1));
  EXPECT_TRUE(n.get(0));
  EXPECT_EQ(n.popcount(), 68u);

  BitVector o = a;
  o |= b;
  EXPECT_EQ(o.popcount(), 3u);
  BitVector d = a;
  d &= b;
  EXPECT_EQ(d.popcount(), 1u);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(64), b(65);
  EXPECT_NE(a, b);
  BitVector c(64), d(64);
  EXPECT_EQ(c, d);
  d.set(63, true);
  EXPECT_NE(c, d);
}

TEST(BitVector, FillAndRandomizeDensity) {
  Rng rng(42);
  BitVector v(10000);
  v.randomize(rng, 0.1);
  const double density = static_cast<double>(v.popcount()) / 10000.0;
  EXPECT_NEAR(density, 0.1, 0.03);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 10000u);
  v.fill(false);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, RandomizeHalfDensity) {
  Rng rng(43);
  BitVector v(10000);
  v.randomize(rng);
  const double density = static_cast<double>(v.popcount()) / 10000.0;
  EXPECT_NEAR(density, 0.5, 0.03);
}

TEST(BitVector, FlipRandomFlipsExactCount) {
  Rng rng(11);
  BitVector v(500);
  v.flip_random(rng, 37);
  EXPECT_EQ(v.popcount(), 37u);
  // Flipping again from a set state changes exactly that many positions.
  BitVector w = v;
  w.flip_random(rng, 20);
  EXPECT_EQ(v.hamming(w), 20u);
}

TEST(BitVector, FlipRandomFullVector) {
  Rng rng(12);
  BitVector v(64);
  v.flip_random(rng, 64);
  EXPECT_EQ(v.popcount(), 64u);
}

TEST(BitVector, ContentHashDistinguishesContent) {
  Rng rng(13);
  BitVector a = random_bitvector(256, rng);
  BitVector b = a;
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.flip(100);
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(BitVector, ToString) {
  BitVector v(5);
  v.set(1, true);
  v.set(4, true);
  EXPECT_EQ(v.to_string(), "01001");
}

TEST(BitVector, HammingMatchesNaive) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    BitVector a = random_bitvector(313, rng);
    BitVector b = random_bitvector(313, rng);
    std::size_t naive = 0;
    for (std::size_t i = 0; i < 313; ++i)
      if (a.get(i) != b.get(i)) ++naive;
    EXPECT_EQ(a.hamming(b), naive);
  }
}

TEST(BitVector, DiffPositionsMatchesHamming) {
  Rng rng(101);
  BitVector a = random_bitvector(500, rng);
  BitVector b = random_bitvector(500, rng);
  EXPECT_EQ(a.diff_positions(b).size(), a.hamming(b));
}

class BitVectorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorSizeSweep, TripleXorIdentity) {
  // a ^ b ^ b == a for any size.
  Rng rng(GetParam());
  BitVector a = random_bitvector(GetParam(), rng);
  BitVector b = random_bitvector(GetParam(), rng);
  BitVector x = a;
  x ^= b;
  x ^= b;
  EXPECT_EQ(x, a);
}

TEST_P(BitVectorSizeSweep, HammingViaXorPopcount) {
  Rng rng(GetParam() + 1);
  BitVector a = random_bitvector(GetParam(), rng);
  BitVector b = random_bitvector(GetParam(), rng);
  BitVector x = a;
  x ^= b;
  EXPECT_EQ(x.popcount(), a.hamming(b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeSweep,
                         ::testing::Values(1, 2, 63, 64, 65, 100, 127, 128, 129, 1000,
                                           4096));

}  // namespace
}  // namespace colscore
