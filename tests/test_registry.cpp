// Scenario-registry coverage: legacy enums resolve to registered entries,
// specs round-trip, errors are actionable, and new entries integrate without
// touching src/sim/experiment.hpp.
#include "src/sim/registry.hpp"

#include <gtest/gtest.h>

#include "src/sim/experiment.hpp"

namespace colscore {
namespace {

TEST(Registry, EveryLegacyWorkloadIsRegistered) {
  for (WorkloadKind w :
       {WorkloadKind::kPlantedClusters, WorkloadKind::kIdenticalClusters,
        WorkloadKind::kLowerBound, WorkloadKind::kChained,
        WorkloadKind::kUniformRandom, WorkloadKind::kTwoBlocks}) {
    const std::string name = ExperimentConfig::workload_name(w);
    EXPECT_TRUE(WorkloadRegistry::instance().contains(name)) << name;
    EXPECT_FALSE(WorkloadRegistry::instance().at(name).description.empty());
  }
}

TEST(Registry, EveryLegacyAdversaryIsRegistered) {
  for (AdversaryKind a :
       {AdversaryKind::kNone, AdversaryKind::kRandomLiar, AdversaryKind::kInverter,
        AdversaryKind::kConstantOne, AdversaryKind::kTargetedBias,
        AdversaryKind::kHijacker, AdversaryKind::kSleeper,
        AdversaryKind::kStrangeColluder}) {
    const std::string name = ExperimentConfig::adversary_name(a);
    EXPECT_TRUE(AdversaryRegistry::instance().contains(name)) << name;
  }
}

TEST(Registry, EveryLegacyAlgorithmIsRegistered) {
  for (AlgorithmKind a :
       {AlgorithmKind::kCalculatePreferences, AlgorithmKind::kRobust,
        AlgorithmKind::kProbeAll, AlgorithmKind::kRandomGuess,
        AlgorithmKind::kOracleClusters, AlgorithmKind::kSampleAndShare}) {
    const std::string name = ExperimentConfig::algorithm_name(a);
    EXPECT_TRUE(AlgorithmRegistry::instance().contains(name)) << name;
  }
}

TEST(Registry, HistoricalAliasesResolve) {
  EXPECT_EQ(AlgorithmRegistry::instance().canonical("calc"),
            "calculate_preferences");
  EXPECT_EQ(AlgorithmRegistry::instance().canonical("oracle"), "oracle_clusters");
  EXPECT_EQ(AlgorithmRegistry::instance().canonical("baseline"),
            "sample_and_share");
}

TEST(Registry, UnknownNamesProduceActionableErrors) {
  try {
    (void)WorkloadRegistry::instance().at("martian");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload 'martian'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("planted"), std::string::npos) << msg;  // lists options
  }
}

TEST(ScenarioSpec, ParseToStringRoundTrips) {
  ScenarioSpec spec;
  spec.workload = "chained";
  spec.adversary = "sleeper";
  spec.algorithm = "robust";
  spec.set("n", "512").set("dishonest", "20").set("vote_min", "11");
  EXPECT_EQ(ScenarioSpec::parse(spec.to_string()), spec);

  const ScenarioSpec defaults;  // no overrides at all
  EXPECT_EQ(ScenarioSpec::parse(defaults.to_string()), defaults);
}

TEST(ScenarioSpec, ParseRejectsMalformedTokens) {
  EXPECT_THROW(ScenarioSpec::parse("n512"), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse("n="), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse("=512"), ScenarioError);
}

TEST(Scenario, ResolveAppliesOverrides) {
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(
      "workload=identical adversary=inverter algorithm=calc n=96 budget=4 "
      "dishonest=7 seed=5 zipf=1 opt=0 vote_min=11 sample_rate_c=8.5"));
  EXPECT_EQ(sc.workload, "identical");
  EXPECT_EQ(sc.adversary, "inverter");
  EXPECT_EQ(sc.algorithm, "calculate_preferences");  // alias canonicalized
  EXPECT_EQ(sc.n, 96u);
  EXPECT_EQ(sc.budget, 4u);
  EXPECT_EQ(sc.dishonest, 7u);
  EXPECT_EQ(sc.seed, 5u);
  EXPECT_TRUE(sc.zipf_sizes);
  EXPECT_FALSE(sc.compute_opt);
  EXPECT_EQ(sc.params.vote_min, 11u);
  EXPECT_DOUBLE_EQ(sc.params.sample_rate_c, 8.5);
}

TEST(Scenario, ResolveRejectsUnknownOverrideKeys) {
  try {
    (void)Scenario::resolve(ScenarioSpec::parse("frobnicate=3"));
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown override key 'frobnicate'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("budget"), std::string::npos) << msg;  // lists keys
  }
}

TEST(Scenario, ResolveRejectsBadValues) {
  EXPECT_THROW(Scenario::resolve(ScenarioSpec::parse("n=abc")), ScenarioError);
  EXPECT_THROW(Scenario::resolve(ScenarioSpec::parse("n=12x")), ScenarioError);
  EXPECT_THROW(Scenario::resolve(ScenarioSpec::parse("zipf=maybe")),
               ScenarioError);
}

TEST(Scenario, PaperParamsExpandThenRefine) {
  const Scenario sc = Scenario::resolve(
      ScenarioSpec::parse("paper_params=1 budget=4 vote_min=13"));
  const Params paper = Params::paper(4);
  EXPECT_DOUBLE_EQ(sc.params.sr_subset_exponent, paper.sr_subset_exponent);
  EXPECT_EQ(sc.params.vote_min, 13u);  // field override wins over the preset
}

TEST(Scenario, RegisteredDefaultsApplyAndUserWins) {
  // probe_all registers opt=0 as a default override.
  EXPECT_FALSE(
      Scenario::resolve(ScenarioSpec::parse("algorithm=probe_all")).compute_opt);
  EXPECT_TRUE(Scenario::resolve(ScenarioSpec::parse("algorithm=probe_all opt=1"))
                  .compute_opt);
}

TEST(Scenario, ToSpecRoundTripsThroughResolve) {
  Scenario sc;
  sc.workload = "chained";
  sc.adversary = "hijacker";
  sc.algorithm = "robust";
  sc.n = 80;
  sc.budget = 4;
  sc.seed = 123;
  sc.dishonest = 6;
  sc.compute_opt = false;
  sc.params.vote_min = 15;
  const Scenario back = Scenario::resolve(sc.to_spec());
  EXPECT_EQ(back.workload, sc.workload);
  EXPECT_EQ(back.adversary, sc.adversary);
  EXPECT_EQ(back.algorithm, sc.algorithm);
  EXPECT_EQ(back.n, sc.n);
  EXPECT_EQ(back.budget, sc.budget);
  EXPECT_EQ(back.seed, sc.seed);
  EXPECT_EQ(back.dishonest, sc.dishonest);
  EXPECT_EQ(back.compute_opt, sc.compute_opt);
  EXPECT_EQ(back.params.vote_min, sc.params.vote_min);
}

TEST(Scenario, CompatShimMatchesRegistryPath) {
  ExperimentConfig config;
  config.n = 64;
  config.budget = 4;
  config.diameter = 8;
  config.seed = 17;
  config.adversary = AdversaryKind::kSleeper;
  config.dishonest = 5;
  config.compute_opt = false;

  const ExperimentOutcome legacy = run_experiment(config);
  const ExperimentOutcome direct = run_scenario(Scenario::resolve(
      ScenarioSpec::parse("adversary=sleeper n=64 budget=4 diameter=8 seed=17 "
                          "dishonest=5 opt=0")));
  EXPECT_EQ(legacy.error.max_error, direct.error.max_error);
  EXPECT_EQ(legacy.error.mean_error, direct.error.mean_error);
  EXPECT_EQ(legacy.total_probes, direct.total_probes);
  EXPECT_EQ(legacy.max_probes, direct.max_probes);
  EXPECT_EQ(legacy.board_reports, direct.board_reports);
}

TEST(Registry, DuplicateRegistrationProducesTheDocumentedError) {
  WorkloadRegistry::instance().add(
      "dup_probe", {"duplicate-registration probe (test-only)",
                    [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                      return uniform_random(sc.n, sc.n, rng);
                    }});
  try {
    WorkloadRegistry::instance().add(
        "dup_probe", {"second registration",
                      [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                        return uniform_random(sc.n, sc.n, rng);
                      }});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("workload 'dup_probe' is already registered"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("replace()"), std::string::npos) << msg;
  }
  // replace() is the intentional spelling and must succeed.
  WorkloadRegistry::instance().replace(
      "dup_probe", {"replaced on purpose",
                    [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                      return uniform_random(sc.n, sc.n, rng);
                    }});
  EXPECT_EQ(WorkloadRegistry::instance().at("dup_probe").description,
            "replaced on purpose");
}

TEST(Registry, SchemaKeysMayNotShadowBuiltinOverrides) {
  try {
    WorkloadRegistry::instance().add(
        "shadow_probe", {"schema-shadow probe (test-only)",
                         [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                           return uniform_random(sc.n, sc.n, rng);
                         },
                         {},
                         {{"n", ParamType::kSize, "shadows the core key"}}});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what())
                  .find("schema key 'n' shadows a built-in override key"),
              std::string::npos)
        << e.what();
  }
}

TEST(Registry, DefaultsMustBeBuiltinOrSchemaKeys) {
  try {
    WorkloadRegistry::instance().add(
        "default_probe", {"bad-default probe (test-only)",
                          [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                            return uniform_random(sc.n, sc.n, rng);
                          },
                          {{"mystery_knob", "3"}}});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("default override 'mystery_knob'"), std::string::npos)
        << msg;
  }
  // A mistyped value for a schema-declared default also fails at add().
  try {
    WorkloadRegistry::instance().add(
        "default_probe", {"bad-typed-default probe (test-only)",
                          [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
                            return uniform_random(sc.n, sc.n, rng);
                          },
                          {{"knob", "lots"}},
                          {{"knob", ParamType::kSize, "a knob"}}});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'knob=lots'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unsigned integer"), std::string::npos) << msg;
  }
}

TEST(Registry, SchemaTypedOverridesValidateAndReachTheFactory) {
  // The schema idiom end to end: declare typed keys at registration, set
  // them in a spec, read them back through Scenario::extra_* in the factory.
  WorkloadRegistry::instance().add(
      "schema_probe",
      {"schema-declared knobs probe (test-only)",
       [](const Scenario& sc, Rng& rng, const ExecPolicy&) {
         // The typed knob is observable through the planted diameter.
         return planted_clusters(sc.n, sc.n, 2,
                                 2 * sc.extra_size("blocks", 1), rng);
       },
       {{"blocks", "2"}},
       {{"blocks", ParamType::kSize, "half the planted diameter"},
        {"spread", ParamType::kDouble, "unused here"},
        {"mirror", ParamType::kBool, "unused here"}}});

  // Registered default applies; extras survive resolve and to_spec.
  const Scenario with_default = Scenario::resolve(
      ScenarioSpec::parse("workload=schema_probe n=32 opt=0"));
  EXPECT_EQ(with_default.extra_size("blocks", 1), 2u);
  const Scenario overridden = Scenario::resolve(ScenarioSpec::parse(
      "workload=schema_probe n=32 opt=0 blocks=3 spread=0.5 mirror=true"));
  EXPECT_EQ(overridden.extra_size("blocks", 1), 3u);
  EXPECT_DOUBLE_EQ(overridden.extra_double("spread", 0.0), 0.5);
  EXPECT_TRUE(overridden.extra_bool("mirror", false));
  EXPECT_EQ(overridden.to_spec().overrides.at("blocks"), "3");
  EXPECT_EQ(Scenario::resolve(overridden.to_spec()).extra_size("blocks", 0),
            3u);

  // The factory observes the typed value (blocks=3 -> diameter 6).
  const ExperimentOutcome out = run_scenario(overridden);
  EXPECT_EQ(out.planted_diameter, 6u);

  // Wrong-typed value: the documented error names the entry and key=value.
  try {
    (void)Scenario::resolve(
        ScenarioSpec::parse("workload=schema_probe blocks=abc"));
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("workload 'schema_probe' override 'blocks=abc'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("expected an unsigned integer"), std::string::npos)
        << msg;
  }

  // Schema keys only exist for entries that declare them...
  EXPECT_THROW((void)Scenario::resolve(
                   ScenarioSpec::parse("workload=planted blocks=3")),
               ScenarioError);
  // ...and the unknown-key error advertises them for entries that do.
  try {
    (void)Scenario::resolve(
        ScenarioSpec::parse("workload=schema_probe blks=3"));
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown override key 'blks'"), std::string::npos) << msg;
    // Schema keys are advertised grouped per declaring entry.
    EXPECT_NE(
        msg.find("workload 'schema_probe' also accepts: blocks, spread, mirror"),
        std::string::npos)
        << msg;
  }
}

TEST(Registry, NewAdversaryRunsEndToEndWithoutEnumChanges) {
  // The acceptance demo: registration alone makes a new attack runnable.
  AdversaryRegistry::instance().add(
      "pessimist", {"claims to dislike every object (test-only)",
                    [](const Scenario&, const World&, PlayerId) {
                      return std::make_unique<ConstantReporter>(false);
                    }});
  EXPECT_TRUE(AdversaryRegistry::instance().contains("pessimist"));

  const ExperimentOutcome out = run_scenario(Scenario::resolve(
      ScenarioSpec::parse("adversary=pessimist n=64 budget=4 dishonest=6 "
                          "seed=3 opt=0")));
  EXPECT_EQ(out.honest_players, 58u);
  EXPECT_LE(out.error.max_error, 64u);
}

}  // namespace
}  // namespace colscore
