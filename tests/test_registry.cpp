// Scenario-registry coverage: legacy enums resolve to registered entries,
// specs round-trip, errors are actionable, and new entries integrate without
// touching src/sim/experiment.hpp.
#include "src/sim/registry.hpp"

#include <gtest/gtest.h>

#include "src/sim/experiment.hpp"

namespace colscore {
namespace {

TEST(Registry, EveryLegacyWorkloadIsRegistered) {
  for (WorkloadKind w :
       {WorkloadKind::kPlantedClusters, WorkloadKind::kIdenticalClusters,
        WorkloadKind::kLowerBound, WorkloadKind::kChained,
        WorkloadKind::kUniformRandom, WorkloadKind::kTwoBlocks}) {
    const std::string name = ExperimentConfig::workload_name(w);
    EXPECT_TRUE(WorkloadRegistry::instance().contains(name)) << name;
    EXPECT_FALSE(WorkloadRegistry::instance().at(name).description.empty());
  }
}

TEST(Registry, EveryLegacyAdversaryIsRegistered) {
  for (AdversaryKind a :
       {AdversaryKind::kNone, AdversaryKind::kRandomLiar, AdversaryKind::kInverter,
        AdversaryKind::kConstantOne, AdversaryKind::kTargetedBias,
        AdversaryKind::kHijacker, AdversaryKind::kSleeper,
        AdversaryKind::kStrangeColluder}) {
    const std::string name = ExperimentConfig::adversary_name(a);
    EXPECT_TRUE(AdversaryRegistry::instance().contains(name)) << name;
  }
}

TEST(Registry, EveryLegacyAlgorithmIsRegistered) {
  for (AlgorithmKind a :
       {AlgorithmKind::kCalculatePreferences, AlgorithmKind::kRobust,
        AlgorithmKind::kProbeAll, AlgorithmKind::kRandomGuess,
        AlgorithmKind::kOracleClusters, AlgorithmKind::kSampleAndShare}) {
    const std::string name = ExperimentConfig::algorithm_name(a);
    EXPECT_TRUE(AlgorithmRegistry::instance().contains(name)) << name;
  }
}

TEST(Registry, HistoricalAliasesResolve) {
  EXPECT_EQ(AlgorithmRegistry::instance().canonical("calc"),
            "calculate_preferences");
  EXPECT_EQ(AlgorithmRegistry::instance().canonical("oracle"), "oracle_clusters");
  EXPECT_EQ(AlgorithmRegistry::instance().canonical("baseline"),
            "sample_and_share");
}

TEST(Registry, UnknownNamesProduceActionableErrors) {
  try {
    (void)WorkloadRegistry::instance().at("martian");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload 'martian'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("planted"), std::string::npos) << msg;  // lists options
  }
}

TEST(ScenarioSpec, ParseToStringRoundTrips) {
  ScenarioSpec spec;
  spec.workload = "chained";
  spec.adversary = "sleeper";
  spec.algorithm = "robust";
  spec.set("n", "512").set("dishonest", "20").set("vote_min", "11");
  EXPECT_EQ(ScenarioSpec::parse(spec.to_string()), spec);

  const ScenarioSpec defaults;  // no overrides at all
  EXPECT_EQ(ScenarioSpec::parse(defaults.to_string()), defaults);
}

TEST(ScenarioSpec, ParseRejectsMalformedTokens) {
  EXPECT_THROW(ScenarioSpec::parse("n512"), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse("n="), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse("=512"), ScenarioError);
}

TEST(Scenario, ResolveAppliesOverrides) {
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(
      "workload=identical adversary=inverter algorithm=calc n=96 budget=4 "
      "dishonest=7 seed=5 zipf=1 opt=0 vote_min=11 sample_rate_c=8.5"));
  EXPECT_EQ(sc.workload, "identical");
  EXPECT_EQ(sc.adversary, "inverter");
  EXPECT_EQ(sc.algorithm, "calculate_preferences");  // alias canonicalized
  EXPECT_EQ(sc.n, 96u);
  EXPECT_EQ(sc.budget, 4u);
  EXPECT_EQ(sc.dishonest, 7u);
  EXPECT_EQ(sc.seed, 5u);
  EXPECT_TRUE(sc.zipf_sizes);
  EXPECT_FALSE(sc.compute_opt);
  EXPECT_EQ(sc.params.vote_min, 11u);
  EXPECT_DOUBLE_EQ(sc.params.sample_rate_c, 8.5);
}

TEST(Scenario, ResolveRejectsUnknownOverrideKeys) {
  try {
    (void)Scenario::resolve(ScenarioSpec::parse("frobnicate=3"));
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown override key 'frobnicate'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("budget"), std::string::npos) << msg;  // lists keys
  }
}

TEST(Scenario, ResolveRejectsBadValues) {
  EXPECT_THROW(Scenario::resolve(ScenarioSpec::parse("n=abc")), ScenarioError);
  EXPECT_THROW(Scenario::resolve(ScenarioSpec::parse("n=12x")), ScenarioError);
  EXPECT_THROW(Scenario::resolve(ScenarioSpec::parse("zipf=maybe")),
               ScenarioError);
}

TEST(Scenario, PaperParamsExpandThenRefine) {
  const Scenario sc = Scenario::resolve(
      ScenarioSpec::parse("paper_params=1 budget=4 vote_min=13"));
  const Params paper = Params::paper(4);
  EXPECT_DOUBLE_EQ(sc.params.sr_subset_exponent, paper.sr_subset_exponent);
  EXPECT_EQ(sc.params.vote_min, 13u);  // field override wins over the preset
}

TEST(Scenario, RegisteredDefaultsApplyAndUserWins) {
  // probe_all registers opt=0 as a default override.
  EXPECT_FALSE(
      Scenario::resolve(ScenarioSpec::parse("algorithm=probe_all")).compute_opt);
  EXPECT_TRUE(Scenario::resolve(ScenarioSpec::parse("algorithm=probe_all opt=1"))
                  .compute_opt);
}

TEST(Scenario, ToSpecRoundTripsThroughResolve) {
  Scenario sc;
  sc.workload = "chained";
  sc.adversary = "hijacker";
  sc.algorithm = "robust";
  sc.n = 80;
  sc.budget = 4;
  sc.seed = 123;
  sc.dishonest = 6;
  sc.compute_opt = false;
  sc.params.vote_min = 15;
  const Scenario back = Scenario::resolve(sc.to_spec());
  EXPECT_EQ(back.workload, sc.workload);
  EXPECT_EQ(back.adversary, sc.adversary);
  EXPECT_EQ(back.algorithm, sc.algorithm);
  EXPECT_EQ(back.n, sc.n);
  EXPECT_EQ(back.budget, sc.budget);
  EXPECT_EQ(back.seed, sc.seed);
  EXPECT_EQ(back.dishonest, sc.dishonest);
  EXPECT_EQ(back.compute_opt, sc.compute_opt);
  EXPECT_EQ(back.params.vote_min, sc.params.vote_min);
}

TEST(Scenario, CompatShimMatchesRegistryPath) {
  ExperimentConfig config;
  config.n = 64;
  config.budget = 4;
  config.diameter = 8;
  config.seed = 17;
  config.adversary = AdversaryKind::kSleeper;
  config.dishonest = 5;
  config.compute_opt = false;

  const ExperimentOutcome legacy = run_experiment(config);
  const ExperimentOutcome direct = run_scenario(Scenario::resolve(
      ScenarioSpec::parse("adversary=sleeper n=64 budget=4 diameter=8 seed=17 "
                          "dishonest=5 opt=0")));
  EXPECT_EQ(legacy.error.max_error, direct.error.max_error);
  EXPECT_EQ(legacy.error.mean_error, direct.error.mean_error);
  EXPECT_EQ(legacy.total_probes, direct.total_probes);
  EXPECT_EQ(legacy.max_probes, direct.max_probes);
  EXPECT_EQ(legacy.board_reports, direct.board_reports);
}

TEST(Registry, NewAdversaryRunsEndToEndWithoutEnumChanges) {
  // The acceptance demo: registration alone makes a new attack runnable.
  AdversaryRegistry::instance().add(
      "pessimist", {"claims to dislike every object (test-only)",
                    [](const Scenario&, const World&, PlayerId) {
                      return std::make_unique<ConstantReporter>(false);
                    }});
  EXPECT_TRUE(AdversaryRegistry::instance().contains("pessimist"));

  const ExperimentOutcome out = run_scenario(Scenario::resolve(
      ScenarioSpec::parse("adversary=pessimist n=64 budget=4 dishonest=6 "
                          "seed=3 opt=0")));
  EXPECT_EQ(out.honest_players, 58u);
  EXPECT_LE(out.error.max_error, 64u);
}

}  // namespace
}  // namespace colscore
