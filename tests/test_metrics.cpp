#include <gtest/gtest.h>

#include "src/metrics/error.hpp"
#include "src/metrics/optimal.hpp"
#include "src/model/generators.hpp"

namespace colscore {
namespace {

TEST(HammingErrors, ExactOutputsZeroError) {
  const World w = planted_clusters(16, 32, 2, 4, Rng(1));
  std::vector<BitVector> outputs;
  for (PlayerId p = 0; p < 16; ++p) outputs.push_back(w.matrix.row(p));
  std::vector<PlayerId> players{0, 5, 15};
  const auto errors = hamming_errors(w.matrix, outputs, players);
  for (auto e : errors) EXPECT_EQ(e, 0u);
}

TEST(HammingErrors, CountsFlips) {
  const World w = planted_clusters(8, 64, 1, 0, Rng(2));
  std::vector<BitVector> outputs;
  for (PlayerId p = 0; p < 8; ++p) outputs.push_back(w.matrix.row(p));
  outputs[3].flip(0);
  outputs[3].flip(10);
  outputs[3].flip(63);
  std::vector<PlayerId> players{2, 3};
  const auto errors = hamming_errors(w.matrix, outputs, players);
  EXPECT_EQ(errors[0], 0u);
  EXPECT_EQ(errors[1], 3u);
}

TEST(ErrorStats, SummaryFieldspopulated) {
  const World w = planted_clusters(10, 32, 1, 0, Rng(3));
  std::vector<BitVector> outputs;
  for (PlayerId p = 0; p < 10; ++p) outputs.push_back(w.matrix.row(p));
  outputs[0].flip(0);
  std::vector<PlayerId> players;
  for (PlayerId p = 0; p < 10; ++p) players.push_back(p);
  const ErrorStats stats = error_stats(w.matrix, outputs, players);
  EXPECT_EQ(stats.max_error, 1u);
  EXPECT_NEAR(stats.mean_error, 0.1, 1e-9);
  EXPECT_EQ(stats.summary.count, 10u);
}

TEST(OptRadius, IdenticalClustersZeroRadius) {
  const World w = identical_clusters(32, 64, 4, Rng(4));
  const OptEstimate est = opt_radius(w.matrix, /*group_size=*/8);
  for (PlayerId p = 0; p < 32; ++p) EXPECT_EQ(est.radius[p], 0u);
  EXPECT_EQ(est.max_radius, 0u);
}

TEST(OptRadius, PlantedBoundedByDiameter) {
  const std::size_t D = 12;
  const World w = planted_clusters(64, 128, 4, D, Rng(5));
  const OptEstimate est = opt_radius(w.matrix, 16);
  for (PlayerId p = 0; p < 64; ++p) EXPECT_LE(est.radius[p], D);
}

TEST(OptRadius, GroupSizeMonotone) {
  const World w = uniform_random(64, 256, Rng(6));
  const OptEstimate small = opt_radius(w.matrix, 4);
  const OptEstimate large = opt_radius(w.matrix, 32);
  for (PlayerId p = 0; p < 64; ++p) EXPECT_LE(small.radius[p], large.radius[p]);
}

TEST(OptRadius, LowerBoundInstanceStructure) {
  const World w = lower_bound_instance(64, 8, 10, Rng(7));
  // The pivot's group of n/B=8 players is within the special-set distance.
  const OptEstimate est = opt_radius(w.matrix, 8);
  EXPECT_LE(est.radius[0], 10u);
  // Background players need ~n/2-distance groups.
  EXPECT_GT(est.radius[40], 16u);
}

TEST(WorstApproxRatio, ComputesMaxOverPlayers) {
  OptEstimate opt;
  opt.radius = {10, 0, 5};
  const std::vector<PlayerId> players{0, 1, 2};
  const std::vector<std::size_t> errors{20, 3, 5};
  // ratios: 2.0, 3.0 (denominator clamped to 1), 1.0
  EXPECT_DOUBLE_EQ(worst_approx_ratio(errors, players, opt), 3.0);
}

TEST(WorstApproxRatio, EmptyPlayersZero) {
  OptEstimate opt;
  EXPECT_DOUBLE_EQ(worst_approx_ratio({}, {}, opt), 0.0);
}

TEST(OptRadius, MeanAndMaxConsistent) {
  const World w = planted_clusters(32, 64, 2, 8, Rng(8));
  const OptEstimate est = opt_radius(w.matrix, 8);
  double mean = 0;
  std::size_t max = 0;
  for (auto r : est.radius) {
    mean += static_cast<double>(r);
    max = std::max(max, r);
  }
  mean /= 32.0;
  EXPECT_DOUBLE_EQ(est.mean_radius, mean);
  EXPECT_EQ(est.max_radius, max);
}

}  // namespace
}  // namespace colscore
