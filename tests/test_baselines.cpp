#include "src/baseline/baselines.hpp"

#include <gtest/gtest.h>

#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

std::size_t max_honest_error(const Harness& h, const ProtocolResult& r) {
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  return errors.empty() ? 0 : *std::max_element(errors.begin(), errors.end());
}

TEST(ProbeAll, ZeroErrorFullCost) {
  Harness h(planted_clusters(64, 64, 2, 8, Rng(1)));
  const ProtocolResult r = probe_all(h.env);
  EXPECT_EQ(max_honest_error(h, r), 0u);
  EXPECT_EQ(r.max_probes, 64u);
  EXPECT_EQ(r.total_probes, 64u * 64u);
}

TEST(RandomGuess, ZeroCostHalfError) {
  Harness h(planted_clusters(64, 512, 2, 8, Rng(2)));
  const ProtocolResult r = random_guess(h.env, 99);
  EXPECT_EQ(r.total_probes, 0u);
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  double mean = 0;
  for (auto e : errors) mean += static_cast<double>(e);
  mean /= static_cast<double>(errors.size());
  EXPECT_NEAR(mean, 256.0, 40.0);
}

TEST(OracleClusters, NearZeroErrorOnIdentical) {
  Harness h(identical_clusters(64, 64, 4, Rng(3)));
  const ProtocolResult r = oracle_clusters(h.env, h.world);
  EXPECT_EQ(max_honest_error(h, r), 0u);
  // Work is shared: nobody probes anywhere near everything.
  EXPECT_LT(r.max_probes, 64u);
}

TEST(OracleClusters, PlantedErrorTracksDiameter) {
  const std::size_t D = 10;
  Harness h(planted_clusters(80, 160, 4, D, Rng(4)));
  const ProtocolResult r = oracle_clusters(h.env, h.world);
  EXPECT_LE(max_honest_error(h, r), 3 * D);
}

TEST(OracleClusters, BackgroundPlayersProbeAlone) {
  Harness h(lower_bound_instance(64, 8, 8, Rng(5)));
  const ProtocolResult r = oracle_clusters(h.env, h.world);
  // Background (cluster-less) players probe everything -> zero error.
  for (PlayerId p = 20; p < 64; ++p)
    EXPECT_EQ(h.world.matrix.row(p).hamming(r.outputs[p]), 0u);
}

TEST(SampleAndShare, RecoversCleanClusters) {
  Harness h(identical_clusters(128, 128, 4, Rng(6)));
  SampleShareParams params;
  params.budget = 4;
  const SampleShareResult r = sample_and_share(h.env, params);
  EXPECT_LE(max_honest_error(h, r.result), 8u);
}

TEST(SampleAndShare, ProbeBillIsQuadraticInBudget) {
  Harness h(identical_clusters(256, 256, 4, Rng(7)));
  SampleShareParams small;
  small.budget = 2;
  const auto r_small = sample_and_share(h.env, small);

  Harness h2(identical_clusters(256, 256, 4, Rng(7)));
  SampleShareParams big;
  big.budget = 8;  // 4x budget -> ~16x sample cost
  const auto r_big = sample_and_share(h2.env, big);

  EXPECT_GT(r_big.result.max_probes, 3 * r_small.result.max_probes);
}

TEST(SampleAndShare, StarNeighborhoodPaysOnChains) {
  // The headline gap (T1): on chained preferences the baseline's star
  // neighbourhood spans many links (error ~ B * step) while the true optimum
  // is one link (step). 16 links of 16 players; n/B = 64 players per
  // neighbourhood => spans ~4 links.
  const std::size_t n = 256, B = 4, step = 12;
  Harness h(chained_clusters(n, n, 16, step, Rng(8)));
  SampleShareParams params;
  params.budget = B;
  const SampleShareResult r = sample_and_share(h.env, params);
  const std::size_t err = max_honest_error(h, r.result);
  // Error must exceed the single-link optimum by a factor ~ links spanned.
  EXPECT_GT(err, step);
}

TEST(SampleAndShare, HijackersHurtBaselineMoreThanRobustProtocol) {
  // The Byzantine contrast at the paper's tolerance level: n/(3B) hijackers
  // planted inside the victim's own twin set. The baseline's star
  // neighbourhood has no redundancy-with-domination defense; the Fig. 2
  // protocol does.
  const std::size_t n = 128, B = 4, byz = n / (3 * B);  // 10 hijackers
  const auto corrupt = [&](Harness& h) {
    for (PlayerId p = 1; p <= byz; ++p)  // the victim's nearest twins
      h.population.set_behavior(
          p, std::make_unique<ClusterHijacker>(h.world.matrix, 0));
  };

  Harness baseline_h(identical_clusters(n, n, 4, Rng(9)));
  corrupt(baseline_h);
  SampleShareParams params;
  params.budget = B;
  const SampleShareResult base = sample_and_share(baseline_h.env, params);
  const std::size_t baseline_victim_error =
      baseline_h.world.matrix.row(0).hamming(base.result.outputs[0]);

  Harness ours_h(identical_clusters(n, n, 4, Rng(9)));
  corrupt(ours_h);
  Params ours_params = Params::practical(B);
  const ProtocolResult ours =
      calculate_preferences(ours_h.env, ours_params, 0x0b5ULL);
  const std::size_t ours_victim_error =
      ours_h.world.matrix.row(0).hamming(ours.outputs[0]);

  EXPECT_GT(baseline_victim_error, 0u);
  EXPECT_LE(ours_victim_error, 5u);
  EXPECT_GT(baseline_victim_error, 2 * ours_victim_error);
}

TEST(SampleAndShare, CoverageAccounting) {
  Harness h(identical_clusters(64, 64, 2, Rng(11)));
  SampleShareParams params;
  params.budget = 2;
  const SampleShareResult r = sample_and_share(h.env, params);
  // group 32 players x slice 12 reports over 64 objects: expect coverage.
  EXPECT_LT(r.uncovered_objects, 64u * 64u / 10);
}

TEST(Baselines, DeterministicForSameSeeds) {
  SampleShareParams params;
  params.budget = 4;
  Harness h1(planted_clusters(64, 64, 4, 4, Rng(12)));
  Harness h2(planted_clusters(64, 64, 4, 4, Rng(12)));
  const auto a = sample_and_share(h1.env, params);
  const auto b = sample_and_share(h2.env, params);
  for (PlayerId p = 0; p < 64; ++p)
    EXPECT_EQ(a.result.outputs[p], b.result.outputs[p]);
}

}  // namespace
}  // namespace colscore
